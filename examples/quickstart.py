"""Quickstart: build a personalized privacy-preserving index in ~30 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ChernoffPolicy, InformationNetwork, construct_epsilon_ppi


def main() -> None:
    # An information network of 50 autonomous providers (e.g. hospitals).
    net = InformationNetwork(n_providers=50)

    # Owners pick their own privacy degree at delegation time: epsilon = 0
    # means "publish my true provider list", 1 means "hide me in a full
    # broadcast".
    alice = net.register_owner("alice", epsilon=0.9)  # a VIP
    bob = net.register_owner("bob", epsilon=0.3)  # an average user
    net.delegate(alice, 7, payload="alice-record-1")
    net.delegate(bob, 7, payload="bob-record-1")
    net.delegate(bob, 21, payload="bob-record-2")

    # ConstructPPI with the paper's recommended Chernoff policy (gamma=0.9:
    # each owner's requested false-positive rate is met with >= 90% odds).
    result = construct_epsilon_ppi(
        net, policy=ChernoffPolicy(gamma=0.9), rng=np.random.default_rng(0)
    )

    # QueryPPI: the true providers are always included, obscured by noise.
    print("alice's obscured provider list:", result.index.query_by_name("alice"))
    print("bob's obscured provider list:  ", result.index.query_by_name("bob"))
    print()
    print("publishing probabilities beta:", np.round(result.betas, 3))
    print(f"achieved privacy success ratio: {result.report.success_ratio:.2f}")
    print(
        "attacker confidence per owner:",
        np.round(result.report.attacker_confidences, 3),
    )


if __name__ == "__main__":
    main()
