"""Federated search: ǫ-PPI locator + privacy-preserving record linkage.

The paper's Sec. VI-B vision end to end: an ER physician searches for an
incoming patient.  The ǫ-PPI locator narrows the network to candidate
hospitals; AuthSearch retrieves the records; then PRL (Bloom-encoded
demographics + weighted-Dice matching) links records that belong to the
same person even though the hospitals spelled the name differently --
without any hospital revealing raw demographics to the others.

Run:  python examples/federated_linkage.py
"""

import numpy as np

from repro.core import (
    AccessControl,
    ChernoffPolicy,
    InformationNetwork,
    Searcher,
    auth_search,
    construct_epsilon_ppi,
)
from repro.linkage import BloomEncoder, RecordMatcher, link_records


def main() -> None:
    rng = np.random.default_rng(23)
    hospitals = ["st-marys", "county-general", "riverside-er", "lakeside-clinic"]
    net = InformationNetwork(len(hospitals) + 16,
                             provider_names=hospitals + [f"clinic-{i}" for i in range(16)])

    # The same patient registered under differing demographics at three
    # hospitals -- the classic master-patient-index problem.
    demographics = [
        {"first_name": "Katherine", "last_name": "O'Connor",
         "date_of_birth": "1975-06-01", "city": "Boston"},
        {"first_name": "Catherine", "last_name": "OConnor",
         "date_of_birth": "1975-06-01", "city": "Boston"},
        {"first_name": "K.", "last_name": "O'Connor",
         "date_of_birth": "1975-06-01", "city": "Boston"},
    ]
    patient = net.register_owner("katherine-oconnor", epsilon=0.7)
    for pid in (0, 1, 2):
        net.delegate(patient, pid, payload=f"chart at {hospitals[pid]}")
    # A different patient who shares a surname (a near-miss for linkage).
    other = net.register_owner("sean-oconnor", epsilon=0.4)
    net.delegate(other, 2, payload="chart at riverside-er")
    other_demo = {"first_name": "Sean", "last_name": "O'Connor",
                  "date_of_birth": "1991-03-12", "city": "Boston"}

    print("== phase 1+2: e-PPI locator + AuthSearch ==")
    result = construct_epsilon_ppi(net, ChernoffPolicy(0.9), rng)
    candidates = result.index.query(patient.owner_id)
    acls = {pid: AccessControl(trusted={"er"}) for pid in range(net.n_providers)}
    search = auth_search(net, acls, Searcher("er"), candidates, patient.owner_id)
    print(f"  contacted {search.contacted} providers, "
          f"{len(search.positive_providers)} returned records, "
          f"{len(search.noise_providers)} were noise")

    print("\n== phase 3: private record linkage over the retrieved charts ==")
    # Hospitals share only the HIE linkage key; demographics never leave
    # the provider in the clear -- only Bloom encodings do.
    encoder = BloomEncoder(key=b"hie-linkage-key-2026")
    encoded = [encoder.encode_record(d) for d in demographics]
    encoded.append(encoder.encode_record(other_demo))
    labels = [f"{hospitals[i]}: {demographics[i]['first_name']} "
              f"{demographics[i]['last_name']}" for i in range(3)]
    labels.append(f"{hospitals[2]}: Sean O'Connor")

    matcher = RecordMatcher()
    clusters = link_records(encoded, matcher)
    for k, cluster in enumerate(clusters):
        print(f"  patient cluster {k}:")
        for idx in cluster:
            print(f"    - {labels[idx]}")

    print("\n== pairwise scores (what the matcher saw) ==")
    for i in range(len(encoded)):
        for j in range(i + 1, len(encoded)):
            m = matcher.compare(encoded[i], encoded[j])
            print(f"  {labels[i]!r} vs {labels[j]!r}: "
                  f"score={m.score:.3f} -> {m.decision.value}")


if __name__ == "__main__":
    main()
