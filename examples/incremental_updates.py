"""A living locator service: incremental updates + repeated-attack safety.

Real HIE networks see a stream of new patients and new delegations.  This
example runs the :class:`~repro.core.incremental.IncrementalIndexManager`
through an update stream, shows that only the affected column is
republished, and then mounts the multi-version intersection attack against
every snapshot the "attacker" collected along the way -- demonstrating that
sticky noise keeps republication from eroding privacy.

Run:  python examples/incremental_updates.py
"""

import numpy as np

from repro.attacks.intersection import intersection_attack
from repro.core import ChernoffPolicy, InformationNetwork
from repro.core.incremental import IncrementalIndexManager


def main() -> None:
    m = 50
    net = InformationNetwork(m)
    keys = [f"hospital-{pid}-secret".encode() for pid in range(m)]
    manager = IncrementalIndexManager(
        net, keys, ChernoffPolicy(0.9), np.random.default_rng(4)
    )

    print("== update stream ==")
    alice = manager.add_owner("alice", epsilon=0.8)
    bob = manager.add_owner("bob", epsilon=0.4)
    snapshots = []
    for step, (owner, pid) in enumerate(
        [(alice, 3), (bob, 7), (alice, 19), (bob, 11), (alice, 30)]
    ):
        result = manager.delegate(owner, pid)
        index = manager.index()
        snapshots.append(np.asarray(index.matrix).copy())
        print(
            f"  step {step}: {owner.name} -> provider {pid:2d}   "
            f"beta {result.old_beta:.3f} -> {result.new_beta:.3f}, "
            f"{result.republished_cells} new cells, "
            f"list sizes: alice={index.result_size(alice.owner_id)}, "
            f"bob={index.result_size(bob.owner_id)}"
        )
    print(f"  recall invariant holds: {manager.verify_recall()}")

    print("\n== attacker intersects every snapshot ==")
    matrix = net.membership_matrix()
    single = intersection_attack(matrix, snapshots[-1:])
    multi = intersection_attack(matrix, snapshots)
    print(f"  confidence from the final snapshot alone: {single.mean_confidence:.3f}")
    print(f"  confidence from intersecting all {len(snapshots)}: "
          f"{multi.mean_confidence:.3f}")
    print("  (sticky noise: republication adds information only about the\n"
          "   genuinely new delegations, never strips existing noise)")


if __name__ == "__main__":
    main()
