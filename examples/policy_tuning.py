"""Choosing a β-calculation policy: quality vs search cost (Sec. III-B / V).

Sweeps the three policies over a realistic Zipf network and reports, per
policy, the privacy success ratio and the average query cost -- the
trade-off an operator tunes with the Chernoff gamma parameter.

Run:  python examples/policy_tuning.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import (
    BasicPolicy,
    ChernoffPolicy,
    IncrementedExpectationPolicy,
    evaluate_index,
    mix_betas,
    publish_matrix,
)
from repro.datasets import make_dataset


def main() -> None:
    dataset = make_dataset(m=500, n=400, seed=11)
    matrix = dataset.matrix
    epsilons = dataset.epsilons
    sigmas = np.array([matrix.sigma(j) for j in range(matrix.n_owners)])

    policies = [
        BasicPolicy(),
        IncrementedExpectationPolicy(delta=0.02),
        ChernoffPolicy(gamma=0.8),
        ChernoffPolicy(gamma=0.9),
        ChernoffPolicy(gamma=0.99),
    ]
    rows = []
    rng = np.random.default_rng(12)
    for policy in policies:
        betas = policy.beta_vector(sigmas, epsilons, matrix.n_providers)
        mixing = mix_betas(betas, epsilons, rng, sigmas=sigmas)
        published = publish_matrix(matrix, mixing.betas, rng)
        report = evaluate_index(matrix, published, epsilons)
        avg_cost = published.sum(axis=0).mean()
        label = policy.name
        if isinstance(policy, ChernoffPolicy):
            label = f"{policy.name}-{policy.gamma}"
        elif isinstance(policy, IncrementedExpectationPolicy):
            label = f"{policy.name}-{policy.delta}"
        rows.append(
            [
                label,
                round(report.success_ratio, 3),
                round(float(report.attacker_confidences.mean()), 3),
                round(float(avg_cost), 1),
            ]
        )

    print("Zipf network: m=500 providers, n=400 owners, eps ~ U[0,1]\n")
    print(
        format_table(
            ["policy", "success-ratio", "mean-attack-confidence", "avg-query-cost"],
            rows,
        )
    )
    print(
        "\nReading: Chernoff buys a configurable success ratio; the price is"
        "\na moderately larger published list (query cost). Basic only hits"
        "\n~50%, inc-exp sits in between without a tunable guarantee."
    )


if __name__ == "__main__":
    main()
