"""The common-identity attack and the identity-mixing defence (Sec. III-B-2).

Builds a network with a few identities present at (almost) every provider,
mounts the paper's common-identity attack against an index constructed with
and without the mixing defence, and prints the attacker's confidence in each
case.

Run:  python examples/common_identity_defense.py
"""

import numpy as np

from repro.attacks import AdversaryKnowledge, common_identity_attack
from repro.core import ChernoffPolicy, mix_betas, publish_matrix
from repro.datasets import exact_frequency_matrix


def main() -> None:
    rng = np.random.default_rng(3)
    m = 400

    # 3 common identities (frequent patients) + 300 ordinary ones.
    frequencies = [400, 398, 395] + [
        int(f) for f in np.random.default_rng(4).integers(1, 40, size=300)
    ]
    matrix = exact_frequency_matrix(m, frequencies, rng)
    n = matrix.n_owners
    epsilons = np.full(n, 0.8)

    sigmas = np.array([matrix.sigma(j) for j in range(n)])
    betas = ChernoffPolicy(0.9).beta_vector(sigmas, epsilons, m)

    for enabled in (False, True):
        label = "WITH identity mixing" if enabled else "WITHOUT identity mixing"
        mixing = mix_betas(betas.copy(), epsilons, rng, enabled=enabled)
        published = publish_matrix(matrix, mixing.betas, rng)
        attack = common_identity_attack(
            matrix, AdversaryKnowledge(published=published), rng
        )
        print(f"== {label} ==")
        print(f"  identities published at ~100% frequency: "
              f"{len(attack.claimed_common)} "
              f"(true commons: {len(attack.truly_common)}, "
              f"decoys mixed in: {len(mixing.decoy_ids)})")
        print(f"  attacker confidence picking a true common: "
              f"{attack.identification_confidence:.3f}")
        print(f"  membership-claim success rate: "
              f"{attack.membership_confidence:.3f}")
        if enabled:
            print(f"  mixing parameters: lambda={mixing.lambda_:.4f}, "
                  f"xi={mixing.xi:.2f} "
                  f"(guarantee: confidence <= {1 - mixing.xi:.2f})")
        print()


if __name__ == "__main__":
    main()
