"""Healthcare Information Exchange scenario (paper Sec. I, Fig. 1).

An unconscious patient arrives at an emergency room.  The ER physician uses
the record locator service (the ǫ-PPI hosted by an untrusted third party) to
find which hospitals may hold the patient's history, then runs the
authenticated second-phase search against each candidate.

Demonstrates the full two-phase flow -- QueryPPI then AuthSearch -- plus the
privacy asymmetry between a celebrity patient and an average one.

Run:  python examples/hie_record_locator.py
"""

import numpy as np

from repro import (
    AccessControl,
    ChernoffPolicy,
    InformationNetwork,
    Searcher,
    auth_search,
    construct_epsilon_ppi,
)


def build_network() -> InformationNetwork:
    hospitals = [
        "general-hospital",
        "county-medical",
        "womens-health-center",
        "st-marys",
        "university-clinic",
        "sports-medicine-institute",
        "riverside-er",
        "oncology-center",
    ] + [f"community-clinic-{i:02d}" for i in range(32)]
    net = InformationNetwork(len(hospitals), provider_names=hospitals)

    # A sports celebrity: any visit leaking to the press is a story.
    celebrity = net.register_owner("famous-athlete", epsilon=0.9)
    net.delegate(celebrity, 5, payload="knee surgery 2024")
    net.delegate(celebrity, 7, payload="screening 2025")

    # An average patient with moderate privacy wishes.
    patient = net.register_owner("jane-doe", epsilon=0.4)
    net.delegate(patient, 0, payload="annual checkup")
    net.delegate(patient, 1, payload="broken arm")

    # A chronic patient seen nearly everywhere (a *common identity*).
    chronic = net.register_owner("chronic-patient", epsilon=0.6)
    for pid in range(len(hospitals)):
        net.delegate(chronic, pid, payload=f"visit at {hospitals[pid]}")

    # Background population so the noise has somewhere to come from.
    for i in range(60):
        owner = net.register_owner(f"patient-{i:03d}", epsilon=0.3)
        net.delegate(owner, i % len(hospitals), payload="routine visit")
    return net


def main() -> None:
    rng = np.random.default_rng(7)
    net = build_network()

    print("== ConstructPPI (collective, provider-side) ==")
    result = construct_epsilon_ppi(net, ChernoffPolicy(gamma=0.9), rng)
    for name in ("famous-athlete", "jane-doe", "chronic-patient", "patient-000"):
        owner = net.owner_by_name(name)
        listed = result.index.result_size(owner.owner_id)
        print(
            f"  {owner.name:<16} eps={owner.epsilon:<5} "
            f"published list size: {listed}/{net.n_providers}"
        )

    print("\n== Phase 1: QueryPPI at the (untrusted) locator service ==")
    athlete = net.owner_by_name("famous-athlete")
    candidates = result.index.query(athlete.owner_id)
    names = [net.providers[p].name for p in candidates]
    print(f"  candidates for {athlete.name}: {names}")

    print("\n== Phase 2: AuthSearch against each candidate ==")
    # Every hospital trusts the break-glass ER role.
    acls = {
        pid: AccessControl(trusted={"er-physician"}) for pid in range(net.n_providers)
    }
    search = auth_search(
        net, acls, Searcher("er-physician"), candidates, athlete.owner_id
    )
    print(f"  contacted {search.contacted} hospitals")
    print(
        "  records found at:",
        [net.providers[p].name for p in search.positive_providers],
    )
    print(
        f"  noise (false-positive) hospitals contacted: {len(search.noise_providers)}"
    )
    for record in search.records:
        print(f"    - {record.payload}")

    print("\n== What an attacker sees ==")
    conf = result.report.attacker_confidences
    for name in ("famous-athlete", "jane-doe", "chronic-patient"):
        owner = net.owner_by_name(name)
        bound = 1 - owner.epsilon
        print(
            f"  {owner.name:<16} attack confidence {conf[owner.owner_id]:.3f} "
            f"(personal bound {bound:.2f})"
        )
    print(
        "  (the chronic patient's row is a broadcast; its protection is"
        " identity anonymity inside the mixed set, not false positives)"
    )


if __name__ == "__main__":
    main()
