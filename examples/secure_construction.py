"""Secure distributed construction: SecSumShare + CountBelow + GMW.

Runs the paper's full Alg. 1 pipeline among mutually-untrusting providers:

1. every provider additively shares its private membership bits around the
   ring (SecSumShare, Fig. 3);
2. the c coordinators run CountBelow + the β-selection circuit under a
   GMW-style MPC (our FairplayMP stand-in) -- only the common-identity count,
   ξ, and per-identity selection bits are revealed;
3. frequencies of unselected identities are opened and β* computed in the
   clear.

Also simulates the same construction on the discrete-event network (Emulab-
like LAN profile) and compares it against the pure-MPC baseline, echoing
Fig. 6a.

Run:  python examples/secure_construction.py
"""

import random

from repro.core.policies import ChernoffPolicy
from repro.mpc import secure_beta_calculation
from repro.protocol import run_distributed_construction, run_pure_mpc_simulation


def main() -> None:
    rng = random.Random(42)
    m, n = 9, 5  # 9 providers, 5 identities (paper Fig. 6a scale)
    policy = ChernoffPolicy(gamma=0.9)

    # Private inputs: provider i's membership bits (identity 0 is common).
    provider_bits = [[1] + [rng.randint(0, 1) for _ in range(n - 1)] for _ in range(m)]
    epsilons = [0.9, 0.5, 0.3, 0.7, 0.4]

    print("== Secure beta calculation (Alg. 1) ==")
    result = secure_beta_calculation(provider_bits, epsilons, policy, c=3, rng=rng)
    print(f"  identities classified common (revealed count): {result.n_common}")
    print(f"  xi (max eps over commons): {result.xi:.3f}   lambda: {result.lambda_:.3f}")
    print(f"  per-identity 'publish as 1' bits: {result.publish_as_one}")
    print(f"  opened frequencies (non-selected only): {result.opened_frequencies}")
    print(f"  final betas: {[round(b, 3) for b in result.betas]}")
    print(f"  generic-MPC cost: {result.total_and_gates} AND gates, "
          f"circuit size {result.total_circuit_size} gates")

    print("\n== Timed simulation on the Emulab-like LAN (Fig. 6a) ==")
    eppi = run_distributed_construction(
        provider_bits, epsilons, policy, c=3, rng=random.Random(1)
    )
    pure = run_pure_mpc_simulation(
        provider_bits, epsilons, policy, rng=random.Random(2)
    )
    print(f"  e-PPI (MPC-reduced): {eppi.execution_time_s * 1e3:8.2f} ms, "
          f"{eppi.metrics.messages} messages, "
          f"{eppi.metrics.bytes_sent / 1024:.1f} KiB")
    print(f"  pure MPC baseline:   {pure.execution_time_s * 1e3:8.2f} ms, "
          f"{pure.metrics.messages} messages, "
          f"{pure.metrics.bytes_sent / 1024:.1f} KiB")
    speedup = pure.execution_time_s / eppi.execution_time_s
    print(f"  speedup from minimizing the MPC: {speedup:.1f}x "
          f"(grows with the network, see benchmarks/bench_fig6a*)")


if __name__ == "__main__":
    main()
