"""Deployed locator service: the Fig. 1 system running as network actors.

Builds a TREC-like information network, constructs the ǫ-PPI, deploys the
PPI server + provider endpoints + a searcher on the discrete-event
simulator, runs a query workload and reports end-to-end latency and cost --
then repeats with the grouping baseline for contrast.

Run:  python examples/locator_service_demo.py
"""

import numpy as np

from repro.baselines.grouping import GroupingPPI
from repro.core import ChernoffPolicy, construct_epsilon_ppi
from repro.core.index import PPIIndex
from repro.datasets import TrecLikeConfig, build_trec_like_network, uniform_workload
from repro.service import run_locator_service


def main() -> None:
    rng = np.random.default_rng(17)
    net = build_trec_like_network(
        TrecLikeConfig(n_providers=60, n_owners=150), seed=9
    )
    matrix = net.membership_matrix()
    queries = uniform_workload(net.n_owners, 30, rng).owner_ids.tolist()

    print("== constructing indexes ==")
    eppi = construct_epsilon_ppi(net, ChernoffPolicy(0.9), rng)
    grouping = PPIIndex(GroupingPPI(10).construct(matrix, rng).published)

    for name, index in (("e-PPI", eppi.index), ("grouping-10", grouping)):
        run = run_locator_service(net, index, queries=queries)
        print(f"\n== {name} ==")
        print(f"  queries served:        {run.queries_served}")
        print(f"  recall:                {run.recall:.3f}")
        print(f"  mean providers/query:  {run.mean_contacted:.1f}")
        print(f"  mean latency:          {run.mean_latency_s * 1e3:.2f} ms")
        print(f"  network traffic:       {run.metrics.bytes_sent / 1024:.1f} KiB")

    # Zoom into one search to show the phase structure.
    outcome = run_locator_service(net, eppi.index, queries=[queries[0]]).outcomes[0]
    print(f"\n== anatomy of one e-PPI search (owner {outcome.owner_id}) ==")
    print(f"  candidates contacted: {outcome.contacted}")
    print(f"  true positives:       {outcome.positive_providers}")
    print(f"  noise providers:      {len(outcome.noise_providers)}")
    print(f"  records retrieved:    {len(outcome.records)}")
    print(f"  latency:              {outcome.latency_s * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
