"""A tour of the MPC substrate as a standalone toolkit.

The cryptographic machinery built for the ǫ-PPI reproduction is usable on
its own.  This example walks through the layers:

1. secret sharing (additive and Shamir),
2. Boolean circuits: build, evaluate, optimize,
3. secure evaluation under GMW (Boolean) and BGW (arithmetic),
4. in-circuit fixed-point arithmetic (the Eq. 8 β formula),
5. arithmetic-to-Boolean conversion (the TASTY-style hybrid).

Run:  python examples/mpc_toolkit_tour.py
"""

import random

from repro.mpc import (
    AdditiveSharing,
    BGWEngine,
    GMWProtocol,
    ShamirSharing,
    Zq,
    A2BDealer,
    a2b_convert,
)
from repro.mpc.circuits import (
    CircuitBuilder,
    bits_to_int,
    evaluate,
    int_to_bits,
    less_than_const,
    ripple_add,
)
from repro.mpc.circuits.fixedpoint import ONE, beta_basic_circuit
from repro.mpc.circuits.optimize import optimize


def main() -> None:
    rng = random.Random(7)

    print("== 1. secret sharing ==")
    ring = Zq(64)
    additive = AdditiveSharing(ring, count=3)
    shares = additive.share(42, rng)
    print(f"  additive (3,3) shares of 42 mod 64: {shares} "
          f"-> reconstruct {additive.reconstruct(shares)}")
    shamir = ShamirSharing(threshold=2, parties=4)
    pts = shamir.share(123456, rng)
    print(f"  Shamir (2,4): any 2 of {[(p.x, p.y % 1000) for p in pts]}... "
          f"-> reconstruct {shamir.reconstruct(pts[1:3])}")

    print("\n== 2. Boolean circuits ==")
    b = CircuitBuilder()
    xs, ys = b.input_bits(8), b.input_bits(8)
    total = ripple_add(b, xs, ys)
    b.output_bits(total)
    b.output(less_than_const(b, xs, 100))
    circuit = b.build()
    inputs = int_to_bits(77, 8) + int_to_bits(55, 8)
    out = evaluate(circuit, inputs)
    print(f"  77 + 55 = {bits_to_int(out[:-1])}, 77 < 100 = {bool(out[-1])}")
    optimized, rep = optimize(circuit)
    print(f"  optimizer: {rep.before_total} -> {rep.after_total} gates "
          f"({rep.before_and} -> {rep.after_and} ANDs)")

    print("\n== 3. secure evaluation ==")
    gmw = GMWProtocol(circuit, parties=3, rng=rng)
    res = gmw.run(inputs)
    print(f"  GMW (3 parties): same outputs = {res.outputs == out}, "
          f"{res.stats.and_gates} triples, {res.stats.rounds} rounds, "
          f"{res.stats.bits_sent} bits")
    bgw = BGWEngine(threshold=2, parties=3, rng=rng)
    a, c = bgw.share(6), bgw.share(7)
    prod = bgw.multiply(a, c)
    print(f"  BGW (2,3): 6 * 7 = {bgw.open(prod)} "
          f"({bgw.stats.multiplications} mult, {bgw.stats.rounds} rounds)")

    print("\n== 4. fixed-point beta in-circuit (Eq. 8) ==")
    b = CircuitBuilder()
    freq = b.input_bits(5)
    beta = beta_basic_circuit(b, freq, m=20, epsilon=0.5)
    b.output_bits(beta)
    beta_circuit = b.build()
    raw = bits_to_int(evaluate(beta_circuit, int_to_bits(4, 5)))
    print(f"  beta_b(f=4, m=20, eps=0.5) = {raw / ONE:.4f} "
          f"(float formula: {1/((20/4-1)*(1/0.5-1)):.4f}) "
          f"at {beta_circuit.stats().and_} AND gates")

    print("\n== 5. A2B conversion (hybrid MPC glue) ==")
    ring = Zq(64)
    dealer = A2BDealer(parties=3, ring=ring, rng=rng)
    arith = AdditiveSharing(ring, 3).share(37, rng)
    conv = a2b_convert(arith, ring, dealer, rng)
    print(f"  additive shares of 37 -> XOR bit-shares; reconstruct "
          f"{conv.reconstruct()} (opened mask z = {conv.opened_mask}, "
          f"uniform)")


if __name__ == "__main__":
    main()
