"""Ablation: construction cost on LAN vs WAN deployment.

The paper deploys on an Emulab LAN; a realistic HIE federates hospitals
over wide-area links.  Both protocols pay a per-round WAN penalty, and the
pure baseline's circuits are far deeper (the in-circuit Eq. 8 divider), so
its *absolute* gap to the reduced protocol widens further on WAN.  The
*relative* speedup, interestingly, shrinks: the reduced protocol's LAN
advantage is compute-bound (tiny circuits), so added latency weighs
proportionally more on it -- a deployment insight the paper's LAN-only
evaluation cannot show.
"""

import random

from repro.analysis.reporting import format_table
from repro.core.policies import BasicPolicy
from repro.net.latency import EMULAB_LAN, WAN
from repro.protocol import run_distributed_construction, run_pure_mpc_simulation

M = 9
N_IDS = 2
C = 3


def run_wan_ablation(seed: int = 0):
    rng = random.Random(seed)
    bits = [[rng.randint(0, 1) for _ in range(N_IDS)] for _ in range(M)]
    eps = [0.5] * N_IDS
    rows = {}
    for profile_name, profile in (("lan", EMULAB_LAN), ("wan", WAN)):
        eppi = run_distributed_construction(
            bits, eps, BasicPolicy(), c=C, rng=random.Random(seed), latency=profile
        )
        pure = run_pure_mpc_simulation(
            bits, eps, BasicPolicy(), rng=random.Random(seed), latency=profile
        )
        rows[profile_name] = {
            "e-ppi-s": eppi.execution_time_s,
            "pure-s": pure.execution_time_s,
            "speedup": pure.execution_time_s / eppi.execution_time_s,
        }
    return rows


def test_ablation_lan_vs_wan(benchmark, report):
    rows = benchmark.pedantic(run_wan_ablation, rounds=1, iterations=1)
    report(
        f"Ablation: construction time LAN vs WAN (m={M}, c={C})",
        format_table(
            ["profile", "e-ppi-s", "pure-mpc-s", "speedup"],
            [
                [name, row["e-ppi-s"], row["pure-s"], row["speedup"]]
                for name, row in rows.items()
            ],
        ),
    )
    # WAN slows everything down...
    assert rows["wan"]["e-ppi-s"] > rows["lan"]["e-ppi-s"]
    assert rows["wan"]["pure-s"] > rows["lan"]["pure-s"]
    # ...the absolute penalty is far larger for the deep pure-MPC circuits
    # (more communication rounds stalled on the 40 ms base latency)...
    wan_gap = rows["wan"]["pure-s"] - rows["wan"]["e-ppi-s"]
    lan_gap = rows["lan"]["pure-s"] - rows["lan"]["e-ppi-s"]
    assert wan_gap > lan_gap
    # ...and the reduced protocol stays an order of magnitude faster.
    assert rows["wan"]["speedup"] > 10
