"""Fig. 6a reproduction: construction execution time vs number of parties.

Paper setup: single identity, c = 3, parties (providers) swept 3 -> 9 on an
Emulab LAN; compared systems are the ǫ-PPI construction protocol
(SecSumShare + c-party generic MPC) and the pure-MPC approach (all m parties
inside the generic MPC).

Expected shape: pure MPC grows super-linearly with m; the MPC-reduced ǫ-PPI
protocol grows slowly (its generic-MPC stage is pinned to c parties).
Absolute times come from the simulator's Emulab-like LAN cost model, not
real hardware -- only the ratios/shape are meaningful (see DESIGN.md).
"""

import random

from repro.analysis.reporting import format_series
from repro.core.policies import ChernoffPolicy
from repro.protocol import run_distributed_construction, run_pure_mpc_simulation

PARTY_COUNTS = [3, 5, 7, 9]
EPSILON = 0.5
C = 3


def run_fig6a(seed: int = 0):
    series = {"e-ppi": [], "pure-mpc": []}
    for m in PARTY_COUNTS:
        rng = random.Random(seed + m)
        bits = [[rng.randint(0, 1)] for _ in range(m)]
        eppi = run_distributed_construction(
            bits, [EPSILON], ChernoffPolicy(0.9), c=C, rng=random.Random(seed)
        )
        pure = run_pure_mpc_simulation(
            bits, [EPSILON], ChernoffPolicy(0.9), rng=random.Random(seed)
        )
        series["e-ppi"].append(eppi.execution_time_s)
        series["pure-mpc"].append(pure.execution_time_s)
    return series


def test_fig6a_execution_time_vs_parties(benchmark, report):
    series = benchmark.pedantic(run_fig6a, rounds=1, iterations=1)
    report(
        "Fig. 6a: execution time (s) vs number of parties (single identity, c=3)",
        format_series("parties", PARTY_COUNTS, series),
    )
    eppi, pure = series["e-ppi"], series["pure-mpc"]
    # Pure MPC slower at the largest network and growing faster.
    assert pure[-1] > eppi[-1]
    pure_growth = pure[-1] / pure[0]
    eppi_growth = eppi[-1] / eppi[0]
    assert pure_growth > eppi_growth
