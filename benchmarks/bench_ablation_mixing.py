"""Ablation: what the identity-mixing defence (Eq. 6/7) buys.

Runs the common-identity attack against ǫ-PPI constructed with mixing ON vs
OFF (everything else identical).  Expected: without mixing the attacker
identifies true common identities with high confidence; with mixing the
confidence is bounded by ~1 − ξ (ξ = max ǫ over commons).
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.attacks.adversary import AdversaryKnowledge
from repro.attacks.common_identity import common_identity_attack
from repro.core.mixing import mix_betas
from repro.core.policies import ChernoffPolicy
from repro.core.publication import publish_matrix
from repro.datasets.synthetic import exact_frequency_matrix

M = 400
N_RARE = 300
EPSILON_COMMON = 0.8


def run_mixing_ablation(seed: int = 9):
    rng = np.random.default_rng(seed)
    freqs = [M, M - 2, M - 5] + [
        int(f) for f in np.random.default_rng(seed + 1).integers(1, 40, size=N_RARE)
    ]
    matrix = exact_frequency_matrix(M, freqs, rng)
    n = len(freqs)
    eps = np.full(n, EPSILON_COMMON)
    sigmas = np.array([matrix.sigma(j) for j in range(n)])
    betas = ChernoffPolicy(0.9).beta_vector(sigmas, eps, M)

    results = {}
    for enabled in (False, True):
        mixing = mix_betas(betas.copy(), eps, rng, enabled=enabled)
        published = publish_matrix(matrix, mixing.betas, rng)
        attack = common_identity_attack(
            matrix, AdversaryKnowledge(published=published), rng
        )
        results["mixing-on" if enabled else "mixing-off"] = {
            "identification_confidence": attack.identification_confidence,
            "claimed": len(attack.claimed_common),
            "decoys": len(mixing.decoy_ids),
            "lambda": mixing.lambda_,
        }
    return results


def test_ablation_identity_mixing(benchmark, report):
    results = benchmark.pedantic(run_mixing_ablation, rounds=1, iterations=1)
    report(
        "Ablation: common-identity attack vs mixing on/off (eps=0.8)",
        format_table(
            ["config", "ident-confidence", "claimed-commons", "decoys", "lambda"],
            [
                [k, v["identification_confidence"], v["claimed"], v["decoys"], v["lambda"]]
                for k, v in results.items()
            ],
        ),
    )
    off = results["mixing-off"]["identification_confidence"]
    on = results["mixing-on"]["identification_confidence"]
    assert off > 0.6  # attack succeeds without the defence
    assert on <= (1 - EPSILON_COMMON) + 0.15  # bounded by ~1 - xi with it
    assert results["mixing-on"]["decoys"] > 0
