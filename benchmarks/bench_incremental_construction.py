"""Incremental secure β maintenance vs a from-scratch MPC rerun.

PR 8's tentpole claim: once a construction is held open
(``secure_beta_calculation(..., keep_state=True)``), folding churn in with
:func:`~repro.mpc.betacalc.secure_beta_update` costs secure work
proportional to the *dirty set plus its selection closure*, not the
identity universe.  This benchmark measures that claim as a churn sweep --
0.1%, 1%, 10% and 100% of a >=10k-identity universe -- against the price
of simply rerunning the full two-phase construction, and pins three
properties per level:

* **exactness** -- the incremental β vector is byte-identical to a
  from-scratch run over the mutated bits with the held state's persisted
  decoy coins replayed (the equality the property suite proves in depth);
* **closed-form accounting** -- the measured count-phase GMW stats equal
  ``ConstructionCostModel.incremental_count_stats(dirty)`` field for
  field, so the analytical model prices an incremental pass exactly;
* **the floor** -- at 1% churn the incremental pass must be >= 5x the
  full rerun (>= 2x in quick mode, where the universe shrinks to 2k and
  shared CI runners add noise).

Churn is generated as *membership* churn -- one provider joins or leaves
each dirty identity, biased to keep the identity on its side of the
common threshold -- which is the common case for the paper's setting
(registrations trickle; an identity's commonality rarely flips).  λ still
drifts through the natural-decoy count, so the sweep exercises the
closure logic rather than dodging it; the per-level closure size is
reported alongside the speedup.

Writes ``benchmarks/results/BENCH_incremental.json`` (validated in CI by
``benchmarks/validate_bench_json.py incremental``).
"""

import json
import os
import pathlib
import random
import time

import numpy as np

from repro.analysis.cost_model import ConstructionCostModel
from repro.analysis.reporting import format_table
from repro.core.policies import BasicPolicy
from repro.mpc.betacalc import secure_beta_calculation, secure_beta_update

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

INC_QUICK = os.environ.get("INC_BENCH_QUICK") == "1"
M = 8
COORDINATORS = 3
N_IDS = 2_000 if INC_QUICK else 10_000
CHURN_LEVELS = [0.001, 0.01, 0.1, 1.0]
MEMBERSHIP_P = 0.35
#: the ISSUE's acceptance floor at 1% churn; quick mode (2k identities on
#: shared CI runners) keeps a 2x floor so scheduler noise cannot flake it.
MIN_SPEEDUP_AT_1PCT = 2.0 if INC_QUICK else 5.0


def build_bits(rng: random.Random) -> list:
    return [
        [1 if rng.random() < MEMBERSHIP_P else 0 for _ in range(N_IDS)]
        for _ in range(M)
    ]


def membership_flip(bits: list, j: int, threshold: int, rng: random.Random):
    """One provider joins or leaves identity ``j``, keeping it on its
    side of the common threshold when the frequency allows."""
    ones = [i for i in range(M) if bits[i][j]]
    zeros = [i for i in range(M) if not bits[i][j]]
    freq = len(ones)
    if freq >= threshold:
        if freq > threshold and ones:
            bits[rng.choice(ones)][j] = 0
        elif zeros:
            bits[rng.choice(zeros)][j] = 1
    else:
        if freq + 1 < threshold and zeros:
            bits[rng.choice(zeros)][j] = 1
        elif ones:
            bits[rng.choice(ones)][j] = 0


def run_churn_sweep(seed: int = 0) -> dict:
    policy = BasicPolicy()
    rng = random.Random(seed)
    bits = build_bits(rng)
    epsilons = [rng.choice([0.15, 0.3, 0.6]) for _ in range(N_IDS)]

    # The held construction the increments fold into.
    held = secure_beta_calculation(
        bits,
        epsilons,
        policy,
        COORDINATORS,
        random.Random(seed + 1),
        engine="batch",
        keep_state=True,
    )
    state = held.state
    threshold = state.high_threshold

    # The yardstick: one timed from-scratch rerun of the same universe.
    t0 = time.perf_counter()
    secure_beta_calculation(
        bits,
        epsilons,
        policy,
        COORDINATORS,
        random.Random(seed + 1),
        engine="batch",
    )
    full_s = time.perf_counter() - t0

    model = ConstructionCostModel(
        m=M,
        n_identities=N_IDS,
        c=COORDINATORS,
        common_sigma_threshold=state.common_sigma_threshold,
    )

    rows = []
    for level in CHURN_LEVELS:
        k = max(1, int(N_IDS * level))
        dirty = sorted(rng.sample(range(N_IDS), k))
        for j in dirty:
            membership_flip(bits, j, threshold, rng)
        t1 = time.perf_counter()
        result = secure_beta_update(state, bits, dirty, random.Random(seed + 2))
        inc_s = time.perf_counter() - t1
        info = result.incremental

        # Exactness: the incremental pass equals a from-scratch run over
        # the mutated bits with the held coins replayed (same engine).
        scratch = secure_beta_calculation(
            bits,
            epsilons,
            policy,
            COORDINATORS,
            random.Random(seed + 3),
            engine="batch",
            coins=state.coins,
        )
        assert np.array_equal(result.betas, scratch.betas), level
        assert list(state.publish_as_one) == list(scratch.selection_result.publish_as_one)

        # Closed-form accounting: the analytical model prices the count
        # phase of this exact pass, gate for gate and bit for bit.
        predicted = model.incremental_count_stats(dirty)
        measured = result.count_result.stats
        for field in ("and_gates", "bits_sent", "messages", "rounds"):
            assert getattr(predicted, field) == getattr(measured, field), (
                level,
                field,
                getattr(predicted, field),
                getattr(measured, field),
            )

        rows.append(
            {
                "churn": level,
                "dirty": len(info.dirty),
                "closure": len(info.closure),
                "lambda_moved": info.lambda_before != info.lambda_after,
                "incremental_s": inc_s,
                "full_s": full_s,
                "speedup": full_s / inc_s,
                "count_and_gates": measured.and_gates,
                "count_bits_sent": measured.bits_sent,
            }
        )
    return {"rows": rows, "full_s": full_s}


def test_incremental_construction_sweep(benchmark, report):
    results = benchmark.pedantic(run_churn_sweep, rounds=1, iterations=1)
    rows = results["rows"]
    report(
        f"Incremental β maintenance: delta-restricted MPC vs full rerun "
        f"(m={M}, n={N_IDS}, c={COORDINATORS}"
        f"{', quick' if INC_QUICK else ''})",
        format_table(
            [
                "churn",
                "dirty",
                "closure",
                "inc-ms",
                "full-ms",
                "speedup",
                "count-ands",
            ],
            [
                [
                    f"{row['churn']:.1%}",
                    row["dirty"],
                    row["closure"],
                    row["incremental_s"] * 1e3,
                    row["full_s"] * 1e3,
                    row["speedup"],
                    row["count_and_gates"],
                ]
                for row in rows
            ],
        ),
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    by_level = {row["churn"]: row for row in rows}
    payload = {
        "benchmark": "incremental_construction",
        "quick_mode": INC_QUICK,
        "m": M,
        "c": COORDINATORS,
        "n_ids": N_IDS,
        "churn_levels": CHURN_LEVELS,
        "full_s": results["full_s"],
        "rows": rows,
        "min_speedup_at_1pct": MIN_SPEEDUP_AT_1PCT,
        "speedup_at_1pct": by_level[0.01]["speedup"],
    }
    (RESULTS_DIR / "BENCH_incremental.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Secure work shrank with the dirty set...
    assert rows[0]["count_and_gates"] < rows[-1]["count_and_gates"]
    # ...every level stayed byte-exact (asserted in the sweep) and sane...
    for row in rows:
        assert row["dirty"] <= row["closure"] <= N_IDS
        assert row["incremental_s"] > 0
    # ...and the ISSUE's floor holds at 1% churn.
    assert by_level[0.01]["speedup"] >= MIN_SPEEDUP_AT_1PCT, by_level[0.01]
