"""Fig. 6b reproduction: compiled circuit size vs number of parties.

Paper setup: single identity, scaling to 61 parties; the metric is the size
of the compiled MPC program (circuit), which determines execution time in
real runs (FairplayMP's observation, reused here).

Expected shape: the pure-MPC circuit grows linearly-plus with the party
count (in-circuit popcount over m secret bits + m coin contributions); the
ǫ-PPI generic-MPC circuit stays nearly flat (c = 3 coordinators; only the
share bit-width grows, logarithmically in m).
"""

from repro.analysis.reporting import format_series
from repro.core.policies import ChernoffPolicy, frequency_threshold
from repro.mpc.countbelow import (
    build_count_circuit,
    build_selection_circuit,
    scale_epsilon,
)
from repro.mpc.field import default_modulus_for_sum
from repro.mpc.pure import build_pure_circuit

PARTY_COUNTS = [3, 11, 21, 31, 41, 51, 61]
EPSILON = 0.5
C = 3
LAMBDA_SCALED = 0  # single identity, no mixing needed for the size metric


def circuit_sizes_for(m: int) -> tuple[int, int]:
    policy = ChernoffPolicy(0.9)
    thresholds = [frequency_threshold(policy, EPSILON, m)]
    eps_scaled = [scale_epsilon(EPSILON)]
    width = (default_modulus_for_sum(m) - 1).bit_length()
    high = (m + 1) // 2

    eppi = (
        build_count_circuit(C, thresholds, eps_scaled, width, high).stats().size
        + build_selection_circuit(C, thresholds, LAMBDA_SCALED, width).stats().size
    )
    pure = (
        build_pure_circuit(m, [EPSILON], policy, None, high).stats().size
        + build_pure_circuit(m, [EPSILON], policy, LAMBDA_SCALED, high).stats().size
    )
    return eppi, pure


def run_fig6b():
    series = {"e-ppi": [], "pure-mpc": []}
    for m in PARTY_COUNTS:
        eppi, pure = circuit_sizes_for(m)
        series["e-ppi"].append(eppi)
        series["pure-mpc"].append(pure)
    return series


def test_fig6b_circuit_size_vs_parties(benchmark, report):
    series = benchmark.pedantic(run_fig6b, rounds=1, iterations=1)
    report(
        "Fig. 6b: compiled circuit size (gates) vs number of parties "
        "(single identity, c=3)",
        format_series("parties", PARTY_COUNTS, series),
    )
    eppi, pure = series["e-ppi"], series["pure-mpc"]
    # Pure grows monotonically (roughly linearly) with parties.
    assert all(a < b for a, b in zip(pure, pure[1:]))
    # e-PPI stays nearly flat: < 2x over a 20x party increase.
    assert max(eppi) < 2 * min(eppi)
    # Pure is far larger (in-circuit Eq. 8 arithmetic) and the absolute gap
    # widens with the party count.
    assert pure[0] > 10 * eppi[0]
    assert (pure[-1] - eppi[-1]) > (pure[0] - eppi[0])
