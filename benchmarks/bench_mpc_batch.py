"""Construction-throughput sweep: bitsliced batch GMW vs the scalar engine.

Runs the decomposed CountBelow + β-selection stage (the Fig. 6a/6c hot
path) over an identity-count sweep with both engines and asserts:

* identical public outputs and identical per-identity round/message/byte
  accounting (the paper's cost model is engine-independent);
* the batch engine is >= 10x faster at 1000 identities (>= 2x in quick
  mode, where the sweep stops at 256 -- set ``MPC_BENCH_QUICK=1``, used by
  the CI smoke job).

Emits a machine-readable perf trajectory to
``benchmarks/results/BENCH_mpc.json``.
"""

import json
import math
import os
import pathlib
import random
import time

from repro.analysis.reporting import format_series
from repro.mpc.countbelow import run_beta_selection, run_count_below
from repro.mpc.field import Zq, default_modulus_for_sum
from repro.mpc.secsum import SecSumShare

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

M = 64  # providers
C = 3  # coordinators / MPC parties
QUICK = os.environ.get("MPC_BENCH_QUICK") == "1"
IDENTITY_COUNTS = [64, 256] if QUICK else [64, 256, 1000]
MIN_SPEEDUP = 2.0 if QUICK else 10.0
LAMBDA = 0.3


def _run_engine(coord_shares, thresholds, epsilons, ring, engine, seed):
    start = time.perf_counter()
    count = run_count_below(
        coord_shares,
        thresholds,
        epsilons,
        ring,
        random.Random(seed),
        high_threshold=math.ceil(0.5 * M),
        engine=engine,
    )
    selection = run_beta_selection(
        coord_shares, thresholds, LAMBDA, ring, random.Random(seed + 1), engine=engine
    )
    elapsed = time.perf_counter() - start
    return count, selection, elapsed


def run_sweep(seed: int = 0):
    ring = Zq(default_modulus_for_sum(M))
    rows = []
    series = {"scalar_s": [], "batch_s": [], "speedup": []}
    for n in IDENTITY_COUNTS:
        rng = random.Random(seed + n)
        bits = [[rng.randint(0, 1) for _ in range(n)] for _ in range(M)]
        shares = SecSumShare(M, C, ring, random.Random(seed)).run(bits)
        thresholds = [rng.randint(1, M) for _ in range(n)]
        epsilons = [rng.random() for _ in range(n)]

        sc_count, sc_sel, sc_t = _run_engine(
            shares.coordinator_shares, thresholds, epsilons, ring, "scalar", seed
        )
        bt_count, bt_sel, bt_t = _run_engine(
            shares.coordinator_shares, thresholds, epsilons, ring, "batch", seed
        )

        # Engine-independence of the results and of the paper's cost model:
        # same public outputs, byte/round/message counts per identity (and in
        # aggregate) identical between modes.
        assert (sc_count.n_common, sc_count.n_natural_decoys, sc_count.xi_scaled) == (
            bt_count.n_common, bt_count.n_natural_decoys, bt_count.xi_scaled
        )
        assert sc_sel.publish_as_one == bt_sel.publish_as_one
        assert sc_count.stats == bt_count.stats
        assert sc_sel.stats == bt_sel.stats
        assert sc_count.stats_per_identity == bt_count.stats_per_identity
        assert sc_sel.stats_per_identity == bt_sel.stats_per_identity
        assert sc_count.total_gates == bt_count.total_gates

        speedup = sc_t / bt_t if bt_t > 0 else float("inf")
        series["scalar_s"].append(sc_t)
        series["batch_s"].append(bt_t)
        series["speedup"].append(speedup)
        rows.append(
            {
                "identities": n,
                "providers": M,
                "parties": C,
                "scalar_s": sc_t,
                "batch_s": bt_t,
                "speedup": speedup,
                "total_gates": bt_count.total_gates + bt_sel.total_gates,
                "and_gates": bt_count.stats.and_gates + bt_sel.stats.and_gates,
                "rounds_per_identity": (
                    bt_count.stats_per_identity.rounds
                    + bt_sel.stats_per_identity.rounds
                ),
                "bits_per_identity": (
                    bt_count.stats_per_identity.bits_sent
                    + bt_sel.stats_per_identity.bits_sent
                ),
            }
        )
    return series, rows


def test_mpc_batch_speedup(benchmark, report):
    series, rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        f"Batched vs scalar secure β-computation (m={M}, c={C})",
        format_series(
            "identities",
            IDENTITY_COUNTS,
            {k: series[k] for k in ("scalar_s", "batch_s", "speedup")},
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "mpc_batch_construction",
        "quick_mode": QUICK,
        "providers": M,
        "parties": C,
        "min_speedup_required": MIN_SPEEDUP,
        "rows": rows,
    }
    (RESULTS_DIR / "BENCH_mpc.json").write_text(json.dumps(payload, indent=2) + "\n")

    top = series["speedup"][-1]
    assert top >= MIN_SPEEDUP, (
        f"batch engine only {top:.1f}x faster than scalar at "
        f"{IDENTITY_COUNTS[-1]} identities (need >= {MIN_SPEEDUP}x)"
    )
