"""Fig. 6c reproduction: execution time vs number of identities.

Paper setup: a three-party network (m = 3, c = 3), identity count swept
1 -> 1000.

Expected shape: both systems grow with the identity count, but the ǫ-PPI
construction grows at a much slower rate than pure MPC (its per-identity
secure work is a c-party share-sum + compare, while pure MPC additionally
carries every identity's coins and popcount through the monolithic m-party
protocol with full input sharing).
"""

import random

from repro.analysis.reporting import format_series
from repro.core.policies import ChernoffPolicy
from repro.protocol import run_distributed_construction, run_pure_mpc_simulation

M = 3
C = 3
IDENTITY_COUNTS = [1, 10, 100, 1000]
EPSILON = 0.5


def run_fig6c(seed: int = 0):
    series = {"e-ppi": [], "pure-mpc": []}
    for n in IDENTITY_COUNTS:
        rng = random.Random(seed + n)
        bits = [[rng.randint(0, 1) for _ in range(n)] for _ in range(M)]
        eps = [EPSILON] * n
        eppi = run_distributed_construction(
            bits, eps, ChernoffPolicy(0.9), c=C, rng=random.Random(seed)
        )
        pure = run_pure_mpc_simulation(
            bits, eps, ChernoffPolicy(0.9), rng=random.Random(seed)
        )
        series["e-ppi"].append(eppi.execution_time_s)
        series["pure-mpc"].append(pure.execution_time_s)
    return series


def test_fig6c_execution_time_vs_identities(benchmark, report):
    series = benchmark.pedantic(run_fig6c, rounds=1, iterations=1)
    report(
        "Fig. 6c: execution time (s) vs number of identities (m=3, c=3)",
        format_series("identities", IDENTITY_COUNTS, series),
    )
    eppi, pure = series["e-ppi"], series["pure-mpc"]
    # Both grow with identity count.
    assert eppi[-1] > eppi[0]
    assert pure[-1] > pure[0]
    # Pure MPC pays more at the top of the sweep.
    assert pure[-1] > eppi[-1]
