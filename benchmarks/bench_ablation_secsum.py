"""Ablation: the MPC-minimization claim in isolation.

Compares the generic-MPC workload (AND gates, messages, bits) of the
SecSumShare-reduced pipeline against shipping all provider inputs into the
monolithic m-party MPC, at equal functionality.  This isolates the paper's
central design principle ("minimize the expensive MPC") from the transport
layer measured in Fig. 6a.
"""

import random

from repro.analysis.reporting import format_series
from repro.core.policies import ChernoffPolicy
from repro.mpc.betacalc import secure_beta_calculation
from repro.mpc.pure import run_pure_beta_calculation

PARTY_COUNTS = [4, 8, 16, 32]
N_IDS = 3
C = 3


def run_secsum_ablation(seed: int = 0):
    series = {
        "e-ppi-and-gates": [],
        "pure-and-gates": [],
        "e-ppi-mpc-bits": [],
        "pure-mpc-bits": [],
    }
    for m in PARTY_COUNTS:
        rng = random.Random(seed + m)
        bits = [[rng.randint(0, 1) for _ in range(N_IDS)] for _ in range(m)]
        eps = [0.5] * N_IDS
        reduced = secure_beta_calculation(
            bits, eps, ChernoffPolicy(0.9), c=C, rng=random.Random(seed)
        )
        pure = run_pure_beta_calculation(
            bits, eps, ChernoffPolicy(0.9), random.Random(seed)
        )
        series["e-ppi-and-gates"].append(reduced.total_and_gates)
        series["pure-and-gates"].append(pure.total_and_gates)
        series["e-ppi-mpc-bits"].append(
            reduced.count_result.stats.bits_sent
            + reduced.selection_result.stats.bits_sent
        )
        series["pure-mpc-bits"].append(pure.stats.bits_sent)
    return series


def test_ablation_secsum_reduction(benchmark, report):
    series = benchmark.pedantic(run_secsum_ablation, rounds=1, iterations=1)
    report(
        "Ablation: generic-MPC workload, SecSumShare-reduced vs monolithic",
        format_series("parties", PARTY_COUNTS, series),
    )
    # AND-gate count: reduced stays ~flat and far below pure, whose
    # in-circuit Eq. 8 arithmetic dominates and still grows with m.
    assert max(series["e-ppi-and-gates"]) < 2 * min(series["e-ppi-and-gates"])
    assert series["pure-and-gates"][0] > 20 * series["e-ppi-and-gates"][0]
    assert series["pure-and-gates"][-1] > series["pure-and-gates"][0]
    # Communication bits: pure MPC explodes quadratically (m^2 broadcast).
    assert series["pure-mpc-bits"][-1] > 100 * series["e-ppi-mpc-bits"][-1]
