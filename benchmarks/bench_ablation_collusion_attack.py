"""Ablation: privacy degradation under index-side provider collusion.

Sweeps the coalition size and measures the attacker's residual primary-
attack confidence against non-colluding providers (the tech-report [21]
scenario).  The per-owner ǫ bound holds against the outside world as long
as enough false positives landed outside the coalition; large coalitions
erode it linearly, never catastrophically -- compare with construction-side
collusion, which is an all-or-nothing (c, c) threshold.
"""

import numpy as np

from repro.analysis.reporting import format_series
from repro.attacks.adversary import AdversaryKnowledge
from repro.attacks.collusion import colluding_primary_attack
from repro.core.mixing import mix_betas
from repro.core.policies import ChernoffPolicy
from repro.core.publication import publish_matrix
from repro.datasets.synthetic import exact_frequency_matrix

M = 400
N_IDS = 100
EPSILON = 0.7
COALITION_SIZES = [0, 10, 50, 100, 200]


def run_collusion_attack_ablation(seed: int = 0):
    rng = np.random.default_rng(seed)
    freqs = [int(f) for f in np.random.default_rng(seed + 1).integers(2, 20, N_IDS)]
    matrix = exact_frequency_matrix(M, freqs, rng)
    eps = np.full(N_IDS, EPSILON)
    sigmas = np.array([matrix.sigma(j) for j in range(N_IDS)])
    betas = ChernoffPolicy(0.9).beta_vector(sigmas, eps, M)
    mixing = mix_betas(betas, eps, rng, sigmas=sigmas)
    published = publish_matrix(matrix, mixing.betas, rng)
    knowledge = AdversaryKnowledge(published=published)

    owner_ids = np.arange(N_IDS)
    series = {"mean-confidence": [], "bound-1-minus-eps": []}
    for k in COALITION_SIZES:
        coalition = set(range(k))
        result = colluding_primary_attack(matrix, knowledge, coalition, owner_ids)
        series["mean-confidence"].append(result.mean_confidence)
        series["bound-1-minus-eps"].append(1 - EPSILON)
    return series


def test_ablation_collusion_attack(benchmark, report):
    series = benchmark.pedantic(run_collusion_attack_ablation, rounds=1, iterations=1)
    report(
        "Ablation: primary-attack confidence vs coalition size "
        f"(m={M}, eps={EPSILON})",
        format_series("coalition", COALITION_SIZES, series),
    )
    conf = series["mean-confidence"]
    # No collusion: bounded by 1 - eps (within sampling noise).
    assert conf[0] <= (1 - EPSILON) + 0.05
    # Degradation is gradual: half the network colluding still leaves the
    # attacker far from certainty against the rest.
    assert conf[-1] < 0.6
    assert all(a <= b + 0.03 for a, b in zip(conf, conf[1:]))
