"""Offline-pipeline benchmark: pipelined triple factory vs sequential baseline.

Runs the full secure β calculation (SecSumShare + CountBelow + selection,
batch engine) three ways over the same inputs and seed:

* **dealer** -- the trusted dealer reference (no offline phase);
* **sequential** -- dealerless offline phase run to completion *before*
  the online phase starts (factory pre-filled via ``join_producers``), the
  classic offline-then-online schedule;
* **pipelined** -- the factory streams triples concurrently with (and
  ahead of) the online phase, so offline cost hides behind online work.

Asserts the paper-level invariants:

* all three runs produce byte-identical β vectors and identical online
  bits/rounds accounting (triple provenance never leaks into results);
* pipelining amortizes the offline phase: >= 1.5x faster than sequential
  at 1000 identities (>= 1.3x in quick mode, where the run sizes down to
  512 identities -- set ``OFFLINE_BENCH_QUICK=1``, used by the CI smoke
  job).

Emits a machine-readable comparison to
``benchmarks/results/BENCH_offline.json``.
"""

import json
import os
import pathlib
import random
import statistics
import time

import numpy as np

from repro.analysis.cost_model import ConstructionCostModel
from repro.analysis.reporting import format_table
from repro.core.policies import BasicPolicy
from repro.mpc.betacalc import secure_beta_calculation
from repro.mpc.countbelow import COIN_BITS
from repro.mpc.offline.factory import TripleFactory

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

M = 64  # providers
C = 3  # coordinators / MPC parties
QUICK = os.environ.get("OFFLINE_BENCH_QUICK") == "1"
N_IDENTITIES = 512 if QUICK else 1000
MIN_SPEEDUP = 1.3 if QUICK else 1.5
PRODUCERS = 2
OFFLINE_SEED = 0x0FF1CE
ENGINE = "batch"


def _inputs(seed: int):
    rng = random.Random(seed + N_IDENTITIES)
    bits = [[rng.randint(0, 1) for _ in range(N_IDENTITIES)] for _ in range(M)]
    epsilons = [rng.random() for _ in range(N_IDENTITIES)]
    return bits, epsilons


def _run(bits, epsilons, seed, **kwargs):
    start = time.perf_counter()
    result = secure_beta_calculation(
        bits,
        epsilons,
        BasicPolicy(),
        c=C,
        rng=random.Random(seed),
        engine=ENGINE,
        **kwargs,
    )
    return result, time.perf_counter() - start


def run_comparison(seed: int = 0, trials: int = 3):
    bits, epsilons = _inputs(seed)

    # Reference: trusted dealer, no offline phase.  Its λ tells us the
    # selection stage's exact triple demand for the sequential prefill.
    dealer, dealer_t = _run(bits, epsilons, seed)

    model = ConstructionCostModel(M, N_IDENTITIES, C, producers=PRODUCERS)
    lambda_scaled = round(dealer.lambda_ * (1 << COIN_BITS))
    total_words = model.total_words(lambda_scaled, ENGINE)

    # Interleave the two measured schedules over ``trials`` repetitions and
    # compare medians, so a single scheduler hiccup in either schedule does
    # not swing the reported ratio.
    seq_times, pipe_times = [], []
    for _ in range(trials):
        # Sequential baseline: produce every triple first, then go online.
        seq_start = time.perf_counter()
        factory = TripleFactory(
            parties=C,
            seed=OFFLINE_SEED,
            target_words=total_words,
            producers=PRODUCERS,
            capacity_words=total_words,
        ).start()
        try:
            factory.join_producers()
            sequential, _ = _run(
                bits, epsilons, seed, triple_source="factory", factory=factory
            )
        finally:
            factory.close()
        seq_times.append(time.perf_counter() - seq_start)

        # Pipelined: the auto-managed factory starts producing immediately
        # and streams under the online phase (count quota up front,
        # selection quota topped up once λ is public).
        pipelined, pipe_t = _run(
            bits,
            epsilons,
            seed,
            triple_source="factory",
            offline_producers=PRODUCERS,
            offline_seed=OFFLINE_SEED,
        )
        pipe_times.append(pipe_t)

        # Triple provenance must never leak into results: byte-identical β
        # and identical online accounting across all three schedules.
        assert np.array_equal(dealer.betas, sequential.betas)
        assert np.array_equal(dealer.betas, pipelined.betas)
        assert (
            dealer.publish_as_one
            == sequential.publish_as_one
            == pipelined.publish_as_one
        )
        for a, b in ((dealer, sequential), (dealer, pipelined)):
            assert a.count_result.stats == b.count_result.stats
            assert a.selection_result.stats == b.selection_result.stats
        assert sequential.phases is not None and pipelined.phases is not None

    sequential_t = statistics.median(seq_times)
    pipelined_t = statistics.median(pipe_times)
    speedup = sequential_t / pipelined_t if pipelined_t > 0 else float("inf")
    rows = []
    for name, elapsed, result in (
        ("dealer", dealer_t, dealer),
        ("sequential", sequential_t, sequential),
        ("pipelined", pipelined_t, pipelined),
    ):
        row = {
            "schedule": name,
            "wall_s": elapsed,
            "identities": N_IDENTITIES,
            "providers": M,
            "parties": C,
        }
        if result.phases is not None:
            p = result.phases
            row.update(
                {
                    "offline_wall_s": p.offline.wall_time_s,
                    "offline_hidden_s": p.offline.hidden_time_s,
                    "online_wall_s": p.online.wall_time_s,
                    "setup_bytes": p.setup.bytes_sent,
                    "offline_bytes": p.offline.bytes_sent,
                    "online_bytes": p.online.bytes_sent,
                    "online_rounds": p.online.rounds,
                    "triple_words": p.triple_words_consumed,
                    "stall_s": p.stall_time_s,
                    "utilization": p.utilization,
                }
            )
        rows.append(row)
    summary = {
        "speedup_pipelined_vs_sequential": speedup,
        "triple_words_total": total_words,
        "offline_bits_model": model.offline(total_words).bits_sent,
        "setup_bits_model": model.setup().bits_sent,
        "online_bits_model": model.online(lambda_scaled).bits_sent,
    }
    return rows, summary


def test_offline_pipeline_speedup(benchmark, report):
    rows, summary = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    report(
        f"Pipelined offline factory vs sequential baseline "
        f"(m={M}, c={C}, n={N_IDENTITIES})",
        format_table(
            ["schedule", "wall_s", "offline_hidden_s", "online_wall_s", "utilization"],
            [
                [
                    r["schedule"],
                    f"{r['wall_s']:.3f}",
                    f"{r.get('offline_hidden_s', 0.0):.3f}",
                    f"{r.get('online_wall_s', 0.0):.3f}",
                    f"{r.get('utilization', 0.0):.3f}",
                ]
                for r in rows
            ],
        )
        + f"\nspeedup (sequential/pipelined): "
        f"{summary['speedup_pipelined_vs_sequential']:.2f}x",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "mpc_offline_pipeline",
        "quick_mode": QUICK,
        "providers": M,
        "parties": C,
        "identities": N_IDENTITIES,
        "producers": PRODUCERS,
        "engine": ENGINE,
        "min_speedup_required": MIN_SPEEDUP,
        "rows": rows,
        **summary,
    }
    (RESULTS_DIR / "BENCH_offline.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    speedup = summary["speedup_pipelined_vs_sequential"]
    assert speedup >= MIN_SPEEDUP, (
        f"pipelined factory only {speedup:.2f}x faster than the sequential "
        f"offline-then-online baseline at {N_IDENTITIES} identities "
        f"(need >= {MIN_SPEEDUP}x)"
    )
