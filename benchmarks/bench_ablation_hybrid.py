"""Ablation: MPC model choice for the secure sum + compare workload.

The paper's design (Sec. VI-B discussion) rests on the TASTY observation
that MPC models have module-specific sweet spots.  This bench measures the
three ways to realize "sum m private bits, compare against a threshold"
inside this codebase:

* **secsum+gmw** (the paper's choice): SecSumShare reduces the sum to c
  additive shares for free outside MPC; only a c-share in-circuit addition
  + comparison runs under GMW.
* **secsum+a2b+gmw** (explicit hybrid): same SecSumShare, then a
  masked-opening A2B conversion so the Boolean stage is a subtractor +
  comparison -- fewer AND gates, one extra opening round.
* **pure-gmw**: the whole popcount + comparison among all m parties --
  Boolean MPC on a sum-shaped workload, the known worst case.

Metric: AND gates (interactive crypto work) and communication bits of the
secure stage.
"""

import random

from repro.analysis.reporting import format_table
from repro.mpc.circuits import (
    CircuitBuilder,
    int_to_bits,
    less_than_const,
    popcount,
    ripple_add_mod2k,
)
from repro.mpc.conversion import A2BDealer, a2b_convert
from repro.mpc.field import Zq, default_modulus_for_sum
from repro.mpc.gmw import GMWProtocol
from repro.mpc.secsum import SecSumShare

M = 24
C = 3
THRESHOLD = 12


def _input_bits(seed: int) -> list[int]:
    rng = random.Random(seed)
    return [rng.randint(0, 1) for _ in range(M)]


def strategy_secsum_gmw(bits: list[int], seed: int) -> dict:
    ring = Zq(default_modulus_for_sum(M))
    w = (ring.q - 1).bit_length()
    rng = random.Random(seed)
    secsum = SecSumShare(M, C, ring, rng).run([[b] for b in bits])
    shares = [secsum.coordinator_shares[k][0] for k in range(C)]

    b = CircuitBuilder()
    share_bits = [b.input_bits(w) for _ in range(C)]
    total = share_bits[0]
    for s in share_bits[1:]:
        total = ripple_add_mod2k(b, total, s)
    b.output(b.not_(less_than_const(b, total, THRESHOLD)))
    circuit = b.build()
    inputs = [bit for s in shares for bit in int_to_bits(s, w)]
    run = GMWProtocol(circuit, C, rng).run(inputs)
    return {
        "result": run.outputs[0],
        "and_gates": run.stats.and_gates,
        "mpc_bits": run.stats.bits_sent,
        "parties": C,
    }


def strategy_secsum_a2b_gmw(bits: list[int], seed: int) -> dict:
    ring = Zq(default_modulus_for_sum(M))
    w = (ring.q - 1).bit_length()
    rng = random.Random(seed)
    secsum = SecSumShare(M, C, ring, rng).run([[b] for b in bits])
    shares = [secsum.coordinator_shares[k][0] for k in range(C)]

    dealer = A2BDealer(parties=C, ring=ring, rng=rng)
    conv = a2b_convert(shares, ring, dealer, rng)

    b = CircuitBuilder()
    value_bits = b.input_bits(w)
    b.output(b.not_(less_than_const(b, value_bits, THRESHOLD)))
    circuit = b.build()
    protocol = GMWProtocol(circuit, C, rng)
    run = protocol.run_shared(conv.bit_shares)
    return {
        "result": run.outputs[0],
        "and_gates": conv.stats.and_gates + run.stats.and_gates,
        "mpc_bits": conv.stats.bits_sent + run.stats.bits_sent,
        "parties": C,
    }


def strategy_pure_gmw(bits: list[int], seed: int) -> dict:
    rng = random.Random(seed)
    b = CircuitBuilder()
    ins = b.input_bits(M)
    freq = popcount(b, ins)
    b.output(b.not_(less_than_const(b, freq, THRESHOLD)))
    circuit = b.build()
    run = GMWProtocol(circuit, M, rng).run(bits)
    return {
        "result": run.outputs[0],
        "and_gates": run.stats.and_gates,
        "mpc_bits": run.stats.bits_sent,
        "parties": M,
    }


def run_hybrid_ablation(seed: int = 0):
    bits = _input_bits(seed)
    expected = 1 if sum(bits) >= THRESHOLD else 0
    rows = {}
    for name, fn in (
        ("secsum+gmw", strategy_secsum_gmw),
        ("secsum+a2b+gmw", strategy_secsum_a2b_gmw),
        ("pure-gmw", strategy_pure_gmw),
    ):
        out = fn(bits, seed + 1)
        assert out["result"] == expected, name
        rows[name] = out
    return rows


def test_ablation_hybrid_models(benchmark, report):
    rows = benchmark.pedantic(run_hybrid_ablation, rounds=1, iterations=1)
    report(
        f"Ablation: MPC model for sum-{M}-bits + compare (threshold {THRESHOLD})",
        format_table(
            ["strategy", "parties-in-mpc", "and-gates", "mpc-bits"],
            [
                [name, row["parties"], row["and_gates"], row["mpc_bits"]]
                for name, row in rows.items()
            ],
        ),
    )
    # The paper's choice beats pure Boolean MPC decisively...
    assert rows["secsum+gmw"]["and_gates"] < rows["pure-gmw"]["and_gates"]
    assert rows["secsum+gmw"]["mpc_bits"] < rows["pure-gmw"]["mpc_bits"]
    # ...and the explicit A2B hybrid shaves the in-circuit addition further.
    assert rows["secsum+a2b+gmw"]["and_gates"] < rows["secsum+gmw"]["and_gates"]
