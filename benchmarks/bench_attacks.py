"""Privacy degradation under longitudinal attack, over real sockets.

The red-team lab's headline claim, turned into a CI-gated benchmark: an
adversary who records a live fleet's responses across republication epochs
and intersects them must gain **nothing** against sticky-coin publication,
while the naive fresh-coin baseline degrades monotonically as its β^k
noise dies off.  Every number here comes from real campaigns -- each
(churn, mode) cell publishes its epochs as v3 snapshots, boots a
:class:`FleetSupervisor`, rolls it epoch to epoch, and harvests the
adversary's observations over TCP.

Asserted, per churn level (0.1% / 1% / 10% of owners moving per epoch):

1. **Sticky is flat**: stable-owner intersection success drifts by at
   most ``MAX_STICKY_DELTA`` across >= 5 observed epochs, and the
   epoch-diff attacker finds zero false-churn owners -- every bit it
   reads is churn the owner actually made.
2. **Naive degrades**: the same curve climbs monotonically and ends at
   least ``MIN_NAIVE_DEGRADATION`` above where it started.
3. **Sticky never loses**: its final success stays at or below naive's.
4. **Tiers order**: the relaxed-ε tier ends above the strict-ε tier in
   final attack success -- the personalized-privacy contract, measured.

Emits ``benchmarks/results/BENCH_attacks.json``.  Quick mode for the CI
smoke job: ``ATTACKS_BENCH_QUICK=1`` shrinks owners and cover load but
still runs every (churn, mode) campaign against a live fleet for 5 epochs.
"""

import json
import os
import pathlib

from repro.analysis.reporting import format_table
from repro.redteam import Scenario, run_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("ATTACKS_BENCH_QUICK") == "1"

PROVIDERS = 24
OWNERS = 48 if QUICK else 150
EPOCHS = 5 if QUICK else 7
CHURN_LEVELS = [0.001, 0.01, 0.1]
WORKERS = 2
REQUESTS = 5 if QUICK else 20

MAX_STICKY_DELTA = 0.02  # stable-owner drift budget across the campaign
MIN_NAIVE_DEGRADATION = 0.10  # fresh coins must leak at least this much
MONOTONE_TOLERANCE = 1e-6


def _campaign(churn: float, sticky: bool, workdir: pathlib.Path) -> dict:
    scenario = Scenario(
        n_providers=PROVIDERS,
        n_owners=OWNERS,
        epochs=EPOCHS,
        churn=churn,
        sticky=sticky,
        seed=7,
        workers=WORKERS,
        requests_per_worker=REQUESTS,
        linkage_targets=0,  # linkage is orthogonal to the churn sweep
    )
    outcome = run_scenario(scenario, str(workdir))
    report = outcome.report
    return {
        "epochs_observed": len(report.epochs),
        "stable_curve": [
            round(row["stable_confidence"], 6)
            for row in report.degradation_curve
        ],
        "degradation": round(report.degradation_delta, 6),
        "final_confidence": round(report.final_confidence, 6),
        "per_tier_success": {
            tier: round(v, 6) for tier, v in report.per_tier_success.items()
        },
        "diff_precision": round(report.diff["precision"], 6),
        "false_churn_owners": len(report.diff["false_churn_owners"]),
        "anonymity_mean": report.anonymity_sets.get("mean", 0.0),
        "observations": report.n_observations,
    }


def test_longitudinal_degradation(benchmark, report, tmp_path):
    def run():
        rows = []
        for churn in CHURN_LEVELS:
            cell = {"churn": churn}
            for mode, sticky in (("sticky", True), ("naive", False)):
                workdir = tmp_path / f"{mode}_{churn:g}"
                workdir.mkdir()
                cell[mode] = _campaign(churn, sticky, workdir)
            rows.append(cell)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    report(
        f"Longitudinal intersection attack vs republication policy, "
        f"{EPOCHS} epochs over a live fleet{' (quick)' if QUICK else ''}",
        format_table(
            ["churn", "mode", "stable start", "stable end", "degradation",
             "diff precision", "false churn"],
            [
                [
                    f"{row['churn']:.1%}",
                    mode,
                    row[mode]["stable_curve"][0],
                    row[mode]["stable_curve"][-1],
                    row[mode]["degradation"],
                    row[mode]["diff_precision"],
                    row[mode]["false_churn_owners"],
                ]
                for row in rows
                for mode in ("sticky", "naive")
            ],
        ),
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "redteam_attacks",
        "quick_mode": QUICK,
        "providers": PROVIDERS,
        "owners": OWNERS,
        "epochs": EPOCHS,
        "churn_levels": CHURN_LEVELS,
        "max_sticky_delta": MAX_STICKY_DELTA,
        "min_naive_degradation": MIN_NAIVE_DEGRADATION,
        "rows": rows,
    }
    (RESULTS_DIR / "BENCH_attacks.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    for row in rows:
        churn = row["churn"]
        sticky, naive = row["sticky"], row["naive"]
        assert sticky["epochs_observed"] >= 5
        assert naive["epochs_observed"] >= 5

        # 1. Sticky republication is intersection-closed: the stable-owner
        #    curve is flat and the diff attacker never sees phantom churn.
        assert abs(sticky["degradation"]) <= MAX_STICKY_DELTA, (
            f"sticky drifted {sticky['degradation']:+.3f} at {churn:.1%} "
            f"churn (budget {MAX_STICKY_DELTA})"
        )
        assert sticky["false_churn_owners"] == 0, (
            f"sticky leaked {sticky['false_churn_owners']} false-churn "
            f"owners at {churn:.1%}"
        )
        assert sticky["diff_precision"] == 1.0

        # 2. Fresh coins leak: monotone climb, material total degradation.
        curve = naive["stable_curve"]
        for earlier, later in zip(curve, curve[1:]):
            assert later >= earlier - MONOTONE_TOLERANCE, (
                f"naive curve not monotone at {churn:.1%}: {curve}"
            )
        assert naive["degradation"] >= MIN_NAIVE_DEGRADATION, (
            f"naive degraded only {naive['degradation']:+.3f} at "
            f"{churn:.1%} (floor {MIN_NAIVE_DEGRADATION})"
        )

        # 3. Sticky never ends worse than naive.
        assert curve[-1] >= sticky["stable_curve"][-1]

        # 4. Personalized privacy orders the tiers under sticky coins:
        #    more decoys (strict ε) means lower final attack success than
        #    fewer (relaxed ε).  Naive is exempt -- its tiers all converge
        #    to ~1.0 once the noise is stripped, which is the very failure
        #    assertion 2 measures.
        tiers = sticky["per_tier_success"]
        assert tiers["strict"] <= tiers["relaxed"], tiers
