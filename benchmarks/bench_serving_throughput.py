"""Serving throughput: the real asyncio runtime vs the simulator's prediction.

Hosts a constructed index behind actual TCP sockets (`repro.serving`) and
drives the paper's two-phase search with the closed-loop load generator,
then replays the *same* per-worker query lists on the discrete-event
simulator (`run_concurrent_searchers`).  The simulator charges modelled
LAN latency + CPU cost in virtual time; the serving runtime pays real
syscalls, real JSON, real scheduling -- the gap between the two columns is
the fidelity gap every scaling PR works against.

Also exercises the server's `stats` verb end to end: the benchmark asserts
the fleet's counters agree with the load generator's request tally.
"""

import asyncio
import json
import os
import pathlib
import threading

import numpy as np

from repro.analysis.reporting import format_series, format_table
from repro.core.authsearch import AccessControl
from repro.core.construction import construct_epsilon_ppi
from repro.core.model import InformationNetwork
from repro.core.policies import ChernoffPolicy
from repro.serving import (
    FleetSupervisor,
    LocatorClient,
    PPIServer,
    ProviderEndpoint,
    RetryPolicy,
    run_load_multiprocess,
    run_load_sync,
    save_snapshot,
    sync_request,
)
from repro.service import run_concurrent_searchers

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

M = 12
N_IDS = 60
QUERIES_PER_WORKER = 25
WORKER_COUNTS = [1, 4, 16]
FLEET_SIZES = [1, 2, 4]
FLEET_QUERIES_PER_WORKER = 150

# -- wire-protocol sweep knobs (v1 JSON vs v2 binary frames) ------------------
WIRE_QUICK = os.environ.get("WIRE_BENCH_QUICK") == "1"
WIRE_PROCS = 2  # generator processes
WIRE_WORKERS = 4  # closed-loop workers per generator
WIRE_BATCH_SIZE = 128
WIRE_REQUESTS = (
    {"query": 150, "batch": 40} if WIRE_QUICK else {"query": 600, "batch": 150}
)
#: v2 must beat v1 by this factor in batch mode at equal core count.  The
#: full run demands the ISSUE's 2x; quick mode (CI smoke, shared runners)
#: keeps a 1.5x floor so scheduler noise cannot flake the build.
WIRE_MIN_SPEEDUP = 1.5 if WIRE_QUICK else 2.0
#: accept processes sharing the shard's port (SO_REUSEPORT) in the
#: per-core leg of the sweep.
WIRE_ACCEPT_PROCS = 2


def build():
    rng = np.random.default_rng(0)
    net = InformationNetwork(M)
    for j in range(N_IDS):
        owner = net.register_owner(f"o{j}", float(rng.uniform(0.2, 0.7)))
        for pid in rng.choice(M, size=int(rng.integers(1, 5)), replace=False):
            net.delegate(owner, int(pid), payload=f"r{j}@{pid}")
    index = construct_epsilon_ppi(net, ChernoffPolicy(0.9), rng).index
    return net, index


def worker_queries(k: int, rng) -> list[list[int]]:
    return [
        [int(q) for q in rng.integers(0, N_IDS, size=QUERIES_PER_WORKER)]
        for _ in range(k)
    ]


def run_serving_throughput(seed: int = 0):
    net, index = build()
    ready = threading.Event()
    done = threading.Event()
    state = {}

    def host():
        async def serve():
            server = await PPIServer(index).start()
            providers = {
                pid: await ProviderEndpoint(
                    net.providers[pid], AccessControl(trusted={"searcher"})
                ).start()
                for pid in range(M)
            }
            state["server"] = server.address
            state["providers"] = {p: ep.address for p, ep in providers.items()}
            ready.set()
            while not done.is_set():
                await asyncio.sleep(0.01)
            for node in [server, *providers.values()]:
                await node.stop()

        asyncio.run(serve())

    thread = threading.Thread(target=host, daemon=True)
    thread.start()
    assert ready.wait(timeout=30.0)

    series = {
        "real-qps": [],
        "real-p50-ms": [],
        "real-p99-ms": [],
        "sim-qps": [],
        "sim-mean-ms": [],
    }
    total_requests = 0
    try:
        rng = np.random.default_rng(seed)
        for k in WORKER_COUNTS:
            queries = worker_queries(k, rng)
            flat = [q for qs in queries for q in qs]

            report = run_load_sync(
                lambda: LocatorClient(
                    servers=[state["server"]],
                    providers=state["providers"],
                    retry=RetryPolicy(max_retries=1, timeout_s=2.0),
                    cache_size=0,  # keep server counters 1:1 with requests
                ),
                flat,
                n_workers=k,
                requests_per_worker=QUERIES_PER_WORKER,
                mode="search",
                report_stats_from=state["server"],
            )
            assert report.errors == 0, report.format()
            total_requests += report.total
            # `stats` verb consistency: the fleet counted what we sent.
            served = report.server_stats["counters"]["queries_served"]
            assert served == total_requests, (served, total_requests)

            pct = report.latency_percentiles_ms()
            series["real-qps"].append(report.qps)
            series["real-p50-ms"].append(pct["p50"])
            series["real-p99-ms"].append(pct["p99"])

            sim = run_concurrent_searchers(net, index, queries)
            series["sim-qps"].append(sim.throughput_qps)
            series["sim-mean-ms"].append(sim.mean_latency_s * 1e3)
    finally:
        done.set()
        thread.join(timeout=30.0)
    return series


def test_serving_throughput(benchmark, report):
    series = benchmark.pedantic(run_serving_throughput, rounds=1, iterations=1)
    report(
        f"Serving throughput: real sockets vs simulator "
        f"(m={M}, {QUERIES_PER_WORKER} queries/worker)",
        format_series("workers", WORKER_COUNTS, series),
    )
    # The load generator produced a live percentile report...
    assert all(q > 0 for q in series["real-qps"])
    assert all(
        p50 <= p99
        for p50, p99 in zip(series["real-p50-ms"], series["real-p99-ms"])
    )
    # ...and the simulator's prediction exists for every point.  The
    # simulator sees concurrency buy throughput (searchers overlap their
    # think time against modelled latency); the real runtime is a single
    # event loop hosting client, server and all providers, so one
    # closed-loop worker already saturates it -- added workers must queue
    # (visible as latency) without collapsing throughput.  That asymmetry
    # is exactly what this benchmark exists to expose.
    assert series["sim-qps"][-1] > series["sim-qps"][0]
    assert series["real-qps"][-1] > 0.25 * series["real-qps"][0]
    assert series["real-p50-ms"][-1] > series["real-p50-ms"][0]


# -- process-per-shard fleet scaling ------------------------------------------


def run_fleet_scaling(tmp_dir: str):
    """QPS as the fleet grows: n shard processes driven by n generator
    processes, so neither side of the socket is pinned to one core.

    The snapshot is written in format v2 (the default), so every shard
    process mmap-boots the CSR postings engine instead of unpacking the
    dense matrix -- the workload below therefore exercises the production
    read path end to end."""
    _, index = build()
    snapshot = os.path.join(tmp_dir, "bench_index.npz")
    save_snapshot(index, snapshot)

    series = {"fleet-qps": [], "fleet-p50-ms": [], "fleet-p99-ms": []}
    for n in FLEET_SIZES:
        with FleetSupervisor(snapshot, n_shards=n) as fleet:
            fleet.start(monitor=True)
            info = sync_request(fleet.addresses[0], "info")
            assert info["index_engine"] == "PostingsIndex", info
            report = run_load_multiprocess(
                servers=fleet.addresses,
                owner_ids=list(range(N_IDS)),
                n_procs=n,
                n_workers=4,
                requests_per_worker=FLEET_QUERIES_PER_WORKER,
                mode="query",
                retry=RetryPolicy(max_retries=2, timeout_s=2.0),
                cache_size=0,  # keep worker counters 1:1 with requests
            )
            assert report.errors == 0, report.format()
            assert report.total == n * 4 * FLEET_QUERIES_PER_WORKER
            stats = fleet.fleet_stats()
            # The fleet's merged counters agree with the generator's tally.
            served = stats["aggregate_counters"]["queries_served"]
            assert served == report.total, (served, report.total)
            assert stats["supervisor"]["counters"].get("restarts_total", 0) == 0
        pct = report.latency_percentiles_ms()
        series["fleet-qps"].append(report.qps)
        series["fleet-p50-ms"].append(pct["p50"])
        series["fleet-p99-ms"].append(pct["p99"])
    return series


def test_fleet_scaling(benchmark, report, tmp_path):
    series = benchmark.pedantic(
        run_fleet_scaling, args=(str(tmp_path),), rounds=1, iterations=1
    )
    usable_cores = len(os.sched_getaffinity(0))
    report(
        f"Fleet scaling: process-per-shard servers vs single process "
        f"(m={M}, {FLEET_QUERIES_PER_WORKER} queries/worker, "
        f"{usable_cores} usable cores)",
        format_series("shards", FLEET_SIZES, series),
    )
    assert all(q > 0 for q in series["fleet-qps"])
    # Shards are embarrassingly parallel, so 4 worker processes should at
    # least double single-process QPS -- but only where the hardware can
    # express it.  On a 1-2 core box every process multiplexes the same
    # CPU and the sweep degenerates to a context-switch tax measurement,
    # so the scaling assertion is gated on genuinely available cores.
    if usable_cores >= 4:
        assert series["fleet-qps"][-1] >= 2.0 * series["fleet-qps"][0], series


# -- wire protocol: v1 JSON vs v2 binary frames -------------------------------


def run_wire_sweep(tmp_dir: str) -> dict:
    """v1-vs-v2 socket QPS at equal core count, plus the interop matrix.

    One 1-shard server process (sniffing both protocols on one listener),
    ``WIRE_PROCS`` generator processes -- the only variable across legs is
    the client's wire protocol, so the QPS ratio isolates encoding cost.
    ``query`` mode is one owner per round trip (syscall-bound; v2 saves
    the JSON but keeps the RTT), ``batch`` mode is ``WIRE_BATCH_SIZE``
    owners per round trip (encoding-bound; v2's scatter-gathered slab
    segments replace per-request JSON rendering, which is where the 2x
    headline comes from).
    """
    _, index = build()
    snapshot = os.path.join(tmp_dir, "wire_index.npz")
    save_snapshot(index, snapshot)
    cores_used = 1 + WIRE_PROCS  # 1 shard process + the generators
    legs: dict = {}
    with FleetSupervisor(snapshot, n_shards=1) as fleet:
        fleet.start(monitor=True)
        # Interop: the same listener answers both framings correctly.
        for proto in ("v1", "v2"):
            response = sync_request(
                fleet.addresses[0], "query", protocol=proto, owner=1
            )
            assert response["providers"] == index.query(1), (proto, response)
        for mode in ("query", "batch"):
            per_round = WIRE_BATCH_SIZE if mode == "batch" else 1
            for proto in ("v1", "v2"):
                report = run_load_multiprocess(
                    servers=fleet.addresses,
                    owner_ids=list(range(N_IDS)),
                    n_procs=WIRE_PROCS,
                    n_workers=WIRE_WORKERS,
                    requests_per_worker=WIRE_REQUESTS[mode],
                    mode=mode,
                    batch_size=WIRE_BATCH_SIZE,
                    protocol=proto,
                    retry=RetryPolicy(max_retries=2, timeout_s=5.0),
                    cache_size=0,
                )
                assert report.errors == 0, report.format()
                expected = WIRE_PROCS * WIRE_WORKERS * WIRE_REQUESTS[mode] * per_round
                assert report.total == expected, (report.total, expected)
                pct = report.latency_percentiles_ms()
                legs[(mode, proto)] = {
                    "qps": report.qps,
                    "qps_per_core": report.qps / cores_used,
                    "p50_ms": pct["p50"],
                    "p99_ms": pct["p99"],
                    "total": report.total,
                    "errors": report.errors,
                }
        fleet_protocols = fleet.fleet_stats()["protocols"]
    # Per-core accept leg: the same v2 batch workload against one shard
    # whose port is shared by WIRE_ACCEPT_PROCS processes (SO_REUSEPORT),
    # so the kernel spreads connections across event loops.  Extra server
    # cores are counted, making the qps_per_core row an honest comparison
    # against the single-listener legs.
    reuse_cores = WIRE_ACCEPT_PROCS + WIRE_PROCS
    with FleetSupervisor(
        snapshot, n_shards=1, accept_procs=WIRE_ACCEPT_PROCS
    ) as fleet:
        fleet.start(monitor=True)
        report = run_load_multiprocess(
            servers=fleet.addresses,
            owner_ids=list(range(N_IDS)),
            n_procs=WIRE_PROCS,
            n_workers=WIRE_WORKERS,
            requests_per_worker=WIRE_REQUESTS["batch"],
            mode="batch",
            batch_size=WIRE_BATCH_SIZE,
            protocol="v2",
            retry=RetryPolicy(max_retries=2, timeout_s=5.0),
            cache_size=0,
        )
        assert report.errors == 0, report.format()
        pct = report.latency_percentiles_ms()
        legs[("batch", "v2+reuseport")] = {
            "qps": report.qps,
            "qps_per_core": report.qps / reuse_cores,
            "p50_ms": pct["p50"],
            "p99_ms": pct["p99"],
            "total": report.total,
            "errors": report.errors,
        }
    return {
        "legs": legs,
        "cores_used": cores_used,
        "reuseport_cores_used": reuse_cores,
        "protocols": fleet_protocols,
    }


def test_wire_protocol_sweep(benchmark, report, tmp_path):
    results = benchmark.pedantic(
        run_wire_sweep, args=(str(tmp_path),), rounds=1, iterations=1
    )
    legs, cores_used = results["legs"], results["cores_used"]
    speedups = {
        mode: legs[(mode, "v2")]["qps"] / legs[(mode, "v1")]["qps"]
        for mode in ("query", "batch")
    }
    report(
        f"Wire protocol: v2 binary frames vs v1 JSON "
        f"(batch={WIRE_BATCH_SIZE}, {cores_used} cores"
        f"{', quick' if WIRE_QUICK else ''})",
        format_table(
            ["mode", "protocol", "qps", "qps/core", "p50-ms", "p99-ms"],
            [
                [
                    mode,
                    proto,
                    legs[(mode, proto)]["qps"],
                    legs[(mode, proto)]["qps_per_core"],
                    legs[(mode, proto)]["p50_ms"],
                    legs[(mode, proto)]["p99_ms"],
                ]
                for mode, proto in [
                    ("query", "v1"),
                    ("query", "v2"),
                    ("batch", "v1"),
                    ("batch", "v2"),
                    ("batch", "v2+reuseport"),
                ]
            ],
        )
        + f"\nspeedup: query {speedups['query']:.2f}x, "
        f"batch {speedups['batch']:.2f}x (floor {WIRE_MIN_SPEEDUP}x)",
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "wire_protocol",
        "quick_mode": WIRE_QUICK,
        "batch_size": WIRE_BATCH_SIZE,
        "n_procs": WIRE_PROCS,
        "n_workers": WIRE_WORKERS,
        "requests_per_worker": WIRE_REQUESTS,
        "cores_used": cores_used,
        "server_protocols": results["protocols"],
        "modes": {
            mode: {
                "v1": legs[(mode, "v1")],
                "v2": legs[(mode, "v2")],
                "speedup": speedups[mode],
            }
            for mode in ("query", "batch")
        },
        "reuseport": {
            "accept_procs": WIRE_ACCEPT_PROCS,
            "cores_used": results["reuseport_cores_used"],
            "batch_v2": legs[("batch", "v2+reuseport")],
        },
        "min_speedup_required": WIRE_MIN_SPEEDUP,
        "headline_speedup": speedups["batch"],
    }
    (RESULTS_DIR / "BENCH_wire.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # The dual-protocol listener advertised both framings...
    assert results["protocols"] == [1, 2]
    # ...every leg completed losslessly...
    for leg in legs.values():
        assert leg["errors"] == 0 and leg["qps"] > 0
    # ...and dropping JSON from the hot path pays where encoding dominates.
    assert speedups["batch"] >= WIRE_MIN_SPEEDUP, (
        f"v2 batch speedup {speedups['batch']:.2f}x "
        f"under the {WIRE_MIN_SPEEDUP}x floor"
    )
