"""Geo-replication: delta-streamed catch-up vs full snapshot shipping.

The replication plane's bargain: after a one-time base seed, a follower
refreshes at the cost of the *delta*, not the corpus.  Three claims are
measured and asserted:

1. **Bytes-on-wire track churn, not corpus size**: across a churn sweep
   (0.1%, 1%, 10% of owners touched per epoch) the follower's catch-up
   traffic is compared against shipping the leader's compacted snapshot
   whole.  At <= 1% churn the reduction must be >= 10x (hard floor).
2. **Catch-up converges byte-identically**: each sweep leg folds the
   streamed segments on the follower and requires the resulting snapshot
   to equal the leader's byte for byte -- the bench reasserts the
   property-test invariant on realistic sizes, and prices both strategies
   on the ``repro.net`` WAN profile.
3. **Zero stale reads across a leader rollout**: a replica-set client
   (leader + follower) keeps querying while the leader hot-swaps to a new
   epoch; once the client has seen the new epoch, every answer must carry
   the new rows -- the still-catching-up follower is skipped, never
   believed.

Emits ``benchmarks/results/BENCH_replication.json``.  Quick mode for the
CI smoke job: ``REPLICATION_BENCH_QUICK=1`` shrinks the corpus but still
sweeps all three churn levels and rolls a live replica set.
"""

import asyncio
import json
import math
import os
import pathlib
import shutil
import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.postings import PostingsIndex
from repro.replication import ReplicaApplier, ReplicaServer, ReplicationCostModel, SegmentStreamer
from repro.serving.client import LocatorClient, RetryPolicy
from repro.serving.server import PPIServer, ShardSpec
from repro.serving.snapshot import load_postings, save_snapshot
from repro.updates import DeltaLog, compact_snapshot, seal_segment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("REPLICATION_BENCH_QUICK") == "1"
PROVIDERS = 64
DENSITY = 0.05
NOISE_KEY = b"\xcd" * 16

OWNERS = 2_000 if QUICK else 20_000
CHURN_LEVELS = [0.001, 0.01, 0.10]
MIN_BYTES_RATIO_AT_1PCT = 10.0  # delta stream vs snapshot ship, hard floor

ROLLOUT_SAMPLE = 200  # owners queried per sweep in the rollout leg
RETRY = RetryPolicy(max_retries=2, timeout_s=5.0, base_delay_s=0.01)


def _published(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((PROVIDERS, OWNERS)) < DENSITY).astype(np.uint8)


def _seal_churn(workdir: pathlib.Path, churn: float, seed: int) -> tuple:
    """One sealed segment touching ``churn * OWNERS`` owners."""
    rng = np.random.default_rng(seed)
    touched = max(1, int(round(churn * OWNERS)))
    owners = rng.choice(OWNERS, size=touched, replace=False)
    log_path = workdir / "churn.log"
    with DeltaLog.create(str(log_path), PROVIDERS, noise_key=NOISE_KEY) as log:
        for owner in owners:
            providers = sorted(
                int(p) for p in rng.choice(PROVIDERS, size=3, replace=False)
            )
            log.upsert(int(owner), providers, beta=0.25)
        seg_path = workdir / "000001.seg.npz"
        seal_segment(log, str(seg_path), base_epoch=0)
    os.unlink(log_path)
    return str(seg_path), touched


# -- 1 + 2. churn sweep: bytes on wire, catch-up, byte identity ---------------


def run_churn_leg(workdir: pathlib.Path, churn: float, seed: int) -> dict:
    workdir.mkdir()
    leader = str(workdir / "leader.npz")
    follower = str(workdir / "follower.npz")
    save_snapshot(
        PostingsIndex.from_dense(_published(seed)), leader,
        format_version=3, epoch=0,
    )
    shutil.copyfile(leader, follower)  # the one-time seed transfer
    seg_path, touched = _seal_churn(workdir, churn, seed + 1)

    async def body() -> dict:
        streamer = SegmentStreamer(leader, str(workdir))
        await streamer.start()
        streamer.refresh()  # archive before the leader's compactor runs
        compact_snapshot(leader, [seg_path])  # leader -> epoch 1
        os.unlink(seg_path)
        snapshot_bytes = os.path.getsize(leader)

        cost = ReplicationCostModel()  # WAN profile
        applier = ReplicaApplier(
            streamer.address, follower,
            segment_dir=str(workdir / "follower-segs"),
            compact_threshold=1, retry=RETRY, cost_model=cost,
        )
        try:
            started = time.perf_counter()
            stats = await applier.sync_once()
            catch_up_s = time.perf_counter() - started
            assert stats["epochs_behind"] == 0
            assert applier.epoch == 1
            with open(leader, "rb") as f:
                leader_bytes = f.read()
            with open(follower, "rb") as f:
                follower_bytes = f.read()
            assert follower_bytes == leader_bytes, (
                f"follower snapshot diverged at churn {churn}"
            )
            delta_bytes = applier.bytes_fetched
            ship_chunks = max(1, math.ceil(snapshot_bytes / streamer.chunk_bytes))
            wan_snapshot_s = cost.transfer(
                snapshot_bytes, n_transfers=ship_chunks
            ).seconds
            return {
                "churn": churn,
                "touched": touched,
                "delta_bytes": delta_bytes,
                "snapshot_bytes": snapshot_bytes,
                "bytes_ratio": snapshot_bytes / delta_bytes,
                "catch_up_s": catch_up_s,
                "wan_delta_s": applier.wan_seconds,
                "wan_snapshot_s": wan_snapshot_s,
                "wan_speedup": wan_snapshot_s / applier.wan_seconds,
            }
        finally:
            await applier.close()
            await streamer.stop()

    return asyncio.run(body())


# -- 3. zero stale reads across a leader rollout ------------------------------


def run_rollout_leg(workdir: pathlib.Path, seed: int = 97) -> dict:
    workdir.mkdir()
    leader_path = str(workdir / "leader.npz")
    follower_path = str(workdir / "follower.npz")
    save_snapshot(
        PostingsIndex.from_dense(_published(seed)), leader_path,
        format_version=3, epoch=0,
    )
    shutil.copyfile(leader_path, follower_path)
    sample = list(range(0, OWNERS, max(1, OWNERS // ROLLOUT_SAMPLE)))

    async def body() -> dict:
        leader = PPIServer(
            load_postings(leader_path, mmap=True), ShardSpec(),
            snapshot_path=leader_path, epoch=0,
        )
        await leader.start()
        streamer = SegmentStreamer(leader_path, str(workdir))
        await streamer.start()
        applier = ReplicaApplier(
            streamer.address, follower_path,
            segment_dir=str(workdir / "follower-segs"),
            compact_threshold=1, retry=RETRY,
        )
        follower = ReplicaServer(applier, ShardSpec())
        await follower.start()
        client = LocatorClient(
            servers=[[leader.address, follower.address]],
            retry=RETRY, cache_size=0,
        )
        reads = stale = 0
        try:
            await applier.sync_once()  # follower serving at epoch 0
            base = {o: await client.query(o) for o in sample}
            reads += len(sample)

            # Leader rollout: seal a churn segment, compact, hot-swap.
            seg_path, _ = _seal_churn(workdir, 0.01, seed + 1)
            streamer.refresh()
            compact_snapshot(leader_path, [seg_path])
            os.unlink(seg_path)
            leader.swap_index(
                load_postings(leader_path, mmap=True), 1,
                snapshot_path=leader_path,
            )
            merged = load_postings(leader_path)
            fresh = {o: merged.query(o) for o in sample}
            assert fresh != base

            # Sweep while the follower still lags: once the client has
            # seen epoch 1, a pre-rollout answer is a stale read.
            for owner in sample:
                answer = await client.query(owner)
                reads += 1
                if client.fleet_epoch >= 1 and answer != fresh[owner]:
                    stale += 1
            assert client.fleet_epoch == 1

            # Follower catches up; the client readmits it and the whole
            # set answers the new epoch.
            catch_started = time.perf_counter()
            stats = await applier.sync_once()
            follower_lag_s = time.perf_counter() - catch_started
            assert stats["epoch"] == 1
            await client.refresh_routing()
            for owner in sample:
                answer = await client.query(owner)
                reads += 1
                if answer != fresh[owner]:
                    stale += 1
            return {
                "sampled_owners": len(sample),
                "reads": reads,
                "stale_reads": stale,
                "stale_replica_skips": client.stale_replica_skips,
                "follower_catch_up_s": follower_lag_s,
            }
        finally:
            await client.close()
            await follower.stop()
            await applier.close()
            await streamer.stop()
            await leader.stop()

    return asyncio.run(body())


# -- the test ------------------------------------------------------------------


def test_replication_catch_up(benchmark, report, tmp_path):
    def run():
        rows = [
            run_churn_leg(tmp_path / f"churn_{i}", churn, seed=41 + i)
            for i, churn in enumerate(CHURN_LEVELS)
        ]
        return {"rows": rows, "rollout": run_rollout_leg(tmp_path / "rollout")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows, rollout = results["rows"], results["rollout"]
    at_1pct = next(r for r in rows if r["churn"] == 0.01)

    report(
        f"Geo-replication: delta streaming vs snapshot shipping over "
        f"{OWNERS} owners{' (quick)' if QUICK else ''}",
        format_table(
            ["churn", "touched", "delta-bytes", "snapshot-bytes",
             "bytes-ratio", "catch-up-s", "wan-speedup"],
            [
                [r["churn"], r["touched"], r["delta_bytes"],
                 r["snapshot_bytes"], round(r["bytes_ratio"], 1),
                 round(r["catch_up_s"], 4), round(r["wan_speedup"], 1)]
                for r in rows
            ],
        )
        + "\n"
        + format_table(
            ["rollout-metric", "value"],
            [
                ["reads", rollout["reads"]],
                ["stale-reads", rollout["stale_reads"]],
                ["stale-replica-skips", rollout["stale_replica_skips"]],
                ["follower-catch-up-s",
                 round(rollout["follower_catch_up_s"], 4)],
            ],
        ),
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "replication_catch_up",
        "quick_mode": QUICK,
        "owners": OWNERS,
        "providers": PROVIDERS,
        "churn_levels": CHURN_LEVELS,
        "min_bytes_ratio_at_1pct": MIN_BYTES_RATIO_AT_1PCT,
        "bytes_ratio_at_1pct": at_1pct["bytes_ratio"],
        "rows": rows,
        "rollout": rollout,
    }
    (RESULTS_DIR / "BENCH_replication.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # 1. Bytes on wire track churn: >= 10x cheaper than snapshot shipping
    #    at <= 1% churn, and monotonically cheaper at lower churn.
    for row in rows:
        if row["churn"] <= 0.01:
            assert row["bytes_ratio"] >= MIN_BYTES_RATIO_AT_1PCT, (
                f"churn {row['churn']}: only {row['bytes_ratio']:.1f}x "
                f"(floor {MIN_BYTES_RATIO_AT_1PCT}x)"
            )
    assert rows[0]["bytes_ratio"] > rows[-1]["bytes_ratio"]

    # 2. The WAN model agrees: streaming wins wherever churn is small.
    assert at_1pct["wan_speedup"] > 1.0

    # 3. Zero stale reads across the rollout.
    assert rollout["stale_reads"] == 0, rollout
    assert rollout["reads"] >= 3 * rollout["sampled_owners"]
