"""Shared schema + floor checks for ``benchmarks/results/BENCH_*.json``.

Every CI smoke job runs its benchmark in quick mode and then validates the
JSON artifact it wrote.  The checks used to live as per-job heredocs in
``.github/workflows/ci.yml``, where they drifted from the benchmarks that
produce the files; this module is the single home for all of them::

    python benchmarks/validate_bench_json.py mpc
    python benchmarks/validate_bench_json.py wire incremental
    python benchmarks/validate_bench_json.py --all   # every file present

Each validator takes the decoded JSON and returns a one-line summary
(printed on success); any failed ``assert`` makes the process exit
non-zero, failing the job.  Floors (minimum speedups, pause ratios) are
read out of the artifact itself -- the benchmark that wrote the file
decided quick-mode vs full-mode floors, the validator only holds it to
its own claim.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def validate_mpc(data: dict) -> str:
    assert data["benchmark"] == "mpc_batch_construction"
    assert data["rows"], "empty benchmark trajectory"
    for row in data["rows"]:
        assert row["rounds_per_identity"] > 0
        assert row["bits_per_identity"] > 0
    assert data["rows"][-1]["speedup"] >= data["min_speedup_required"]
    return f"speedups {[round(r['speedup'], 2) for r in data['rows']]}"


def validate_index(data: dict) -> str:
    assert data["benchmark"] == "index_engine_serving"
    assert data["rows"], "empty benchmark trajectory"
    for row in data["rows"]:
        assert row["owners"] > 0 and row["nnz"] > 0
        assert row["csr_p50_us"] > 0 and row["csr_p99_us"] >= row["csr_p50_us"]
        assert row["dense_bytes"] > row["csr_bytes"]
        assert row["query_many_qps"] > 0
    top = data["rows"][-1]
    assert top["query_many_speedup"] >= data["min_query_many_speedup"]
    assert top["boot_speedup"] >= data["min_boot_speedup"]
    return (
        "query_many speedups "
        f"{[round(r['query_many_speedup'], 1) for r in data['rows']]}"
    )


def validate_offline(data: dict) -> str:
    assert data["benchmark"] == "mpc_offline_pipeline"
    assert data["triple_words_total"] > 0
    schedules = [r["schedule"] for r in data["rows"]]
    assert schedules == ["dealer", "sequential", "pipelined"]
    for row in data["rows"]:
        assert row["wall_s"] > 0
    seq, pipe = data["rows"][1], data["rows"][2]
    assert seq["offline_bytes"] > 0 and pipe["offline_bytes"] > 0
    assert seq["online_rounds"] == pipe["online_rounds"]
    assert seq["triple_words"] == pipe["triple_words"]
    assert pipe["offline_hidden_s"] > 0
    assert 0.0 <= pipe["utilization"] <= 1.0
    speedup = data["speedup_pipelined_vs_sequential"]
    assert speedup >= data["min_speedup_required"]
    return (
        f"{speedup:.2f}x pipelined, utilization {pipe['utilization']:.2f}"
    )


def validate_updates(data: dict) -> str:
    assert data["benchmark"] == "live_update_churn"
    apply = data["apply"]
    assert apply["n_deltas"] >= 1000
    assert 0 < apply["apply_p50_us"] <= data["max_apply_p50_us"]
    assert apply["seal_s"] > 0 and apply["compact_s"] > 0
    rows = data["reload_pause"]
    assert len(rows) >= 2 and rows[-1]["owners"] > rows[0]["owners"]
    for row in rows:
        assert row["queries"] > 0 and row["pause_ms"] > 0
    ratio = rows[-1]["pause_ms"] / rows[0]["pause_ms"]
    assert (
        rows[-1]["pause_ms"] <= data["pause_floor_ms"]
        or ratio <= data["max_pause_ratio"]
    )
    rolling = data["rolling"]
    assert rolling["lost_queries"] == 0
    assert rolling["stale_responses"] == 0
    assert (
        rolling["rolling_p99_ms"] <= data["rolling_floor_ms"]
        or rolling["rolling_p99_ms"]
        <= data["max_rolling_p99_ratio"] * rolling["steady_p99_ms"]
    )
    return (
        f"apply p50 {apply['apply_p50_us']:.0f}us, pause ratio "
        f"{ratio:.2f}, rolling p99 {rolling['rolling_p99_ms']:.1f}ms"
    )


def validate_wire(data: dict) -> str:
    assert data["benchmark"] == "wire_protocol"
    assert data["server_protocols"] == [1, 2]
    assert set(data["modes"]) == {"query", "batch"}
    for mode, legs in data["modes"].items():
        for proto in ("v1", "v2"):
            leg = legs[proto]
            assert leg["errors"] == 0, (mode, proto)
            assert leg["qps"] > 0 and leg["qps_per_core"] > 0
            assert leg["p50_ms"] <= leg["p99_ms"]
        assert legs["speedup"] > 0
    reuse = data["reuseport"]
    assert reuse["accept_procs"] >= 2
    assert reuse["cores_used"] > data["cores_used"]
    leg = reuse["batch_v2"]
    assert leg["errors"] == 0 and leg["qps"] > 0 and leg["qps_per_core"] > 0
    assert data["headline_speedup"] >= data["min_speedup_required"]
    return (
        f"batch v2/v1 {data['modes']['batch']['speedup']:.2f}x, reuseport "
        f"x{reuse['accept_procs']} {leg['qps_per_core']:.0f} qps/core"
    )


def validate_incremental(data: dict) -> str:
    assert data["benchmark"] == "incremental_construction"
    assert data["n_ids"] >= 1000 and data["full_s"] > 0
    assert [r["churn"] for r in data["rows"]] == data["churn_levels"]
    for row in data["rows"]:
        assert 1 <= row["dirty"] <= row["closure"] <= data["n_ids"]
        assert row["incremental_s"] > 0 and row["speedup"] > 0
        assert row["count_and_gates"] > 0 and row["count_bits_sent"] > 0
    # Secure work must shrink with the dirty set.
    assert data["rows"][0]["count_and_gates"] < data["rows"][-1]["count_and_gates"]
    assert data["speedup_at_1pct"] >= data["min_speedup_at_1pct"]
    return (
        f"{data['speedup_at_1pct']:.1f}x at 1% churn over "
        f"{data['n_ids']} identities "
        f"(floor {data['min_speedup_at_1pct']}x)"
    )


def validate_replication(data: dict) -> str:
    assert data["benchmark"] == "replication_catch_up"
    assert data["owners"] > 0 and data["providers"] > 0
    assert [r["churn"] for r in data["rows"]] == data["churn_levels"]
    floor = data["min_bytes_ratio_at_1pct"]
    for row in data["rows"]:
        assert 1 <= row["touched"] <= data["owners"]
        assert 0 < row["delta_bytes"] < row["snapshot_bytes"] or row["churn"] > 0.01
        assert row["bytes_ratio"] > 0 and row["catch_up_s"] > 0
        assert row["wan_delta_s"] > 0 and row["wan_snapshot_s"] > 0
        if row["churn"] <= 0.01:
            assert row["bytes_ratio"] >= floor, (row["churn"], row["bytes_ratio"])
            assert row["wan_speedup"] > 1.0
    # Lower churn must stream fewer bytes relative to the snapshot.
    assert data["rows"][0]["bytes_ratio"] > data["rows"][-1]["bytes_ratio"]
    assert data["bytes_ratio_at_1pct"] >= floor
    rollout = data["rollout"]
    assert rollout["reads"] >= 3 * rollout["sampled_owners"] > 0
    assert rollout["stale_reads"] == 0
    assert rollout["follower_catch_up_s"] > 0
    return (
        f"{data['bytes_ratio_at_1pct']:.1f}x fewer bytes at 1% churn "
        f"(floor {floor}x), {rollout['reads']} rollout reads, 0 stale"
    )


def validate_attacks(data: dict) -> str:
    assert data["benchmark"] == "redteam_attacks"
    assert data["epochs"] >= 5
    assert [r["churn"] for r in data["rows"]] == data["churn_levels"]
    max_delta = data["max_sticky_delta"]
    floor = data["min_naive_degradation"]
    for row in data["rows"]:
        sticky, naive = row["sticky"], row["naive"]
        for cell in (sticky, naive):
            assert cell["epochs_observed"] >= 5
            assert cell["observations"] > 0
            assert len(cell["stable_curve"]) == cell["epochs_observed"]
        # Sticky is flat and diff-precise; naive climbs monotonically and
        # ends materially worse -- the benchmark's reason to exist.
        assert abs(sticky["degradation"]) <= max_delta, row["churn"]
        assert sticky["false_churn_owners"] == 0
        assert sticky["diff_precision"] == 1.0
        curve = naive["stable_curve"]
        assert all(b >= a - 1e-6 for a, b in zip(curve, curve[1:]))
        assert naive["degradation"] >= floor, (row["churn"], naive)
        assert curve[-1] >= sticky["stable_curve"][-1]
        # Tier ordering only holds while noise survives, i.e. under sticky
        # coins; naive's tiers all converge to ~1.0 once stripped.
        tiers = sticky["per_tier_success"]
        assert tiers["strict"] <= tiers["relaxed"], tiers
    worst = max(r["naive"]["degradation"] for r in data["rows"])
    flattest = max(abs(r["sticky"]["degradation"]) for r in data["rows"])
    return (
        f"sticky drift <= {flattest:+.3f}, naive degradation up to "
        f"{worst:+.3f} over {data['epochs']} epochs (floor {floor})"
    )


CHECKS = {
    "attacks": ("BENCH_attacks.json", validate_attacks),
    "mpc": ("BENCH_mpc.json", validate_mpc),
    "replication": ("BENCH_replication.json", validate_replication),
    "index": ("BENCH_index.json", validate_index),
    "offline": ("BENCH_offline.json", validate_offline),
    "updates": ("BENCH_updates.json", validate_updates),
    "wire": ("BENCH_wire.json", validate_wire),
    "incremental": ("BENCH_incremental.json", validate_incremental),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "benchmarks",
        nargs="*",
        choices=[*sorted(CHECKS), []],
        help="which artifacts to validate (default with --all: all present)",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="validate every known artifact that exists on disk",
    )
    args = parser.parse_args(argv)
    names = list(args.benchmarks)
    if args.all:
        names = [
            name
            for name, (filename, _) in sorted(CHECKS.items())
            if (RESULTS_DIR / filename).exists()
        ]
    if not names:
        parser.error("name at least one benchmark, or pass --all")
    failed = 0
    for name in names:
        filename, check = CHECKS[name]
        path = RESULTS_DIR / filename
        try:
            summary = check(json.loads(path.read_text()))
        except FileNotFoundError:
            print(f"{filename}: MISSING (run the {name} benchmark first)")
            failed += 1
            continue
        except AssertionError as exc:
            print(f"{filename}: INVALID ({exc!r})")
            failed += 1
            continue
        print(f"{filename} valid: {summary}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
