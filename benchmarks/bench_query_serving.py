"""Query-serving cost: plaintext PPI lookup vs encrypted-index search,
plus the dense-vs-CSR index-engine sweep.

Part 1 reproduces the motivating performance claim of paper Sec. VI-A:
ǫ-PPI makes "no use of encryption during the query serving time", so a
lookup is a plaintext column read, while the SSE architecture pays trapdoor
derivation plus a per-entry PRF scan on every query.  Measured with real
wall-clock timings (pytest-benchmark) on equal-sized workloads, plus the
SSE work counters.

Part 2 (``test_index_engine_sweep``) measures the serving read path at
fleet scale: :class:`~repro.core.postings.PostingsIndex` (CSR postings,
O(result-size) per query, mmap-bootable snapshot format v2) against the
dense :class:`~repro.core.index.PPIIndex` column scan, at >= 100k owners.
Asserts >= 5x ``query_many`` speedup and >= 4x snapshot-boot speedup
(>= 2x each in quick mode -- set ``INDEX_BENCH_QUICK=1``, used by the CI
smoke job) and emits ``benchmarks/results/BENCH_index.json``.
"""

import json
import os
import pathlib
import random
import statistics
import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.baselines.sse import build_sse_index
from repro.core.construction import construct_epsilon_ppi
from repro.core.index import PPIIndex
from repro.core.model import InformationNetwork
from repro.core.policies import ChernoffPolicy
from repro.core.postings import PostingsIndex
from repro.serving.snapshot import (
    SNAPSHOT_FORMAT_V1,
    load_postings,
    load_snapshot,
    save_snapshot,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

M = 200
N_IDS = 500
N_QUERIES = 200

# -- index-engine sweep parameters -------------------------------------------
QUICK = os.environ.get("INDEX_BENCH_QUICK") == "1"
SWEEP_PROVIDERS = 256
SWEEP_OWNERS = [2_000, 10_000] if QUICK else [10_000, 100_000]
SWEEP_DENSITY = 0.02  # avg ~5 providers/owner at m=256, paper-plausible
BATCH_SIZE = 2_048
SINGLE_QUERIES = 400 if QUICK else 2_000
MIN_QUERY_MANY_SPEEDUP = 2.0 if QUICK else 5.0
MIN_BOOT_SPEEDUP = 2.0 if QUICK else 4.0


def build():
    rng = np.random.default_rng(2)
    net = InformationNetwork(M)
    for j in range(N_IDS):
        owner = net.register_owner(f"o{j}", float(rng.uniform(0.2, 0.8)))
        for pid in rng.choice(M, size=int(rng.integers(1, 6)), replace=False):
            net.delegate(owner, int(pid))
    matrix = net.membership_matrix()
    ppi = construct_epsilon_ppi(net, ChernoffPolicy(0.9), rng).index
    keys = {pid: bytes([pid % 256, pid // 256]) * 8 for pid in range(M)}
    sse = build_sse_index(matrix, keys, random.Random(3))
    queries = [int(q) for q in rng.integers(0, N_IDS, size=N_QUERIES)]
    return ppi, sse, keys, queries


def run_query_serving():
    ppi, sse, keys, queries = build()

    start = time.perf_counter()
    for owner in queries:
        ppi.query(owner)
    ppi_time = time.perf_counter() - start

    start = time.perf_counter()
    scanned = 0
    prf = 0
    for owner in queries:
        _, stats = sse.search(owner, keys)
        scanned += stats.entries_scanned
        prf += stats.prf_evaluations
    sse_time = time.perf_counter() - start

    return {
        "ppi": {"time_ms": ppi_time * 1e3, "entries_scanned": 0, "prf": 0},
        "sse": {
            "time_ms": sse_time * 1e3,
            "entries_scanned": scanned,
            "prf": prf,
        },
    }


def test_query_serving_cost(benchmark, report):
    rows = benchmark.pedantic(run_query_serving, rounds=1, iterations=1)
    report(
        f"Query serving: plaintext PPI vs SSE scan "
        f"(m={M}, {N_QUERIES} queries)",
        format_table(
            ["system", "total-time-ms", "entries-scanned", "prf-evals"],
            [
                [name, r["time_ms"], r["entries_scanned"], r["prf"]]
                for name, r in rows.items()
            ],
        ),
    )
    # The motivating claim: encryption-free serving is much cheaper.
    assert rows["ppi"]["time_ms"] < rows["sse"]["time_ms"]
    assert rows["sse"]["prf"] > 0


# -- dense vs CSR index-engine sweep ------------------------------------------


def _synthesize_published(n_owners: int, seed: int) -> np.ndarray:
    """A published matrix at serving scale, drawn directly: construction is
    benchmarked elsewhere; here only the read path matters."""
    rng = np.random.default_rng(seed)
    return (rng.random((SWEEP_PROVIDERS, n_owners)) < SWEEP_DENSITY).astype(np.uint8)


def _time_min(fn, repeats: int) -> float:
    """Best-of-N wall time: the minimum is the least noisy point estimate."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _latency_quantiles(index, owners) -> tuple[float, float]:
    """Per-query p50/p99 of single ``query`` calls, in microseconds."""
    samples = []
    for owner in owners:
        start = time.perf_counter()
        index.query(owner)
        samples.append((time.perf_counter() - start) * 1e6)
    samples.sort()
    return (
        statistics.median(samples),
        samples[min(len(samples) - 1, int(len(samples) * 0.99))],
    )


def run_index_engine_sweep(snapshot_dir: pathlib.Path):
    rows = []
    for n_owners in SWEEP_OWNERS:
        published = _synthesize_published(n_owners, seed=n_owners)
        dense = PPIIndex(published)
        csr = PostingsIndex.from_dense(published)
        rng = np.random.default_rng(7)
        batch = rng.integers(0, n_owners, size=BATCH_SIZE)
        singles = rng.integers(0, n_owners, size=SINGLE_QUERIES).tolist()

        # Correctness first: both engines must answer identically.
        assert csr.query_many(batch) == dense.query_many(batch)

        dense_batch_s = _time_min(lambda: dense.query_many(batch), repeats=5)
        csr_batch_s = _time_min(lambda: csr.query_many(batch), repeats=5)
        dense_p50, dense_p99 = _latency_quantiles(dense, singles)
        csr_p50, csr_p99 = _latency_quantiles(csr, singles)

        # Boot: dense v1 snapshot (unpack + validate) vs CSR v2 mmap.
        v1_path = snapshot_dir / f"index_{n_owners}_v1.npz"
        v2_path = snapshot_dir / f"index_{n_owners}_v2.npz"
        save_snapshot(dense, v1_path, format_version=SNAPSHOT_FORMAT_V1)
        save_snapshot(csr, v2_path)
        boot_v1_s = _time_min(lambda: load_snapshot(v1_path), repeats=3)
        boot_v2_s = _time_min(lambda: load_postings(v2_path, mmap=True), repeats=3)

        rows.append(
            {
                "owners": n_owners,
                "providers": SWEEP_PROVIDERS,
                "nnz": csr.nnz,
                "dense_query_many_s": dense_batch_s,
                "csr_query_many_s": csr_batch_s,
                "query_many_speedup": dense_batch_s / csr_batch_s,
                "query_many_qps": BATCH_SIZE / csr_batch_s,
                "dense_p50_us": dense_p50,
                "dense_p99_us": dense_p99,
                "csr_p50_us": csr_p50,
                "csr_p99_us": csr_p99,
                "dense_bytes": int(dense.matrix.nbytes),
                "csr_bytes": csr.nbytes,
                "boot_v1_s": boot_v1_s,
                "boot_v2_mmap_s": boot_v2_s,
                "boot_speedup": boot_v1_s / boot_v2_s,
                "snapshot_v1_bytes": v1_path.stat().st_size,
                "snapshot_v2_bytes": v2_path.stat().st_size,
            }
        )
    return rows


def test_index_engine_sweep(benchmark, report, tmp_path):
    rows = benchmark.pedantic(
        run_index_engine_sweep, args=(tmp_path,), rounds=1, iterations=1
    )
    report(
        f"Index engine: dense column scan vs CSR postings "
        f"(m={SWEEP_PROVIDERS}, batch={BATCH_SIZE}"
        f"{', quick' if QUICK else ''})",
        format_table(
            [
                "owners",
                "dense-batch-ms",
                "csr-batch-ms",
                "speedup",
                "csr-p50-us",
                "csr-p99-us",
                "boot-v1-ms",
                "boot-v2-ms",
                "boot-speedup",
                "mem-ratio",
            ],
            [
                [
                    r["owners"],
                    r["dense_query_many_s"] * 1e3,
                    r["csr_query_many_s"] * 1e3,
                    r["query_many_speedup"],
                    r["csr_p50_us"],
                    r["csr_p99_us"],
                    r["boot_v1_s"] * 1e3,
                    r["boot_v2_mmap_s"] * 1e3,
                    r["boot_speedup"],
                    r["dense_bytes"] / r["csr_bytes"],
                ]
                for r in rows
            ],
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "index_engine_serving",
        "quick_mode": QUICK,
        "providers": SWEEP_PROVIDERS,
        "batch_size": BATCH_SIZE,
        "min_query_many_speedup": MIN_QUERY_MANY_SPEEDUP,
        "min_boot_speedup": MIN_BOOT_SPEEDUP,
        "rows": rows,
    }
    (RESULTS_DIR / "BENCH_index.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    top = rows[-1]
    assert top["query_many_speedup"] >= MIN_QUERY_MANY_SPEEDUP, (
        f"CSR query_many only {top['query_many_speedup']:.1f}x faster than the "
        f"dense scan at {top['owners']} owners "
        f"(need >= {MIN_QUERY_MANY_SPEEDUP}x)"
    )
    assert top["boot_speedup"] >= MIN_BOOT_SPEEDUP, (
        f"v2 mmap boot only {top['boot_speedup']:.1f}x faster than the v1 "
        f"dense load at {top['owners']} owners (need >= {MIN_BOOT_SPEEDUP}x)"
    )
