"""Query-serving cost: plaintext PPI lookup vs encrypted-index search.

Reproduces the motivating performance claim of paper Sec. VI-A: ǫ-PPI makes
"no use of encryption during the query serving time", so a lookup is a
plaintext column read, while the SSE architecture pays trapdoor derivation
plus a per-entry PRF scan on every query.  Measured with real wall-clock
timings (pytest-benchmark) on equal-sized workloads, plus the SSE work
counters.
"""

import random
import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.baselines.sse import build_sse_index
from repro.core.construction import construct_epsilon_ppi
from repro.core.model import InformationNetwork
from repro.core.policies import ChernoffPolicy

M = 200
N_IDS = 500
N_QUERIES = 200


def build():
    rng = np.random.default_rng(2)
    net = InformationNetwork(M)
    for j in range(N_IDS):
        owner = net.register_owner(f"o{j}", float(rng.uniform(0.2, 0.8)))
        for pid in rng.choice(M, size=int(rng.integers(1, 6)), replace=False):
            net.delegate(owner, int(pid))
    matrix = net.membership_matrix()
    ppi = construct_epsilon_ppi(net, ChernoffPolicy(0.9), rng).index
    keys = {pid: bytes([pid % 256, pid // 256]) * 8 for pid in range(M)}
    sse = build_sse_index(matrix, keys, random.Random(3))
    queries = [int(q) for q in rng.integers(0, N_IDS, size=N_QUERIES)]
    return ppi, sse, keys, queries


def run_query_serving():
    ppi, sse, keys, queries = build()

    start = time.perf_counter()
    for owner in queries:
        ppi.query(owner)
    ppi_time = time.perf_counter() - start

    start = time.perf_counter()
    scanned = 0
    prf = 0
    for owner in queries:
        _, stats = sse.search(owner, keys)
        scanned += stats.entries_scanned
        prf += stats.prf_evaluations
    sse_time = time.perf_counter() - start

    return {
        "ppi": {"time_ms": ppi_time * 1e3, "entries_scanned": 0, "prf": 0},
        "sse": {
            "time_ms": sse_time * 1e3,
            "entries_scanned": scanned,
            "prf": prf,
        },
    }


def test_query_serving_cost(benchmark, report):
    rows = benchmark.pedantic(run_query_serving, rounds=1, iterations=1)
    report(
        f"Query serving: plaintext PPI vs SSE scan "
        f"(m={M}, {N_QUERIES} queries)",
        format_table(
            ["system", "total-time-ms", "entries-scanned", "prf-evals"],
            [
                [name, r["time_ms"], r["entries_scanned"], r["prf"]]
                for name, r in rows.items()
            ],
        ),
    )
    # The motivating claim: encryption-free serving is much cheaper.
    assert rows["ppi"]["time_ms"] < rows["sse"]["time_ms"]
    assert rows["sse"]["prf"] > 0
