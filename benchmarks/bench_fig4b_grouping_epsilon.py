"""Fig. 4b reproduction: success ratio vs privacy degree ǫ.

Paper setup: m = 10,000 providers, fixed identity frequency, ǫ swept
0.1 -> 0.9.  Systems as in Fig. 4a.

Expected shape: non-grouping ǫ-PPI holds ~1.0 across the sweep; the grouping
PPIs' success ratio "quickly degrades to 0" as ǫ grows (group lists cannot
supply enough false positives for strict degrees).
"""

import numpy as np

from repro.analysis.experiments import grouping_success_ratio, policy_success_ratio
from repro.analysis.reporting import format_series
from repro.core.policies import ChernoffPolicy, IncrementedExpectationPolicy

M = 10_000
FREQUENCY = 100
EPSILONS = [0.1, 0.3, 0.5, 0.7, 0.9]
GROUP_COUNTS = [400, 1000, 2500]
SAMPLES = 20


def run_fig4b(seed: int = 0):
    rng = np.random.default_rng(seed)
    series: dict[str, list[float]] = {
        "nongrouping-incexp-0.01": [],
        "nongrouping-chernoff-0.9": [],
    }
    for g in GROUP_COUNTS:
        series[f"grouping-{g}"] = []
    for eps in EPSILONS:
        series["nongrouping-incexp-0.01"].append(
            policy_success_ratio(
                M, FREQUENCY, eps, IncrementedExpectationPolicy(0.01), rng, SAMPLES
            )
        )
        series["nongrouping-chernoff-0.9"].append(
            policy_success_ratio(M, FREQUENCY, eps, ChernoffPolicy(0.9), rng, SAMPLES)
        )
        for g in GROUP_COUNTS:
            series[f"grouping-{g}"].append(
                grouping_success_ratio(M, FREQUENCY, eps, g, rng, SAMPLES)
            )
    return series


def test_fig4b_success_ratio_vs_epsilon(benchmark, report):
    series = benchmark.pedantic(run_fig4b, rounds=1, iterations=1)
    report(
        "Fig. 4b: success ratio vs epsilon (m=10000, frequency=100)",
        format_series("epsilon", EPSILONS, series),
    )
    assert min(series["nongrouping-chernoff-0.9"]) >= 0.9
    # Grouping quality collapses at strict epsilon.
    assert series["grouping-2500"][-1] < 0.3
    # and is non-increasing-ish: strict eps never easier than lax.
    assert series["grouping-2500"][-1] <= series["grouping-2500"][0]
