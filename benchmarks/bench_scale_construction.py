"""Paper-scale construction: wall-clock cost at 2,500-25,000 providers.

The paper's effectiveness experiments run on 2,500-25,000 digital
libraries.  This bench constructs the full index (β vector, mixing,
per-cell randomized publication) at those scales with real wall-clock
timings, confirming the implementation handles the paper's dataset sizes
and that construction cost scales linearly in the matrix size.
"""

import time

import numpy as np

from repro.analysis.reporting import format_series
from repro.core.construction import compute_betas
from repro.core.policies import ChernoffPolicy
from repro.core.publication import publish_matrix
from repro.datasets.synthetic import zipf_matrix

PROVIDER_COUNTS = [2_500, 10_000, 25_000]
N_IDS = 400


def run_scale_construction(seed: int = 0):
    series = {"construct-s": [], "published-cells": [], "success-ish": []}
    for m in PROVIDER_COUNTS:
        rng = np.random.default_rng(seed + m)
        matrix = zipf_matrix(m, N_IDS, rng, max_fraction=0.05)
        epsilons = rng.uniform(0.1, 0.9, size=N_IDS)

        start = time.perf_counter()
        _, mixing = compute_betas(matrix, epsilons, ChernoffPolicy(0.9), rng)
        published = publish_matrix(matrix, mixing.betas, rng)
        elapsed = time.perf_counter() - start

        fp_ok = 0
        counts = published.sum(axis=0)
        for j in range(N_IDS):
            listed = counts[j]
            true = matrix.frequency(j)
            if listed and (listed - true) / listed >= epsilons[j]:
                fp_ok += 1
        series["construct-s"].append(elapsed)
        series["published-cells"].append(int(counts.sum()))
        series["success-ish"].append(fp_ok / N_IDS)
    return series


def test_scale_construction(benchmark, report):
    series = benchmark.pedantic(run_scale_construction, rounds=1, iterations=1)
    report(
        f"Paper-scale construction: {N_IDS} identities, Chernoff(0.9)",
        format_series("providers", PROVIDER_COUNTS, series),
    )
    # Handles the paper's largest configuration in reasonable time.
    assert series["construct-s"][-1] < 60.0
    # Privacy quality holds at every scale.
    assert min(series["success-ish"]) >= 0.9
    # Cost grows sub-quadratically (roughly linear in matrix cells).
    t = series["construct-s"]
    assert t[-1] / t[0] < 25  # 10x providers -> well under 25x time
