"""Live-update churn: delta apply cost, reload pause, rolling-fleet p99.

The update path (delta log -> sealed segment -> compacted snapshot ->
fleet-wide hot swap) only earns its keep if churn is cheap *while
serving*.  Three claims are measured and asserted:

1. **Applying a delta is cheap**: appending one owner operation to the
   crc-framed log is a sub-millisecond affair (p50 asserted), and sealing
   + compacting a segment of ~1k deltas completes in seconds, not minutes.
2. **The reload pause is O(segment), not O(base)**: a hot swap loads the
   new snapshot on the executor and swaps a pointer in the event loop, so
   the worst query latency observed *during* a reload must not scale with
   the base index size.  Measured at two base sizes 10x apart; the pause
   ratio must stay far below the size ratio (with an absolute floor so a
   fast machine cannot fail on scheduler noise).
3. **A rolling 2-shard reload is invisible to clients**: query p99 during
   the rollout stays within 2x of steady state (again floor-guarded), no
   query is lost, and afterwards every shard serves the new epoch's rows
   exactly -- zero stale responses.

Emits ``benchmarks/results/BENCH_updates.json``.  Quick mode for the CI
smoke job: ``UPDATES_BENCH_QUICK=1`` shrinks the bases and the load, but
still applies 1000 deltas and rolls a live 2-shard fleet.
"""

import asyncio
import json
import os
import pathlib
import statistics
import threading
import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.postings import PostingsIndex
from repro.serving.client import LocatorClient, RetryPolicy
from repro.serving.fleet import FleetSupervisor, sync_request
from repro.serving.loadgen import run_load_sync
from repro.serving.protocol import VERB_QUERY, VERB_RELOAD
from repro.serving.server import PPIServer
from repro.serving.snapshot import load_postings, save_snapshot
from repro.updates import Compactor, DeltaLog, compact_snapshot, seal_segment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("UPDATES_BENCH_QUICK") == "1"
PROVIDERS = 128
DENSITY = 0.03
NOISE_KEY = b"\xbe" * 16

N_DELTAS = 1_000
MAX_APPLY_P50_US = 1_000.0  # one delta append must stay sub-millisecond

# Reload-pause sweep: two bases 10x apart.  The pause is the worst query
# latency observed while reloads fire; O(segment) behaviour means the big
# base pauses like the small one.
PAUSE_OWNERS = [2_000, 20_000] if QUICK else [10_000, 100_000]
PAUSE_RELOADS = 6
MAX_PAUSE_RATIO = 4.0  # vs. a 10x base-size ratio
PAUSE_FLOOR_MS = 25.0  # below this, scheduler noise dominates: auto-pass

# Rolling-reload churn: 2 shards under closed-loop load.
FLEET_OWNERS = 2_000 if QUICK else 10_000
LOAD_WORKERS = 4
LOAD_REQUESTS = 150 if QUICK else 400
MAX_ROLLING_P99_RATIO = 2.0
ROLLING_FLOOR_MS = 50.0


def _published(n_owners: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((PROVIDERS, n_owners)) < DENSITY).astype(np.uint8)


def _p50_p99_us(samples_s: list) -> tuple:
    ordered = sorted(s * 1e6 for s in samples_s)
    return (
        statistics.median(ordered),
        ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))],
    )


# -- 1. delta apply + seal + compact ------------------------------------------


def run_delta_apply(workdir: pathlib.Path):
    base = PostingsIndex.from_dense(_published(FLEET_OWNERS, seed=11))
    base_path = workdir / "base.npz"
    save_snapshot(base, base_path, format_version=3, epoch=0)

    rng = np.random.default_rng(13)
    log_path = workdir / "churn.log"
    append_s = []
    with DeltaLog.create(
        str(log_path), PROVIDERS, noise_key=NOISE_KEY
    ) as log:
        for k in range(N_DELTAS):
            owner = int(rng.integers(0, FLEET_OWNERS))
            providers = sorted(
                int(p) for p in rng.choice(PROVIDERS, size=4, replace=False)
            )
            started = time.perf_counter()
            if k % 10 == 9:
                log.remove(owner)
            else:
                log.upsert(owner, providers, beta=0.25)
            append_s.append(time.perf_counter() - started)

        seg_path = workdir / "0001.seg.npz"
        started = time.perf_counter()
        seal_segment(log, str(seg_path), base_epoch=0)
        seal_s = time.perf_counter() - started

    compactor = Compactor(str(base_path), str(workdir), min_segments=1)
    started = time.perf_counter()
    result = compactor.run_once()
    compact_s = time.perf_counter() - started
    assert result is not None and result["epoch"] == 1

    p50_us, p99_us = _p50_p99_us(append_s)
    return {
        "n_deltas": N_DELTAS,
        "owners_touched": result["overlaid_owners"],
        "apply_p50_us": p50_us,
        "apply_p99_us": p99_us,
        "seal_s": seal_s,
        "compact_s": compact_s,
        "base_path": str(base_path),
    }


# -- 2. reload pause vs base size ---------------------------------------------


def _measure_reload_pause(n_owners: int, workdir: pathlib.Path) -> dict:
    """Worst/p99 query latency while ``PAUSE_RELOADS`` hot swaps fire."""
    index = PostingsIndex.from_dense(_published(n_owners, seed=n_owners))
    path = workdir / f"pause_{n_owners}.npz"
    save_snapshot(index, path, format_version=3, epoch=0)

    async def body() -> dict:
        server = await PPIServer(index, snapshot_path=str(path)).start()
        client = LocatorClient(
            servers=[server.address],
            cache_size=0,
            retry=RetryPolicy(max_retries=2, timeout_s=5.0, base_delay_s=0.01),
        )
        latencies_s = []
        reload_s = []
        stop = asyncio.Event()

        async def hammer() -> None:
            owner = 0
            while not stop.is_set():
                started = time.perf_counter()
                await client.call(server.address, VERB_QUERY, owner=owner)
                latencies_s.append(time.perf_counter() - started)
                owner = (owner + 17) % n_owners

        try:
            task = asyncio.ensure_future(hammer())
            await asyncio.sleep(0.1)  # steady state first
            for _ in range(PAUSE_RELOADS):
                started = time.perf_counter()
                await client.call(server.address, VERB_RELOAD)
                reload_s.append(time.perf_counter() - started)
                await asyncio.sleep(0.05)
            stop.set()
            await task
        finally:
            await client.close()
            await server.stop()

        p50_us, p99_us = _p50_p99_us(latencies_s)
        return {
            "owners": n_owners,
            "snapshot_bytes": path.stat().st_size,
            "queries": len(latencies_s),
            "query_p50_us": p50_us,
            "query_p99_us": p99_us,
            "pause_ms": max(latencies_s) * 1e3,
            "reload_rtt_p50_ms": statistics.median(reload_s) * 1e3,
        }

    return asyncio.run(body())


def run_reload_pause(workdir: pathlib.Path):
    return [_measure_reload_pause(n, workdir) for n in PAUSE_OWNERS]


# -- 3. rolling 2-shard reload under load -------------------------------------


def run_rolling_reload(workdir: pathlib.Path):
    base = PostingsIndex.from_dense(_published(FLEET_OWNERS, seed=29))
    base_path = workdir / "fleet_base.npz"
    save_snapshot(base, base_path, format_version=3, epoch=0)

    # The epoch-1 snapshot: a sealed segment's worth of churn, compacted.
    log_path = workdir / "fleet.log"
    touched = {}
    rng = np.random.default_rng(31)
    with DeltaLog.create(str(log_path), PROVIDERS, noise_key=NOISE_KEY) as log:
        for _ in range(N_DELTAS):
            owner = int(rng.integers(0, FLEET_OWNERS))
            providers = sorted(
                int(p) for p in rng.choice(PROVIDERS, size=3, replace=False)
            )
            log.upsert(owner, providers, beta=0.0)  # beta 0: row == truth
            touched[owner] = providers
        seg_path = workdir / "0001.seg.npz"
        seal_segment(log, str(seg_path), base_epoch=0)
    epoch1_path = workdir / "epoch1.npz"
    summary = compact_snapshot(str(base_path), [str(seg_path)], str(epoch1_path))
    assert summary["epoch"] == 1

    owners = list(range(FLEET_OWNERS))

    def client_factory() -> LocatorClient:
        return LocatorClient(
            servers=fleet.addresses,
            cache_size=0,
            retry=RetryPolicy(max_retries=6, timeout_s=5.0, base_delay_s=0.02),
        )

    with FleetSupervisor(str(base_path), n_shards=2) as fleet:
        fleet.start(monitor=True)
        steady = run_load_sync(
            client_factory,
            owners,
            n_workers=LOAD_WORKERS,
            requests_per_worker=LOAD_REQUESTS,
        )

        events = []
        rollout = threading.Thread(
            target=lambda: events.extend(
                fleet.rollout(str(epoch1_path), settle_timeout_s=30.0)
            )
        )
        # Fire the rollout a beat into the load so the swap lands mid-run.
        timer = threading.Timer(0.05, rollout.start)
        timer.start()
        rolling = run_load_sync(
            client_factory,
            owners,
            n_workers=LOAD_WORKERS,
            requests_per_worker=LOAD_REQUESTS,
        )
        timer.join()
        rollout.join()
        assert events == [("rolled", 0), ("rolled", 1)], events

        # Zero stale responses: every shard now serves epoch-1 rows exactly.
        merged = load_postings(str(epoch1_path))
        stale = 0
        sample = list(touched)[:100]
        for owner in sample:
            address = fleet.addresses[owner % 2]
            response = sync_request(address, VERB_QUERY, owner=owner)
            if (
                response["epoch"] != 1
                or response["providers"] != merged.query(owner)
            ):
                stale += 1
        restarts = sum(
            s["restarts"] for s in fleet.worker_states().values()
        )

    return {
        "shards": 2,
        "owners": FLEET_OWNERS,
        "requests_per_phase": LOAD_WORKERS * LOAD_REQUESTS,
        "steady_p50_ms": steady.latency_percentiles_ms()["p50"],
        "steady_p99_ms": steady.latency_percentiles_ms()["p99"],
        "steady_qps": steady.qps,
        "rolling_p50_ms": rolling.latency_percentiles_ms()["p50"],
        "rolling_p99_ms": rolling.latency_percentiles_ms()["p99"],
        "rolling_qps": rolling.qps,
        "lost_queries": steady.errors + rolling.errors,
        "stale_responses": stale,
        "worker_restarts": restarts,
    }


# -- the test ------------------------------------------------------------------


def test_update_churn(benchmark, report, tmp_path):
    def run():
        return {
            "apply": run_delta_apply(tmp_path / "apply"),
            "pause": run_reload_pause(tmp_path / "pause"),
            "rolling": run_rolling_reload(tmp_path / "rolling"),
        }
    for sub in ("apply", "pause", "rolling"):
        (tmp_path / sub).mkdir()
    results = benchmark.pedantic(run, rounds=1, iterations=1)

    apply_row = results["apply"]
    pause_rows = results["pause"]
    rolling = results["rolling"]
    small, big = pause_rows[0], pause_rows[-1]
    base_ratio = big["owners"] / small["owners"]
    pause_ratio = big["pause_ms"] / small["pause_ms"]

    report(
        f"Live-update churn: {N_DELTAS} deltas, reload pause, rolling "
        f"2-shard swap{' (quick)' if QUICK else ''}",
        format_table(
            ["metric", "value"],
            [
                ["apply-p50-us", apply_row["apply_p50_us"]],
                ["apply-p99-us", apply_row["apply_p99_us"]],
                ["seal-s", apply_row["seal_s"]],
                ["compact-s", apply_row["compact_s"]],
                [f"pause-ms@{small['owners']}", small["pause_ms"]],
                [f"pause-ms@{big['owners']}", big["pause_ms"]],
                ["pause-ratio", pause_ratio],
                ["steady-p99-ms", rolling["steady_p99_ms"]],
                ["rolling-p99-ms", rolling["rolling_p99_ms"]],
                ["lost-queries", rolling["lost_queries"]],
                ["stale-responses", rolling["stale_responses"]],
            ],
        ),
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "live_update_churn",
        "quick_mode": QUICK,
        "providers": PROVIDERS,
        "max_apply_p50_us": MAX_APPLY_P50_US,
        "max_pause_ratio": MAX_PAUSE_RATIO,
        "pause_floor_ms": PAUSE_FLOOR_MS,
        "max_rolling_p99_ratio": MAX_ROLLING_P99_RATIO,
        "rolling_floor_ms": ROLLING_FLOOR_MS,
        "apply": apply_row,
        "reload_pause": pause_rows,
        "rolling": rolling,
    }
    del payload["apply"]["base_path"]
    (RESULTS_DIR / "BENCH_updates.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # 1. Applying one delta is sub-millisecond at the median.
    assert apply_row["apply_p50_us"] <= MAX_APPLY_P50_US, (
        f"delta append p50 {apply_row['apply_p50_us']:.0f}us "
        f"(budget {MAX_APPLY_P50_US:.0f}us)"
    )

    # 2. The reload pause is O(segment), not O(base): a 10x bigger base
    #    must not pause 10x longer.  Floor-guarded: if even the big base's
    #    pause sits under PAUSE_FLOOR_MS, scheduler noise owns the ratio.
    assert (
        big["pause_ms"] <= PAUSE_FLOOR_MS or pause_ratio <= MAX_PAUSE_RATIO
    ), (
        f"reload pause scaled with the base: {small['pause_ms']:.1f}ms -> "
        f"{big['pause_ms']:.1f}ms ({pause_ratio:.1f}x for a "
        f"{base_ratio:.0f}x base)"
    )

    # 3. The rolling reload is invisible: nothing lost, nothing stale,
    #    p99 within budget of steady state (floor-guarded).
    assert rolling["lost_queries"] == 0
    assert rolling["stale_responses"] == 0
    assert (
        rolling["rolling_p99_ms"] <= ROLLING_FLOOR_MS
        or rolling["rolling_p99_ms"]
        <= MAX_ROLLING_P99_RATIO * rolling["steady_p99_ms"]
    ), (
        f"query p99 during the rolling reload: "
        f"{rolling['rolling_p99_ms']:.1f}ms vs steady "
        f"{rolling['steady_p99_ms']:.1f}ms "
        f"(budget {MAX_ROLLING_P99_RATIO}x)"
    )
