"""Ablation: what the circuit-optimizer pass saves on the protocol circuits.

The SFDL-compiler analogy made concrete: builder-emitted circuits carry
padding constants, duplicated comparisons and dead arms; the optimizer
(constant folding + CSE + dead-gate elimination,
`repro/mpc/circuits/optimize.py`) shrinks both the total gate count (the
Fig. 6b metric) and -- the part that matters for cost -- the AND count
(Beaver triples + broadcast rounds).
"""

from repro.analysis.reporting import format_table
from repro.core.policies import ChernoffPolicy, frequency_threshold
from repro.mpc.circuits.optimize import optimize
from repro.mpc.countbelow import (
    build_count_circuit,
    build_selection_circuit,
    scale_epsilon,
)
from repro.mpc.field import default_modulus_for_sum
from repro.mpc.pure import build_pure_circuit

M = 32
N_IDS = 8
C = 3
EPSILON = 0.5


def run_optimizer_ablation():
    policy = ChernoffPolicy(0.9)
    thresholds = [frequency_threshold(policy, EPSILON, M)] * N_IDS
    eps_scaled = [scale_epsilon(EPSILON)] * N_IDS
    width = (default_modulus_for_sum(M) - 1).bit_length()
    high = (M + 1) // 2

    circuits = {
        "countbelow": build_count_circuit(C, thresholds, eps_scaled, width, high),
        "selection": build_selection_circuit(C, thresholds, 1 << 14, width),
        "pure-count": build_pure_circuit(M, [EPSILON] * N_IDS, policy, None, high),
    }
    rows = {}
    for name, circuit in circuits.items():
        opt, report = optimize(circuit)
        rows[name] = {
            "gates_before": report.before_total,
            "gates_after": report.after_total,
            "and_before": report.before_and,
            "and_after": report.after_and,
        }
    return rows


def test_ablation_circuit_optimizer(benchmark, report):
    rows = benchmark.pedantic(run_optimizer_ablation, rounds=1, iterations=1)
    report(
        f"Ablation: optimizer savings on protocol circuits (m={M}, n={N_IDS}, c={C})",
        format_table(
            ["circuit", "gates-before", "gates-after", "and-before", "and-after"],
            [
                [name, r["gates_before"], r["gates_after"], r["and_before"], r["and_after"]]
                for name, r in rows.items()
            ],
        ),
    )
    for name, r in rows.items():
        assert r["gates_after"] <= r["gates_before"], name
        assert r["and_after"] <= r["and_before"], name
    # At least one protocol circuit must show real savings.
    assert any(r["gates_after"] < r["gates_before"] for r in rows.values())
