"""Table II reproduction: privacy degrees under both attacks, empirically.

The paper's Table II is analytic; we derive it experimentally by mounting
the primary and common-identity attacks against all three systems on a
synthetic network containing common identities, then classifying the
measured attacker confidence into the paper's privacy degrees.

Expected result (matching Table II):

    system        primary attack   common-identity attack
    grouping PPI  NO GUARANTEE     NO GUARANTEE
    SS-PPI        NO GUARANTEE     NO PROTECT
    ǫ-PPI         ǫ-PRIVATE        ǫ-PRIVATE
"""

import numpy as np

from repro.analysis.experiments import table2_experiment
from repro.analysis.reporting import format_table
from repro.core.policies import ChernoffPolicy
from repro.core.privacy import PrivacyDegree
from repro.datasets.synthetic import exact_frequency_matrix

M = 500
N_RARE = 395
N_COMMON = 5
N_GROUPS = 100


def run_table2(seed: int = 5):
    rng = np.random.default_rng(seed)
    rare = np.random.default_rng(seed + 1).integers(1, 50, size=N_RARE)
    common = [M - 20, M - 10, M - 5, M, M - 15]
    freqs = [int(f) for f in rare] + common
    matrix = exact_frequency_matrix(M, freqs, rng)
    eps = np.random.default_rng(seed + 2).uniform(0.55, 0.95, size=len(freqs))
    return table2_experiment(
        matrix, eps, ChernoffPolicy(0.9), n_groups=N_GROUPS, rng=rng
    )


def test_table2_privacy_degrees(benchmark, report):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    report(
        "Table II: privacy degrees under primary / common-identity attack",
        format_table(
            ["system", "primary", "common-identity", "primary-conf", "common-conf"],
            [
                [
                    r.system,
                    r.primary_degree.value,
                    r.common_degree.value,
                    r.primary_mean_confidence,
                    r.common_identification_confidence,
                ]
                for r in rows
            ],
        ),
    )
    by_system = {r.system: r for r in rows}
    assert by_system["grouping-ppi"].primary_degree is PrivacyDegree.NO_GUARANTEE
    assert by_system["grouping-ppi"].common_degree is PrivacyDegree.NO_GUARANTEE
    assert by_system["ss-ppi"].primary_degree is PrivacyDegree.NO_GUARANTEE
    assert by_system["ss-ppi"].common_degree is PrivacyDegree.NO_PROTECT
    assert by_system["eps-ppi"].primary_degree is PrivacyDegree.EPS_PRIVATE
    assert by_system["eps-ppi"].common_degree is PrivacyDegree.EPS_PRIVATE
