"""Service load: throughput and latency vs concurrent searchers.

Beyond the paper's single-searcher evaluation: the PPI server is a shared
third-party service, so a deployment question is how query latency degrades
under load.  The single-threaded server model serializes index lookups;
provider endpoints absorb AuthSearch fan-outs in parallel, so the server is
the contention point.
"""

import numpy as np

from repro.analysis.reporting import format_series
from repro.core.construction import construct_epsilon_ppi
from repro.core.model import InformationNetwork
from repro.core.policies import ChernoffPolicy
from repro.service import run_concurrent_searchers

M = 80
N_IDS = 120
QUERIES_PER_SEARCHER = 15
SEARCHER_COUNTS = [1, 8, 64, 512]


def run_service_load(seed: int = 0):
    rng = np.random.default_rng(seed)
    net = InformationNetwork(M)
    for j in range(N_IDS):
        owner = net.register_owner(f"o{j}", float(rng.uniform(0.2, 0.7)))
        for pid in rng.choice(M, size=int(rng.integers(1, 5)), replace=False):
            net.delegate(owner, int(pid))
    index = construct_epsilon_ppi(net, ChernoffPolicy(0.9), rng).index

    series = {"throughput-qps": [], "mean-latency-ms": []}
    for k in SEARCHER_COUNTS:
        query_lists = [
            [int(q) for q in rng.integers(0, N_IDS, size=QUERIES_PER_SEARCHER)]
            for _ in range(k)
        ]
        run = run_concurrent_searchers(net, index, query_lists)
        series["throughput-qps"].append(run.throughput_qps)
        series["mean-latency-ms"].append(run.mean_latency_s * 1e3)
    return series


def test_service_load(benchmark, report):
    series = benchmark.pedantic(run_service_load, rounds=1, iterations=1)
    report(
        f"Service load: {QUERIES_PER_SEARCHER} queries/searcher (m={M})",
        format_series("searchers", SEARCHER_COUNTS, series),
    )
    qps = series["throughput-qps"]
    latency = series["mean-latency-ms"]
    # Concurrency buys throughput (searchers overlap their own think time)...
    assert qps[-1] > qps[0]
    # ...but scaling turns sub-linear once the single-threaded server
    # saturates, and queueing shows up as latency.
    scale = SEARCHER_COUNTS[-1] / SEARCHER_COUNTS[0]
    assert qps[-1] < scale * qps[0]
    assert latency[-1] > latency[0]
