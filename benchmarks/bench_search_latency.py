"""End-to-end search latency of the deployed locator service.

Complements `bench_search_overhead.py` (list sizes) with the operational
metric: wall-clock latency of the two-phase search on the simulated LAN,
for ǫ-PPI vs the grouping baseline vs the no-privacy floor, under the same
query workload.  The paper's qualitative claim: ǫ-PPI's personalized noise
costs moderate latency, while grouping effectively broadcasts.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.baselines.grouping import GroupingPPI
from repro.baselines.no_privacy import PlainIndex
from repro.core.index import PPIIndex
from repro.core.model import InformationNetwork
from repro.core.policies import ChernoffPolicy
from repro.core.construction import construct_epsilon_ppi
from repro.datasets.workload import uniform_workload
from repro.service import run_locator_service

M = 120
N_IDS = 200
N_QUERIES = 40
N_GROUPS = 12


def build_network(seed: int) -> InformationNetwork:
    rng = np.random.default_rng(seed)
    net = InformationNetwork(M)
    for j in range(N_IDS):
        owner = net.register_owner(f"owner-{j}", float(rng.uniform(0.2, 0.8)))
        freq = int(rng.integers(1, 6))
        for pid in rng.choice(M, size=freq, replace=False):
            net.delegate(owner, int(pid))
    return net


def run_search_latency(seed: int = 0):
    net = build_network(seed)
    matrix = net.membership_matrix()
    rng = np.random.default_rng(seed + 1)
    queries = uniform_workload(N_IDS, N_QUERIES, rng).owner_ids.tolist()

    indexes = {}
    result = construct_epsilon_ppi(net, ChernoffPolicy(0.9), rng)
    indexes["e-ppi"] = result.index
    grouping = GroupingPPI(N_GROUPS).construct(matrix, rng)
    indexes["grouping"] = PPIIndex(grouping.published)
    indexes["no-privacy"] = PPIIndex(PlainIndex().construct(matrix))

    rows = {}
    for name, index in indexes.items():
        run = run_locator_service(net, index, queries=queries)
        rows[name] = {
            "mean_latency_ms": run.mean_latency_s * 1e3,
            "mean_contacted": run.mean_contacted,
            "recall": run.recall,
        }
    return rows


def test_search_latency(benchmark, report):
    rows = benchmark.pedantic(run_search_latency, rounds=1, iterations=1)
    report(
        f"Search latency: two-phase lookup on simulated LAN "
        f"(m={M}, {N_QUERIES} uniform queries)",
        format_table(
            ["system", "mean-latency-ms", "mean-contacted", "recall"],
            [
                [name, row["mean_latency_ms"], row["mean_contacted"], row["recall"]]
                for name, row in rows.items()
            ],
        ),
    )
    # Recall is perfect everywhere (truthful-publication rule).
    assert all(row["recall"] == 1.0 for row in rows.values())
    # Cost ordering: floor < e-PPI < grouping.
    assert (
        rows["no-privacy"]["mean_contacted"]
        < rows["e-ppi"]["mean_contacted"]
        < rows["grouping"]["mean_contacted"]
    )
    assert rows["e-ppi"]["mean_latency_ms"] < rows["grouping"]["mean_latency_ms"]
