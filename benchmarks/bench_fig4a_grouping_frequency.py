"""Fig. 4a reproduction: success ratio vs identity frequency.

Paper setup: m = 10,000 providers, expected false-positive rate ǫ = 0.8,
identity frequency swept 34 -> 446, 20 samples averaged.  Systems:
non-grouping ǫ-PPI (IncExp Δ=0.01, Chernoff γ=0.9) vs grouping PPI with
400 / 1000 / 2500 groups.

Expected shape: both non-grouping series pinned near 1.0; grouping series
fluctuate between 0 and 1 across frequencies (small per-group sample space).
"""

import numpy as np

from repro.analysis.experiments import grouping_success_ratio, policy_success_ratio
from repro.analysis.reporting import format_series
from repro.core.policies import ChernoffPolicy, IncrementedExpectationPolicy

M = 10_000
EPSILON = 0.8
FREQUENCIES = [34, 67, 100, 134, 176, 234, 446]
GROUP_COUNTS = [400, 1000, 2500]
SAMPLES = 20


def run_fig4a(seed: int = 0):
    rng = np.random.default_rng(seed)
    series: dict[str, list[float]] = {
        "nongrouping-incexp-0.01": [],
        "nongrouping-chernoff-0.9": [],
    }
    for g in GROUP_COUNTS:
        series[f"grouping-{g}"] = []
    for freq in FREQUENCIES:
        series["nongrouping-incexp-0.01"].append(
            policy_success_ratio(
                M, freq, EPSILON, IncrementedExpectationPolicy(0.01), rng, SAMPLES
            )
        )
        series["nongrouping-chernoff-0.9"].append(
            policy_success_ratio(M, freq, EPSILON, ChernoffPolicy(0.9), rng, SAMPLES)
        )
        for g in GROUP_COUNTS:
            series[f"grouping-{g}"].append(
                grouping_success_ratio(M, freq, EPSILON, g, rng, SAMPLES)
            )
    return series


def test_fig4a_success_ratio_vs_frequency(benchmark, report):
    series = benchmark.pedantic(run_fig4a, rounds=1, iterations=1)
    report(
        "Fig. 4a: success ratio vs identity frequency (m=10000, eps=0.8)",
        format_series("frequency", FREQUENCIES, series),
    )
    # Paper shape: non-grouping near-optimal everywhere.
    assert min(series["nongrouping-chernoff-0.9"]) >= 0.9
    assert min(series["nongrouping-incexp-0.01"]) >= 0.5
    # Grouping with many groups (2500) is unstable/degraded at eps=0.8.
    assert min(series["grouping-2500"]) < 0.5
