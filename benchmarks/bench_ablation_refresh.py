"""Ablation: index refresh — fresh noise vs sticky noise.

The paper's repeated-attack resistance (Sec. III-C) relies on the index
being static.  This bench quantifies what happens when the index is
reconstructed k times: with *fresh* randomness the multi-version
intersection attack strips the noise (attacker confidence → 1), while the
sticky-noise extension (PRF-derived flip coins, `repro/core/sticky.py`)
pins the intersection to the first version.
"""

import numpy as np

from repro.analysis.reporting import format_series
from repro.attacks.intersection import intersection_attack
from repro.core.publication import publish_matrix
from repro.core.sticky import sticky_publish_matrix
from repro.datasets.synthetic import exact_frequency_matrix

M = 300
N_IDS = 50
BETA = 0.4
VERSION_COUNTS = [1, 2, 4, 8, 16]


def run_refresh_ablation(seed: int = 0):
    rng = np.random.default_rng(seed)
    freqs = [int(f) for f in np.random.default_rng(seed + 1).integers(2, 10, N_IDS)]
    matrix = exact_frequency_matrix(M, freqs, rng)
    betas = np.full(N_IDS, BETA)
    keys = [bytes([p % 256, p // 256]) * 8 for p in range(M)]

    fresh_versions = [
        publish_matrix(matrix, betas, rng) for _ in range(max(VERSION_COUNTS))
    ]
    sticky_versions = [
        sticky_publish_matrix(matrix, betas, keys)
        for _ in range(max(VERSION_COUNTS))
    ]

    series = {"fresh-noise": [], "sticky-noise": []}
    for k in VERSION_COUNTS:
        series["fresh-noise"].append(
            intersection_attack(matrix, fresh_versions[:k]).mean_confidence
        )
        series["sticky-noise"].append(
            intersection_attack(matrix, sticky_versions[:k]).mean_confidence
        )
    return series


def test_ablation_refresh_intersection(benchmark, report):
    series = benchmark.pedantic(run_refresh_ablation, rounds=1, iterations=1)
    report(
        "Ablation: intersection-attack confidence vs republication count "
        f"(m={M}, beta={BETA})",
        format_series("versions", VERSION_COUNTS, series),
    )
    fresh, sticky = series["fresh-noise"], series["sticky-noise"]
    # Fresh noise erodes: confidence climbs toward certainty.
    assert fresh[-1] > 0.95
    assert all(a <= b + 1e-9 for a, b in zip(fresh, fresh[1:]))
    # Sticky noise: confidence never grows past the single-version level.
    assert sticky[-1] == sticky[0]
