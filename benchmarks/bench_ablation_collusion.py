"""Ablation: the collusion-tolerance knob c.

The (2c-3)-secrecy of SecSumShare means larger c tolerates more colluding
providers -- at the price of more shares, more ring messages and a bigger
CountBelow circuit.  This bench sweeps c at fixed network size and reports
the cost side of the trade-off.
"""

import random

from repro.analysis.reporting import format_series
from repro.core.policies import ChernoffPolicy
from repro.mpc.betacalc import secure_beta_calculation
from repro.protocol import run_distributed_construction

M = 16
N_IDS = 3
C_VALUES = [2, 3, 4, 6, 8]


def run_collusion_ablation(seed: int = 0):
    rng = random.Random(seed)
    bits = [[rng.randint(0, 1) for _ in range(N_IDS)] for _ in range(M)]
    eps = [0.5] * N_IDS
    series = {
        "circuit-size": [],
        "mpc-and-gates": [],
        "execution-time-s": [],
        "collusion-tolerance": [],
    }
    for c in C_VALUES:
        res = secure_beta_calculation(
            bits, eps, ChernoffPolicy(0.9), c=c, rng=random.Random(seed)
        )
        sim = run_distributed_construction(
            bits, eps, ChernoffPolicy(0.9), c=c, rng=random.Random(seed)
        )
        series["circuit-size"].append(res.total_circuit_size)
        series["mpc-and-gates"].append(res.total_and_gates)
        series["execution-time-s"].append(sim.execution_time_s)
        series["collusion-tolerance"].append(2 * c - 3)
    return series


def test_ablation_collusion_parameter(benchmark, report):
    series = benchmark.pedantic(run_collusion_ablation, rounds=1, iterations=1)
    report(
        "Ablation: cost vs collusion parameter c (m=16, 3 identities)",
        format_series("c", C_VALUES, series),
    )
    # More shares => strictly more secure-sum work in the circuit.
    assert series["circuit-size"][-1] > series["circuit-size"][0]
    assert series["mpc-and-gates"][-1] > series["mpc-and-gates"][0]
    # Tolerance grows linearly by design.
    assert series["collusion-tolerance"] == [2 * c - 3 for c in C_VALUES]
