"""Fig. 5a reproduction: β-policy quality vs term frequency.

Paper setup: m = 10,000 providers, ǫ = 0.5, Δ = 0.02, γ = 0.9; identity
frequency swept from near 0 to ~500 providers.

Expected shape: Chernoff ~1.0 across the sweep; basic ~0.5 flat; incremented
expectation close to 1.0 at low frequency but degrading for frequent terms.
"""

import numpy as np

from repro.analysis.experiments import policy_success_ratio
from repro.analysis.reporting import format_series
from repro.core.policies import (
    BasicPolicy,
    ChernoffPolicy,
    IncrementedExpectationPolicy,
)

M = 10_000
EPSILON = 0.5
FREQUENCIES = [10, 50, 100, 200, 300, 400, 500]
SAMPLES = 400

POLICIES = {
    "basic": BasicPolicy(),
    "inc-exp-0.02": IncrementedExpectationPolicy(0.02),
    "chernoff-0.9": ChernoffPolicy(0.9),
}


def run_fig5a(seed: int = 0):
    rng = np.random.default_rng(seed)
    series = {name: [] for name in POLICIES}
    for freq in FREQUENCIES:
        for name, policy in POLICIES.items():
            series[name].append(
                policy_success_ratio(M, freq, EPSILON, policy, rng, SAMPLES)
            )
    return series


def test_fig5a_policies_vs_frequency(benchmark, report):
    series = benchmark.pedantic(run_fig5a, rounds=1, iterations=1)
    report(
        "Fig. 5a: policy success rate vs term frequency (m=10000, eps=0.5)",
        format_series("frequency", FREQUENCIES, series),
    )
    # Chernoff near-optimal everywhere.
    assert min(series["chernoff-0.9"]) >= 0.9
    # Basic fluctuates around 0.5.
    assert all(0.25 <= v <= 0.75 for v in series["basic"])
    # Inc-exp weaker at high frequency than at low (the paper's criticism).
    assert series["inc-exp-0.02"][-1] <= series["inc-exp-0.02"][0] + 0.05
    assert series["chernoff-0.9"][-1] >= series["basic"][-1]
