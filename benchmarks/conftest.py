"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures and prints the
rows/series (captured into the pytest output; see EXPERIMENTS.md for the
recorded paper-vs-measured comparison).  Use::

    pytest benchmarks/ --benchmark-only -s

to see the series inline.
"""

from __future__ import annotations

import pathlib
import re

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report(capsys, request):
    """Print a figure/table reproduction and persist it to
    ``benchmarks/results/<test-name>.txt`` for EXPERIMENTS.md."""

    def _report(title: str, body: str) -> None:
        with capsys.disabled():
            print(f"\n=== {title} ===")
            print(body)
        RESULTS_DIR.mkdir(exist_ok=True)
        name = re.sub(r"[^a-zA-Z0-9_]+", "_", request.node.name)
        (RESULTS_DIR / f"{name}.txt").write_text(f"{title}\n\n{body}\n")

    return _report
