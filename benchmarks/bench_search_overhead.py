"""Search-overhead bench (paper Sec. V-A2 / tech-report claim).

Measures the per-query search cost (providers contacted) of ǫ-PPI with the
Chernoff policy against the grouping baseline and the no-privacy floor, as
the privacy degree grows.  The paper's claim: "the high-level privacy
preservation of the Chernoff bound policy comes with reasonable search
overhead" -- i.e. cost grows smoothly with ǫ and stays below both grouping
(which tends toward query broadcast) and the m-provider broadcast ceiling.
"""

import numpy as np

from repro.analysis.experiments import search_cost_grouping, search_cost_nongrouping
from repro.analysis.reporting import format_series
from repro.core.policies import ChernoffPolicy

M = 2_000
FREQUENCY = 20
EPSILONS = [0.1, 0.3, 0.5, 0.7, 0.9]
N_GROUPS = 40


def run_search_overhead(seed: int = 0):
    rng = np.random.default_rng(seed)
    series = {"e-ppi-chernoff": [], "grouping": [], "no-privacy": []}
    for eps in EPSILONS:
        series["e-ppi-chernoff"].append(
            search_cost_nongrouping(M, FREQUENCY, eps, ChernoffPolicy(0.9), rng)
        )
        series["grouping"].append(
            search_cost_grouping(M, FREQUENCY, N_GROUPS, rng)
        )
        series["no-privacy"].append(float(FREQUENCY))
    return series


def test_search_overhead_vs_epsilon(benchmark, report):
    series = benchmark.pedantic(run_search_overhead, rounds=1, iterations=1)
    report(
        "Search overhead: providers contacted per query vs epsilon "
        f"(m={M}, frequency={FREQUENCY})",
        format_series("epsilon", EPSILONS, series),
    )
    eppi = series["e-ppi-chernoff"]
    # Cost is the personalized knob: grows monotonically with epsilon...
    assert all(a <= b for a, b in zip(eppi, eppi[1:]))
    # ...never below the truthful floor, never at the broadcast ceiling
    # until eps -> 1.
    assert eppi[0] >= FREQUENCY
    assert eppi[-2] < M
    # Grouping pays a flat high cost regardless of privacy wishes.
    assert min(series["grouping"]) > eppi[1]
