"""Fig. 5b reproduction: β-policy quality vs number of providers.

Paper setup: fractional identity frequency σ = 0.1, ǫ = 0.5, Δ = 0.02,
γ = 0.9; provider count swept 8 -> 8192.

Expected shape: Chernoff ~1.0 for every network size; basic around 0.5;
incremented expectation degraded for few providers (small-sample noise) and
recovering as m grows.
"""

import numpy as np

from repro.analysis.experiments import policy_success_ratio
from repro.analysis.reporting import format_series
from repro.core.policies import (
    BasicPolicy,
    ChernoffPolicy,
    IncrementedExpectationPolicy,
)

SIGMA = 0.1
EPSILON = 0.5
PROVIDER_COUNTS = [8, 32, 128, 512, 2048, 8192]
SAMPLES = 400

POLICIES = {
    "basic": BasicPolicy(),
    "inc-exp-0.02": IncrementedExpectationPolicy(0.02),
    "chernoff-0.9": ChernoffPolicy(0.9),
}


def run_fig5b(seed: int = 0):
    rng = np.random.default_rng(seed)
    series = {name: [] for name in POLICIES}
    for m in PROVIDER_COUNTS:
        freq = max(1, round(SIGMA * m))
        for name, policy in POLICIES.items():
            series[name].append(
                policy_success_ratio(m, freq, EPSILON, policy, rng, SAMPLES)
            )
    return series


def test_fig5b_policies_vs_providers(benchmark, report):
    series = benchmark.pedantic(run_fig5b, rounds=1, iterations=1)
    report(
        "Fig. 5b: policy success rate vs provider count (sigma=0.1, eps=0.5)",
        format_series("providers", PROVIDER_COUNTS, series),
    )
    # Chernoff near-optimal at every network size, including tiny ones.
    assert min(series["chernoff-0.9"]) >= 0.85
    # Inc-exp weakest at the smallest network, recovering with size.
    assert series["inc-exp-0.02"][0] < series["inc-exp-0.02"][-1]
    # Basic stays far from 1.0 at scale (expectation-only guarantee).
    assert series["basic"][-1] < 0.75
