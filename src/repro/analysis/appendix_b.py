"""Executable Appendix B: the grouping-PPI vulnerability analysis.

The paper's Appendix B argues two weaknesses of grouping PPIs analytically;
this module makes both arguments executable so the tests can check them on
concrete instances:

* **Primary attack / NO GUARANTEE** -- the false-positive rate of a group
  list is an accident of the random assignment: two identical runs with
  different group draws realize very different fp rates, and per-term
  targets are unreachable because all terms share one assignment
  (:func:`grouping_fp_spread`).
* **Common-term attack** -- the paper's extreme example: one term with
  100 % frequency while every other term is rare.  With ≥ 2 groups, rare
  terms light up one group each but the common term lights up *all*
  groups, so it is identifiable with certainty whatever the grouping
  (:func:`common_term_exposure`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.grouping import GroupingPPI
from repro.core.model import MembershipMatrix

__all__ = [
    "GroupingSpread",
    "grouping_fp_spread",
    "CommonTermExposure",
    "common_term_exposure",
]


@dataclass
class GroupingSpread:
    """Realized fp-rate statistics of one term across repeated groupings."""

    term: int
    fp_rates: np.ndarray
    spread: float  # max - min over runs

    @property
    def unstable(self) -> bool:
        """True when the privacy level is materially assignment-dependent."""
        return self.spread > 0.1


def grouping_fp_spread(
    matrix: MembershipMatrix,
    term: int,
    n_groups: int,
    rng: np.random.Generator,
    runs: int = 30,
) -> GroupingSpread:
    """Realized fp rate of ``term`` over ``runs`` independent groupings."""
    fp_rates = []
    for _ in range(runs):
        result = GroupingPPI(n_groups).construct(matrix, rng)
        published = result.published[:, term]
        listed = int(published.sum())
        true = matrix.frequency(term)
        fp_rates.append(0.0 if listed == 0 else (listed - true) / listed)
    fp_rates = np.array(fp_rates)
    return GroupingSpread(
        term=term,
        fp_rates=fp_rates,
        spread=float(fp_rates.max() - fp_rates.min()),
    )


@dataclass
class CommonTermExposure:
    """Outcome of the Appendix-B extreme-case common-term analysis."""

    common_term: int
    groups_lit_by_common: int
    max_groups_lit_by_rare: int
    n_groups: int

    @property
    def identifiable_with_certainty(self) -> bool:
        """The common term is the unique all-groups term."""
        return (
            self.groups_lit_by_common == self.n_groups
            and self.max_groups_lit_by_rare < self.n_groups
        )


def common_term_exposure(
    m: int,
    n_rare: int,
    n_groups: int,
    rng: np.random.Generator,
) -> CommonTermExposure:
    """Instantiate the extreme case and measure group-level exposure.

    Term 0 appears at every provider; ``n_rare`` other terms appear at one
    provider each.
    """
    if n_groups < 2:
        raise ValueError("the argument needs at least 2 groups")
    matrix = MembershipMatrix(m, n_rare + 1)
    for pid in range(m):
        matrix.set(pid, 0)
    for j in range(1, n_rare + 1):
        matrix.set(int(rng.integers(m)), j)

    result = GroupingPPI(n_groups).construct(matrix, rng)
    reports = result.group_reports
    common_lit = int(reports[:, 0].sum())
    rare_lit = int(reports[:, 1:].sum(axis=0).max()) if n_rare else 0
    return CommonTermExposure(
        common_term=0,
        groups_lit_by_common=common_lit,
        max_groups_lit_by_rare=rare_lit,
        n_groups=n_groups,
    )
