"""Owner-facing privacy audit.

A deployed locator service owes its owners an answer to "am I getting the
privacy I asked for?".  :func:`audit_index` produces a per-owner audit of a
published index against the ground truth: requested degree, achieved
false-positive rate, attacker-confidence bound, whether the personal
guarantee holds, and the price paid (published list size).

This is the operational counterpart of the paper's success-ratio metric:
the same numbers, reported per owner instead of aggregated, plus the
common-identity treatment (broadcast owners are flagged as protected by
identity anonymity rather than false positives).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError
from repro.core.model import MembershipMatrix
from repro.core.privacy import published_false_positive_rates

__all__ = ["OwnerAudit", "IndexAudit", "audit_index"]


@dataclass(frozen=True)
class OwnerAudit:
    """One owner's privacy audit entry."""

    owner_id: int
    name: str
    epsilon: float
    true_frequency: int
    published_size: int
    false_positive_rate: float
    attacker_confidence: float
    satisfied: bool  # fp >= epsilon (the personal guarantee)
    broadcast: bool  # published everywhere: identity-anonymity regime


@dataclass
class IndexAudit:
    """Aggregate + per-owner audit of one published index."""

    owners: list[OwnerAudit]
    success_ratio: float
    broadcast_count: int
    worst_violation: float  # max (epsilon - fp) over violators, 0 if none

    def violators(self) -> list[OwnerAudit]:
        return [o for o in self.owners if not o.satisfied and not o.broadcast]


def audit_index(
    matrix: MembershipMatrix,
    published: np.ndarray,
    epsilons: np.ndarray,
    owner_names: list[str] | None = None,
) -> IndexAudit:
    """Audit ``published`` against ground truth and the owners' degrees.

    Broadcast owners (published at every provider) are counted as satisfied
    iff their requested rate is achievable at all; their protection is the
    identity-mixing guarantee, which this per-column audit cannot see (use
    :func:`repro.attacks.common_identity.common_identity_attack` for that).
    """
    published = np.asarray(published, dtype=np.uint8)
    epsilons = np.asarray(epsilons, dtype=float)
    if epsilons.shape != (matrix.n_owners,):
        raise ModelError("need one epsilon per owner")
    if owner_names is not None and len(owner_names) != matrix.n_owners:
        raise ModelError("need one name per owner")

    fp = published_false_positive_rates(matrix, published)
    sizes = published.sum(axis=0)
    m = matrix.n_providers

    owners: list[OwnerAudit] = []
    satisfied_count = 0
    broadcast_count = 0
    worst = 0.0
    for j in range(matrix.n_owners):
        freq = matrix.frequency(j)
        broadcast = int(sizes[j]) == m
        satisfied = bool(fp[j] >= epsilons[j])
        if broadcast:
            broadcast_count += 1
        if satisfied:
            satisfied_count += 1
        elif not broadcast:
            worst = max(worst, float(epsilons[j] - fp[j]))
        owners.append(
            OwnerAudit(
                owner_id=j,
                name=owner_names[j] if owner_names else f"owner-{j}",
                epsilon=float(epsilons[j]),
                true_frequency=freq,
                published_size=int(sizes[j]),
                false_positive_rate=float(fp[j]),
                attacker_confidence=float(1.0 - fp[j]),
                satisfied=satisfied,
                broadcast=broadcast,
            )
        )
    return IndexAudit(
        owners=owners,
        success_ratio=satisfied_count / max(1, matrix.n_owners),
        broadcast_count=broadcast_count,
        worst_violation=worst,
    )
