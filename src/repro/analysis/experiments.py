"""Experiment harness: the computations behind every figure and table.

Each function here regenerates one measurement kind from the paper's
Sec. V; the benchmark scripts under ``benchmarks/`` are thin wrappers that
sweep parameters and print the series.  Keeping the logic importable means
the test suite can assert the paper's qualitative claims (who wins, where
things collapse) on smaller instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.adversary import AdversaryKnowledge
from repro.attacks.common_identity import common_identity_attack
from repro.attacks.primary import primary_attack_confidences
from repro.baselines.grouping import GroupingPPI
from repro.baselines.ss_ppi import SSPPI
from repro.core.mixing import mix_betas
from repro.core.model import MembershipMatrix
from repro.core.policies import BetaPolicy
from repro.core.privacy import PrivacyDegree, classify_degree
from repro.core.publication import (
    false_positive_rates,
    publish_matrix,
    sample_false_positive_counts,
)

__all__ = [
    "policy_success_ratio",
    "grouping_success_ratio",
    "search_cost_nongrouping",
    "search_cost_grouping",
    "Table2Row",
    "table2_experiment",
]


def policy_success_ratio(
    m: int,
    frequency: int,
    epsilon: float,
    policy: BetaPolicy,
    rng: np.random.Generator,
    samples: int = 200,
) -> float:
    """Empirical ``pp = Pr(fp_j ≥ ǫ_j)`` for one identity under a policy.

    Uses the Binomial fast path of :mod:`repro.core.publication` (identical
    in distribution to per-cell flipping) so 10,000-provider sweeps match
    the paper's scale.
    """
    if not 0 <= frequency <= m:
        raise ValueError(f"frequency {frequency} outside [0, {m}]")
    sigma = frequency / m
    beta = policy.beta(sigma, epsilon, m)
    freqs = np.full(samples, frequency, dtype=np.int64)
    betas = np.full(samples, beta, dtype=float)
    fps = false_positive_rates(
        freqs, sample_false_positive_counts(freqs, betas, m, rng)
    )
    return float(np.mean(fps >= epsilon))


def grouping_success_ratio(
    m: int,
    frequency: int,
    epsilon: float,
    n_groups: int,
    rng: np.random.Generator,
    samples: int = 20,
) -> float:
    """Empirical success ratio of a grouping PPI for one identity.

    Per sample, the ``frequency`` positive providers land in random groups;
    the published list is the union of the positive groups, so
    ``fp = (list − f) / list``.  Uniform group sizes ``m / n_groups`` are
    used, matching the balanced random assignment of the baselines.
    """
    if not 0 <= frequency <= m:
        raise ValueError(f"frequency {frequency} outside [0, {m}]")
    if frequency == 0:
        return 1.0  # nothing published, nothing disclosed
    group_size = m / n_groups
    successes = 0
    for _ in range(samples):
        groups = rng.integers(0, n_groups, size=frequency)
        positive_groups = len(np.unique(groups))
        list_size = positive_groups * group_size
        fp = (list_size - frequency) / list_size
        if fp >= epsilon:
            successes += 1
    return successes / samples


def search_cost_nongrouping(
    m: int, frequency: int, epsilon: float, policy: BetaPolicy,
    rng: np.random.Generator, samples: int = 100,
) -> float:
    """Mean published-list size (providers contacted per query) for ǫ-PPI."""
    sigma = frequency / m
    beta = policy.beta(sigma, epsilon, m)
    freqs = np.full(samples, frequency, dtype=np.int64)
    betas = np.full(samples, beta, dtype=float)
    fps = sample_false_positive_counts(freqs, betas, m, rng)
    return float(np.mean(fps + frequency))


def search_cost_grouping(
    m: int, frequency: int, n_groups: int, rng: np.random.Generator,
    samples: int = 100,
) -> float:
    """Mean published-list size for a grouping PPI."""
    if frequency == 0:
        return 0.0
    group_size = m / n_groups
    sizes = []
    for _ in range(samples):
        groups = rng.integers(0, n_groups, size=frequency)
        sizes.append(len(np.unique(groups)) * group_size)
    return float(np.mean(sizes))


@dataclass
class Table2Row:
    """One row of the Table II reproduction."""

    system: str
    primary_degree: PrivacyDegree
    common_degree: PrivacyDegree
    primary_mean_confidence: float
    common_identification_confidence: float


def table2_experiment(
    matrix: MembershipMatrix,
    epsilons: np.ndarray,
    policy: BetaPolicy,
    n_groups: int,
    rng: np.random.Generator,
    commonness_threshold: float = 0.95,
    required_fraction: float = 0.9,
) -> list[Table2Row]:
    """Empirically derive Table II: attack all three systems, classify.

    ``matrix`` should contain common identities (frequency ≥ threshold) for
    the common-identity columns to be meaningful.
    """
    epsilons = np.asarray(epsilons, dtype=float)
    rows: list[Table2Row] = []

    # -- Grouping PPI [12, 13] ------------------------------------------------
    grouping = GroupingPPI(n_groups).construct(
        matrix, np.random.default_rng(rng.integers(2**63))
    )
    knowledge = AdversaryKnowledge(published=grouping.published)
    rows.append(
        _classify(
            "grouping-ppi", matrix, knowledge, epsilons, rng,
            commonness_threshold, required_fraction, construction_leak=False,
        )
    )

    # -- SS-PPI [22]: same index family + frequency leak ---------------------------
    ss = SSPPI(n_groups).construct(matrix, np.random.default_rng(rng.integers(2**63)))
    knowledge = AdversaryKnowledge(
        published=ss.published, leaked_frequencies=ss.leaked_frequencies
    )
    rows.append(
        _classify(
            "ss-ppi", matrix, knowledge, epsilons, rng,
            commonness_threshold, required_fraction, construction_leak=True,
        )
    )

    # -- ǫ-PPI ------------------------------------------------------------------
    np_rng = np.random.default_rng(rng.integers(2**63))
    sigmas = np.array([matrix.sigma(j) for j in range(matrix.n_owners)])
    betas = policy.beta_vector(sigmas, epsilons, matrix.n_providers)
    mixing = mix_betas(betas, epsilons, np_rng)
    published = publish_matrix(matrix, mixing.betas, np_rng)
    knowledge = AdversaryKnowledge(published=published)
    rows.append(
        _classify(
            "eps-ppi", matrix, knowledge, epsilons, rng,
            commonness_threshold, required_fraction, construction_leak=False,
        )
    )
    return rows


def _classify(
    system: str,
    matrix: MembershipMatrix,
    knowledge: AdversaryKnowledge,
    epsilons: np.ndarray,
    rng: np.random.Generator,
    commonness_threshold: float,
    required_fraction: float,
    construction_leak: bool,
) -> Table2Row:
    primary_conf = primary_attack_confidences(matrix, knowledge)
    primary_degree = classify_degree(
        primary_conf, epsilons, required_fraction=required_fraction
    )

    common = common_identity_attack(
        matrix,
        knowledge,
        np.random.default_rng(rng.integers(2**63)),
        commonness_threshold=commonness_threshold,
    )
    if not common.attacked:
        common_degree = PrivacyDegree.UNLEAKED
    elif construction_leak and common.identification_confidence >= 0.999:
        # The construction itself handed out exact frequencies: attacks
        # succeed with certainty regardless of the data (NO PROTECT).
        common_degree = PrivacyDegree.NO_PROTECT
    else:
        # Degree against the common-identity attack is judged on the
        # attacker's ability to pick out true commons (bounded by 1 − ξ for
        # ǫ-PPI, unbounded for grouping, exact for SS-PPI's leak).
        common_eps = np.array(
            [epsilons[j] for j in common.truly_common], dtype=float
        )
        if len(common_eps) == 0:
            common_degree = PrivacyDegree.UNLEAKED
        else:
            conf = np.full(len(common_eps), common.identification_confidence)
            common_degree = classify_degree(conf, common_eps)
            if common_degree is PrivacyDegree.NO_PROTECT and not construction_leak:
                # Full empirical certainty through the *public* channel is
                # data-dependent, not structural: NO GUARANTEE (Appendix B).
                common_degree = PrivacyDegree.NO_GUARANTEE
    return Table2Row(
        system=system,
        primary_degree=primary_degree,
        common_degree=common_degree,
        primary_mean_confidence=float(primary_conf.mean()),
        common_identification_confidence=common.identification_confidence,
    )
