"""Experiment harness and reporting used by the ``benchmarks/`` scripts."""

from repro.analysis.appendix_b import (
    CommonTermExposure,
    GroupingSpread,
    common_term_exposure,
    grouping_fp_spread,
)
from repro.analysis.audit import IndexAudit, OwnerAudit, audit_index
from repro.analysis.cost_model import ConstructionCostModel, CostEstimate
from repro.analysis.experiments import (
    Table2Row,
    grouping_success_ratio,
    policy_success_ratio,
    search_cost_grouping,
    search_cost_nongrouping,
    table2_experiment,
)
from repro.analysis.reporting import format_series, format_table

__all__ = [
    "CommonTermExposure",
    "ConstructionCostModel",
    "CostEstimate",
    "GroupingSpread",
    "IndexAudit",
    "OwnerAudit",
    "Table2Row",
    "audit_index",
    "common_term_exposure",
    "grouping_fp_spread",
    "format_series",
    "format_table",
    "grouping_success_ratio",
    "policy_success_ratio",
    "search_cost_grouping",
    "search_cost_nongrouping",
    "table2_experiment",
]
