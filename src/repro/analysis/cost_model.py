"""Closed-form per-phase cost model for the secure β construction.

Answers, without running any MPC, three questions about a construction over
``m`` providers, ``n`` identities, and ``c`` coordinators:

* **setup** -- what the one-time base-OT emulation costs on the wire;
* **offline** -- what producing the construction's Beaver triples costs
  through the OT-extension pipeline (bits, messages, rounds), and exactly
  *how many* bitsliced triple words the engines will draw -- the number the
  :class:`~repro.mpc.offline.factory.TripleFactory` is provisioned with;
* **online** -- the GMW evaluation's communication, replicated analytically
  from the staged schedule in :mod:`repro.mpc.countbelow` via the same
  :func:`~repro.mpc.gmw.expected_stats` accounting the engines use, so the
  model is *exact* against measured engine stats (asserted in the tests).

Shaped after pia-mpc's ``complexity.py`` phase model, but in closed form
without a symbolic-algebra dependency: every estimate carries a human-
readable ``formula`` string alongside its evaluated value.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

from repro.mpc.countbelow import (
    EPSILON_SCALE_BITS,
    _pair_max_circuit,
    _pair_sum_circuit,
    build_count_identity_circuit,
    build_selection_identity_circuit,
)
from repro.mpc.field import default_modulus_for_sum
from repro.mpc.gmw import GMWStats, account_output_opening, expected_stats
from repro.mpc.offline.factory import DEFAULT_BLOCK_WORDS
from repro.mpc.offline.generator import BASE_OT_BITS_PER_OT, KAPPA
from repro.net.transport import HEADER_BITS

__all__ = ["CostEstimate", "ConstructionCostModel"]


@dataclass(frozen=True)
class CostEstimate:
    """One phase's predicted wire cost, with its derivation."""

    bits_sent: int
    messages: int
    rounds: int
    formula: str

    @property
    def bytes_sent(self) -> float:
        return self.bits_sent / 8


class ConstructionCostModel:
    """Per-phase costs of one secure construction, in closed form.

    Parameterized by the protocol sizes (``m`` providers, ``n_identities``,
    ``c`` coordinators), the engine's batch width ``lanes``, and the offline
    pipeline's shape (``kappa``, ``block_words``, ``producers``).  The
    online/demand numbers cover the decomposed engines (``scalar`` /
    ``batch``); the monolithic engine's circuit depends on the concrete
    threshold vector and is priced directly from its built circuit instead
    (see :mod:`repro.mpc.betacalc`).
    """

    def __init__(
        self,
        m: int,
        n_identities: int,
        c: int,
        lanes: int = 64,
        kappa: int = KAPPA,
        block_words: int = DEFAULT_BLOCK_WORDS,
        producers: int = 2,
        common_sigma_threshold: float = 0.5,
    ):
        if m < 1 or n_identities < 1 or c < 2:
            raise ValueError("need m >= 1, n_identities >= 1, c >= 2")
        if not 1 <= lanes <= 64:
            raise ValueError(f"lanes must be in [1, 64], got {lanes}")
        self.m = m
        self.n_identities = n_identities
        self.c = c
        self.lanes = lanes
        self.kappa = kappa
        self.block_words = block_words
        self.producers = producers
        self.modulus = default_modulus_for_sum(m)
        self.width = (self.modulus - 1).bit_length()
        self.high_threshold = max(1, math.ceil(common_sigma_threshold * m))

    # ------------------------------------------------------------------
    # Online phase: exact replication of the staged schedule.
    # ------------------------------------------------------------------
    def online_count_stats(self) -> GMWStats:
        """Exact GMW stats of the CountBelow stage (identity fleet + trees)."""
        stats = GMWStats(parties=self.c)
        circuit = build_count_identity_circuit(self.c, self.width, self.high_threshold)
        per = expected_stats(circuit, self.c, open_outputs=False)
        self._accumulate(stats, per, self.n_identities)
        widths = []
        for mode, width0 in (("sum", 1), ("sum", 1), ("max", EPSILON_SCALE_BITS)):
            w = self._tree_stats(stats, mode, self.n_identities, width0)
            widths.append(w)
        account_output_opening(stats, self.c, sum(widths))
        return stats

    def online_selection_stats(self, lambda_scaled: int) -> GMWStats:
        """Exact GMW stats of the β-selection stage for a known λ."""
        stats = GMWStats(parties=self.c)
        circuit = build_selection_identity_circuit(self.c, self.width, lambda_scaled)
        per = expected_stats(circuit, self.c, open_outputs=True)
        self._accumulate(stats, per, self.n_identities)
        return stats

    def online(self, lambda_scaled: int) -> CostEstimate:
        count = self.online_count_stats()
        sel = self.online_selection_stats(lambda_scaled)
        return CostEstimate(
            bits_sent=count.bits_sent + sel.bits_sent,
            messages=count.messages + sel.messages,
            rounds=count.rounds + sel.rounds,
            formula=(
                "sum over AND layers of 2*ands*c*(c-1) bits "
                "+ openings*c*(c-1) bits, over n identity circuits, "
                "3 reduction trees, and n selection circuits"
            ),
        )

    # ------------------------------------------------------------------
    # Incremental pass: closed-form price of a dirty-set-restricted run.
    # ------------------------------------------------------------------
    def incremental_count_stats(self, dirty: tuple[int, ...] | list[int]) -> GMWStats:
        """Exact GMW stats of ``update_count_below`` over this dirty set.

        Replicates the incremental schedule: one identity-circuit fleet of
        ``k = |dirty|`` instances, then per reduction tree only the pair
        circuits on the dirty leaves' root paths (the same parents/odd-carry
        walk as :func:`~repro.mpc.countbelow._secure_tree_update`), then the
        single three-root opening round.  Exact against measured stats.
        """
        stats = GMWStats(parties=self.c)
        dirty_ids = sorted(set(int(j) for j in dirty))
        if not dirty_ids:
            return stats
        circuit = build_count_identity_circuit(self.c, self.width, self.high_threshold)
        per = expected_stats(circuit, self.c, open_outputs=False)
        self._accumulate(stats, per, len(dirty_ids))
        widths = []
        for mode, width0 in (("sum", 1), ("sum", 1), ("max", EPSILON_SCALE_BITS)):
            levels, w = self._tree_update_walk(dirty_ids, width0, mode)
            for n_parents, c2 in levels:
                if n_parents:
                    per_pair = expected_stats(c2, self.c, open_outputs=False)
                    self._accumulate(stats, per_pair, n_parents)
            widths.append(w)
        account_output_opening(stats, self.c, sum(widths))
        return stats

    def incremental_selection_stats(
        self, n_subset: int, lambda_scaled: int
    ) -> GMWStats:
        """Exact GMW stats of β-selection restricted to ``n_subset`` identities."""
        stats = GMWStats(parties=self.c)
        if n_subset <= 0:
            return stats
        circuit = build_selection_identity_circuit(self.c, self.width, lambda_scaled)
        per = expected_stats(circuit, self.c, open_outputs=True)
        self._accumulate(stats, per, n_subset)
        return stats

    def incremental_online(
        self,
        dirty: tuple[int, ...] | list[int],
        n_subset: int,
        lambda_scaled: int,
    ) -> CostEstimate:
        """Wire cost of one incremental pass (dirty count + closure selection)."""
        count = self.incremental_count_stats(dirty)
        sel = self.incremental_selection_stats(n_subset, lambda_scaled)
        return CostEstimate(
            bits_sent=count.bits_sent + sel.bits_sent,
            messages=count.messages + sel.messages,
            rounds=count.rounds + sel.rounds,
            formula=(
                f"k({len(set(dirty))}) identity circuits + dirty-root-path "
                f"pair circuits over 3 trees + one 3-root opening + "
                f"closure({n_subset}) selection circuits"
            ),
        )

    def incremental_count_words(
        self, dirty: tuple[int, ...] | list[int], engine: str = "batch"
    ) -> int:
        """Triple words an incremental CountBelow pass consumes."""
        dirty_ids = sorted(set(int(j) for j in dirty))
        if not dirty_ids:
            return 0
        circuit = build_count_identity_circuit(self.c, self.width, self.high_threshold)
        ands = expected_stats(circuit, self.c, open_outputs=False).and_gates
        k = len(dirty_ids)
        triples = k * ands
        batch_words = math.ceil(k / self.lanes) * ands
        for mode, width0 in (("sum", 1), ("sum", 1), ("max", EPSILON_SCALE_BITS)):
            levels, _ = self._tree_update_walk(dirty_ids, width0, mode)
            for n_parents, c2 in levels:
                if n_parents:
                    pa = expected_stats(c2, self.c, open_outputs=False).and_gates
                    triples += n_parents * pa
                    batch_words += math.ceil(n_parents / self.lanes) * pa
        if engine == "batch":
            return batch_words
        return math.ceil(triples / 64)

    def incremental_selection_words(
        self, n_subset: int, lambda_scaled: int, engine: str = "batch"
    ) -> int:
        """Triple words a subset-restricted selection stage consumes."""
        if n_subset <= 0:
            return 0
        circuit = build_selection_identity_circuit(self.c, self.width, lambda_scaled)
        ands = expected_stats(circuit, self.c, open_outputs=True).and_gates
        if engine == "batch":
            return math.ceil(n_subset / self.lanes) * ands
        return math.ceil(n_subset * ands / 64)

    def incremental_total_words(
        self,
        dirty: tuple[int, ...] | list[int],
        n_subset: int,
        lambda_scaled: int,
        engine: str = "batch",
    ) -> int:
        return self.incremental_count_words(dirty, engine) + (
            self.incremental_selection_words(n_subset, lambda_scaled, engine)
        )

    def _tree_update_walk(
        self, dirty: list[int], width0: int, mode: str
    ) -> tuple[list[tuple[int, object]], int]:
        """Simulate one tree's dirty-path update; return per-level work.

        Mirrors :func:`~repro.mpc.countbelow._secure_tree_update` exactly:
        per level the re-evaluated parents are ``{j // 2 for dirty j in a
        pair}`` and an odd carry propagates for free.  Returns
        ``([(n_parents, pair_circuit), ...], root_width)``.
        """
        n, width = self.n_identities, width0
        dirty_set = set(dirty)
        levels: list[tuple[int, object]] = []
        while n > 1:
            n_pairs = n // 2
            parents = {j // 2 for j in dirty_set if j < 2 * n_pairs}
            carry = bool(n % 2) and (n - 1) in dirty_set
            circuit = (
                _pair_sum_circuit(width) if mode == "sum" else _pair_max_circuit(width)
            )
            levels.append((len(parents), circuit))
            dirty_set = set(parents)
            if carry:
                dirty_set.add(n_pairs)
            width = len(circuit.outputs)
            n = n_pairs + (n % 2)
        return levels, width

    # ------------------------------------------------------------------
    # Triple demand: how many 64-lane words the engines draw.
    # ------------------------------------------------------------------
    def count_phase_words(self, engine: str = "batch") -> int:
        """Triple words the CountBelow stage consumes."""
        deals = self._stage_profile()
        if engine == "batch":
            return deals["count_batch_words"]
        return math.ceil(deals["count_triples"] / 64)

    def selection_phase_words(self, lambda_scaled: int, engine: str = "batch") -> int:
        """Triple words the selection stage consumes (λ known post-count)."""
        circuit = build_selection_identity_circuit(self.c, self.width, lambda_scaled)
        ands = expected_stats(circuit, self.c, open_outputs=True).and_gates
        if engine == "batch":
            return math.ceil(self.n_identities / self.lanes) * ands
        return math.ceil(self.n_identities * ands / 64)

    def total_words(self, lambda_scaled: int, engine: str = "batch") -> int:
        return self.count_phase_words(engine) + self.selection_phase_words(
            lambda_scaled, engine
        )

    # ------------------------------------------------------------------
    # Setup phase: emulated base OTs.
    # ------------------------------------------------------------------
    def setup(self, producers: int | None = None) -> CostEstimate:
        p = self.producers if producers is None else producers
        pairs = self.c * (self.c - 1)
        bits = p * pairs * (self.kappa * BASE_OT_BITS_PER_OT + 2 * HEADER_BITS)
        return CostEstimate(
            bits_sent=bits,
            messages=p * pairs * 2,
            rounds=2,
            formula=(
                f"producers({p}) * c(c-1)({pairs}) * "
                f"(kappa({self.kappa}) * base_ot_bits({BASE_OT_BITS_PER_OT}) "
                f"+ 2*header({HEADER_BITS}))"
            ),
        )

    # ------------------------------------------------------------------
    # Offline phase: OT-extension triple production.
    # ------------------------------------------------------------------
    def offline(
        self,
        words: int,
        producers: int | None = None,
        block_words: int | None = None,
    ) -> CostEstimate:
        """Wire cost of producing ``words`` triple words through the factory.

        Mirrors the factory's chunked dispatch exactly: ``words`` split into
        ``ceil(words / block_words)`` block-sized chunks on the shared work
        queue, each block costing every ordered pair one ``64*n*kappa``-bit
        extension matrix plus ``64*n`` correction bits (2 messages).
        Rounds assume a balanced pool -- the slowest producer runs
        ``ceil(blocks / producers)`` sequential blocks of 2 rounds each --
        so measured rounds can exceed this slightly when the work queue's
        scheduling skews.
        """
        p = self.producers if producers is None else producers
        bw = self.block_words if block_words is None else block_words
        pairs = self.c * (self.c - 1)
        total_blocks = math.ceil(words / bw)
        bits = pairs * (64 * words * (self.kappa + 1)) + total_blocks * pairs * 2 * HEADER_BITS
        rounds = 2 * math.ceil(total_blocks / p)
        return CostEstimate(
            bits_sent=bits,
            messages=2 * pairs * total_blocks,
            rounds=rounds,
            formula=(
                f"c(c-1)({pairs}) * 64*words({words})*(kappa+1)({self.kappa + 1}) "
                f"+ blocks({total_blocks}) * c(c-1) * 2*header({HEADER_BITS}); "
                f"rounds = 2 * ceil(blocks/producers({p})), balanced pool"
            ),
        )

    # ------------------------------------------------------------------
    def describe(self, lambda_scaled: int, engine: str = "batch") -> str:
        """Human-readable per-phase breakdown (pia-mpc complexity style)."""
        words = self.total_words(lambda_scaled, engine)
        setup = self.setup()
        offline = self.offline(words)
        online = self.online(lambda_scaled)
        lines = [
            f"construction cost model: m={self.m} n={self.n_identities} "
            f"c={self.c} lanes={self.lanes} width={self.width}",
            f"  triple demand : {words} words "
            f"({self.count_phase_words(engine)} count "
            f"+ {self.selection_phase_words(lambda_scaled, engine)} selection)",
            f"  setup         : {setup.bits_sent} bits, {setup.rounds} rounds",
            f"                  <- {setup.formula}",
            f"  offline       : {offline.bits_sent} bits, {offline.rounds} rounds",
            f"                  <- {offline.formula}",
            f"  online        : {online.bits_sent} bits, {online.rounds} rounds",
            f"                  <- {online.formula}",
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _accumulate(self, stats: GMWStats, per: GMWStats, n: int) -> None:
        # Both engines aggregate per-instance accounting over instances --
        # the paper's cost model, under which lanes do not share rounds.
        stats.and_gates += per.and_gates * n
        stats.rounds += per.rounds * n
        stats.messages += per.messages * n
        stats.bits_sent += per.bits_sent * n
        stats.triples_consumed += per.triples_consumed * n

    def _tree_stats(self, stats: GMWStats, mode: str, n: int, width: int) -> int:
        """Accumulate one reduction tree's stats; return the final width."""
        while n > 1:
            circuit = (
                _pair_sum_circuit(width) if mode == "sum" else _pair_max_circuit(width)
            )
            per = expected_stats(circuit, self.c, open_outputs=False)
            n_pairs = n // 2
            self._accumulate(stats, per, n_pairs)
            out_width = len(circuit.outputs)
            n = n_pairs + (n % 2)
            width = out_width
        return width

    def _stage_profile(self) -> dict:
        """Per-stage AND/word profile of the CountBelow schedule."""
        return _stage_profile_cached(
            self.c, self.width, self.high_threshold, self.n_identities, self.lanes
        )


# Pricing the CountBelow schedule walks every reduction-tree level's
# circuit (~10 ms).  It is a pure function of these five scalars and sits
# on the factory-provisioning path, where it would delay production start,
# so memoize it module-wide.
@functools.lru_cache(maxsize=256)
def _stage_profile_cached(
    c: int, width: int, high_threshold: int, n_identities: int, lanes: int
) -> dict:
    count_triples = 0
    count_batch_words = 0
    circuit = build_count_identity_circuit(c, width, high_threshold)
    ands = expected_stats(circuit, c, open_outputs=False).and_gates
    count_triples += n_identities * ands
    count_batch_words += math.ceil(n_identities / lanes) * ands
    for mode, width0 in (("sum", 1), ("sum", 1), ("max", EPSILON_SCALE_BITS)):
        n, w = n_identities, width0
        while n > 1:
            c2 = _pair_sum_circuit(w) if mode == "sum" else _pair_max_circuit(w)
            per_ands = expected_stats(c2, c, open_outputs=False).and_gates
            n_pairs = n // 2
            count_triples += n_pairs * per_ands
            count_batch_words += math.ceil(n_pairs / lanes) * per_ands
            w = len(c2.outputs)
            n = n_pairs + (n % 2)
    return {
        "count_triples": count_triples,
        "count_batch_words": count_batch_words,
    }
