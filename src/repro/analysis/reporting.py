"""Plain-text table/series formatting for benchmark output.

Benchmarks print the same rows/series the paper's figures plot; these
helpers keep the output aligned and diff-friendly (EXPERIMENTS.md embeds
them verbatim).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a header rule."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[object]],
) -> str:
    """One row per x value, one column per named series (a figure-as-text)."""
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series] for i, x in enumerate(xs)
    ]
    return format_table(headers, rows)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
