"""Attacker knowledge model (paper Sec. II-B threat model).

An attacker observes the *public* index ``M'`` -- that channel is always
open.  Optional extra channels model the scenarios the paper analyzes:

* ``leaked_frequencies`` -- exact identity frequencies disclosed by a flawed
  construction (SS-PPI's NO PROTECT failure mode);
* ``colluding_rows`` -- private rows of providers the attacker controls
  (the c-collusion scenario of the construction protocol analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["AdversaryKnowledge"]


@dataclass
class AdversaryKnowledge:
    """Everything the attacker can read before mounting attacks."""

    published: np.ndarray  # the public M'
    leaked_frequencies: Optional[np.ndarray] = None  # exact counts, if leaked
    colluding_rows: dict[int, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.published = np.asarray(self.published, dtype=np.uint8)
        if self.published.ndim != 2:
            raise ValueError("published index must be 2-D (providers x owners)")

    @property
    def n_providers(self) -> int:
        return self.published.shape[0]

    @property
    def n_owners(self) -> int:
        return self.published.shape[1]

    def apparent_frequencies(self) -> np.ndarray:
        """Per-identity frequency as visible in the public index."""
        return self.published.sum(axis=0)

    def best_frequency_estimate(self) -> np.ndarray:
        """The attacker's sharpest frequency signal: leaked counts if any
        channel disclosed them, otherwise the published (noisy) counts."""
        if self.leaked_frequencies is not None:
            return np.asarray(self.leaked_frequencies)
        return self.apparent_frequencies()

    def candidate_providers(self, owner_id: int) -> np.ndarray:
        """Providers with ``M'(i, j) = 1`` -- the attack surface for owner j."""
        return np.nonzero(self.published[:, owner_id])[0]
