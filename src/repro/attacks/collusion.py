"""Colluding-provider attacks (paper Sec. II-B; analysis in tech report [21]).

Two distinct collusion channels exist in the system:

* **Index-side collusion** -- ``k`` colluding providers pool their private
  rows with the attacker.  Their rows let the attacker *subtract known
  truth* from the public index: claims against colluding providers are
  decided exactly, and for common-identity attacks the colluders' rows
  sharpen the frequency estimate.  The per-owner ǫ guarantee degrades
  gracefully: confidence against the *non-colluding* remainder is still
  bounded by the false-positive mass that landed outside the coalition.

* **Construction-side collusion** -- colluders record what they saw during
  SecSumShare.  With fewer than ``c`` colluders this is provably nothing
  (Thm. 4.1 / (2c−3)-secrecy); with ``c`` or more *coordinators* the
  frequency sums open up.  :func:`secsum_collusion_leakage` quantifies both
  regimes over the actual protocol transcripts, which is the empirical
  counterpart of the paper's secrecy claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.adversary import AdversaryKnowledge
from repro.core.model import MembershipMatrix
from repro.mpc.field import Zq
from repro.mpc.secsum import SecSumResult

__all__ = [
    "ColludingAttackResult",
    "colluding_primary_attack",
    "SecSumLeakage",
    "secsum_collusion_leakage",
]


@dataclass
class ColludingAttackResult:
    """Outcome of the index-side colluding primary attack."""

    owner_ids: np.ndarray
    confidences: np.ndarray  # vs non-colluding candidates only
    resolved_exactly: np.ndarray  # membership claims decided by colluder rows
    coalition: frozenset[int]

    @property
    def mean_confidence(self) -> float:
        return float(self.confidences.mean()) if len(self.confidences) else 0.0


def colluding_primary_attack(
    matrix: MembershipMatrix,
    knowledge: AdversaryKnowledge,
    coalition: set[int],
    owner_ids: np.ndarray,
) -> ColludingAttackResult:
    """Primary attack with ``coalition`` providers' rows in hand.

    For each owner: claims against coalition members are exact (their rows
    are known); the reported confidence is the exact success probability of
    claims against the remaining published candidates,
    ``|true ∩ candidates \\ coalition| / |candidates \\ coalition|``.
    """
    owner_ids = np.asarray(owner_ids)
    for pid in coalition:
        if not 0 <= pid < matrix.n_providers:
            raise ValueError(f"unknown colluding provider {pid}")
    confidences = np.zeros(len(owner_ids), dtype=float)
    resolved = np.zeros(len(owner_ids), dtype=np.int64)
    for idx, j in enumerate(owner_ids):
        j = int(j)
        candidates = set(knowledge.candidate_providers(j).tolist())
        inside = candidates & coalition
        outside = candidates - coalition
        resolved[idx] = sum(1 for pid in inside if matrix.get(pid, j))
        if outside:
            hits = sum(1 for pid in outside if matrix.get(pid, j))
            confidences[idx] = hits / len(outside)
        else:
            confidences[idx] = 0.0
    return ColludingAttackResult(
        owner_ids=owner_ids,
        confidences=confidences,
        resolved_exactly=resolved,
        coalition=frozenset(coalition),
    )


@dataclass
class SecSumLeakage:
    """What a coalition learns from SecSumShare transcripts."""

    coalition: frozenset[int]
    coordinator_members: frozenset[int]  # colluders that are coordinators
    frequencies_recovered: dict[int, int]  # identity -> opened frequency
    breached: bool  # True iff all c coordinators collude


def secsum_collusion_leakage(
    result: SecSumResult,
    coalition: set[int],
    c: int,
    ring: Zq,
    n_identities: int,
) -> SecSumLeakage:
    """Evaluate construction-side collusion against a SecSumShare run.

    The coalition can reconstruct the per-identity frequency iff it contains
    *all* ``c`` coordinators -- the (c, c)-sharing of the output (Thm. 4.1).
    Any smaller coalition (even one containing many regular providers)
    recovers nothing: its observed shares are uniformly distributed.
    """
    coordinator_members = frozenset(p for p in coalition if p < c)
    breached = len(coordinator_members) == c
    recovered: dict[int, int] = {}
    if breached:
        for j in range(n_identities):
            recovered[j] = ring.sum(
                result.coordinator_shares[k][j] for k in range(c)
            )
    return SecSumLeakage(
        coalition=frozenset(coalition),
        coordinator_members=coordinator_members,
        frequencies_recovered=recovered,
        breached=breached,
    )
