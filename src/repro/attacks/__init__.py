"""Attack implementations for the paper's threat model (Sec. II-B).

Includes the two attacks of the paper (primary, common-identity), the
colluding-provider variants analyzed in the tech report, and the
multi-version intersection attack motivating the sticky-noise extension.
"""

from repro.attacks.adversary import AdversaryKnowledge
from repro.attacks.collusion import (
    ColludingAttackResult,
    SecSumLeakage,
    colluding_primary_attack,
    secsum_collusion_leakage,
)
from repro.attacks.common_identity import (
    CommonIdentityAttackResult,
    common_identity_attack,
)
from repro.attacks.intersection import (
    IntersectionAttackResult,
    intersection_attack,
)
from repro.attacks.primary import (
    PrimaryAttackResult,
    primary_attack,
    primary_attack_confidences,
)

__all__ = [
    "AdversaryKnowledge",
    "ColludingAttackResult",
    "CommonIdentityAttackResult",
    "IntersectionAttackResult",
    "PrimaryAttackResult",
    "SecSumLeakage",
    "colluding_primary_attack",
    "common_identity_attack",
    "intersection_attack",
    "primary_attack",
    "primary_attack_confidences",
    "secsum_collusion_leakage",
]
