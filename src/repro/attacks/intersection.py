"""Multi-version intersection attack and the sticky-noise countermeasure.

The paper argues (Sec. III-C) that ǫ-PPI "is fully resistant to repeated
attacks against the same identity over time, because the ǫ-PPI is static".
That resistance evaporates the moment the index is *reconstructed* -- e.g.
after new delegations -- with fresh randomness: true positives appear in
every version while independent false positives survive k versions only
with probability β^k, so intersecting versions strips the noise.

:func:`intersection_attack` implements the attack; it is the motivation for
the *sticky noise* extension (`repro/core/sticky.py`): deriving each
provider's flip coins from a PRF over (provider, owner) instead of fresh
randomness, so re-publications reproduce the same false positives and the
intersection converges to the first published version instead of the truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.model import MembershipMatrix

__all__ = ["IntersectionAttackResult", "intersection_attack"]


@dataclass
class IntersectionAttackResult:
    """Attack outcome over a sequence of published index versions."""

    versions: int
    intersection: np.ndarray  # providers x owners, cells positive in all
    confidences: np.ndarray  # per-owner exact claim success on intersection
    survivors_per_owner: np.ndarray  # intersection column sums

    @property
    def mean_confidence(self) -> float:
        mask = self.survivors_per_owner > 0
        if not mask.any():
            return 0.0
        return float(self.confidences[mask].mean())


def intersection_attack(
    matrix: MembershipMatrix, published_versions: Sequence[np.ndarray]
) -> IntersectionAttackResult:
    """Intersect ``k`` published versions and attack the survivors.

    Per owner the confidence is
    ``|true ∩ survivors| / |survivors|`` -- the exact success probability of
    a membership claim against a surviving candidate.  Recall guarantees
    true positives survive every version, so the numerator equals the true
    frequency whenever any candidate survives.
    """
    if not published_versions:
        raise ValueError("need at least one published version")
    shape = (matrix.n_providers, matrix.n_owners)
    intersection = np.ones(shape, dtype=np.uint8)
    for version in published_versions:
        version = np.asarray(version, dtype=np.uint8)
        if version.shape != shape:
            raise ValueError(
                f"version shape {version.shape} does not match {shape}"
            )
        intersection &= version

    dense = matrix.to_dense()
    survivors = intersection.sum(axis=0).astype(np.int64)
    true_survivors = (intersection & dense).sum(axis=0).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        conf = true_survivors / survivors
    conf = np.where(survivors == 0, 0.0, conf)
    return IntersectionAttackResult(
        versions=len(published_versions),
        intersection=intersection,
        confidences=conf,
        survivors_per_owner=survivors,
    )
