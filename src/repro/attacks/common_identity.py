"""Common-identity attack (paper Sec. II-B): the paper's novel attack.

The attacker learns identity frequencies (from the public index or -- worse
-- from a construction-time leak) and targets the identities that appear at
(nearly) every provider.  For a truly common identity every provider is a
true positive, so *any* membership claim succeeds; what protects it is only
whether the attacker can tell true commons apart from mixed-in decoys.

Attack procedure implemented here:

1. rank identities by the attacker's best frequency estimate;
2. take every identity at/above a commonness threshold as *claimed common*;
3. (a) *identification confidence* -- fraction of claimed commons that are
   truly common (the metric bounding mixing quality, = 1 − achieved ξ);
   (b) *membership confidence* -- success probability of membership claims
   against the claimed commons (a claim on a decoy usually misses).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.adversary import AdversaryKnowledge
from repro.core.model import MembershipMatrix

__all__ = ["CommonIdentityAttackResult", "common_identity_attack"]


@dataclass
class CommonIdentityAttackResult:
    """Outcome of one common-identity attack."""

    claimed_common: np.ndarray  # identities the attacker believes are common
    truly_common: np.ndarray  # ground-truth common identities
    identification_confidence: float  # |claimed ∩ true| / |claimed|
    membership_confidence: float  # success rate of membership claims
    threshold: float  # frequency fraction used for "common"

    @property
    def attacked(self) -> bool:
        return len(self.claimed_common) > 0


def common_identity_attack(
    matrix: MembershipMatrix,
    knowledge: AdversaryKnowledge,
    rng: np.random.Generator,
    commonness_threshold: float = 0.95,
    trials_per_identity: int = 20,
) -> CommonIdentityAttackResult:
    """Mount the attack and measure both confidence metrics.

    ``commonness_threshold`` is the fraction of providers above which the
    attacker calls an identity common (the paper's extreme case is 100 %).
    Ground truth uses the same threshold on true frequencies.
    """
    m = matrix.n_providers
    estimates = knowledge.best_frequency_estimate().astype(float) / m
    claimed = np.nonzero(estimates >= commonness_threshold)[0]

    true_freqs = np.array(
        [matrix.frequency(j) for j in range(matrix.n_owners)], dtype=float
    )
    truly_common = np.nonzero(true_freqs / m >= commonness_threshold)[0]
    truly_common_set = set(truly_common.tolist())

    if len(claimed) == 0:
        return CommonIdentityAttackResult(
            claimed_common=claimed,
            truly_common=truly_common,
            identification_confidence=0.0,
            membership_confidence=0.0,
            threshold=commonness_threshold,
        )

    ident_conf = sum(1 for j in claimed if int(j) in truly_common_set) / len(claimed)

    # Membership claims: attack random published-positive providers of the
    # claimed-common identities.
    hits = 0
    total = 0
    for j in claimed:
        candidates = knowledge.candidate_providers(int(j))
        if len(candidates) == 0:
            continue
        picks = rng.choice(candidates, size=trials_per_identity, replace=True)
        for pid in picks:
            total += 1
            if matrix.get(int(pid), int(j)):
                hits += 1
    member_conf = hits / total if total else 0.0
    return CommonIdentityAttackResult(
        claimed_common=claimed,
        truly_common=truly_common,
        identification_confidence=ident_conf,
        membership_confidence=member_conf,
        threshold=commonness_threshold,
    )
