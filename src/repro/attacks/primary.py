"""Primary attack (paper Sec. II-B): membership claims from the public index.

The attacker picks an owner ``t_j`` and a provider with ``M'(i, j) = 1`` and
claims "t_j has records at p_i".  The per-owner disclosure metric is the
average success probability over the published positives, which equals
``1 − fp_j`` -- we measure it both exactly (from the true matrix) and
empirically (Monte-Carlo claims), and the tests check the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.adversary import AdversaryKnowledge
from repro.core.model import MembershipMatrix

__all__ = ["PrimaryAttackResult", "primary_attack", "primary_attack_confidences"]


@dataclass
class PrimaryAttackResult:
    """Outcome of attacking a set of owners."""

    owner_ids: np.ndarray
    confidences: np.ndarray  # per-owner empirical success probability
    trials: int

    @property
    def mean_confidence(self) -> float:
        return float(self.confidences.mean()) if len(self.confidences) else 0.0


def primary_attack_confidences(
    matrix: MembershipMatrix, knowledge: AdversaryKnowledge
) -> np.ndarray:
    """Exact attack confidence per owner: ``Pr(M=1 | M'=1) = 1 − fp_j``.

    Owners with no published positives cannot be attacked at all; their
    confidence is 0.
    """
    published = knowledge.published
    dense = matrix.to_dense()
    pub_counts = published.sum(axis=0).astype(float)
    true_counts = (dense & published).sum(axis=0).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        conf = true_counts / pub_counts
    return np.where(pub_counts == 0, 0.0, conf)


def primary_attack(
    matrix: MembershipMatrix,
    knowledge: AdversaryKnowledge,
    owner_ids: np.ndarray,
    rng: np.random.Generator,
    trials: int = 100,
) -> PrimaryAttackResult:
    """Monte-Carlo primary attack: random candidate picks, measured hits."""
    owner_ids = np.asarray(owner_ids)
    confidences = np.zeros(len(owner_ids), dtype=float)
    for idx, j in enumerate(owner_ids):
        candidates = knowledge.candidate_providers(int(j))
        if len(candidates) == 0:
            continue
        picks = rng.choice(candidates, size=trials, replace=True)
        hits = sum(1 for pid in picks if matrix.get(int(pid), int(j)))
        confidences[idx] = hits / trials
    return PrimaryAttackResult(
        owner_ids=owner_ids, confidences=confidences, trials=trials
    )
