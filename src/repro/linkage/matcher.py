"""Record matching on Bloom encodings (the PRL decision step).

Implements the field-weighted matcher used by practical PRL systems
(Kuzu et al. [40, 41] style): per-field Dice similarity on the Bloom
encodings, combined by configurable field weights, thresholded into
match / possible / non-match (the classic Fellegi-Sunter tri-state).

Integration with ǫ-PPI (see ``examples/federated_linkage.py``): after
AuthSearch returns candidate records from several hospitals, the searcher
links them into per-patient clusters without the hospitals ever exchanging
raw demographics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.linkage.bloom import BloomFilter, dice_coefficient

__all__ = ["MatchDecision", "FieldWeights", "RecordMatcher", "MatchResult", "link_records"]


class MatchDecision(Enum):
    MATCH = "match"
    POSSIBLE = "possible"
    NON_MATCH = "non-match"


@dataclass(frozen=True)
class FieldWeights:
    """Relative importance of demographic fields (normalized on use)."""

    weights: tuple[tuple[str, float], ...] = (
        ("first_name", 0.25),
        ("last_name", 0.35),
        ("date_of_birth", 0.3),
        ("city", 0.1),
    )

    def normalized(self) -> dict[str, float]:
        total = sum(w for _, w in self.weights)
        if total <= 0:
            raise ValueError("field weights must sum to a positive value")
        return {name: w / total for name, w in self.weights}


@dataclass
class MatchResult:
    """Outcome of comparing two encoded records."""

    score: float
    decision: MatchDecision
    per_field: dict[str, float] = field(default_factory=dict)


class RecordMatcher:
    """Weighted-Dice matcher with Fellegi-Sunter style thresholds."""

    def __init__(
        self,
        weights: FieldWeights | None = None,
        match_threshold: float = 0.85,
        possible_threshold: float = 0.7,
    ):
        if not 0.0 <= possible_threshold <= match_threshold <= 1.0:
            raise ValueError(
                "need 0 <= possible_threshold <= match_threshold <= 1"
            )
        self.weights = (weights or FieldWeights()).normalized()
        self.match_threshold = match_threshold
        self.possible_threshold = possible_threshold

    def compare(
        self,
        a: dict[str, BloomFilter],
        b: dict[str, BloomFilter],
    ) -> MatchResult:
        """Compare two encoded records field by field.

        Fields missing on either side contribute their weight scaled by a
        neutral 0.5 (absence is not evidence either way).
        """
        score = 0.0
        per_field: dict[str, float] = {}
        for name, weight in self.weights.items():
            if name in a and name in b:
                sim = dice_coefficient(a[name], b[name])
            else:
                sim = 0.5
            per_field[name] = sim
            score += weight * sim
        if score >= self.match_threshold:
            decision = MatchDecision.MATCH
        elif score >= self.possible_threshold:
            decision = MatchDecision.POSSIBLE
        else:
            decision = MatchDecision.NON_MATCH
        return MatchResult(score=score, decision=decision, per_field=per_field)


def link_records(
    records: list[dict[str, BloomFilter]],
    matcher: RecordMatcher,
) -> list[list[int]]:
    """Cluster encoded records into per-patient groups.

    Single-linkage over pairwise MATCH decisions (union-find), the standard
    first-pass linkage used by master-patient-index systems [39, 10].
    Returns clusters of record indices.
    """
    n = len(records)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x: int, y: int) -> None:
        rx, ry = find(x), find(y)
        if rx != ry:
            parent[ry] = rx

    for i in range(n):
        for j in range(i + 1, n):
            if matcher.compare(records[i], records[j]).decision is MatchDecision.MATCH:
                union(i, j)

    clusters: dict[int, list[int]] = {}
    for i in range(n):
        clusters.setdefault(find(i), []).append(i)
    return sorted(clusters.values())
