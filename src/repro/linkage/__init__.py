"""Privacy-preserving record linkage (PRL): the complementary system of
paper Sec. VI-B -- Bloom-filter field encodings + weighted-Dice matching,
linking per-patient records across hospitals after an ǫ-PPI search."""

from repro.linkage.bloom import (
    BloomEncoder,
    BloomFilter,
    bigrams,
    dice_coefficient,
)
from repro.linkage.matcher import (
    FieldWeights,
    MatchDecision,
    MatchResult,
    RecordMatcher,
    link_records,
)

__all__ = [
    "BloomEncoder",
    "BloomFilter",
    "FieldWeights",
    "MatchDecision",
    "MatchResult",
    "RecordMatcher",
    "bigrams",
    "dice_coefficient",
    "link_records",
]
