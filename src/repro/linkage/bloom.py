"""Bloom-filter encodings for privacy-preserving record linkage.

The paper positions private record linkage (PRL, refs [37]-[41]) as the
complement of ǫ-PPI: the locator finds *which hospitals* may hold a
patient's records; PRL decides *whether two records are the same patient*
when demographic fields differ (typos, nicknames, transliteration).  The
practical PRL line the paper cites (Kuzu et al. [40, 41]) matches records
via Bloom-filter encodings of field n-grams: similarity of the encodings
approximates similarity of the underlying strings without revealing them.

This module implements the encoding side:

* :func:`bigrams` -- padded character 2-grams of a normalized field;
* :class:`BloomEncoder` -- k-hash Bloom encoding of a field (HMAC-keyed, so
  only parties sharing the linkage key can build comparable encodings);
* :func:`dice_coefficient` -- the standard set-similarity score on
  encodings.
"""

from __future__ import annotations

import hashlib
import unicodedata
from dataclasses import dataclass

__all__ = ["bigrams", "BloomEncoder", "BloomFilter", "dice_coefficient"]


def _normalize(text: str) -> str:
    """Case-fold, strip accents and non-alphanumerics."""
    text = unicodedata.normalize("NFKD", text)
    text = "".join(c for c in text if not unicodedata.combining(c))
    return "".join(c for c in text.lower() if c.isalnum())


def bigrams(text: str) -> set[str]:
    """Padded character bigrams of the normalized field.

    Padding with a sentinel makes leading/trailing characters as
    discriminative as inner ones (standard PRL practice).
    """
    norm = _normalize(text)
    if not norm:
        return set()
    padded = f"_{norm}_"
    return {padded[i : i + 2] for i in range(len(padded) - 1)}


@dataclass(frozen=True)
class BloomFilter:
    """An immutable bit-set encoding of one field."""

    bits: frozenset[int]
    size: int

    def __len__(self) -> int:
        return len(self.bits)


class BloomEncoder:
    """Keyed Bloom encoder: ``k`` HMAC-derived hash positions per bigram.

    Parties that share ``key`` produce comparable encodings; an outsider
    without the key cannot mount a dictionary attack on the filters (the
    mitigation of [40] for the well-known Bloom-PRL leakage).
    """

    def __init__(self, size: int = 512, hashes: int = 8, key: bytes = b""):
        if size < 8:
            raise ValueError(f"filter size must be >= 8, got {size}")
        if hashes < 1:
            raise ValueError(f"need at least one hash, got {hashes}")
        self.size = size
        self.hashes = hashes
        self._key = key

    def positions(self, gram: str) -> list[int]:
        """The k bit positions for one n-gram."""
        out = []
        for i in range(self.hashes):
            digest = hashlib.sha256(
                self._key + i.to_bytes(2, "big") + gram.encode()
            ).digest()
            out.append(int.from_bytes(digest[:8], "big") % self.size)
        return out

    def encode(self, text: str) -> BloomFilter:
        """Encode one field value."""
        bits: set[int] = set()
        for gram in bigrams(text):
            bits.update(self.positions(gram))
        return BloomFilter(bits=frozenset(bits), size=self.size)

    def encode_record(self, fields: dict[str, str]) -> dict[str, BloomFilter]:
        """Encode every demographic field of a record."""
        return {name: self.encode(value) for name, value in fields.items()}


def dice_coefficient(a: BloomFilter, b: BloomFilter) -> float:
    """Dice set similarity ``2|A∩B| / (|A|+|B|)`` in [0, 1]."""
    if a.size != b.size:
        raise ValueError("cannot compare filters of different sizes")
    total = len(a) + len(b)
    if total == 0:
        return 1.0
    return 2 * len(a.bits & b.bits) / total
