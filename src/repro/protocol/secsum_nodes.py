"""SecSumShare as network-simulator actors (paper Fig. 3, phase 1.1).

These nodes execute the same four protocol steps as the computational
:class:`repro.mpc.secsum.SecSumShare`, but as timed messages over the
discrete-event simulator, so the Fig. 6 benchmarks can measure realistic
start-to-end execution time including transport cost.

Message complexity per provider: ``c - 1`` share vectors to ring successors
plus one super-share vector to its coordinator -- constant in ``m``, which is
why SecSumShare scales (paper Sec. V-B).  Providers ``0 .. c-1`` double as
the coordinators that aggregate super-shares (the paper's convention).
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.mpc.additive import AdditiveSharing
from repro.mpc.field import Zq
from repro.net.simulator import Node
from repro.net.transport import Message, ring_elements_bits
from repro.protocol import messages as mk

__all__ = ["SecSumNode", "SHARE_COMPUTE_S"]

# CPU cost (seconds) per share-value generation/addition; calibrated to
# cheap modular arithmetic on the paper's Xeon-class testbed.
SHARE_COMPUTE_S = 1e-7


class SecSumNode(Node):
    """One provider in the SecSumShare ring; ids < c also coordinate.

    ``on_complete(coordinator_id, shares)`` fires on coordinator nodes once
    their provider group fully reported, handing the aggregated share vector
    ``s(k, ·)`` to the next protocol stage (CountBelow).
    """

    def __init__(
        self,
        node_id: int,
        m: int,
        c: int,
        ring: Zq,
        inputs: list[int],
        rng: random.Random,
        on_complete: Optional[Callable[[int, list[int]], None]] = None,
    ):
        super().__init__(node_id)
        if not 0 <= node_id < m:
            raise ValueError(f"node id {node_id} outside provider range [0, {m})")
        self.m = m
        self.c = c
        self.ring = ring
        self.inputs = list(inputs)
        self._rng = rng
        self._sharing = AdditiveSharing(ring, c)
        self._accumulated = [0] * len(inputs)
        self._pending_share_msgs = c - 1  # one from each of c-1 predecessors
        self._reported = False
        # Coordinator role (only for ids < c).
        self.is_coordinator = node_id < c
        self.coordinator_shares = [0] * len(inputs) if self.is_coordinator else None
        self._expected_reports = len(range(node_id, m, c)) if self.is_coordinator else 0
        self._received_reports = 0
        self._on_complete = on_complete

    # -- provider role ------------------------------------------------------

    def on_start(self) -> None:
        n_ids = len(self.inputs)
        self.compute(SHARE_COMPUTE_S * n_ids * self.c)
        # Step 1: split every input into c shares; collect per-destination
        # vectors so step 2 sends one message per ring successor.
        per_dest: list[list[int]] = [[] for _ in range(self.c)]
        for value in self.inputs:
            shares = self._sharing.share(value, self._rng)
            for k in range(self.c):
                per_dest[k].append(shares[k])
        # Share 0 stays local (the paper's "keeps the first share locally").
        self._accumulate(per_dest[0])
        for k in range(1, self.c):
            dest = (self.node_id + k) % self.m
            self.send(
                dest,
                mk.SHARE,
                per_dest[k],
                ring_elements_bits(n_ids, self.ring.q),
            )
        self._maybe_report()

    def on_message(self, message: Message) -> None:
        if message.kind == mk.SHARE:
            self.compute(SHARE_COMPUTE_S * len(message.payload))
            self._accumulate(message.payload)
            self._pending_share_msgs -= 1
            self._maybe_report()
        elif message.kind == mk.SUPER_SHARE:
            self._on_super_share(message)
        else:
            raise RuntimeError(f"unexpected message kind {message.kind}")

    def _accumulate(self, values: list[int]) -> None:
        for j, v in enumerate(values):
            self._accumulated[j] = self.ring.add(self._accumulated[j], v)

    def _maybe_report(self) -> None:
        # Step 3 done once all predecessors delivered; step 4: report the
        # super-share vector to coordinator (node_id mod c).
        if self._pending_share_msgs == 0 and not self._reported:
            self._reported = True
            coordinator = self.node_id % self.c
            self.send(
                coordinator,
                mk.SUPER_SHARE,
                list(self._accumulated),
                ring_elements_bits(len(self._accumulated), self.ring.q),
            )

    # -- coordinator role -----------------------------------------------------

    def _on_super_share(self, message: Message) -> None:
        if not self.is_coordinator:
            raise RuntimeError(
                f"non-coordinator node {self.node_id} got a super-share"
            )
        self.compute(SHARE_COMPUTE_S * len(message.payload))
        for j, v in enumerate(message.payload):
            self.coordinator_shares[j] = self.ring.add(self.coordinator_shares[j], v)
        self._received_reports += 1
        if self._received_reports == self._expected_reports and self._on_complete:
            self._on_complete(self.node_id, list(self.coordinator_shares))
