"""Distributed ǫ-PPI construction over the network simulator (Fig. 3).

Runs the full two-phase protocol as timed actors, producing the
start-to-end execution time metric of the paper's Fig. 6:

* **Phase 1.1** -- SecSumShare with real share payloads (ring messages,
  super-share aggregation at the ``c`` coordinators);
* **Phase 1.2** -- the generic-MPC stage.  The secure computation itself is
  executed *computationally* by :func:`repro.mpc.betacalc.secure_beta_calculation`
  (our FairplayMP stand-in); its measured round/message/byte/gate counts are
  then *replayed* as timed all-to-all traffic + CPU charges among the
  coordinators, the standard way to get faithful timing out of a
  discrete-event model (see DESIGN.md);
* **Opening + broadcast** -- coordinators open σ for unselected identities,
  coordinator 0 assembles the final β vector and broadcasts it to all ``m``
  providers;
* **Phase 2** -- every provider pays the randomized-publication CPU cost.

The pure-MPC baseline (:class:`PureMPCSimulation`) replays the monolithic
``m``-party GMW run instead, preceded by input sharing, with no SecSumShare
reduction -- the comparison system of Fig. 6.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np

from repro.core.policies import BetaPolicy
from repro.mpc.betacalc import (
    IncrementalBetaState,
    SecureBetaResult,
    secure_beta_calculation,
    secure_beta_update,
)
from repro.mpc.field import Zq, default_modulus_for_sum
from repro.mpc.pure import PureMPCResult, run_pure_beta_calculation
from repro.net.latency import EMULAB_LAN, LatencyModel
from repro.net.metrics import NetworkMetrics
from repro.net.simulator import Node, Simulator
from repro.net.transport import Message, ring_elements_bits
from repro.protocol import messages as mk
from repro.protocol.secsum_nodes import SHARE_COMPUTE_S, SecSumNode

__all__ = [
    "DistributedConstructionResult",
    "run_distributed_construction",
    "run_incremental_construction",
    "run_pure_mpc_simulation",
]

# CPU cost per published cell during randomized publication (phase 2).
PUBLISH_COMPUTE_S = 5e-8
# Wire size of one β value in the final broadcast (an IEEE double).
BETA_BITS = 64


@dataclass
class DistributedConstructionResult:
    """Timing + outcome of one simulated distributed construction."""

    betas: np.ndarray
    secure_result: SecureBetaResult | PureMPCResult
    metrics: NetworkMetrics

    @property
    def execution_time_s(self) -> float:
        """The paper's start-to-end execution time (Fig. 6a/6c)."""
        return self.metrics.finish_time_s


class _MPCReplayMixin:
    """Round-synchronous replay of a measured GMW communication pattern."""

    def _init_replay(
        self,
        peers: list[int],
        rounds: int,
        bits_per_link_per_round: int,
        compute_per_round_s: float,
    ) -> None:
        self._peers = peers
        self._total_rounds = rounds
        self._bits_per_link = bits_per_link_per_round
        self._compute_per_round = compute_per_round_s
        self._current_round = 0
        self._round_counts: dict[int, int] = {}
        self._replay_done = False
        self._replay_started = False

    def _start_replay(self) -> None:
        self._replay_started = True
        if self._total_rounds == 0:
            self._replay_done = True
            self._on_replay_done()
            return
        self._send_round(0)
        # Peers may have raced ahead; consume any buffered round messages.
        self._advance_rounds()

    def _send_round(self, r: int) -> None:
        self.compute(self._compute_per_round)
        for peer in self._peers:
            self.send(peer, mk.MPC_ROUND, r, self._bits_per_link)
        # A round with no peers (degenerate single-party MPC) self-advances.
        if not self._peers:
            self._advance_rounds()

    def _on_mpc_round(self, message: Message) -> None:
        r = message.payload
        self._round_counts[r] = self._round_counts.get(r, 0) + 1
        self._advance_rounds()

    def _advance_rounds(self) -> None:
        while (
            self._replay_started
            and not self._replay_done
            and self._round_counts.get(self._current_round, 0) >= len(self._peers)
        ):
            self._current_round += 1
            if self._current_round >= self._total_rounds:
                self._replay_done = True
                self._on_replay_done()
            else:
                self._send_round(self._current_round)

    def _on_replay_done(self) -> None:
        raise NotImplementedError


class _EPPINode(SecSumNode, _MPCReplayMixin):
    """A provider that also plays coordinator + MPC party when id < c."""

    def __init__(self, *args, driver: "_Driver", **kwargs):
        super().__init__(*args, **kwargs)
        self._driver = driver
        self._open_reports = 0
        if self.is_coordinator:
            d = driver
            self._init_replay(
                peers=[p for p in range(d.c) if p != self.node_id],
                rounds=d.mpc_rounds,
                bits_per_link_per_round=d.mpc_bits_per_link,
                compute_per_round_s=d.mpc_compute_per_round,
            )

    def on_message(self, message: Message) -> None:
        if message.kind == mk.MPC_ROUND:
            self._on_mpc_round(message)
        elif message.kind == mk.OPEN_FREQ:
            self._on_open(message)
        elif message.kind == mk.BETA_BROADCAST:
            self._on_beta(message)
        else:
            super().on_message(message)

    # SecSum coordinator completion hook -> start the MPC stage.
    def _on_super_share(self, message: Message) -> None:
        super()._on_super_share(message)
        if self._received_reports == self._expected_reports:
            self._start_replay()

    # MPC stage finished on this coordinator.
    def _on_replay_done(self) -> None:
        opened = self._driver.open_count
        if self.node_id == 0:
            self._maybe_finalize()
        else:
            # Ship shares of the to-be-opened identities to coordinator 0.
            self.send(
                0,
                mk.OPEN_FREQ,
                None,
                ring_elements_bits(opened, self.ring.q),
            )

    def _on_open(self, message: Message) -> None:
        self.compute(SHARE_COMPUTE_S * self._driver.open_count)
        self._open_reports += 1
        self._maybe_finalize()

    def _maybe_finalize(self) -> None:
        if self._replay_done and self._open_reports == self.c - 1:
            self._finalize()

    def _finalize(self) -> None:
        # Coordinator 0 evaluates β* in the clear for opened identities and
        # broadcasts the final vector (safe to release, paper Sec. IV-C).
        # An incremental pass only ships the closure's β entries.
        n_beta = self._driver.broadcast_count
        self.compute(SHARE_COMPUTE_S * n_beta)
        for pid in range(self.m):
            if pid != self.node_id:
                self.send(pid, mk.BETA_BROADCAST, None, BETA_BITS * n_beta)
        self._publish()

    def _on_beta(self, message: Message) -> None:
        self._publish()

    def _publish(self) -> None:
        # Phase 2: randomized (re-)publication of this provider's row --
        # restricted to the changed columns on an incremental pass.
        count = self._driver.publish_count
        self.compute(PUBLISH_COMPUTE_S * (len(self.inputs) if count is None else count))


class _Driver:
    """Shared state between the offline secure computation and the sim."""

    def __init__(
        self,
        result: SecureBetaResult,
        c: int,
        latency: LatencyModel,
        open_count: int | None = None,
        broadcast_count: int | None = None,
        publish_count: int | None = None,
    ):
        self.result = result
        self.c = c
        # Full runs open/broadcast/publish the whole universe; an
        # incremental pass overrides these with closure-sized counts.
        self.open_count = (
            len(result.opened_frequencies) if open_count is None else open_count
        )
        self.broadcast_count = (
            len(result.betas) if broadcast_count is None else broadcast_count
        )
        self.publish_count = publish_count
        count_stats = result.count_result.stats
        sel_stats = result.selection_result.stats
        self.mpc_rounds = count_stats.rounds + sel_stats.rounds
        total_bits = count_stats.bits_sent + sel_stats.bits_sent
        links = max(1, self.mpc_rounds * c * (c - 1))
        self.mpc_bits_per_link = math.ceil(total_bits / links)
        # ``gates_evaluated`` covers both engines: the monolithic circuit's
        # size, or the decomposed run's total across instances/tree levels.
        total_gates = (
            result.count_result.gates_evaluated
            + result.selection_result.gates_evaluated
        )
        total_ands = count_stats.and_gates + sel_stats.and_gates
        # AND-opening work scales with the number of MPC peers (all-to-all
        # masked-difference exchange) -- pinned to c-1 here, which is the
        # whole point of the MPC-reduced design.
        total_compute = (
            total_gates * latency.gate_compute_s
            + total_ands * latency.and_extra_compute_s * max(1, c - 1)
        )
        self.mpc_compute_per_round = total_compute / max(1, self.mpc_rounds)


def run_distributed_construction(
    provider_bits: list[list[int]],
    epsilons: list[float],
    policy: BetaPolicy,
    c: int,
    rng: random.Random,
    latency: LatencyModel = EMULAB_LAN,
    engine: str = "mono",
    triple_source: str = "dealer",
    factory=None,
    offline_producers: int = 2,
) -> DistributedConstructionResult:
    """Simulate the full ǫ-PPI construction and return timing metrics.

    ``engine`` picks the secure-evaluation strategy for the offline
    computation (``"batch"`` = bitsliced, see :mod:`repro.mpc.countbelow`).
    The measured communication pattern is replayed over the simulator, so
    ``"scalar"`` and ``"batch"`` produce identical simulated network costs
    -- bitslicing only changes the wall-clock cost of *running* the
    simulation.  ``"mono"`` evaluates a different (monolithic) circuit in
    which all identities share each broadcast round, so its simulated
    round/message counts differ from the decomposed engines.

    ``triple_source="factory"`` draws Beaver triples from the dealerless
    offline pipeline instead of the trusted dealer (see
    :mod:`repro.mpc.offline` and :func:`secure_beta_calculation`); the β
    vector and the replayed online communication pattern are identical
    either way, so this changes the real wall-clock of the construction
    run, not the simulated timing.
    """
    m = len(provider_bits)
    result = secure_beta_calculation(
        provider_bits,
        epsilons,
        policy,
        c,
        rng,
        engine=engine,
        triple_source=triple_source,
        factory=factory,
        offline_producers=offline_producers,
    )
    driver = _Driver(result, c, latency)

    sim = Simulator(latency=latency)
    ring = Zq(default_modulus_for_sum(m))
    for i in range(m):
        sim.add_node(
            _EPPINode(
                i,
                m,
                c,
                ring,
                provider_bits[i],
                random.Random(rng.getrandbits(64)),
                driver=driver,
            )
        )
    metrics = sim.run()
    return DistributedConstructionResult(
        betas=result.betas, secure_result=result, metrics=metrics
    )


def run_incremental_construction(
    state: IncrementalBetaState,
    provider_bits: list[list[int]],
    dirty: list[int],
    rng: random.Random,
    latency: LatencyModel = EMULAB_LAN,
    triple_source: str = "dealer",
    factory=None,
    offline_producers: int = 2,
) -> DistributedConstructionResult:
    """Simulate one delta-aware maintenance pass over a held construction.

    The computational work is :func:`repro.mpc.betacalc.secure_beta_update`
    (dirty-column SecSumShare, dirty-root-path CountBelow, closure-only
    selection); its measured stats are then replayed over the simulator
    exactly as in :func:`run_distributed_construction`, with every
    universe-sized leg shrunk to its incremental size: providers re-share
    only the ``|dirty|`` columns in phase 1.1, the σ opening ships only the
    closure's unselected identities, coordinator 0 broadcasts only the
    closure's β entries, and phase 2 republishes only the changed columns.
    The returned β vector (and ``state``) covers the full universe.
    """
    m = len(provider_bits)
    if m != state.m:
        raise ValueError(f"state covers {state.m} providers, got {m}")
    result = secure_beta_update(
        state,
        provider_bits,
        dirty,
        rng,
        triple_source=triple_source,
        factory=factory,
        offline_producers=offline_producers,
    )
    info = result.incremental
    n_reopened = sum(
        1 for bit in result.selection_result.publish_as_one if not bit
    )
    driver = _Driver(
        result,
        state.c,
        latency,
        open_count=n_reopened,
        broadcast_count=len(info.closure),
        publish_count=len(info.closure),
    )

    sim = Simulator(latency=latency)
    dirty_ids = info.dirty
    for i in range(m):
        sim.add_node(
            _EPPINode(
                i,
                m,
                state.c,
                state.ring,
                [provider_bits[i][j] for j in dirty_ids],
                random.Random(rng.getrandbits(64)),
                driver=driver,
            )
        )
    metrics = sim.run()
    return DistributedConstructionResult(
        betas=result.betas, secure_result=result, metrics=metrics
    )


class _PureMPCNode(Node, _MPCReplayMixin):
    """One party of the monolithic m-party MPC baseline."""

    def __init__(
        self,
        node_id: int,
        m: int,
        n_ids: int,
        rounds: int,
        bits_per_link: int,
        compute_per_round: float,
    ):
        super().__init__(node_id)
        self.m = m
        self.n_ids = n_ids
        self._init_replay(
            peers=[p for p in range(m) if p != node_id],
            rounds=rounds,
            bits_per_link_per_round=bits_per_link,
            compute_per_round_s=compute_per_round,
        )
        self._input_shares_received = 0

    def on_start(self) -> None:
        # Input sharing: every party XOR-shares its input bits to all others.
        for peer in self._peers:
            self.send(peer, mk.INPUT_SHARE, None, self.n_ids)

    def on_message(self, message: Message) -> None:
        if message.kind == mk.INPUT_SHARE:
            self._input_shares_received += 1
            if self._input_shares_received == len(self._peers):
                self._start_replay()
        elif message.kind == mk.MPC_ROUND:
            self._on_mpc_round(message)
        else:
            raise RuntimeError(f"unexpected message kind {message.kind}")

    def _on_replay_done(self) -> None:
        # Publication cost, as in the reduced protocol.
        self.compute(PUBLISH_COMPUTE_S * self.n_ids)


def run_pure_mpc_simulation(
    provider_bits: list[list[int]],
    epsilons: list[float],
    policy: BetaPolicy,
    rng: random.Random,
    latency: LatencyModel = EMULAB_LAN,
) -> DistributedConstructionResult:
    """Simulate the pure-MPC baseline construction (Fig. 6 comparison)."""
    m = len(provider_bits)
    n_ids = len(provider_bits[0])
    result = run_pure_beta_calculation(provider_bits, epsilons, policy, rng)

    rounds = result.stats.rounds
    links = max(1, rounds * m * (m - 1))
    bits_per_link = math.ceil(result.stats.bits_sent / links)
    # Monolithic MPC: every AND opening is exchanged among all m parties.
    total_compute = (
        result.total_circuit_size * latency.gate_compute_s
        + result.total_and_gates * latency.and_extra_compute_s * max(1, m - 1)
    )
    compute_per_round = total_compute / max(1, rounds)

    sim = Simulator(latency=latency)
    for i in range(m):
        sim.add_node(
            _PureMPCNode(i, m, n_ids, rounds, bits_per_link, compute_per_round)
        )
    metrics = sim.run()
    return DistributedConstructionResult(
        betas=result.betas, secure_result=result, metrics=metrics
    )
