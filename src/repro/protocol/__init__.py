"""Distributed realization of ǫ-PPI construction over the network simulator.

Wires the SecSumShare ring protocol, the coordinator-side generic-MPC stage
and the β broadcast into timed actors; used by the Fig. 6 benchmarks to
measure start-to-end execution time against the pure-MPC baseline.
"""

from repro.protocol.construction import (
    DistributedConstructionResult,
    run_distributed_construction,
    run_pure_mpc_simulation,
)
from repro.protocol.secsum_nodes import SecSumNode

__all__ = [
    "DistributedConstructionResult",
    "SecSumNode",
    "run_distributed_construction",
    "run_pure_mpc_simulation",
]
