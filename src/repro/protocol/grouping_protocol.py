"""Distributed construction of the grouping-PPI baseline — with its leak.

The paper's criticism of existing PPI constructions is not only about
privacy *quality* but about the construction's trust assumption: "many
existing approaches [12], [13], [30] assume providers are willing to
disclose their private local indexes, an unrealistic assumption when there
is a lack of mutual trust between providers."

This module realizes that construction as simulator actors so the
assumption is *observable*: each provider ships its plaintext membership
vector to its group leader, the leaders OR the vectors and publish group
reports.  Every leader's transcript therefore contains its members' raw
private vectors — the disclosure the ǫ-PPI construction protocol exists to
avoid (contrast: SecSumShare transcripts are uniformly random, see
`tests/attacks/test_collusion.py`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.net.latency import EMULAB_LAN, LatencyModel
from repro.net.metrics import NetworkMetrics
from repro.net.simulator import Node, Simulator
from repro.net.transport import Message

__all__ = ["GroupingConstructionResult", "run_grouping_construction"]

LOCAL_VECTOR = "grouping/local-vector"
GROUP_REPORT = "grouping/group-report"

VECTOR_COMPUTE_S = 1e-6  # per-entry OR at the leader


@dataclass
class GroupingConstructionResult:
    """Published index plus the construction-time disclosure record."""

    published: np.ndarray  # provider-level expansion of group reports
    group_of: np.ndarray
    leader_transcripts: dict[int, dict[int, list[int]]]  # leader -> member -> raw vector
    metrics: NetworkMetrics

    def disclosed_vectors(self) -> int:
        """How many private vectors were revealed in plaintext."""
        return sum(len(v) for v in self.leader_transcripts.values())


class _GroupMemberNode(Node):
    """A provider: sends its raw membership vector to the group leader."""

    def __init__(self, node_id: int, leader_id: int, vector: list[int]):
        super().__init__(node_id)
        self.leader_id = leader_id
        self.vector = list(vector)

    def on_start(self) -> None:
        self.send(
            self.leader_id,
            LOCAL_VECTOR,
            (self.node_id, self.vector),
            payload_bits=len(self.vector),
        )


class _GroupLeaderNode(_GroupMemberNode):
    """A leader: collects members' raw vectors, ORs them, publishes.

    The transcript (``received``) is the leak: the leader sees every
    member's private vector in the clear.
    """

    def __init__(self, node_id: int, vector: list[int], expected_members: int,
                 server_id: int, group_id: int):
        super().__init__(node_id, node_id, vector)
        self.expected = expected_members
        self.server_id = server_id
        self.group_id = group_id
        self.received: dict[int, list[int]] = {}

    def on_start(self) -> None:
        # The leader "receives" its own vector locally.
        self._absorb(self.node_id, self.vector)

    def on_message(self, message: Message) -> None:
        if message.kind != LOCAL_VECTOR:
            raise RuntimeError(f"unexpected message kind {message.kind}")
        member, vector = message.payload
        self.compute(VECTOR_COMPUTE_S * len(vector))
        self._absorb(member, vector)

    def _absorb(self, member: int, vector: list[int]) -> None:
        self.received[member] = list(vector)
        if len(self.received) == self.expected:
            report = [0] * len(self.vector)
            for vec in self.received.values():
                for j, bit in enumerate(vec):
                    report[j] |= bit
            self.send(
                self.server_id,
                GROUP_REPORT,
                (self.group_id, report),
                payload_bits=len(report),
            )


class _IndexServerNode(Node):
    """The third-party server assembling group reports."""

    def __init__(self, node_id: int, n_groups: int, n_ids: int):
        super().__init__(node_id)
        self.reports: dict[int, list[int]] = {}
        self.n_groups = n_groups
        self.n_ids = n_ids

    def on_message(self, message: Message) -> None:
        if message.kind != GROUP_REPORT:
            raise RuntimeError(f"unexpected message kind {message.kind}")
        group_id, report = message.payload
        self.reports[group_id] = report


def run_grouping_construction(
    provider_bits: list[list[int]],
    n_groups: int,
    rng: random.Random,
    latency: LatencyModel = EMULAB_LAN,
) -> GroupingConstructionResult:
    """Run the grouping construction as timed actors and expose the leak."""
    m = len(provider_bits)
    if n_groups < 1 or n_groups > m:
        raise ValueError(f"need 1 <= groups <= {m}, got {n_groups}")
    n_ids = len(provider_bits[0])

    order = list(range(m))
    rng.shuffle(order)
    group_of = np.empty(m, dtype=np.int64)
    for position, pid in enumerate(order):
        group_of[pid] = position % n_groups
    members: dict[int, list[int]] = {}
    for pid in range(m):
        members.setdefault(int(group_of[pid]), []).append(pid)
    leaders = {g: mem[0] for g, mem in members.items()}

    sim = Simulator(latency=latency)
    server_id = m
    for g, mem in members.items():
        leader = leaders[g]
        sim.add_node(
            _GroupLeaderNode(
                leader, provider_bits[leader], expected_members=len(mem),
                server_id=server_id, group_id=g,
            )
        )
        for pid in mem:
            if pid != leader:
                sim.add_node(
                    _GroupMemberNode(pid, leader, provider_bits[pid])
                )
    server = sim.add_node(_IndexServerNode(server_id, n_groups, n_ids))
    metrics = sim.run()

    published = np.zeros((m, n_ids), dtype=np.uint8)
    for pid in range(m):
        report = server.reports[int(group_of[pid])]
        published[pid] = np.array(report, dtype=np.uint8)
    transcripts = {
        leaders[g]: {
            member: vec
            for member, vec in sim.nodes[leaders[g]].received.items()
        }
        for g in members
    }
    return GroupingConstructionResult(
        published=published,
        group_of=group_of,
        leader_transcripts=transcripts,
        metrics=metrics,
    )
