"""Protocol message kinds (routing tags used by the simulator nodes)."""

from __future__ import annotations

__all__ = [
    "SHARE",
    "SUPER_SHARE",
    "MPC_ROUND",
    "BETA_BROADCAST",
    "INPUT_SHARE",
    "OPEN_FREQ",
]

# SecSumShare step 2: one additive share vector to a ring successor.
SHARE = "secsum/share"
# SecSumShare step 4: a super-share vector to a coordinator.
SUPER_SHARE = "secsum/super-share"
# One round of the generic-MPC stage among coordinators (cost replay).
MPC_ROUND = "mpc/round"
# Coordinator 0 broadcasts the final β vector to every provider.
BETA_BROADCAST = "beta/broadcast"
# Pure-MPC baseline: provider ships its input shares to every MPC party.
INPUT_SHARE = "mpc/input-share"
# Opening of σ for unselected identities (coordinator share exchange).
OPEN_FREQ = "beta/open-frequency"
