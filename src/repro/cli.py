"""Command-line interface: ``python -m repro <command>``.

Gives the library a usable operational surface:

* ``generate``  -- synthesize an information network (TREC-like or Zipf)
  and write it to a JSON dataset file;
* ``construct`` -- run ConstructPPI over a dataset and write the published
  index (plus a construction report) to disk;
* ``query``     -- QueryPPI against a stored index;
* ``attack``    -- run the primary and common-identity attacks against a
  stored index/dataset pair and report attacker confidence;
* ``audit``     -- per-owner privacy audit of a stored index against the
  dataset's ground truth;
* ``inspect``   -- summarize a stored index (size, broadcast rows, cost);
* ``serve``     -- host a stored index as a live TCP locator service
  (one shard of an owner-sharded fleet);
* ``provider``  -- run one provider's AuthSearch endpoint over a dataset;
* ``loadgen``   -- drive a closed-loop load test against a running fleet
  and print QPS / p50 / p95 / p99 / error-rate;
* ``snapshot``  -- build or inspect a binary index snapshot (the fleet's
  packed-bits boot format);
* ``supervisor``-- run a process-per-shard server fleet from a snapshot,
  with health checks and supervised restarts.

All randomness is seedable for reproducible pipelines.  Installed as the
``eppi`` console script (``pip install -e .``), or run as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

import numpy as np

from repro.attacks.adversary import AdversaryKnowledge
from repro.attacks.common_identity import common_identity_attack
from repro.attacks.primary import primary_attack_confidences
from repro.core.construction import construct_epsilon_ppi
from repro.core.index import PPIIndex
from repro.core.model import InformationNetwork
from repro.core.policies import (
    BasicPolicy,
    BetaPolicy,
    ChernoffPolicy,
    IncrementedExpectationPolicy,
)
from repro.analysis.audit import audit_index
from repro.core.privacy import classify_degree
from repro.datasets.synthetic import uniform_epsilons, zipf_matrix
from repro.datasets.trec_like import TrecLikeConfig, build_trec_like_network

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    return args.func(args)


# -- dataset file format ---------------------------------------------------------


def save_dataset(path: str, network: InformationNetwork) -> None:
    matrix = network.membership_matrix()
    payload = {
        "n_providers": network.n_providers,
        "provider_names": [p.name for p in network.providers],
        "owners": [
            {"name": o.name, "epsilon": o.epsilon} for o in network.owners
        ],
        "memberships": sorted(matrix.iter_cells()),
    }
    with open(path, "w") as f:
        json.dump(payload, f)


def load_dataset(path: str) -> InformationNetwork:
    with open(path) as f:
        payload = json.load(f)
    network = InformationNetwork(
        payload["n_providers"], provider_names=payload["provider_names"]
    )
    owners = [
        network.register_owner(o["name"], o["epsilon"]) for o in payload["owners"]
    ]
    for pid, oid in payload["memberships"]:
        network.delegate(owners[oid], pid)
    return network


def _policy_from_args(args: argparse.Namespace) -> BetaPolicy:
    if args.policy == "basic":
        return BasicPolicy()
    if args.policy == "inc-exp":
        return IncrementedExpectationPolicy(delta=args.delta)
    return ChernoffPolicy(gamma=args.gamma)


# -- commands ----------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "trec":
        network = build_trec_like_network(
            TrecLikeConfig(n_providers=args.providers, n_owners=args.owners),
            seed=args.seed,
        )
    else:
        rng = np.random.default_rng(args.seed)
        matrix = zipf_matrix(args.providers, args.owners, rng)
        epsilons = uniform_epsilons(args.owners, rng)
        network = InformationNetwork(args.providers)
        owners = [
            network.register_owner(f"owner-{j:06d}", float(epsilons[j]))
            for j in range(args.owners)
        ]
        for pid, oid in matrix.iter_cells():
            network.delegate(owners[oid], pid)
    save_dataset(args.output, network)
    matrix = network.membership_matrix()
    print(
        f"wrote {args.output}: {network.n_providers} providers, "
        f"{network.n_owners} owners, {matrix.total_memberships} memberships"
    )
    return 0


def cmd_construct(args: argparse.Namespace) -> int:
    network = load_dataset(args.dataset)
    policy = _policy_from_args(args)
    result = construct_epsilon_ppi(
        network, policy, np.random.default_rng(args.seed)
    )
    with open(args.output, "w") as f:
        f.write(result.index.to_json())
    stats = result.index.stats()
    print(f"wrote {args.output}")
    print(f"  policy: {policy.name}")
    print(f"  success ratio: {result.report.success_ratio:.4f}")
    print(f"  avg published list size: {stats.avg_result_size:.1f}")
    print(f"  broadcast owners: {stats.broadcast_owners}")
    print(f"  mixing: lambda={result.mixing.lambda_:.4f} xi={result.mixing.xi:.2f}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    with open(args.index) as f:
        index = PPIIndex.from_json(f.read())
    try:
        providers = index.query_by_name(args.owner)
    except Exception:
        providers = index.query(int(args.owner))
    print(f"{len(providers)} candidate providers:")
    print(" ".join(str(p) for p in providers))
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    network = load_dataset(args.dataset)
    with open(args.index) as f:
        index = PPIIndex.from_json(f.read())
    matrix = network.membership_matrix()
    knowledge = AdversaryKnowledge(published=np.asarray(index.matrix))
    epsilons = network.epsilons()

    conf = primary_attack_confidences(matrix, knowledge)
    degree = classify_degree(conf, epsilons, required_fraction=args.required_fraction)
    print("primary attack:")
    print(f"  mean confidence: {conf.mean():.4f}  max: {conf.max():.4f}")
    print(f"  degree: {degree.value}")

    common = common_identity_attack(
        matrix, knowledge, np.random.default_rng(args.seed)
    )
    print("common-identity attack:")
    if common.attacked:
        print(f"  claimed commons: {len(common.claimed_common)}")
        print(f"  identification confidence: {common.identification_confidence:.4f}")
        print(f"  membership confidence: {common.membership_confidence:.4f}")
    else:
        print("  no identities above the commonness threshold")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    network = load_dataset(args.dataset)
    with open(args.index) as f:
        index = PPIIndex.from_json(f.read())
    matrix = network.membership_matrix()
    audit = audit_index(
        matrix,
        np.asarray(index.matrix),
        network.epsilons(),
        owner_names=[o.name for o in network.owners],
    )
    print(f"success ratio: {audit.success_ratio:.4f}")
    print(f"broadcast owners: {audit.broadcast_count}")
    print(f"worst violation (eps - fp): {audit.worst_violation:.4f}")
    violators = audit.violators()
    print(f"violators: {len(violators)}")
    for o in violators[: args.limit]:
        print(
            f"  {o.name}: eps={o.epsilon:.2f} fp={o.false_positive_rate:.2f} "
            f"freq={o.true_frequency} published={o.published_size}"
        )
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    with open(args.index) as f:
        index = PPIIndex.from_json(f.read())
    stats = index.stats()
    print(f"providers: {stats.n_providers}")
    print(f"owners: {stats.n_owners}")
    print(f"published positives: {stats.published_positives}")
    print(f"avg result size: {stats.avg_result_size:.2f}")
    print(f"broadcast owners: {stats.broadcast_owners}")
    return 0


# -- serving commands --------------------------------------------------------


def _parse_address(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"address must be host:port, got {text!r}"
        )
    return host, int(port)


def _parse_provider_address(text: str) -> tuple[int, tuple[str, int]]:
    pid, _, addr = text.partition("=")
    if not pid.isdigit() or not addr:
        raise argparse.ArgumentTypeError(
            f"provider address must be <id>=host:port, got {text!r}"
        )
    return int(pid), _parse_address(addr)


def _run_node_forever(node) -> int:
    import asyncio

    async def _main() -> None:
        await node.start()
        print(f"{node.role} listening on {node.host}:{node.port}", flush=True)
        try:
            await node.serve_forever()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print(f"\n{node.role}: shutting down")
    except OSError as exc:
        print(f"{node.role}: cannot listen on {node.host}:{node.port}: {exc}",
              file=sys.stderr)
        return 1
    return 0


def _load_index_arg(args: argparse.Namespace):
    """Load an index from ``--index`` (JSON) or ``--snapshot`` (binary).

    A v2 snapshot boots as an mmap'd CSR :class:`PostingsIndex`; v1 falls
    back to the dense load.
    """
    if getattr(args, "snapshot", None):
        from repro.serving.snapshot import load_serving_index

        return load_serving_index(args.snapshot)
    with open(args.index) as f:
        return PPIIndex.from_json(f.read())


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import PPIServer, ShardSpec

    index = _load_index_arg(args)
    server = PPIServer(
        index,
        shard=ShardSpec(args.shard, args.shards),
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
    )
    print(
        f"serving shard {args.shard}/{args.shards} of index "
        f"({index.n_providers} providers, {index.n_owners} owners)"
    )
    return _run_node_forever(server)


def cmd_provider(args: argparse.Namespace) -> int:
    from repro.core.authsearch import AccessControl
    from repro.serving import ProviderEndpoint

    network = load_dataset(args.dataset)
    if not 0 <= args.provider_id < network.n_providers:
        print(
            f"provider id {args.provider_id} out of range "
            f"(dataset has {network.n_providers} providers)",
            file=sys.stderr,
        )
        return 2
    endpoint = ProviderEndpoint(
        network.providers[args.provider_id],
        AccessControl(trusted=set(args.trust)),
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
    )
    return _run_node_forever(endpoint)


def cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.serving.snapshot import inspect_snapshot, save_snapshot

    if args.snapshot_command == "build":
        with open(args.index) as f:
            index = PPIIndex.from_json(f.read())
        version = {"v1": 1, "v2": 2}[args.format]
        info = save_snapshot(index, args.output, format_version=version)
        print(f"wrote {args.output}")
    else:
        info = inspect_snapshot(args.snapshot)
    for key, value in info.items():
        if key == "density":
            print(f"  {key}: {value:.4f}")
        else:
            print(f"  {key}: {value}")
    return 0 if info["checksum_ok"] else 1


def cmd_supervisor(args: argparse.Namespace) -> int:
    import time

    from repro.serving.fleet import FleetSupervisor

    ports = None
    if args.base_port:
        ports = [args.base_port + i for i in range(args.shards)]
    supervisor = FleetSupervisor(
        args.snapshot,
        n_shards=args.shards,
        host=args.host,
        ports=ports,
        max_inflight=args.max_inflight,
        health_interval_s=args.health_interval,
        health_timeout_s=args.health_timeout,
        max_restarts=args.max_restarts,
    )
    try:
        supervisor.start(monitor=True)
    except (OSError, TimeoutError) as exc:
        print(f"supervisor: failed to start fleet: {exc}", file=sys.stderr)
        supervisor.stop()
        return 1
    for shard_id, addr in enumerate(supervisor.addresses):
        print(f"shard {shard_id}/{args.shards} listening on {addr[0]}:{addr[1]}",
              flush=True)
    deadline = None
    if args.duration is not None:
        deadline = time.monotonic() + args.duration
    try:
        while deadline is None or time.monotonic() < deadline:
            time.sleep(min(0.2, args.health_interval))
    except KeyboardInterrupt:
        print("\nsupervisor: shutting down fleet")
    finally:
        supervisor.stop()
    states = supervisor.metrics.snapshot()["counters"]
    print(f"supervisor: restarts={states.get('restarts_total', 0)} "
          f"health_checks={states.get('health_checks_total', 0)}")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serving import LocatorClient, RetryPolicy, run_load

    async def _main() -> int:
        client = LocatorClient(
            servers=args.server,
            providers=dict(args.provider or []),
            name=args.searcher,
            retry=RetryPolicy(
                max_retries=args.max_retries, timeout_s=args.timeout
            ),
            cache_size=args.cache_size,
            rng_seed=args.seed,
        )
        try:
            if args.owners is not None:
                owner_ids = list(range(args.owners))
            else:
                info = await client.info(args.server[0])
                owner_ids = list(range(int(info["n_owners"])))
            if args.mode == "search" and not client.providers:
                print(
                    "loadgen: search mode needs --provider <id>=host:port "
                    "for every reachable provider",
                    file=sys.stderr,
                )
                return 2
            report = await run_load(
                client,
                owner_ids,
                n_workers=args.workers,
                requests_per_worker=args.requests,
                mode=args.mode,
                think_time_s=args.think_time,
            )
            print(report.format())
            stats = await client.stats(args.server[0])
            served = stats["counters"].get("queries_served", 0)
            print(f"server[0] queries_served  {served}")
            return 0
        finally:
            await client.close()

    return asyncio.run(_main())


# -- parser ------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="e-PPI personalized privacy-preserving index"
    )
    sub = parser.add_subparsers(dest="command")
    parser.set_defaults(command=None)

    g = sub.add_parser("generate", help="synthesize a dataset")
    g.add_argument("--kind", choices=["trec", "zipf"], default="trec")
    g.add_argument("--providers", type=int, default=100)
    g.add_argument("--owners", type=int, default=500)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--output", required=True)
    g.set_defaults(func=cmd_generate)

    c = sub.add_parser("construct", help="build the e-PPI index")
    c.add_argument("--dataset", required=True)
    c.add_argument("--output", required=True)
    c.add_argument("--policy", choices=["basic", "inc-exp", "chernoff"],
                   default="chernoff")
    c.add_argument("--gamma", type=float, default=0.9)
    c.add_argument("--delta", type=float, default=0.02)
    c.add_argument("--seed", type=int, default=0)
    c.set_defaults(func=cmd_construct)

    q = sub.add_parser("query", help="QueryPPI against a stored index")
    q.add_argument("--index", required=True)
    q.add_argument("--owner", required=True, help="owner name or id")
    q.set_defaults(func=cmd_query)

    a = sub.add_parser("attack", help="attack a stored index")
    a.add_argument("--dataset", required=True)
    a.add_argument("--index", required=True)
    a.add_argument("--seed", type=int, default=0)
    a.add_argument("--required-fraction", type=float, default=0.9)
    a.set_defaults(func=cmd_attack)

    au = sub.add_parser("audit", help="per-owner privacy audit")
    au.add_argument("--dataset", required=True)
    au.add_argument("--index", required=True)
    au.add_argument("--limit", type=int, default=10)
    au.set_defaults(func=cmd_audit)

    i = sub.add_parser("inspect", help="summarize a stored index")
    i.add_argument("--index", required=True)
    i.set_defaults(func=cmd_inspect)

    s = sub.add_parser("serve", help="host a stored index as a TCP locator service")
    src = s.add_mutually_exclusive_group(required=True)
    src.add_argument("--index", help="JSON index file")
    src.add_argument("--snapshot", help="binary index snapshot (see `eppi snapshot`)")
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=7331)
    s.add_argument("--shard", type=int, default=0, help="this process's shard id")
    s.add_argument("--shards", type=int, default=1, help="total shard count")
    s.add_argument("--max-inflight", type=int, default=64,
                   help="backpressure bound on concurrently served requests")
    s.set_defaults(func=cmd_serve)

    p = sub.add_parser("provider", help="run one provider's AuthSearch endpoint")
    p.add_argument("--dataset", required=True)
    p.add_argument("--provider-id", type=int, required=True)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 picks an ephemeral port (printed at startup)")
    p.add_argument("--trust", action="append", default=["searcher"],
                   help="searcher name to trust for all owners (repeatable)")
    p.add_argument("--max-inflight", type=int, default=64)
    p.set_defaults(func=cmd_provider)

    sn = sub.add_parser("snapshot", help="build or inspect a binary index snapshot")
    sn_sub = sn.add_subparsers(dest="snapshot_command", required=True)
    snb = sn_sub.add_parser("build", help="pack a JSON index into a snapshot")
    snb.add_argument("--index", required=True, help="JSON index file")
    snb.add_argument("--output", required=True, help="snapshot file to write")
    snb.add_argument("--format", choices=["v1", "v2"], default="v2",
                     help="v2 adds mmap-able CSR postings (O(1) worker boot); "
                          "v1 is the legacy packed-bits-only layout")
    snb.set_defaults(func=cmd_snapshot)
    sni = sn_sub.add_parser("inspect", help="summarize + checksum a snapshot")
    sni.add_argument("--snapshot", required=True)
    sni.set_defaults(func=cmd_snapshot)
    sn.set_defaults(func=cmd_snapshot)

    sv = sub.add_parser(
        "supervisor",
        help="run a process-per-shard fleet from a snapshot, with restarts",
    )
    sv.add_argument("--snapshot", required=True,
                    help="binary index snapshot every worker boots from")
    sv.add_argument("--shards", type=int, default=2, help="worker process count")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--base-port", type=int, default=0,
                    help="shard i listens on base+i (0 picks free ports)")
    sv.add_argument("--max-inflight", type=int, default=64)
    sv.add_argument("--health-interval", type=float, default=0.25,
                    help="seconds between health-check rounds")
    sv.add_argument("--health-timeout", type=float, default=1.0)
    sv.add_argument("--max-restarts", type=int, default=8,
                    help="consecutive failed lives before giving a worker up")
    sv.add_argument("--duration", type=float, default=None,
                    help="run for N seconds then exit (default: forever)")
    sv.set_defaults(func=cmd_supervisor)

    lg = sub.add_parser("loadgen", help="closed-loop load test against a fleet")
    lg.add_argument("--server", action="append", type=_parse_address,
                    required=True, metavar="HOST:PORT",
                    help="locator server address, once per shard in shard order")
    lg.add_argument("--provider", action="append",
                    type=_parse_provider_address, metavar="ID=HOST:PORT",
                    help="provider endpoint address (repeatable; enables search mode)")
    lg.add_argument("--mode", choices=["query", "search"], default="query")
    lg.add_argument("--workers", type=int, default=4)
    lg.add_argument("--requests", type=int, default=50,
                    help="requests per worker")
    lg.add_argument("--owners", type=int, default=None,
                    help="owner-id space to draw from (default: ask the server)")
    lg.add_argument("--searcher", default="searcher")
    lg.add_argument("--think-time", type=float, default=0.0)
    lg.add_argument("--timeout", type=float, default=2.0)
    lg.add_argument("--max-retries", type=int, default=3)
    lg.add_argument("--cache-size", type=int, default=1024)
    lg.add_argument("--seed", type=int, default=0)
    lg.set_defaults(func=cmd_loadgen)
    return parser


if __name__ == "__main__":
    sys.exit(main())
