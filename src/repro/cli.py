"""Command-line interface: ``python -m repro <command>``.

Gives the library a usable operational surface:

* ``generate``  -- synthesize an information network (TREC-like or Zipf)
  and write it to a JSON dataset file;
* ``construct`` -- run ConstructPPI over a dataset and write the published
  index (plus a construction report) to disk;
* ``secure-construct`` -- run the MPC construction (SecSumShare + GMW
  β-calculation) over a dataset, with Beaver triples from the trusted
  dealer or the dealerless offline factory, and report per-phase costs;
* ``query``     -- QueryPPI against a stored index;
* ``attack``    -- run the primary and common-identity attacks against a
  stored index/dataset pair and report attacker confidence;
* ``audit``     -- per-owner privacy audit of a stored index against the
  dataset's ground truth;
* ``inspect``   -- summarize a stored index (size, broadcast rows, cost);
* ``serve``     -- host a stored index as a live TCP locator service
  (one shard of an owner-sharded fleet);
* ``provider``  -- run one provider's AuthSearch endpoint over a dataset;
* ``loadgen``   -- drive a closed-loop load test against a running fleet
  and print QPS / p50 / p95 / p99 / error-rate;
* ``snapshot``  -- build, inspect or diff a binary index snapshot (the
  fleet's boot format, epoch-stamped from v3 on);
* ``supervisor``-- run a process-per-shard server fleet from a snapshot,
  with health checks and supervised restarts;
* ``update``    -- live-update tooling: init/append a delta log, seal it
  into a segment (``apply``), compact segments into a fresh epoch;
* ``fleet``     -- fleet operations against running servers, e.g.
  ``fleet rollout`` for a rolling hot-swap onto a new snapshot;
* ``redteam``   -- the adversarial lab: ``run`` a full observation
  campaign against a self-booted live fleet (epochs, churn, sticky or
  naive republication, traffic shapes, reload storms), ``replay`` the
  attackers over a recorded observation log, ``report`` a saved privacy
  report.

All randomness is seedable for reproducible pipelines.  Installed as the
``eppi`` console script (``pip install -e .``), or run as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from typing import Optional, Sequence

import numpy as np

from repro.attacks.adversary import AdversaryKnowledge
from repro.attacks.common_identity import common_identity_attack
from repro.attacks.primary import primary_attack_confidences
from repro.core.construction import construct_epsilon_ppi
from repro.core.errors import ReproError
from repro.core.index import PPIIndex
from repro.core.model import InformationNetwork
from repro.core.policies import (
    BasicPolicy,
    BetaPolicy,
    ChernoffPolicy,
    IncrementedExpectationPolicy,
)
from repro.analysis.audit import audit_index
from repro.core.privacy import classify_degree
from repro.datasets.synthetic import uniform_epsilons, zipf_matrix
from repro.datasets.trec_like import TrecLikeConfig, build_trec_like_network
from repro.protocol.construction import run_distributed_construction

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        # Domain and filesystem failures are operator errors, not crashes:
        # one line on stderr and a conventional exit code.
        print(f"error: {exc}", file=sys.stderr)
        return 1


# -- dataset file format ---------------------------------------------------------


def save_dataset(path: str, network: InformationNetwork) -> None:
    matrix = network.membership_matrix()
    payload = {
        "n_providers": network.n_providers,
        "provider_names": [p.name for p in network.providers],
        "owners": [
            {"name": o.name, "epsilon": o.epsilon} for o in network.owners
        ],
        "memberships": sorted(matrix.iter_cells()),
    }
    with open(path, "w") as f:
        json.dump(payload, f)


def load_dataset(path: str) -> InformationNetwork:
    with open(path) as f:
        payload = json.load(f)
    network = InformationNetwork(
        payload["n_providers"], provider_names=payload["provider_names"]
    )
    owners = [
        network.register_owner(o["name"], o["epsilon"]) for o in payload["owners"]
    ]
    for pid, oid in payload["memberships"]:
        network.delegate(owners[oid], pid)
    return network


def _policy_from_args(args: argparse.Namespace) -> BetaPolicy:
    if args.policy == "basic":
        return BasicPolicy()
    if args.policy == "inc-exp":
        return IncrementedExpectationPolicy(delta=args.delta)
    return ChernoffPolicy(gamma=args.gamma)


# -- commands ----------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "trec":
        network = build_trec_like_network(
            TrecLikeConfig(n_providers=args.providers, n_owners=args.owners),
            seed=args.seed,
        )
    else:
        rng = np.random.default_rng(args.seed)
        matrix = zipf_matrix(args.providers, args.owners, rng)
        epsilons = uniform_epsilons(args.owners, rng)
        network = InformationNetwork(args.providers)
        owners = [
            network.register_owner(f"owner-{j:06d}", float(epsilons[j]))
            for j in range(args.owners)
        ]
        for pid, oid in matrix.iter_cells():
            network.delegate(owners[oid], pid)
    save_dataset(args.output, network)
    matrix = network.membership_matrix()
    print(
        f"wrote {args.output}: {network.n_providers} providers, "
        f"{network.n_owners} owners, {matrix.total_memberships} memberships"
    )
    return 0


def cmd_construct(args: argparse.Namespace) -> int:
    network = load_dataset(args.dataset)
    policy = _policy_from_args(args)
    result = construct_epsilon_ppi(
        network, policy, np.random.default_rng(args.seed)
    )
    with open(args.output, "w") as f:
        f.write(result.index.to_json())
    stats = result.index.stats()
    print(f"wrote {args.output}")
    print(f"  policy: {policy.name}")
    print(f"  success ratio: {result.report.success_ratio:.4f}")
    print(f"  avg published list size: {stats.avg_result_size:.1f}")
    print(f"  broadcast owners: {stats.broadcast_owners}")
    print(f"  mixing: lambda={result.mixing.lambda_:.4f} xi={result.mixing.xi:.2f}")
    return 0


def cmd_secure_construct(args: argparse.Namespace) -> int:
    network = load_dataset(args.dataset)
    policy = _policy_from_args(args)
    dense = network.membership_matrix().to_dense()
    provider_bits = [[int(v) for v in row] for row in dense]
    epsilons = [float(e) for e in network.epsilons()]
    result = run_distributed_construction(
        provider_bits,
        epsilons,
        policy,
        c=args.c,
        rng=random.Random(args.seed),
        engine=args.engine,
        triple_source=args.triple_source,
        offline_producers=args.producers,
    )
    secure = result.secure_result
    print(
        f"secure construction: {len(provider_bits)} providers, "
        f"{len(epsilons)} identities, c={args.c}, engine={args.engine}, "
        f"triples={args.triple_source}"
    )
    print(f"  policy: {policy.name}")
    print(f"  lambda={secure.lambda_:.4f} xi={secure.xi:.2f}")
    print(
        f"  n_common={secure.n_common} "
        f"n_natural_decoys={secure.n_natural_decoys} "
        f"selected={sum(secure.publish_as_one)}"
    )
    print(f"  mean beta: {float(np.mean(result.betas)):.4f}")
    print(f"  simulated execution time: {result.execution_time_s:.3f}s")
    phases = getattr(secure, "phases", None)
    if phases is not None:
        print("  per-phase accounting (real wall-clock, offline pipeline):")
        for name in ("setup", "offline", "online"):
            stats = getattr(phases, name)
            print(
                f"    {name:<8} {stats.bytes_sent:>12.0f} B "
                f"{stats.rounds:>6} rounds  "
                f"wall {stats.wall_time_s * 1e3:8.1f} ms  "
                f"hidden {stats.hidden_time_s * 1e3:8.1f} ms"
            )
        print(
            f"    triples  {phases.triple_words_consumed} words consumed / "
            f"{phases.triple_words_produced} produced, "
            f"stall {phases.stall_time_s * 1e3:.1f} ms, "
            f"utilization {phases.utilization:.3f}"
        )
    if args.output:
        payload = {
            "betas": [float(b) for b in result.betas],
            "publish_as_one": [int(b) for b in secure.publish_as_one],
            "lambda": secure.lambda_,
            "xi": secure.xi,
            "execution_time_s": result.execution_time_s,
        }
        if phases is not None:
            payload["phases"] = phases.as_dict()
        with open(args.output, "w") as f:
            json.dump(payload, f, indent=2)
        print(f"wrote {args.output}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    with open(args.index) as f:
        index = PPIIndex.from_json(f.read())
    try:
        providers = index.query_by_name(args.owner)
    except Exception:
        providers = index.query(int(args.owner))
    print(f"{len(providers)} candidate providers:")
    print(" ".join(str(p) for p in providers))
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    network = load_dataset(args.dataset)
    with open(args.index) as f:
        index = PPIIndex.from_json(f.read())
    matrix = network.membership_matrix()
    knowledge = AdversaryKnowledge(published=np.asarray(index.matrix))
    epsilons = network.epsilons()

    conf = primary_attack_confidences(matrix, knowledge)
    degree = classify_degree(conf, epsilons, required_fraction=args.required_fraction)
    print("primary attack:")
    print(f"  mean confidence: {conf.mean():.4f}  max: {conf.max():.4f}")
    print(f"  degree: {degree.value}")

    common = common_identity_attack(
        matrix, knowledge, np.random.default_rng(args.seed)
    )
    print("common-identity attack:")
    if common.attacked:
        print(f"  claimed commons: {len(common.claimed_common)}")
        print(f"  identification confidence: {common.identification_confidence:.4f}")
        print(f"  membership confidence: {common.membership_confidence:.4f}")
    else:
        print("  no identities above the commonness threshold")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    network = load_dataset(args.dataset)
    with open(args.index) as f:
        index = PPIIndex.from_json(f.read())
    matrix = network.membership_matrix()
    audit = audit_index(
        matrix,
        np.asarray(index.matrix),
        network.epsilons(),
        owner_names=[o.name for o in network.owners],
    )
    print(f"success ratio: {audit.success_ratio:.4f}")
    print(f"broadcast owners: {audit.broadcast_count}")
    print(f"worst violation (eps - fp): {audit.worst_violation:.4f}")
    violators = audit.violators()
    print(f"violators: {len(violators)}")
    for o in violators[: args.limit]:
        print(
            f"  {o.name}: eps={o.epsilon:.2f} fp={o.false_positive_rate:.2f} "
            f"freq={o.true_frequency} published={o.published_size}"
        )
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    with open(args.index) as f:
        index = PPIIndex.from_json(f.read())
    stats = index.stats()
    print(f"providers: {stats.n_providers}")
    print(f"owners: {stats.n_owners}")
    print(f"published positives: {stats.published_positives}")
    print(f"avg result size: {stats.avg_result_size:.2f}")
    print(f"broadcast owners: {stats.broadcast_owners}")
    return 0


# -- serving commands --------------------------------------------------------


def _parse_address(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"address must be host:port, got {text!r}"
        )
    return host, int(port)


def _parse_provider_address(text: str) -> tuple[int, tuple[str, int]]:
    pid, _, addr = text.partition("=")
    if not pid.isdigit() or not addr:
        raise argparse.ArgumentTypeError(
            f"provider address must be <id>=host:port, got {text!r}"
        )
    return int(pid), _parse_address(addr)


def _run_node_forever(node) -> int:
    import asyncio

    async def _main() -> None:
        await node.start()
        print(f"{node.role} listening on {node.host}:{node.port}", flush=True)
        try:
            await node.serve_forever()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print(f"\n{node.role}: shutting down")
    except OSError as exc:
        print(f"{node.role}: cannot listen on {node.host}:{node.port}: {exc}",
              file=sys.stderr)
        return 1
    return 0


def _load_index_arg(args: argparse.Namespace):
    """Load ``(index, epoch)`` from ``--index`` (JSON) or ``--snapshot``.

    A v2+ snapshot boots as an mmap'd CSR :class:`PostingsIndex`; v1 falls
    back to the dense load.  JSON indexes have no publication epoch (0).
    """
    if getattr(args, "snapshot", None):
        from repro.serving.snapshot import load_serving_state

        return load_serving_state(args.snapshot)
    with open(args.index) as f:
        return PPIIndex.from_json(f.read()), 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import PPIServer, ShardSpec
    from repro.serving.eventloop import install_uvloop

    loop_label = "asyncio"
    if args.uvloop:
        if install_uvloop():
            loop_label = "uvloop"
        else:
            print("uvloop not installed; falling back to the stdlib loop")
    index, epoch = _load_index_arg(args)
    protocols = {"v1": (1,), "v2": (2,), "both": (1, 2)}[args.protocol]
    try:
        server = PPIServer(
            index,
            shard=ShardSpec(args.shard, args.shards),
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            snapshot_path=getattr(args, "snapshot", None),
            epoch=epoch,
            protocols=protocols,
            reuse_port=args.reuse_port,
        )
    except ValueError as exc:  # e.g. SO_REUSEPORT unsupported here
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    print(
        f"serving shard {args.shard}/{args.shards} of index "
        f"({index.n_providers} providers, {index.n_owners} owners, "
        f"epoch {epoch}, wire protocol {args.protocol}, "
        f"loop {loop_label}"
        + (", SO_REUSEPORT" if args.reuse_port else "")
        + ")"
    )
    return _run_node_forever(server)


def cmd_provider(args: argparse.Namespace) -> int:
    from repro.core.authsearch import AccessControl
    from repro.serving import ProviderEndpoint

    network = load_dataset(args.dataset)
    if not 0 <= args.provider_id < network.n_providers:
        print(
            f"provider id {args.provider_id} out of range "
            f"(dataset has {network.n_providers} providers)",
            file=sys.stderr,
        )
        return 2
    endpoint = ProviderEndpoint(
        network.providers[args.provider_id],
        AccessControl(trusted=set(args.trust)),
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
    )
    return _run_node_forever(endpoint)


def cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.serving.snapshot import inspect_snapshot, save_snapshot

    if args.snapshot_command == "diff":
        from repro.updates import diff_snapshots

        diff = diff_snapshots(args.a, args.b)
        for side in ("a", "b"):
            meta = diff[side]
            print(
                f"{side}: {meta['path']} (v{meta['format_version']}, "
                f"epoch {meta['epoch']}, {meta['n_providers']} providers, "
                f"{meta['n_owners']} owners, nnz {meta['nnz']})"
            )
        print(f"epoch delta: {diff['epoch_delta']:+d}")
        print(f"owners added: {len(diff['owners_added'])}")
        print(f"owners removed: {len(diff['owners_removed'])}")
        print(
            f"owners changed: {diff['owners_changed']} "
            f"(+{diff['bits_added']} / -{diff['bits_removed']} bits)"
        )
        for row in diff["top_churn"]:
            print(
                f"  {row['label']}: +{row['bits_added']} -{row['bits_removed']}"
            )
        return 0
    if args.snapshot_command == "build":
        with open(args.index) as f:
            index = PPIIndex.from_json(f.read())
        version = {"v1": 1, "v2": 2, "v3": 3}[args.format]
        info = save_snapshot(
            index, args.output, format_version=version, epoch=args.epoch
        )
        print(f"wrote {args.output}")
    else:
        info = inspect_snapshot(args.snapshot)
    for key, value in info.items():
        if key == "density":
            print(f"  {key}: {value:.4f}")
        else:
            print(f"  {key}: {value}")
    return 0 if info["checksum_ok"] else 1


def _parse_id_list(text: str) -> list[int]:
    if not text:
        return []
    try:
        return [int(part) for part in text.split(",")]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated ids, got {text!r}"
        ) from None


def cmd_update(args: argparse.Namespace) -> int:
    from repro.updates import DeltaLog, compact_snapshot, seal_segment

    if args.update_command == "init":
        log = DeltaLog.create(args.log, n_providers=args.providers)
        log.close()
        print(f"created {args.log} ({args.providers} providers)")
        return 0
    if args.update_command == "append":
        with DeltaLog.open(args.log) as log:
            if log.repaired_bytes:
                print(f"repaired torn tail: dropped {log.repaired_bytes} bytes")
            if args.op == "upsert":
                seq = log.upsert(
                    args.owner, args.providers or [], args.beta, name=args.name
                )
            elif args.op == "remove":
                seq = log.remove(args.owner)
            else:
                seq = log.flip(
                    args.owner,
                    set_providers=args.set or [],
                    clear_providers=args.clear or [],
                    beta=args.beta,
                )
            log.sync()
        print(f"appended seq {seq} ({args.op} owner {args.owner})")
        return 0
    if args.update_command == "apply":
        from repro.serving.snapshot import snapshot_epoch

        log = DeltaLog.open(args.log)
        base_epoch = snapshot_epoch(args.base)
        summary = seal_segment(log, args.output, base_epoch=base_epoch)
        print(f"wrote {args.output}")
        for key in (
            "n_entries",
            "tombstones",
            "published_positives",
            "base_epoch",
            "file_bytes",
        ):
            print(f"  {key}: {summary[key]}")
        return 0
    # compact
    from repro.updates import load_segment

    # Drift triple, scanned before the merge consumes the segments --
    # the same accounting ``Compactor.run_once`` reports, so operators see
    # what an incremental β refresh would be asked to re-evaluate.
    ops_applied = 0
    owners_touched = 0
    dirty: set = set()
    for path in args.segment:
        segment = load_segment(path)
        ops_applied += segment.n_ops
        owners_touched += len(segment)
        dirty.update(segment.owners.tolist())
    summary = compact_snapshot(args.base, args.segment, args.output)
    out = args.output or args.base
    print(f"wrote {out} (epoch {summary['epoch']})")
    print(f"  consumed segments: {len(summary['consumed_segments'])}")
    print(f"  overlaid owners: {summary['overlaid_owners']}")
    print(f"  n_owners: {summary['n_owners']}")
    print(f"  ops applied: {ops_applied}")
    print(f"  owners touched: {owners_touched}")
    print(f"  identities dirtied: {len(dirty)}")
    if args.delete_segments:
        import os

        for path in summary["consumed_segments"]:
            os.unlink(path)
        print(f"  deleted {len(summary['consumed_segments'])} segment file(s)")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Client-driven fleet operations against explicitly-listed servers.

    ``rollout``: the in-process :meth:`FleetSupervisor.rollout` does this
    for a fleet it owns; this command is the remote-operator form -- it
    speaks the same ``reload`` verb to each listed server in shard order,
    waiting for each to settle on the snapshot's epoch before touching the
    next.  ``promote``: sends ``repl-promote`` to a replica server, which
    detaches from its leader, folds every pending segment, and answers as
    a primary from then on.
    """
    import time

    if args.fleet_command == "promote":
        return _cmd_fleet_promote(args)

    from repro.serving.fleet import sync_request
    from repro.serving.protocol import VERB_INFO, VERB_RELOAD
    from repro.serving.snapshot import snapshot_epoch

    target_epoch = snapshot_epoch(args.snapshot)
    for shard, addr in enumerate(args.server):
        try:
            sync_request(
                addr, VERB_RELOAD, timeout_s=args.timeout, snapshot=args.snapshot
            )
        except Exception as exc:  # noqa: BLE001 -- settle loop decides
            print(f"shard {shard} ({addr[0]}:{addr[1]}): reload request failed: {exc}")
        deadline = time.monotonic() + args.settle_timeout
        settled = False
        while time.monotonic() < deadline:
            try:
                info = sync_request(addr, VERB_INFO, timeout_s=args.timeout)
                if info.get("epoch") == target_epoch:
                    settled = True
                    break
            except Exception:  # noqa: BLE001 -- worker mid-restart
                pass
            time.sleep(0.05)
        if not settled:
            print(
                f"shard {shard} ({addr[0]}:{addr[1]}) stuck below epoch "
                f"{target_epoch}; aborting rollout",
                file=sys.stderr,
            )
            return 1
        print(f"shard {shard} ({addr[0]}:{addr[1]}): epoch {target_epoch}")
    print(f"rollout complete: {len(args.server)} shard(s) at epoch {target_epoch}")
    return 0


def _cmd_fleet_promote(args: argparse.Namespace) -> int:
    from repro.replication import VERB_REPL_PROMOTE
    from repro.serving.fleet import sync_request

    addr = args.server
    try:
        status = sync_request(addr, VERB_REPL_PROMOTE, timeout_s=args.timeout)
    except Exception as exc:  # noqa: BLE001 -- operator-facing one-shot
        print(f"promote: {addr[0]}:{addr[1]}: {exc}", file=sys.stderr)
        return 1
    print(
        f"promoted {addr[0]}:{addr[1]}: role={status.get('role')} "
        f"epoch={status.get('epoch')} detached={status.get('detached')} "
        f"compactions={status.get('compactions')}"
    )
    return 0


def cmd_replica(args: argparse.Namespace) -> int:
    """Geo-replicated read tier: leader stream, follower serve, status."""
    if args.replica_command == "status":
        from repro.replication import VERB_REPL_STATUS
        from repro.serving.fleet import sync_request

        try:
            status = sync_request(
                args.server, VERB_REPL_STATUS, timeout_s=args.timeout
            )
        except Exception as exc:  # noqa: BLE001 -- operator-facing one-shot
            print(
                f"replica status: {args.server[0]}:{args.server[1]}: {exc}",
                file=sys.stderr,
            )
            return 1
        for key in (
            "role", "leader", "epoch", "leader_epoch", "epochs_behind",
            "overlay_depth", "segments_fetched", "bytes_fetched",
            "compactions", "swaps", "detached",
        ):
            print(f"{key:18} {status.get(key)}")
        return 0
    if args.replica_command == "stream":
        from repro.replication import SegmentStreamer

        streamer = SegmentStreamer(
            args.snapshot,
            args.segment_dir,
            archive_dir=args.archive_dir,
            host=args.host,
            port=args.port,
            chunk_bytes=args.chunk_bytes,
            retain_epochs=args.retain_epochs,
        )
        print(
            f"streaming epoch {streamer.epoch()} "
            f"({len(streamer.manifest())} retained segment(s))"
        )
        return _run_node_forever(streamer)
    return _cmd_replica_serve(args)


def _cmd_replica_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.replication import ReplicaApplier, ReplicaServer, ReplicationError
    from repro.serving import ShardSpec

    applier = ReplicaApplier(
        args.leader,
        args.base,
        segment_dir=args.segment_dir,
        compact_threshold=args.compact_threshold,
    )

    async def _main() -> int:
        server = ReplicaServer(
            applier,
            shard=ShardSpec(args.shard, args.shards),
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
        )
        await server.start()
        print(f"{server.role} listening on {server.host}:{server.port}", flush=True)
        print(
            f"replica: epoch {applier.epoch}, leader "
            f"{applier.leader[0]}:{applier.leader[1]}, poll {args.poll}s",
            flush=True,
        )
        serve = asyncio.create_task(server.serve_forever())
        tail = asyncio.create_task(applier.run(interval_s=args.poll))
        rc = 0
        try:
            done, _ = await asyncio.wait(
                {serve, tail}, return_when=asyncio.FIRST_COMPLETED
            )
            if tail in done and serve not in done and tail.exception() is None:
                # Detached (promoted over the wire): keep serving as primary.
                await serve
            for task in done:
                exc = task.exception()
                if isinstance(exc, ReplicationError):
                    print(f"replica: {exc}", file=sys.stderr)
                    rc = 1
                elif exc is not None:
                    raise exc
        except asyncio.CancelledError:
            pass
        finally:
            for task in (serve, tail):
                task.cancel()
            await server.stop()
            await applier.close()
        return rc

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:
        print("\nreplica: shutting down")
        return 0
    except OSError as exc:
        print(
            f"replica: cannot listen on {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1


def cmd_supervisor(args: argparse.Namespace) -> int:
    import time

    from repro.serving.fleet import FleetSupervisor

    ports = None
    if args.base_port:
        ports = [args.base_port + i for i in range(args.shards)]
    try:
        supervisor = _build_supervisor(args, FleetSupervisor, ports)
    except ValueError as exc:  # e.g. accept_procs without SO_REUSEPORT
        print(f"supervisor: {exc}", file=sys.stderr)
        return 2
    try:
        supervisor.start(monitor=True)
    except (OSError, TimeoutError) as exc:
        print(f"supervisor: failed to start fleet: {exc}", file=sys.stderr)
        supervisor.stop()
        return 1
    # The "listening on" lines come first and stay machine-readable:
    # harnesses read one line per shard to learn the fleet's addresses.
    for shard_id, addr in enumerate(supervisor.addresses):
        print(f"shard {shard_id}/{args.shards} listening on {addr[0]}:{addr[1]}",
              flush=True)
    if args.read_replicas:
        for shard_id, addrs in enumerate(supervisor.replica_sets):
            for r, addr in enumerate(addrs[1:], start=1):
                print(f"replica {shard_id}.{r} listening on "
                      f"{addr[0]}:{addr[1]}", flush=True)
    for shard_id, epoch in sorted(supervisor.fleet_stats()["epochs"].items()):
        print(f"shard {shard_id} epoch {epoch}", flush=True)
    n_procs = args.shards * (args.accept_procs + args.read_replicas)
    print(f"fleet: {args.shards} shard(s) x {args.accept_procs} accept "
          f"process(es) + {args.read_replicas} read replica(s)/shard "
          f"= {n_procs} worker(s)"
          + (", uvloop requested" if args.uvloop else ""), flush=True)
    deadline = None
    if args.duration is not None:
        deadline = time.monotonic() + args.duration
    try:
        while deadline is None or time.monotonic() < deadline:
            time.sleep(min(0.2, args.health_interval))
    except KeyboardInterrupt:
        print("\nsupervisor: shutting down fleet")
    finally:
        supervisor.stop()
    states = supervisor.metrics.snapshot()["counters"]
    print(f"supervisor: restarts={states.get('restarts_total', 0)} "
          f"health_checks={states.get('health_checks_total', 0)} "
          f"promotions={states.get('promotions_total', 0)}")
    return 0


def _build_supervisor(args: argparse.Namespace, FleetSupervisor, ports):
    return FleetSupervisor(
        args.snapshot,
        n_shards=args.shards,
        host=args.host,
        ports=ports,
        max_inflight=args.max_inflight,
        health_interval_s=args.health_interval,
        health_timeout_s=args.health_timeout,
        max_restarts=args.max_restarts,
        accept_procs=args.accept_procs,
        uvloop=args.uvloop,
        read_replicas=args.read_replicas,
    )


def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serving import LocatorClient, RetryPolicy, run_load

    async def _main() -> int:
        client = LocatorClient(
            servers=args.server,
            providers=dict(args.provider or []),
            name=args.searcher,
            retry=RetryPolicy(
                max_retries=args.max_retries, timeout_s=args.timeout
            ),
            cache_size=args.cache_size,
            rng_seed=args.seed,
            protocol=args.protocol,
        )
        try:
            if args.owners is not None:
                owner_ids = list(range(args.owners))
            else:
                info = await client.info(args.server[0])
                owner_ids = list(range(int(info["n_owners"])))
            if args.mode == "search" and not client.providers:
                print(
                    "loadgen: search mode needs --provider <id>=host:port "
                    "for every reachable provider",
                    file=sys.stderr,
                )
                return 2
            tier_of = None
            if args.tiers:
                tier_of = {j: f"tier-{j % args.tiers}" for j in owner_ids}
            report = await run_load(
                client,
                owner_ids,
                n_workers=args.workers,
                requests_per_worker=args.requests,
                mode=args.mode,
                think_time_s=args.think_time,
                batch_size=args.batch_size,
                zipf_a=args.zipf_a,
                seed=args.seed,
                shape=args.shape,
                shape_period=args.shape_period,
                tier_of=tier_of,
            )
            print(report.format())
            if client.protocol_downgrades:
                print(f"protocol downgrades    {client.protocol_downgrades}")
            stats = await client.stats(args.server[0])
            served = stats["counters"].get("queries_served", 0)
            print(f"server[0] queries_served  {served}")
            return 0
        finally:
            await client.close()

    return asyncio.run(_main())


def cmd_redteam(args: argparse.Namespace) -> int:
    from repro.redteam import (
        ObservationLog,
        PrivacyReport,
        Scenario,
        ScenarioRunner,
        load_truth_payload,
        run_attacks,
        truth_payload,
    )

    if args.redteam_command == "run":
        os.makedirs(args.out, exist_ok=True)
        snapshot_dir = os.path.join(args.out, "snapshots")
        os.makedirs(snapshot_dir, exist_ok=True)
        observation_path = os.path.join(args.out, "observations.obs")
        if os.path.exists(observation_path):
            os.unlink(observation_path)  # each run is a fresh campaign
        scenario = Scenario(
            n_providers=args.providers,
            n_owners=args.owners,
            epochs=args.epochs,
            churn=args.churn,
            sticky=not args.naive,
            seed=args.seed,
            n_shards=args.shards,
            workers=args.workers,
            requests_per_worker=args.requests,
            shape=args.shape,
            think_time_s=args.think_time,
            shape_period=args.shape_period,
            zipf_a=args.zipf_a,
            reload_storm=args.reload_storm,
            linkage_targets=args.linkage_targets,
        )
        outcome = ScenarioRunner(
            scenario, snapshot_dir, observation_path
        ).run()
        with open(os.path.join(args.out, "truth.json"), "w") as fh:
            json.dump(truth_payload(outcome), fh, indent=2)
        with open(os.path.join(args.out, "report.json"), "w") as fh:
            fh.write(outcome.report.to_json())
        print(outcome.report.format())
        for epoch, load in enumerate(outcome.load_reports):
            p = load.latency_percentiles_ms()
            print(
                f"load epoch {epoch}: {load.total} requests, "
                f"{load.qps:.0f} req/s, p99 {p['p99']:.2f} ms"
            )
        print(f"artifacts in {args.out}")
        return 0

    if args.redteam_command == "replay":
        with open(args.truth) as fh:
            truth_by_epoch, tier_map, mode = load_truth_payload(json.load(fh))
        log = ObservationLog(args.observations)
        try:
            report = run_attacks(
                log,
                truth_by_epoch,
                tier_map,
                mode,
                linkage_targets=args.linkage_targets,
            )
        finally:
            log.close()
        print(report.format())
        if args.json_out:
            with open(args.json_out, "w") as fh:
                fh.write(report.to_json())
        return 0

    with open(args.report) as fh:
        print(PrivacyReport.from_dict(json.load(fh)).format())
    return 0


# -- parser ------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="e-PPI personalized privacy-preserving index"
    )
    sub = parser.add_subparsers(dest="command")
    parser.set_defaults(command=None)

    g = sub.add_parser("generate", help="synthesize a dataset")
    g.add_argument("--kind", choices=["trec", "zipf"], default="trec")
    g.add_argument("--providers", type=int, default=100)
    g.add_argument("--owners", type=int, default=500)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--output", required=True)
    g.set_defaults(func=cmd_generate)

    c = sub.add_parser("construct", help="build the e-PPI index")
    c.add_argument("--dataset", required=True)
    c.add_argument("--output", required=True)
    c.add_argument("--policy", choices=["basic", "inc-exp", "chernoff"],
                   default="chernoff")
    c.add_argument("--gamma", type=float, default=0.9)
    c.add_argument("--delta", type=float, default=0.02)
    c.add_argument("--seed", type=int, default=0)
    c.set_defaults(func=cmd_construct)

    sc = sub.add_parser(
        "secure-construct",
        help="run the MPC construction (SecSum + GMW) over a dataset",
    )
    sc.add_argument("--dataset", required=True)
    sc.add_argument("--output", help="optional JSON report path")
    sc.add_argument("--c", type=int, default=3,
                    help="coordinator count (collusion tolerance)")
    sc.add_argument("--policy", choices=["basic", "inc-exp", "chernoff"],
                    default="chernoff")
    sc.add_argument("--gamma", type=float, default=0.9)
    sc.add_argument("--delta", type=float, default=0.02)
    sc.add_argument("--engine", choices=["mono", "scalar", "batch"],
                    default="batch")
    sc.add_argument("--triple-source", choices=["dealer", "factory"],
                    default="factory",
                    help="Beaver triples: trusted dealer or dealerless "
                         "offline factory (pipelined with the online phase)")
    sc.add_argument("--producers", type=int, default=2,
                    help="offline producer processes (factory mode)")
    sc.add_argument("--seed", type=int, default=0)
    sc.set_defaults(func=cmd_secure_construct)

    q = sub.add_parser("query", help="QueryPPI against a stored index")
    q.add_argument("--index", required=True)
    q.add_argument("--owner", required=True, help="owner name or id")
    q.set_defaults(func=cmd_query)

    a = sub.add_parser("attack", help="attack a stored index")
    a.add_argument("--dataset", required=True)
    a.add_argument("--index", required=True)
    a.add_argument("--seed", type=int, default=0)
    a.add_argument("--required-fraction", type=float, default=0.9)
    a.set_defaults(func=cmd_attack)

    au = sub.add_parser("audit", help="per-owner privacy audit")
    au.add_argument("--dataset", required=True)
    au.add_argument("--index", required=True)
    au.add_argument("--limit", type=int, default=10)
    au.set_defaults(func=cmd_audit)

    i = sub.add_parser("inspect", help="summarize a stored index")
    i.add_argument("--index", required=True)
    i.set_defaults(func=cmd_inspect)

    s = sub.add_parser("serve", help="host a stored index as a TCP locator service")
    src = s.add_mutually_exclusive_group(required=True)
    src.add_argument("--index", help="JSON index file")
    src.add_argument("--snapshot", help="binary index snapshot (see `eppi snapshot`)")
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=7331)
    s.add_argument("--shard", type=int, default=0, help="this process's shard id")
    s.add_argument("--shards", type=int, default=1, help="total shard count")
    s.add_argument("--max-inflight", type=int, default=64,
                   help="backpressure bound on concurrently served requests")
    s.add_argument("--protocol", choices=["v1", "v2", "both"], default="both",
                   help="accepted wire protocols (sniffed per frame)")
    s.add_argument("--uvloop", action="store_true",
                   help="install the uvloop event-loop policy when available "
                        "(falls back to the stdlib loop otherwise)")
    s.add_argument("--reuse-port", action="store_true",
                   help="bind with SO_REUSEPORT so several serve processes "
                        "can share this port (per-core accept sockets)")
    s.set_defaults(func=cmd_serve)

    p = sub.add_parser("provider", help="run one provider's AuthSearch endpoint")
    p.add_argument("--dataset", required=True)
    p.add_argument("--provider-id", type=int, required=True)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 picks an ephemeral port (printed at startup)")
    p.add_argument("--trust", action="append", default=["searcher"],
                   help="searcher name to trust for all owners (repeatable)")
    p.add_argument("--max-inflight", type=int, default=64)
    p.set_defaults(func=cmd_provider)

    sn = sub.add_parser("snapshot",
                        help="build, inspect or diff a binary index snapshot")
    sn_sub = sn.add_subparsers(dest="snapshot_command", required=True)
    snb = sn_sub.add_parser("build", help="pack a JSON index into a snapshot")
    snb.add_argument("--index", required=True, help="JSON index file")
    snb.add_argument("--output", required=True, help="snapshot file to write")
    snb.add_argument("--format", choices=["v1", "v2", "v3"], default="v3",
                     help="v3 adds the publication epoch; v2 is the epoch-less "
                          "CSR layout; v1 the legacy packed-bits-only layout")
    snb.add_argument("--epoch", type=int, default=0,
                     help="publication epoch to stamp (v3 only)")
    snb.set_defaults(func=cmd_snapshot)
    sni = sn_sub.add_parser("inspect", help="summarize + checksum a snapshot")
    sni.add_argument("--snapshot", required=True)
    sni.set_defaults(func=cmd_snapshot)
    snd = sn_sub.add_parser("diff", help="owners/bits/epoch delta of two snapshots")
    snd.add_argument("a", help="older snapshot")
    snd.add_argument("b", help="newer snapshot")
    snd.set_defaults(func=cmd_snapshot)
    sn.set_defaults(func=cmd_snapshot)

    up = sub.add_parser("update", help="live index updates: delta log -> segments")
    up_sub = up.add_subparsers(dest="update_command", required=True)
    upi = up_sub.add_parser("init", help="create an empty delta log")
    upi.add_argument("--log", required=True, help="delta log file to create")
    upi.add_argument("--providers", type=int, required=True,
                     help="provider-universe size (fixed for the log's lifetime)")
    upi.set_defaults(func=cmd_update)
    upa = up_sub.add_parser("append", help="append one operation to a delta log")
    upa.add_argument("--log", required=True)
    upa.add_argument("--op", choices=["upsert", "remove", "flip"], required=True)
    upa.add_argument("--owner", type=int, required=True)
    upa.add_argument("--providers", type=_parse_id_list,
                     help="true provider ids for upsert, e.g. 1,4,9")
    upa.add_argument("--beta", type=float, default=None,
                     help="publication probability beta_j")
    upa.add_argument("--set", type=_parse_id_list, help="bits to set (flip)")
    upa.add_argument("--clear", type=_parse_id_list, help="bits to clear (flip)")
    upa.add_argument("--name", default=None, help="owner name (upsert)")
    upa.set_defaults(func=cmd_update)
    upp = up_sub.add_parser(
        "apply", help="seal the log's net state into an immutable segment"
    )
    upp.add_argument("--log", required=True)
    upp.add_argument("--base", required=True,
                     help="base snapshot the segment will overlay")
    upp.add_argument("--output", required=True, help="segment file to write")
    upp.set_defaults(func=cmd_update)
    upc = up_sub.add_parser(
        "compact", help="merge base snapshot + segments into a fresh epoch"
    )
    upc.add_argument("--base", required=True, help="base snapshot")
    upc.add_argument("--segment", action="append", required=True,
                     help="segment file, oldest first (repeatable)")
    upc.add_argument("--output", default=None,
                     help="output snapshot (default: replace base in place)")
    upc.add_argument("--delete-segments", action="store_true",
                     help="unlink consumed segment files after the merge")
    upc.set_defaults(func=cmd_update)

    fl = sub.add_parser("fleet", help="operations against a running fleet")
    fl_sub = fl.add_subparsers(dest="fleet_command", required=True)
    flr = fl_sub.add_parser(
        "rollout", help="rolling hot-swap of every shard onto a new snapshot"
    )
    flr.add_argument("--server", action="append", type=_parse_address,
                     required=True, metavar="HOST:PORT",
                     help="shard address, once per shard in shard order")
    flr.add_argument("--snapshot", required=True,
                     help="epoch-stamped snapshot to roll the fleet onto")
    flr.add_argument("--timeout", type=float, default=5.0,
                     help="per-request timeout")
    flr.add_argument("--settle-timeout", type=float, default=30.0,
                     help="seconds to wait for each shard to reach the epoch")
    flr.set_defaults(func=cmd_fleet)
    flp = fl_sub.add_parser(
        "promote",
        help="promote a replica server: detach from its leader, fold "
             "pending segments, answer as a primary",
    )
    flp.add_argument("--server", type=_parse_address, required=True,
                     metavar="HOST:PORT", help="replica server to promote")
    flp.add_argument("--timeout", type=float, default=60.0,
                     help="promotion compacts pending segments; allow for it")
    flp.set_defaults(func=cmd_fleet)

    rp = sub.add_parser(
        "replica",
        help="geo-replicated read tier: stream segments, tail a leader, "
             "inspect convergence",
    )
    rp_sub = rp.add_subparsers(dest="replica_command", required=True)
    rps = rp_sub.add_parser(
        "stream", help="leader side: archive + serve sealed segments"
    )
    rps.add_argument("--snapshot", required=True,
                     help="the leader's published snapshot (defines the epoch)")
    rps.add_argument("--segment-dir", required=True,
                     help="directory where sealed segments land")
    rps.add_argument("--archive-dir", default=None,
                     help="archive directory (default: <segment-dir>/repl-archive)")
    rps.add_argument("--host", default="127.0.0.1")
    rps.add_argument("--port", type=int, default=0)
    rps.add_argument("--chunk-bytes", type=int, default=4 * 2**20,
                     help="max segment bytes per repl-segment response")
    rps.add_argument("--retain-epochs", type=int, default=None,
                     help="drop archived segments this many epochs behind "
                          "the leader (default: keep everything)")
    rps.set_defaults(func=cmd_replica)
    rpv = rp_sub.add_parser(
        "serve", help="follower side: tail the leader, overlay, compact, serve"
    )
    rpv.add_argument("--leader", type=_parse_address, required=True,
                     metavar="HOST:PORT", help="the leader's segment streamer")
    rpv.add_argument("--base", required=True,
                     help="local base snapshot (the one-time initial seed)")
    rpv.add_argument("--segment-dir", default=None,
                     help="local segment directory (default: <base>.segments)")
    rpv.add_argument("--host", default="127.0.0.1")
    rpv.add_argument("--port", type=int, default=0)
    rpv.add_argument("--shard", type=int, default=0)
    rpv.add_argument("--shards", type=int, default=1)
    rpv.add_argument("--max-inflight", type=int, default=64)
    rpv.add_argument("--poll", type=float, default=0.5,
                     help="seconds between leader polls")
    rpv.add_argument("--compact-threshold", type=int, default=4,
                     help="completed segments that trigger local compaction")
    rpv.set_defaults(func=cmd_replica)
    rpt = rp_sub.add_parser("status", help="a replica's convergence state")
    rpt.add_argument("--server", type=_parse_address, required=True,
                     metavar="HOST:PORT")
    rpt.add_argument("--timeout", type=float, default=5.0)
    rpt.set_defaults(func=cmd_replica)

    sv = sub.add_parser(
        "supervisor",
        help="run a process-per-shard fleet from a snapshot, with restarts",
    )
    sv.add_argument("--snapshot", required=True,
                    help="binary index snapshot every worker boots from")
    sv.add_argument("--shards", type=int, default=2, help="worker process count")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--base-port", type=int, default=0,
                    help="shard i listens on base+i (0 picks free ports)")
    sv.add_argument("--max-inflight", type=int, default=64)
    sv.add_argument("--health-interval", type=float, default=0.25,
                    help="seconds between health-check rounds")
    sv.add_argument("--health-timeout", type=float, default=1.0)
    sv.add_argument("--max-restarts", type=int, default=8,
                    help="consecutive failed lives before giving a worker up")
    sv.add_argument("--duration", type=float, default=None,
                    help="run for N seconds then exit (default: forever)")
    sv.add_argument("--accept-procs", type=int, default=1,
                    help="processes per shard sharing its port via "
                         "SO_REUSEPORT (per-core accept sockets)")
    sv.add_argument("--uvloop", action="store_true",
                    help="workers install the uvloop event-loop policy when "
                         "available (stdlib loop otherwise)")
    sv.add_argument("--read-replicas", type=int, default=0,
                    help="extra read-tier workers per shard, each on its own "
                         "port; a live one is promoted if a primary fails")
    sv.set_defaults(func=cmd_supervisor)

    lg = sub.add_parser("loadgen", help="closed-loop load test against a fleet")
    lg.add_argument("--server", action="append", type=_parse_address,
                    required=True, metavar="HOST:PORT",
                    help="locator server address, once per shard in shard order")
    lg.add_argument("--provider", action="append",
                    type=_parse_provider_address, metavar="ID=HOST:PORT",
                    help="provider endpoint address (repeatable; enables search mode)")
    lg.add_argument("--mode", choices=["query", "batch", "search"],
                    default="query")
    lg.add_argument("--batch-size", type=int, default=32,
                    help="owners per query-batch round trip (batch mode)")
    lg.add_argument("--protocol", choices=["auto", "v1", "v2"], default="auto",
                    help="wire protocol to speak (auto: v2 with v1 fallback)")
    lg.add_argument("--workers", type=int, default=4)
    lg.add_argument("--requests", type=int, default=50,
                    help="requests per worker")
    lg.add_argument("--owners", type=int, default=None,
                    help="owner-id space to draw from (default: ask the server)")
    lg.add_argument("--searcher", default="searcher")
    lg.add_argument("--think-time", type=float, default=0.0)
    lg.add_argument("--timeout", type=float, default=2.0)
    lg.add_argument("--max-retries", type=int, default=3)
    lg.add_argument("--cache-size", type=int, default=1024)
    lg.add_argument("--seed", type=int, default=0,
                    help="seeds both the client rng and the zipf schedule")
    lg.add_argument("--zipf-a", type=float, default=0.0,
                    help="Zipf exponent for hot-key skew (0 = uniform "
                         "round-robin); draws are reproducible under --seed")
    lg.add_argument("--shape", choices=["uniform", "diurnal", "burst"],
                    default="uniform",
                    help="arrival shape: steady, sinusoidal day/night, or "
                         "on/off bursts (shaped runs need --think-time > 0)")
    lg.add_argument("--shape-period", type=int, default=32,
                    help="requests per shape cycle (diurnal/burst)")
    lg.add_argument("--tiers", type=int, default=0,
                    help="partition owners into N privacy tiers (owner mod N) "
                         "and report per-tier latency percentiles")

    rt = sub.add_parser(
        "redteam",
        help="adversarial lab: attack a live fleet across epochs",
    )
    rt_sub = rt.add_subparsers(dest="redteam_command", required=True)

    rr = rt_sub.add_parser(
        "run",
        help="run a full observation campaign against a self-booted fleet",
    )
    rr.add_argument("--out", required=True,
                    help="output directory for observations.obs, truth.json, "
                         "report.json and the per-epoch snapshots")
    rr.add_argument("--providers", type=int, default=32)
    rr.add_argument("--owners", type=int, default=120)
    rr.add_argument("--epochs", type=int, default=5)
    rr.add_argument("--churn", type=float, default=0.01,
                    help="fraction of owners whose truth moves per epoch")
    rr.add_argument("--naive", action="store_true",
                    help="fresh-coin republication baseline (default: sticky)")
    rr.add_argument("--seed", type=int, default=0)
    rr.add_argument("--shards", type=int, default=1)
    rr.add_argument("--workers", type=int, default=2,
                    help="cover-load workers")
    rr.add_argument("--requests", type=int, default=20,
                    help="cover-load requests per worker per epoch")
    rr.add_argument("--shape", choices=["uniform", "diurnal", "burst"],
                    default="uniform", help="cover-load arrival shape")
    rr.add_argument("--shape-period", type=int, default=16)
    rr.add_argument("--think-time", type=float, default=0.0)
    rr.add_argument("--zipf-a", type=float, default=0.0)
    rr.add_argument("--reload-storm", action="store_true",
                    help="harvest and load *during* each rolling reload")
    rr.add_argument("--linkage-targets", type=int, default=8,
                    help="quasi-identifier records for the linkage attacker "
                         "(0 disables)")
    rr.set_defaults(func=cmd_redteam)

    rp = rt_sub.add_parser(
        "replay",
        help="re-run the attackers over a recorded observation log",
    )
    rp.add_argument("--observations", required=True,
                    help="observation log written by `redteam run`")
    rp.add_argument("--truth", required=True,
                    help="truth.json written by `redteam run`")
    rp.add_argument("--linkage-targets", type=int, default=8)
    rp.add_argument("--json", dest="json_out", default=None,
                    help="also write the recomputed report here")
    rp.set_defaults(func=cmd_redteam)

    rq = rt_sub.add_parser("report", help="pretty-print a saved privacy report")
    rq.add_argument("--report", required=True, help="report.json path")
    rq.set_defaults(func=cmd_redteam)

    lg.set_defaults(func=cmd_loadgen)
    return parser


if __name__ == "__main__":
    sys.exit(main())
