"""Leader-side segment streamer: the source of a replication stream.

A :class:`SegmentStreamer` sits next to the leader's compaction pipeline
and serves three verbs (over either wire protocol; see ``wire.py``):

``repl-epoch`` / ``repl-subscribe``
    The leader's current snapshot epoch plus a manifest of retained sealed
    segments -- name, ``base_epoch``, op count, byte size.  ``repl-subscribe``
    takes an ``after`` cursor (the last segment name a follower holds) and
    answers only the tail, so a resumed subscription never re-lists or
    re-fetches what the follower already applied.

``repl-segment``
    One bounded, base64-armored chunk of one retained segment's bytes,
    addressed by ``(name, offset)`` -- resumable at byte granularity.

The streamer *archives* every sealed segment it sees: the leader's own
:class:`~repro.updates.compactor.Compactor` deletes consumed segments the
moment the merged snapshot is durable, which would strand any follower that
had not fetched them yet.  ``refresh()`` therefore hard-copies new segments
from ``segment_dir`` into ``archive_dir`` before they can disappear, and
serves the manifest from the archive.  ``retain_epochs`` bounds the archive:
segments whose ``base_epoch`` has fallen that far behind the leader's
current epoch are dropped (a follower further behind than the retention
window must re-seed from a snapshot -- the one transfer this plane is
designed to make rare).
"""

from __future__ import annotations

import glob
import os
import shutil
from typing import Any, Optional

from repro.replication.wire import (
    DEFAULT_CHUNK_BYTES,
    VERB_REPL_EPOCH,
    VERB_REPL_SEGMENT,
    VERB_REPL_SUBSCRIBE,
    encode_chunk,
)
from repro.serving.protocol import error_response, ok_response
from repro.serving.server import ServingNode
from repro.serving.snapshot import snapshot_epoch
from repro.updates.segments import load_segment

__all__ = ["SegmentStreamer"]


class SegmentStreamer(ServingNode):
    """Serve sealed delta segments to follower fleets."""

    role = "segment-streamer"

    def __init__(
        self,
        snapshot_path: str,
        segment_dir: str,
        archive_dir: Optional[str] = None,
        pattern: str = "*.seg.npz",
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        retain_epochs: Optional[int] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        protocols=(1, 2),
        reuse_port: bool = False,
    ):
        super().__init__(
            host=host,
            port=port,
            max_inflight=max_inflight,
            protocols=protocols,
            reuse_port=reuse_port,
        )
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        if retain_epochs is not None and retain_epochs < 1:
            raise ValueError("retain_epochs must be >= 1 (or None for unbounded)")
        self.snapshot_path = snapshot_path
        self.segment_dir = segment_dir
        self.archive_dir = archive_dir or os.path.join(segment_dir, "repl-archive")
        self.pattern = pattern
        self.chunk_bytes = chunk_bytes
        self.retain_epochs = retain_epochs
        #: name -> {"name", "base_epoch", "n_ops", "size"}
        self._meta: dict[str, dict[str, Any]] = {}
        os.makedirs(self.archive_dir, exist_ok=True)
        self._recover_archive()

    # -- archive maintenance ---------------------------------------------------

    def _recover_archive(self) -> None:
        """Rebuild the manifest from a previous run's archive."""
        for path in sorted(glob.glob(os.path.join(self.archive_dir, self.pattern))):
            try:
                self._remember(path)
            except Exception:  # noqa: BLE001 -- drop what a crash left torn
                os.unlink(path)
        for stray in glob.glob(os.path.join(self.archive_dir, "*.part")):
            os.unlink(stray)

    def _remember(self, archived_path: str) -> dict[str, Any]:
        segment = load_segment(archived_path)  # full crc verification
        meta = {
            "name": os.path.basename(archived_path),
            "base_epoch": segment.base_epoch,
            "n_ops": segment.n_ops,
            "size": os.path.getsize(archived_path),
        }
        self._meta[meta["name"]] = meta
        return meta

    def refresh(self) -> int:
        """Archive newly sealed segments; returns how many were picked up.

        Safe against the compactor racing us: the copy goes to a ``.part``
        temp then ``os.replace``, and a sealed segment is immutable, so a
        half-copied file can never be listed.  A source unlinked before we
        copied it is simply gone -- the follower that needed it re-seeds.
        """
        picked_up = 0
        for path in sorted(glob.glob(os.path.join(self.segment_dir, self.pattern))):
            name = os.path.basename(path)
            if name in self._meta:
                continue
            archived = os.path.join(self.archive_dir, name)
            tmp = archived + ".part"
            try:
                shutil.copyfile(path, tmp)
                os.replace(tmp, archived)
                self._remember(archived)
            except FileNotFoundError:
                continue  # compacted away mid-copy
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
            picked_up += 1
            self.metrics.counter("repl_segments_archived_total").inc()
        self._trim(self.epoch())
        return picked_up

    def _trim(self, epoch: int) -> None:
        if self.retain_epochs is None:
            return
        floor = epoch - self.retain_epochs
        for name in [n for n, m in self._meta.items() if m["base_epoch"] < floor]:
            del self._meta[name]
            retired = os.path.join(self.archive_dir, name)
            if os.path.exists(retired):
                os.unlink(retired)
            self.metrics.counter("repl_segments_retired_total").inc()

    def epoch(self) -> int:
        """The leader's current published epoch."""
        return snapshot_epoch(self.snapshot_path)

    def manifest(self, after: Optional[str] = None) -> list[dict[str, Any]]:
        """Retained segments in name (= creation) order, past a cursor.

        An unknown ``after`` answers the full manifest: the follower's
        cursor predates the retention window, and re-listing everything is
        the safe resume.
        """
        names = sorted(self._meta)
        if after is not None and after in self._meta:
            names = [n for n in names if n > after]
        return [dict(self._meta[n]) for n in names]

    # -- verbs -----------------------------------------------------------------

    async def handle(
        self, verb: str, message: dict[str, Any], request_id: Any, protocol: int = 1
    ) -> Any:
        if verb in (VERB_REPL_EPOCH, VERB_REPL_SUBSCRIBE):
            self.refresh()
            after = message.get("after")
            if after is not None and not isinstance(after, str):
                raise ValueError(f"'after' must be a segment name, got {after!r}")
            if verb == VERB_REPL_SUBSCRIBE:
                self.metrics.counter("repl_subscriptions_total").inc()
            return ok_response(
                request_id,
                epoch=self.epoch(),
                segments=self.manifest(after),
                chunk_bytes=self.chunk_bytes,
            )
        if verb == VERB_REPL_SEGMENT:
            return self._handle_segment(message, request_id)
        return await super().handle(verb, message, request_id, protocol)

    def _handle_segment(self, message: dict[str, Any], request_id: Any) -> Any:
        name = message.get("name")
        offset = message.get("offset", 0)
        if not isinstance(name, str) or os.path.basename(name) != name:
            raise ValueError(f"'name' must be a bare segment name, got {name!r}")
        if not isinstance(offset, int) or isinstance(offset, bool) or offset < 0:
            raise ValueError(f"'offset' must be a byte offset >= 0, got {offset!r}")
        meta = self._meta.get(name)
        if meta is None:
            return error_response(
                request_id,
                "not-found",
                f"segment {name!r} is not retained (behind the retention window?)",
            )
        if offset > meta["size"]:
            raise ValueError(
                f"offset {offset} past the end of {name!r} ({meta['size']} bytes)"
            )
        with open(os.path.join(self.archive_dir, name), "rb") as f:
            f.seek(offset)
            data = f.read(self.chunk_bytes)
        self.metrics.counter("repl_bytes_streamed_total").inc(len(data))
        return ok_response(
            request_id,
            name=name,
            offset=offset,
            size=meta["size"],
            eof=offset + len(data) >= meta["size"],
            data=encode_chunk(data),
        )

    def describe(self) -> dict[str, Any]:
        base = super().describe()
        base.update(
            epoch=self.epoch(),
            snapshot_path=self.snapshot_path,
            segment_dir=self.segment_dir,
            archive_dir=self.archive_dir,
            retained_segments=len(self._meta),
            chunk_bytes=self.chunk_bytes,
            retain_epochs=self.retain_epochs,
        )
        return base
