"""WAN cost model for replication traffic.

Reuses :class:`repro.net.LatencyModel` (the ``WAN`` preset by default) to
price a catch-up strategy in simulated wide-area seconds: every shipped
byte pays ``base_latency_s`` once per transfer plus ``bits / bandwidth``.
The point of the replication plane is that follower refresh cost tracks
the *delta*, not the corpus -- :meth:`compare` quantifies exactly that,
and the replication bench persists its output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.net.latency import WAN, LatencyModel
from repro.net.transport import Message

__all__ = ["ReplicationCostModel", "TransferCost"]


@dataclass(frozen=True)
class TransferCost:
    """One priced WAN transfer."""

    n_bytes: int
    n_transfers: int
    seconds: float


class ReplicationCostModel:
    """Price snapshot shipping vs. delta streaming over one WAN profile."""

    def __init__(self, latency: LatencyModel = WAN):
        self.latency = latency

    def transfer(self, n_bytes: int, n_transfers: int = 1) -> TransferCost:
        """Seconds to ship ``n_bytes`` split over ``n_transfers`` messages."""
        if n_bytes < 0 or n_transfers < 1:
            raise ValueError(
                f"invalid transfer ({n_bytes} bytes / {n_transfers} messages)"
            )
        message = Message(
            sender=0,
            recipient=1,
            kind="repl",
            payload=None,
            payload_bits=8 * n_bytes,
        )
        # One propagation delay per message on top of the shared serialization
        # cost -- chunked transfers pay latency per chunk, as on a real WAN.
        seconds = self.latency.transit_time(message) + (
            (n_transfers - 1) * self.latency.base_latency_s
        )
        return TransferCost(n_bytes=n_bytes, n_transfers=n_transfers, seconds=seconds)

    def snapshot_ship(self, snapshot_bytes: int) -> TransferCost:
        """The baseline: move the whole base snapshot to the follower."""
        return self.transfer(snapshot_bytes)

    def delta_stream(self, segment_bytes: Sequence[int]) -> TransferCost:
        """The replication plane: ship only the sealed segments."""
        total = int(sum(segment_bytes))
        return self.transfer(total, n_transfers=max(1, len(segment_bytes)))

    def compare(
        self, snapshot_bytes: int, segment_bytes: Sequence[int]
    ) -> dict[str, Any]:
        """Bytes-on-wire and WAN-seconds for both strategies, plus ratios."""
        ship = self.snapshot_ship(snapshot_bytes)
        stream = self.delta_stream(segment_bytes)
        return {
            "snapshot_bytes": ship.n_bytes,
            "snapshot_seconds": ship.seconds,
            "delta_bytes": stream.n_bytes,
            "delta_seconds": stream.seconds,
            "bytes_ratio": ship.n_bytes / max(1, stream.n_bytes),
            "seconds_ratio": ship.seconds / stream.seconds if stream.seconds else float("inf"),
        }
