"""Replication verbs and payload helpers.

The replication plane speaks the ordinary serving wire protocols -- no new
framing.  Protocol v2 carries unknown verbs through its JSON extension
escape (``VERB_ID_EXT``), so the ``repl-*`` verbs below ride v2 frames
without touching the frozen binary format or its golden files; v1 JSON
carries them natively.

Segment payloads are raw ``*.seg.npz`` bytes, base64-armored into the JSON
payload and shipped in bounded chunks: every chunk stays comfortably under
the 16 MiB ``MAX_FRAME_BYTES`` frame cap regardless of segment size, and a
follower that dies mid-transfer resumes at its last durable byte offset.
"""

from __future__ import annotations

import base64

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "VERB_REPL_EPOCH",
    "VERB_REPL_PROMOTE",
    "VERB_REPL_SEGMENT",
    "VERB_REPL_STATUS",
    "VERB_REPL_SUBSCRIBE",
    "decode_chunk",
    "encode_chunk",
]

#: leader's current epoch + the sealed-segment manifest
VERB_REPL_EPOCH = "repl-epoch"
#: manifest from a resume cursor (the tail of the manifest after a name)
VERB_REPL_SUBSCRIBE = "repl-subscribe"
#: one bounded chunk of one sealed segment's bytes
VERB_REPL_SEGMENT = "repl-segment"
#: follower applier state (served by ReplicaServer)
VERB_REPL_STATUS = "repl-status"
#: detach a follower from its leader and make it a primary
VERB_REPL_PROMOTE = "repl-promote"

#: raw bytes per repl-segment chunk; base64 inflates by 4/3, leaving a wide
#: margin under the 16 MiB frame cap.
DEFAULT_CHUNK_BYTES = 4 * 2**20


def encode_chunk(data: bytes) -> str:
    """Armor one chunk of segment bytes for a JSON payload."""
    return base64.b64encode(data).decode("ascii")


def decode_chunk(text: str) -> bytes:
    if not isinstance(text, str):
        raise ValueError(f"chunk data must be a base64 string, got {type(text).__name__}")
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:  # noqa: BLE001 -- normalize binascii/Value errors
        raise ValueError(f"undecodable segment chunk: {exc}") from exc
