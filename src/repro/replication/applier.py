"""Follower-side replication: tail the stream, overlay, compact, swap.

A :class:`ReplicaApplier` keeps one follower's serving state converging on
its leader using only delta traffic:

1. **tail** -- ``repl-subscribe`` from a name cursor; download any sealed
   segments it does not hold, chunk by resumable chunk, into its local
   segment directory (temp file + ``os.replace``: a SIGKILL mid-transfer
   leaves at worst a ``.part`` to resume or discard, never a torn segment);
2. **overlay** -- install base + local segments as an
   :class:`~repro.updates.segments.OverlayIndex` on the follower's server
   (same epoch, fresher rows), so reads see new data the moment a segment
   lands;
3. **compact** -- once the overlay chain is ``compact_threshold`` deep and
   the leader has sealed epoch boundaries past us, fold each completed
   epoch's segment set into the local base with
   :func:`~repro.updates.compactor.compact_snapshot` -- the *same* merge
   the leader ran, over the same inputs, so the follower's epoch-``E+1``
   snapshot is byte-identical to the leader's;
4. **swap** -- publish every state change through
   :meth:`~repro.serving.server.PPIServer.swap_index` (the swap half of the
   ``reload`` path): the epoch never regresses and a response can never mix
   epochs.

The base snapshot moves exactly once -- the initial seed.  After that,
bytes-on-wire track churn, not corpus size (the replication bench holds a
floor on exactly this ratio).
"""

from __future__ import annotations

import asyncio
import glob
import os
import time
from typing import Any, Optional, Union

from repro.core.errors import ModelError
from repro.replication.costmodel import ReplicationCostModel
from repro.replication.wire import (
    VERB_REPL_PROMOTE,
    VERB_REPL_SEGMENT,
    VERB_REPL_STATUS,
    VERB_REPL_SUBSCRIBE,
    decode_chunk,
)
from repro.serving.client import LocatorClient, RetryPolicy
from repro.serving.protocol import ok_response
from repro.serving.server import PPIServer, ServableIndex, ShardSpec
from repro.serving.snapshot import load_postings, snapshot_epoch
from repro.updates.compactor import compact_snapshot
from repro.updates.segments import OverlayIndex, load_segment

__all__ = ["ReplicaApplier", "ReplicaServer", "ReplicationError"]


class ReplicationError(ModelError):
    """The follower cannot converge (e.g. fell behind the retention window)."""


def _as_address(leader: Union[str, tuple]) -> tuple:
    if isinstance(leader, str):
        host, _, port = leader.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"leader must be 'host:port', got {leader!r}")
        return (host, int(port))
    return tuple(leader)


class ReplicaApplier:
    """Converge one follower's base + overlay chain on a leader's stream."""

    def __init__(
        self,
        leader: Union[str, tuple],
        base_path: str,
        segment_dir: Optional[str] = None,
        server: Optional[PPIServer] = None,
        compact_threshold: int = 4,
        client: Optional[LocatorClient] = None,
        retry: RetryPolicy = RetryPolicy(),
        protocol: str = "auto",
        cost_model: Optional[ReplicationCostModel] = None,
    ):
        if compact_threshold < 1:
            raise ValueError("compact_threshold must be >= 1")
        self.leader = _as_address(leader)
        self.base_path = base_path
        self.segment_dir = segment_dir or f"{base_path}.segments"
        self.server = server
        self.compact_threshold = compact_threshold
        self.cost_model = cost_model
        self.epoch = snapshot_epoch(base_path)
        self.leader_epoch = self.epoch
        self.detached = False
        self.bytes_fetched = 0
        self.segments_fetched = 0
        self.compactions = 0
        self.swaps = 0
        self.wan_seconds = 0.0
        self.last_sync_at = 0.0
        self._cursor: Optional[str] = None
        self._base_index: Optional[ServableIndex] = None
        self._client = client or LocatorClient(
            servers=[self.leader], retry=retry, cache_size=0, protocol=protocol
        )
        self._owns_client = client is None
        os.makedirs(self.segment_dir, exist_ok=True)
        self.recover()

    # -- local state -----------------------------------------------------------

    def recover(self) -> None:
        """Restore a clean segment directory after a crash/SIGKILL.

        ``.part`` downloads resume from their current size (the final crc
        verification catches a torn tail and triggers a clean refetch);
        finished segments that fail verification, or that were cut against
        an epoch this follower already compacted past, are dropped.
        """
        for path in sorted(self._local_segments()):
            try:
                segment = load_segment(path)
            except Exception:  # noqa: BLE001 -- unreadable: refetch from leader
                os.unlink(path)
                continue
            if segment.base_epoch < self.epoch:
                os.unlink(path)  # consumed by a compaction we already took
        names = [os.path.basename(p) for p in self._local_segments()]
        self._cursor = max(names) if names else None

    def _local_segments(self) -> list[str]:
        return sorted(glob.glob(os.path.join(self.segment_dir, "*.seg.npz")))

    def _base(self) -> ServableIndex:
        if self._base_index is None:
            self._base_index = load_postings(self.base_path, mmap=True)
        return self._base_index

    def overlay_depth(self) -> int:
        return len(self._local_segments())

    def serving_index(self) -> ServableIndex:
        """Base + current overlay chain (what the server should serve)."""
        segments = [load_segment(p) for p in self._local_segments()]
        if not segments:
            return self._base()
        return OverlayIndex(self._base(), segments)

    # -- one sync round --------------------------------------------------------

    async def sync_once(self, force_compact: bool = False) -> dict[str, Any]:
        """Tail + overlay + (maybe) compact + swap; returns round stats."""
        if self.detached:
            raise ReplicationError("applier is detached (promoted?); not syncing")
        started = time.monotonic()
        response = await self._client.call(
            self.leader, VERB_REPL_SUBSCRIBE, after=self._cursor
        )
        self.leader_epoch = int(response["epoch"])
        fetched = 0
        for entry in response["segments"]:
            name, base_epoch = str(entry["name"]), int(entry["base_epoch"])
            if base_epoch < self.epoch:
                # Cut against an epoch we already compacted past: the
                # leader's copy of history we have in compacted form.
                self._advance_cursor(name)
                continue
            path = os.path.join(self.segment_dir, name)
            if not os.path.exists(path):
                await self._fetch_segment(name, int(entry["size"]), path)
                fetched += 1
            self._advance_cursor(name)
        self.segments_fetched += fetched
        compacted = self._maybe_compact(force_compact)
        if fetched or compacted or self.swaps == 0:
            self._install()
        self.last_sync_at = time.monotonic()
        return {
            "epoch": self.epoch,
            "leader_epoch": self.leader_epoch,
            "epochs_behind": self.leader_epoch - self.epoch,
            "segments_fetched": fetched,
            "epochs_compacted": compacted,
            "overlay_depth": self.overlay_depth(),
            "bytes_fetched": self.bytes_fetched,
            "sync_s": time.monotonic() - started,
        }

    def _advance_cursor(self, name: str) -> None:
        if self._cursor is None or name > self._cursor:
            self._cursor = name

    async def _fetch_segment(self, name: str, size: int, path: str) -> None:
        """Chunked, resumable, crc-verified download of one segment."""
        part = path + ".part"
        for attempt in (0, 1):
            offset = os.path.getsize(part) if os.path.exists(part) else 0
            chunks = 0
            with open(part, "ab") as out:
                while offset < size:
                    response = await self._client.call(
                        self.leader, VERB_REPL_SEGMENT, name=name, offset=offset
                    )
                    data = decode_chunk(response["data"])
                    if not data and not response["eof"]:
                        raise ReplicationError(
                            f"leader sent an empty non-final chunk of {name!r}"
                        )
                    out.write(data)
                    out.flush()
                    offset += len(data)
                    chunks += 1
                    self.bytes_fetched += len(data)
                    if response["eof"]:
                        break
            if self.cost_model is not None and chunks:
                self.wan_seconds += self.cost_model.transfer(
                    offset, n_transfers=chunks
                ).seconds
            try:
                load_segment(part)  # full crc verification before adoption
            except Exception as exc:  # noqa: BLE001 -- SegmentError or worse
                # Torn resume (we appended past a partial write) or a
                # corrupt transfer: drop and refetch once from scratch.
                os.unlink(part)
                if attempt:
                    raise ReplicationError(
                        f"segment {name!r} failed verification twice: {exc}"
                    ) from exc
                continue
            os.replace(part, path)
            return

    def _maybe_compact(self, force: bool) -> int:
        """Fold completed epochs into the local base; returns epochs taken.

        Only epochs the leader has sealed (``base_epoch < leader_epoch``)
        are ever folded -- their segment set is final, so the merge inputs
        equal the leader's and the output snapshot is byte-identical.  The
        fold is deferred until the chain is ``compact_threshold`` deep
        (overlay reads are cheap; compaction is the expensive step), unless
        ``force`` is set.
        """
        completed = [
            p
            for p in self._local_segments()
            if load_segment(p).base_epoch < self.leader_epoch
        ]
        if not completed:
            return 0
        if not force and len(completed) < self.compact_threshold:
            return 0
        taken = 0
        while self.epoch < self.leader_epoch:
            group = [
                p
                for p in self._local_segments()
                if load_segment(p).base_epoch == self.epoch
            ]
            if not group:
                raise ReplicationError(
                    f"cannot advance past epoch {self.epoch}: its segments are "
                    f"gone (behind the leader's retention window?); re-seed "
                    f"the base snapshot"
                )
            compact_snapshot(self.base_path, group, out_path=self.base_path)
            for path in group:
                os.unlink(path)
            self.epoch += 1
            taken += 1
            self.compactions += 1
        if taken:
            old = self._base_index
            self._base_index = None  # reload lazily from the new base
            if old is not None and hasattr(old, "release"):
                old.release()
        return taken

    def _install(self) -> None:
        """Publish the current base + overlay chain to the serving node."""
        if self.server is None:
            return
        self.server.swap_index(
            self.serving_index(), self.epoch, snapshot_path=self.base_path
        )
        self.swaps += 1

    # -- lifecycle -------------------------------------------------------------

    async def run(
        self, interval_s: float = 0.5, stop: Optional[asyncio.Event] = None
    ) -> None:
        """Poll-tail the leader until ``stop`` is set (or detached)."""
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        stop = stop or asyncio.Event()
        while not stop.is_set() and not self.detached:
            try:
                await self.sync_once()
            except ReplicationError:
                raise
            except Exception:  # noqa: BLE001 -- leader blip: next round retries
                pass
            try:
                await asyncio.wait_for(stop.wait(), timeout=interval_s)
            except asyncio.TimeoutError:
                pass

    async def promote(self) -> dict[str, Any]:
        """Failover: detach from the leader and become a clean primary.

        Every local segment group is folded into the base -- a promoted
        node defines epoch boundaries now, so nothing stays pending -- and
        the compacted snapshot is swapped in.  Returns the final status.
        """
        self.detached = True
        loop = asyncio.get_running_loop()
        while True:
            group_epoch = self.epoch
            group = [
                p
                for p in self._local_segments()
                if load_segment(p).base_epoch == group_epoch
            ]
            if not group:
                break
            await loop.run_in_executor(
                None, compact_snapshot, self.base_path, group, self.base_path
            )
            for path in group:
                os.unlink(path)
            self.epoch += 1
            self.compactions += 1
            old = self._base_index
            self._base_index = None
            if old is not None and hasattr(old, "release"):
                old.release()
        self.leader_epoch = self.epoch
        self._install()
        return self.status()

    def status(self) -> dict[str, Any]:
        return {
            "leader": f"{self.leader[0]}:{self.leader[1]}",
            "epoch": self.epoch,
            "leader_epoch": self.leader_epoch,
            "epochs_behind": self.leader_epoch - self.epoch,
            "overlay_depth": self.overlay_depth(),
            "compact_threshold": self.compact_threshold,
            "detached": self.detached,
            "bytes_fetched": self.bytes_fetched,
            "segments_fetched": self.segments_fetched,
            "compactions": self.compactions,
            "swaps": self.swaps,
            "wan_seconds": self.wan_seconds,
            "base_path": self.base_path,
        }

    async def close(self) -> None:
        if self._owns_client:
            await self._client.close()
        base, self._base_index = self._base_index, None
        if base is not None and hasattr(base, "release"):
            base.release()


class ReplicaServer(PPIServer):
    """A follower's serving node: a ``PPIServer`` fed by an applier.

    Serves the ordinary query surface from the applier's base + overlay
    chain, plus ``repl-status`` (the applier's convergence state) and
    ``repl-promote`` (failover: detach, fold everything local, answer as a
    primary).  ``info`` reports role ``ppi-replica`` until promotion.
    """

    role = "ppi-replica"

    def __init__(
        self,
        applier: ReplicaApplier,
        shard: ShardSpec = ShardSpec(),
        **kwargs: Any,
    ):
        super().__init__(
            applier.serving_index(),
            shard,
            snapshot_path=applier.base_path,
            epoch=applier.epoch,
            **kwargs,
        )
        self.applier = applier
        applier.server = self

    async def handle(
        self, verb: str, message: dict[str, Any], request_id: Any, protocol: int = 1
    ) -> Any:
        if verb == VERB_REPL_STATUS:
            return ok_response(request_id, role=self.role, **self.applier.status())
        if verb == VERB_REPL_PROMOTE:
            status = await self.applier.promote()
            self.role = "ppi-server"  # a primary from here on
            return ok_response(request_id, role=self.role, **status)
        return await super().handle(verb, message, request_id, protocol)

    def describe(self) -> dict[str, Any]:
        base = super().describe()
        base.update(
            leader=f"{self.applier.leader[0]}:{self.applier.leader[1]}",
            epochs_behind=self.applier.leader_epoch - self.applier.epoch,
            overlay_depth=self.applier.overlay_depth(),
            detached=self.applier.detached,
        )
        return base
