"""Geo-replicated read tier: delta-streamed follower catch-up.

The locator service is read-dominated and changes slowly under churn, so a
follower fleet should refresh at the cost of the *delta*, not the corpus.
This package wires the live-update substrate (``repro.updates``: crc-framed
delta log, sealed segments, overlay indexes, epoch-stamped compaction) into
a leader -> follower replication plane:

* :class:`SegmentStreamer` -- leader side; archives sealed segments and
  serves them over the ordinary wire protocols (``repl-subscribe`` /
  ``repl-segment`` / ``repl-epoch``, riding protocol v2's extension escape);
* :class:`ReplicaApplier` / :class:`ReplicaServer` -- follower side; tails
  the stream, serves base + overlays immediately, folds completed epochs
  into a byte-identical local snapshot, and hot-swaps through the ``reload``
  path's epoch-guarded swap;
* :class:`ReplicationCostModel` -- prices catch-up strategies on the
  ``repro.net`` WAN profile (snapshot shipping vs. delta streaming).

See DESIGN.md §7.11 for the invariants and ``benchmarks/bench_replication``
for the measured bandwidth/catch-up numbers.
"""

from repro.replication.applier import (
    ReplicaApplier,
    ReplicaServer,
    ReplicationError,
)
from repro.replication.costmodel import ReplicationCostModel, TransferCost
from repro.replication.streamer import SegmentStreamer
from repro.replication.wire import (
    DEFAULT_CHUNK_BYTES,
    VERB_REPL_EPOCH,
    VERB_REPL_PROMOTE,
    VERB_REPL_SEGMENT,
    VERB_REPL_STATUS,
    VERB_REPL_SUBSCRIBE,
    decode_chunk,
    encode_chunk,
)

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "ReplicaApplier",
    "ReplicaServer",
    "ReplicationCostModel",
    "ReplicationError",
    "SegmentStreamer",
    "TransferCost",
    "VERB_REPL_EPOCH",
    "VERB_REPL_PROMOTE",
    "VERB_REPL_SEGMENT",
    "VERB_REPL_STATUS",
    "VERB_REPL_SUBSCRIBE",
    "decode_chunk",
    "encode_chunk",
]
