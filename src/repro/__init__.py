"""repro: reproduction of "ǫ-PPI: Locator Service in Information Networks
with Personalized Privacy Preservation" (Tang, Liu, Iyengar, Lee, Zhang;
ICDCS 2014).

Quickstart::

    import numpy as np
    from repro import InformationNetwork, construct_epsilon_ppi

    net = InformationNetwork(n_providers=50)
    alice = net.register_owner("alice", epsilon=0.9)   # VIP: strong privacy
    bob = net.register_owner("bob", epsilon=0.3)       # average patient
    net.delegate(alice, 7)
    net.delegate(bob, 7)
    net.delegate(bob, 21)

    result = construct_epsilon_ppi(net, rng=np.random.default_rng(0))
    print(result.index.query_by_name("alice"))   # true + noise providers
    print(result.report.success_ratio)

Subpackages: :mod:`repro.core` (model, policies, privacy metrics),
:mod:`repro.mpc` (secret sharing, circuits, GMW, SecSumShare, CountBelow),
:mod:`repro.net` (discrete-event network simulation),
:mod:`repro.protocol` (distributed construction), :mod:`repro.baselines`,
:mod:`repro.attacks`, :mod:`repro.datasets`, :mod:`repro.analysis`.
"""

from repro.core import (
    AccessControl,
    BasicPolicy,
    BetaPolicy,
    ChernoffPolicy,
    ConstructionResult,
    IncrementedExpectationPolicy,
    InformationNetwork,
    MembershipMatrix,
    Owner,
    PPIIndex,
    PrivacyDegree,
    PrivacyReport,
    Provider,
    Record,
    Searcher,
    auth_search,
    construct_epsilon_ppi,
)

__version__ = "1.0.0"

__all__ = [
    "AccessControl",
    "BasicPolicy",
    "BetaPolicy",
    "ChernoffPolicy",
    "ConstructionResult",
    "IncrementedExpectationPolicy",
    "InformationNetwork",
    "MembershipMatrix",
    "Owner",
    "PPIIndex",
    "PrivacyDegree",
    "PrivacyReport",
    "Provider",
    "Record",
    "Searcher",
    "auth_search",
    "construct_epsilon_ppi",
    "__version__",
]
