"""Adversarial campaigns against a live fleet: churn, storms, attacks.

A :class:`Scenario` describes one observation campaign end to end: a
synthetic information network with **per-ε privacy tiers** (each owner's β
set by their tier, the paper's personalized-privacy knob), an epoch
schedule with truth churn, a republication policy (``sticky`` coins vs the
naive fresh-coin baseline), and a traffic shape for the cover load the
adversary hides in (uniform / diurnal / burst, hot-key Zipf skew).

:class:`ScenarioRunner` executes it against the *real* serving stack: it
publishes each epoch as an ordinary v3 snapshot, boots a
:class:`~repro.serving.fleet.FleetSupervisor` (one OS process per shard),
rolls the fleet epoch to epoch with
:meth:`~repro.serving.fleet.FleetSupervisor.rollout`, drives shaped load
through a pooled :class:`~repro.serving.client.LocatorClient`, and harvests
the adversary's :class:`~repro.redteam.observations.ObservationLog` over
the same sockets.  With ``reload_storm`` the harvest and load ride
*through* the rolling reload -- the flash-crowd scenario where an attacker
deliberately reads during republication hoping to catch mixed epochs.

The output pairs the usual :class:`~repro.serving.loadgen.LoadReport` per
epoch with one :class:`~repro.redteam.report.PrivacyReport` for the whole
campaign.  :func:`run_attacks` is the scoring half on its own, reusable
against a previously recorded log (``eppi redteam replay``).
"""

from __future__ import annotations

import asyncio
import hashlib
import os
from dataclasses import dataclass, field
from functools import partial
from typing import Mapping, Optional

import numpy as np

from repro.core.errors import ModelError
from repro.core.postings import PostingsIndex
from repro.redteam.attackers import (
    EpochDiffAttacker,
    LinkageAttacker,
    LongitudinalIntersectionAttacker,
)
from repro.redteam.observations import LiveObserver, ObservationLog
from repro.redteam.report import PrivacyReport
from repro.serving.client import LocatorClient, RetryPolicy
from repro.serving.fleet import FleetSupervisor
from repro.serving.loadgen import TRAFFIC_SHAPES, run_load
from repro.serving.snapshot import save_snapshot
from repro.updates.noise import StickyOwnerStream

__all__ = [
    "EPSILON_TIERS",
    "Scenario",
    "ScenarioOutcome",
    "ScenarioRunner",
    "load_truth_payload",
    "run_attacks",
    "run_scenario",
    "synthetic_directory",
    "truth_payload",
]

#: (tier name, β) -- stricter ε means a larger publication degree, i.e.
#: more decoys mixed into the published row.
EPSILON_TIERS = (("strict", 0.45), ("default", 0.25), ("relaxed", 0.10))


@dataclass
class Scenario:
    """One adversarial campaign, fully determined by ``seed``."""

    n_providers: int = 32
    n_owners: int = 120
    epochs: int = 5
    churn: float = 0.01  # fraction of owners whose truth moves per epoch
    sticky: bool = True  # False: naive fresh-coin republication baseline
    seed: int = 0
    n_shards: int = 1
    tiers: tuple = EPSILON_TIERS
    # cover-load knobs (the traffic the adversary hides in)
    workers: int = 2
    requests_per_worker: int = 20
    mode: str = "query"
    shape: str = "uniform"
    think_time_s: float = 0.0
    shape_period: int = 16
    zipf_a: float = 0.0
    reload_storm: bool = False
    # truth-generation knobs
    min_true: int = 1
    max_true: int = 4
    # adversary knobs
    monitor_owners: Optional[int] = None  # None: observe every owner
    linkage_targets: int = 8  # 0 disables the linkage attacker

    def __post_init__(self) -> None:
        if self.n_providers < 2 or self.n_owners < 1:
            raise ModelError("need >= 2 providers and >= 1 owner")
        if self.epochs < 1:
            raise ModelError(f"need >= 1 epoch, got {self.epochs}")
        if not 0.0 <= self.churn <= 1.0:
            raise ModelError(f"churn must lie in [0, 1], got {self.churn}")
        if not self.tiers:
            raise ModelError("need at least one privacy tier")
        if self.shape not in TRAFFIC_SHAPES:
            raise ModelError(f"shape must be one of {TRAFFIC_SHAPES}")
        if not 1 <= self.min_true <= self.max_true < self.n_providers:
            raise ModelError("need 1 <= min_true <= max_true < n_providers")
        if self.shape != "uniform" and self.think_time_s <= 0:
            # a shaped campaign needs a pause to modulate; pick a tiny one
            self.think_time_s = 0.002

    # -- per-ε tiers ----------------------------------------------------------

    def tier_of(self, owner_id: int) -> str:
        """Owners interleave tiers, so Zipf-hot keys span every tier."""
        return self.tiers[owner_id % len(self.tiers)][0]

    def beta_of(self, owner_id: int) -> float:
        return self.tiers[owner_id % len(self.tiers)][1]

    def tier_map(self) -> dict:
        return {j: self.tier_of(j) for j in range(self.n_owners)}

    @property
    def noise_key(self) -> bytes:
        return hashlib.sha256(
            b"eppi-redteam" + self.seed.to_bytes(8, "big", signed=True)
        ).digest()[:16]

    @property
    def monitored(self) -> list:
        count = self.monitor_owners or self.n_owners
        return list(range(min(count, self.n_owners)))

    @property
    def mode_name(self) -> str:
        return "sticky" if self.sticky else "naive"

    # -- truth history --------------------------------------------------------

    def _draw_row(self, rng: np.random.Generator) -> set:
        size = int(rng.integers(self.min_true, self.max_true + 1))
        return {
            int(p) for p in rng.choice(self.n_providers, size=size, replace=False)
        }

    def truth_history(self) -> dict:
        """``epoch -> {owner -> true provider set}`` for the whole campaign."""
        rng = np.random.default_rng((self.seed, 3))
        truth = {j: self._draw_row(rng) for j in range(self.n_owners)}
        history = {0: {j: set(s) for j, s in truth.items()}}
        n_churn = max(1, round(self.churn * self.n_owners)) if self.churn else 0
        for epoch in range(1, self.epochs):
            rng_e = np.random.default_rng((self.seed, 5, epoch))
            if n_churn:
                movers = rng_e.choice(
                    self.n_owners, size=min(n_churn, self.n_owners), replace=False
                )
                for j in movers:
                    truth[int(j)] = self._draw_row(rng_e)
            history[epoch] = {j: set(s) for j, s in truth.items()}
        return history

    # -- publication ----------------------------------------------------------

    def published_dense(self, truth: Mapping[int, set], epoch: int) -> np.ndarray:
        """The epoch's published matrix under the scenario's noise policy.

        Sticky: every owner's decoys come from their persisted
        :class:`StickyOwnerStream` coins -- identical across epochs.
        Naive: decoys are redrawn per ``(seed, epoch, owner)``, the
        republication policy the intersection attack punishes.
        """
        dense = np.zeros((self.n_providers, self.n_owners), dtype=np.uint8)
        stream = StickyOwnerStream(self.noise_key) if self.sticky else None
        for owner in range(self.n_owners):
            true = sorted(truth.get(owner, ()))
            beta = self.beta_of(owner)
            if stream is not None:
                row = stream.publish_row(owner, true, beta, self.n_providers)
            else:
                coins = np.random.default_rng(
                    (self.seed, 13, epoch, owner)
                ).random(self.n_providers)
                published = coins < beta
                published[true] = True
                row = np.nonzero(published)[0]
            dense[row, owner] = 1
        return dense


# -- quasi-identifier corpus ---------------------------------------------------

_FIRST = ["ana", "boris", "carla", "dmitri", "elena", "farid", "grace",
          "hiro", "ines", "jonas"]
_LAST = ["alvarez", "brown", "chen", "dubois", "eriksen", "fischer",
         "garcia", "haddad", "ito", "jensen"]
_CITY = ["arlon", "berlin", "calgary", "dresden", "essen", "faro", "ghent",
         "hanoi"]


def synthetic_directory(owner_ids) -> dict:
    """A leaked subscriber directory: unique demographics per owner id.

    Deterministic and collision-free below 100 owners (first/last names are
    indexed independently), so linkage tests have a crisp ground truth.
    """
    directory = {}
    for owner in owner_ids:
        directory[int(owner)] = {
            "first_name": _FIRST[owner % len(_FIRST)],
            "last_name": _LAST[(owner // len(_FIRST)) % len(_LAST)],
            "date_of_birth": (
                f"19{50 + owner % 50:02d}-{1 + owner % 12:02d}"
                f"-{1 + owner % 28:02d}"
            ),
            "city": _CITY[owner % len(_CITY)],
        }
    return directory


def _dirty_targets(directory: dict, owners) -> tuple:
    """The attacker's own records: truncation typos on the first name."""
    targets, true_owners = [], []
    for owner in owners:
        fields = dict(directory[owner])
        name = fields["first_name"]
        if len(name) > 3:
            fields["first_name"] = name[:-1]
        targets.append(fields)
        true_owners.append(owner)
    return targets, true_owners


# -- scoring -------------------------------------------------------------------


def run_attacks(
    log: ObservationLog,
    truth_by_epoch: Mapping[int, Mapping[int, set]],
    tier_map: Mapping[int, str],
    mode: str,
    linkage_targets: int = 0,
) -> PrivacyReport:
    """Run every attacker over a recorded log and assemble the report."""
    intersection = LongitudinalIntersectionAttacker(log)
    curve = intersection.degradation_curve(truth_by_epoch)

    epochs = log.epochs()
    per_tier: dict[str, float] = {}
    anonymity: dict = {}
    if epochs:
        final_truth = truth_by_epoch.get(epochs[-1], {})
        final = intersection.attack(final_truth, upto_epoch=epochs[-1])
        by_tier: dict[str, list] = {}
        for owner, confidence in final.confidences.items():
            if final.survivors[owner]:
                by_tier.setdefault(tier_map.get(owner, "?"), []).append(confidence)
        per_tier = {
            tier: sum(vals) / len(vals) for tier, vals in sorted(by_tier.items())
        }
        anonymity = PrivacyReport.summarize_anonymity(
            final.anonymity_sizes.values()
        )

    diff = EpochDiffAttacker(log).attack(truth_by_epoch)
    diff_summary = {
        "pairs": diff.pairs,
        "claimed_bits": diff.claimed_bits,
        "true_bits": diff.true_bits,
        "precision": diff.precision,
        "churned_owners": diff.churned_owners,
        "false_churn_owners": diff.false_churn_owners,
    }

    linkage_summary = None
    if linkage_targets > 0 and epochs:
        observed = log.owners()
        directory = synthetic_directory(observed)
        targets, true_owners = _dirty_targets(
            directory, observed[: min(linkage_targets, len(observed))]
        )
        outcome = LinkageAttacker(log).attack(
            targets,
            directory,
            truth=truth_by_epoch.get(epochs[-1], {}),
            true_owners=true_owners,
        )
        linkage_summary = {
            "n_targets": outcome.n_targets,
            "linked": outcome.linked,
            "linkage_precision": outcome.linkage_precision,
            "membership_confidence": outcome.membership_confidence,
        }

    return PrivacyReport(
        mode=mode,
        epochs=epochs,
        observed_owners=len(log.owners()),
        n_observations=log.n_records,
        degradation_curve=curve,
        per_tier_success=per_tier,
        anonymity_sets=anonymity,
        diff=diff_summary,
        linkage=linkage_summary,
    )


# -- execution -----------------------------------------------------------------


@dataclass
class ScenarioOutcome:
    """Everything one campaign produced."""

    scenario: Scenario
    report: PrivacyReport
    load_reports: list = field(default_factory=list)
    truth_by_epoch: dict = field(default_factory=dict)
    observation_path: Optional[str] = None


def truth_payload(outcome: ScenarioOutcome) -> dict:
    """JSON-safe ground truth + tier map, for ``eppi redteam replay``."""
    return {
        "mode": outcome.scenario.mode_name,
        "tiers": {
            str(j): outcome.scenario.tier_of(j)
            for j in range(outcome.scenario.n_owners)
        },
        "truth_by_epoch": {
            str(epoch): {str(j): sorted(s) for j, s in truth.items()}
            for epoch, truth in outcome.truth_by_epoch.items()
        },
    }


def load_truth_payload(payload: dict) -> tuple:
    """Inverse of :func:`truth_payload`: (truth_by_epoch, tier_map, mode)."""
    truth_by_epoch = {
        int(epoch): {int(j): set(ids) for j, ids in truth.items()}
        for epoch, truth in payload["truth_by_epoch"].items()
    }
    tier_map = {int(j): tier for j, tier in payload.get("tiers", {}).items()}
    return truth_by_epoch, tier_map, payload.get("mode", "unknown")


class ScenarioRunner:
    """Execute a :class:`Scenario` against a freshly booted live fleet."""

    def __init__(
        self,
        scenario: Scenario,
        workdir: str,
        observation_path: Optional[str] = None,
    ):
        self.scenario = scenario
        self.workdir = workdir
        self.observation_path = observation_path
        self.log = ObservationLog(observation_path)
        self.load_reports: list = []

    def _snapshot_path(self, epoch: int) -> str:
        return os.path.join(self.workdir, f"epoch_{epoch:04d}.npz")

    def _publish_all(self, truth_by_epoch: dict) -> list:
        paths = []
        for epoch in range(self.scenario.epochs):
            dense = self.scenario.published_dense(truth_by_epoch[epoch], epoch)
            path = self._snapshot_path(epoch)
            save_snapshot(
                PostingsIndex.from_dense(dense),
                path,
                format_version=3,
                epoch=epoch,
            )
            paths.append(path)
        return paths

    async def _load_phase(self, client: LocatorClient) -> object:
        sc = self.scenario
        return await run_load(
            client,
            list(range(sc.n_owners)),
            n_workers=sc.workers,
            requests_per_worker=sc.requests_per_worker,
            mode=sc.mode,
            think_time_s=sc.think_time_s,
            zipf_a=sc.zipf_a,
            seed=sc.seed,
            shape=sc.shape,
            shape_period=sc.shape_period,
            tier_of=sc.tier_map(),
        )

    async def _campaign(self, fleet: FleetSupervisor, paths: list) -> None:
        sc = self.scenario
        client = LocatorClient(
            servers=fleet.addresses,
            cache_size=0,
            retry=RetryPolicy(max_retries=5, timeout_s=5.0, base_delay_s=0.02),
        )
        observer = LiveObserver(client, self.log)
        loop = asyncio.get_running_loop()
        try:
            for epoch in range(sc.epochs):
                if epoch > 0:
                    rollout = loop.run_in_executor(
                        None,
                        partial(
                            fleet.rollout, paths[epoch], settle_timeout_s=30.0
                        ),
                    )
                    if sc.reload_storm:
                        # flash crowd: the adversary reads and loads *during*
                        # the rolling reload, hoping to catch mixed epochs
                        storm = asyncio.ensure_future(
                            observer.harvest(sc.monitored)
                        )
                        self.load_reports.append(await self._load_phase(client))
                        await rollout
                        await storm
                    else:
                        await rollout
                        self.load_reports.append(await self._load_phase(client))
                else:
                    self.load_reports.append(await self._load_phase(client))
                # the epoch's canonical harvest: one observation per owner
                await observer.harvest(sc.monitored)
        finally:
            await client.close()

    def run(self) -> ScenarioOutcome:
        sc = self.scenario
        truth_by_epoch = sc.truth_history()
        paths = self._publish_all(truth_by_epoch)
        with FleetSupervisor(paths[0], n_shards=sc.n_shards) as fleet:
            fleet.start(monitor=True)
            asyncio.run(self._campaign(fleet, paths))
        report = run_attacks(
            self.log,
            truth_by_epoch,
            sc.tier_map(),
            sc.mode_name,
            linkage_targets=sc.linkage_targets,
        )
        self.log.close()
        return ScenarioOutcome(
            scenario=sc,
            report=report,
            load_reports=self.load_reports,
            truth_by_epoch=truth_by_epoch,
            observation_path=self.observation_path,
        )


def run_scenario(
    scenario: Scenario,
    workdir: str,
    observation_path: Optional[str] = None,
) -> ScenarioOutcome:
    """One-call campaign: publish, boot, attack, score, tear down."""
    return ScenarioRunner(scenario, workdir, observation_path).run()
