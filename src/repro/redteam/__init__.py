"""Red-team attack lab: longitudinal adversaries against the live fleet.

The attacks in :mod:`repro.attacks` grade a *static* published matrix; this
package grades the *served system* -- epochs, sticky republication, rolling
reloads, replicas -- by actually attacking it over real sockets:

* :class:`ObservationLog` / :class:`LiveObserver` -- the adversary's
  substrate: crash-safe, epoch-tagged records of live query responses
  (:mod:`repro.redteam.observations`);
* :class:`LongitudinalIntersectionAttacker`, :class:`EpochDiffAttacker`,
  :class:`LinkageAttacker` -- adversaries layered on the log, from pure
  response history up to PPRL-style quasi-identifier composition
  (:mod:`repro.redteam.attackers`);
* :class:`Scenario` / :class:`ScenarioRunner` -- campaigns that publish
  epochs, roll a real :class:`~repro.serving.fleet.FleetSupervisor`, drive
  shaped cover load, and harvest observations, including flash-crowd
  attacks *during* the rolling reload (:mod:`repro.redteam.scenario`);
* :class:`PrivacyReport` -- the deliverable: degradation-vs-epoch curve,
  per-ε-tier attack success, anonymity-set distribution
  (:mod:`repro.redteam.report`).

``eppi redteam run|replay|report`` exposes the lab operationally;
``benchmarks/bench_attacks.py`` turns its headline claim -- sticky
republication holds intersection-attack success flat while fresh coins
degrade monotonically -- into a CI-gated benchmark.
"""

from repro.redteam.attackers import (
    EpochDiffAttacker,
    EpochDiffResult,
    LinkageAttacker,
    LinkageResult,
    LongitudinalIntersectionAttacker,
    LongitudinalResult,
    stable_owners,
)
from repro.redteam.observations import (
    LiveObserver,
    Observation,
    ObservationLog,
    ObservationLogError,
)
from repro.redteam.report import PrivacyReport
from repro.redteam.scenario import (
    EPSILON_TIERS,
    Scenario,
    ScenarioOutcome,
    ScenarioRunner,
    load_truth_payload,
    run_attacks,
    run_scenario,
    synthetic_directory,
    truth_payload,
)

__all__ = [
    "EPSILON_TIERS",
    "EpochDiffAttacker",
    "EpochDiffResult",
    "LinkageAttacker",
    "LinkageResult",
    "LiveObserver",
    "LongitudinalIntersectionAttacker",
    "LongitudinalResult",
    "Observation",
    "ObservationLog",
    "ObservationLogError",
    "PrivacyReport",
    "Scenario",
    "ScenarioOutcome",
    "ScenarioRunner",
    "load_truth_payload",
    "run_attacks",
    "run_scenario",
    "stable_owners",
    "synthetic_directory",
    "truth_payload",
]
