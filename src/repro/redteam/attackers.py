"""Longitudinal adversaries over an :class:`ObservationLog`.

The static attacks in :mod:`repro.attacks` see one published matrix; the
attackers here see what a real adversary sees -- a *history* of responses
from the live fleet, collected across epochs, republications and rolling
reloads.  Three adversaries, in increasing order of outside knowledge:

* :class:`LongitudinalIntersectionAttacker` -- pure response history.  The
  serving-side version of the multi-version intersection attack
  (:func:`repro.attacks.intersection.intersection_attack`): intersect an
  owner's observed provider sets across epochs and claim membership against
  the survivors.  Sticky republication (PR 5/8) must pin its confidence to
  the first epoch's noise floor; fresh-coin republication lets it climb as
  β^k noise dies off.
* :class:`EpochDiffAttacker` -- response history, read differentially.
  Diffs consecutive epochs per owner to isolate *churned* identities.
  Under sticky coins every diffed bit is a true change the owner actually
  made (precision 1, by design -- the log only discloses real churn);
  fresh coins make noise flap, flooding the diff with false churn.
* :class:`LinkageAttacker` -- response history plus an external
  quasi-identifier corpus.  A PPRL-style composition attack (Vatsalan et
  al.'s taxonomy): Bloom-encode the attacker's dirty records and a leaked
  subscriber directory with :mod:`repro.linkage`, link them with the
  weighted-Dice matcher, then spend the linked owner ids on membership
  claims against the observed candidate sets.

Every attacker scores itself against ground truth the caller supplies --
the attacks never peek at truth to *act*, only to grade the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.linkage import BloomEncoder, MatchDecision, RecordMatcher
from repro.redteam.observations import ObservationLog

__all__ = [
    "EpochDiffAttacker",
    "EpochDiffResult",
    "LinkageAttacker",
    "LinkageResult",
    "LongitudinalIntersectionAttacker",
    "LongitudinalResult",
]


def _confidence(true_set: frozenset, survivors: frozenset) -> float:
    """Success probability of one membership claim against ``survivors``."""
    if not survivors:
        return 0.0
    return len(true_set & survivors) / len(survivors)


def stable_owners(truth_by_epoch: Mapping[int, Mapping[int, set]]) -> set:
    """Owners whose true provider set never changed across the history.

    These are the longitudinal analogue of the paper's common identities:
    the owners for whom *any* confidence drift over epochs is pure noise
    leakage, never legitimate disclosure of churn.
    """
    epochs = sorted(truth_by_epoch)
    if not epochs:
        return set()
    first = truth_by_epoch[epochs[0]]
    out = set()
    for owner, providers in first.items():
        reference = frozenset(providers)
        if all(
            frozenset(truth_by_epoch[e].get(owner, ())) == reference
            for e in epochs[1:]
        ):
            out.add(owner)
    return out


# -- intersection across epochs ------------------------------------------------


@dataclass
class LongitudinalResult:
    """Outcome of intersecting observed response sets across epochs."""

    epochs_used: list  # epochs whose observations fed the intersection
    survivors: dict  # owner -> frozenset of providers surviving every epoch
    confidences: dict  # owner -> membership-claim success vs truth
    anonymity_sizes: dict  # owner -> |survivors| (the attacker's view)

    @property
    def mean_confidence(self) -> float:
        scored = [c for o, c in self.confidences.items() if self.survivors[o]]
        return sum(scored) / len(scored) if scored else 0.0

    def mean_confidence_over(self, owners) -> float:
        scored = [
            self.confidences[o]
            for o in owners
            if o in self.confidences and self.survivors.get(o)
        ]
        return sum(scored) / len(scored) if scored else 0.0

    @property
    def mean_anonymity(self) -> float:
        sizes = list(self.anonymity_sizes.values())
        return sum(sizes) / len(sizes) if sizes else 0.0


class LongitudinalIntersectionAttacker:
    """Intersect each owner's observed provider sets across epochs."""

    def __init__(self, log: ObservationLog):
        self.log = log

    def survivors(self, upto_epoch: Optional[int] = None) -> dict:
        """``owner -> frozenset`` of providers present in *every* observed
        epoch (``<= upto_epoch`` when given).  Owners observed once simply
        keep that single response set -- the attack degrades gracefully to
        the static one."""
        out: dict[int, frozenset] = {}
        for owner, per_epoch in self.log.by_owner().items():
            sets = [
                providers
                for epoch, providers in sorted(per_epoch.items())
                if upto_epoch is None or epoch <= upto_epoch
            ]
            if not sets:
                continue
            surviving = frozenset(sets[0])
            for s in sets[1:]:
                surviving &= s
            out[owner] = surviving
        return out

    def attack(
        self,
        truth: Mapping[int, Sequence[int]],
        upto_epoch: Optional[int] = None,
    ) -> LongitudinalResult:
        """Full attack + scoring against ``truth`` (owner -> true ids)."""
        survivors = self.survivors(upto_epoch)
        epochs = [
            e
            for e in self.log.epochs()
            if upto_epoch is None or e <= upto_epoch
        ]
        confidences = {
            owner: _confidence(frozenset(truth.get(owner, ())), surviving)
            for owner, surviving in survivors.items()
        }
        return LongitudinalResult(
            epochs_used=epochs,
            survivors=survivors,
            confidences=confidences,
            anonymity_sizes={o: len(s) for o, s in survivors.items()},
        )

    def degradation_curve(
        self, truth_by_epoch: Mapping[int, Mapping[int, set]]
    ) -> list:
        """Attack success after each successive epoch of observation.

        One row per observed epoch ``e``: the attack run over everything
        observed up to ``e``, scored against the truth *at* ``e``.
        ``stable_confidence`` restricts scoring to owners whose truth never
        changed -- the paper's flat-vs-degrading privacy signal, clean of
        legitimate churn disclosure.
        """
        stable = stable_owners(truth_by_epoch)
        curve = []
        for k, epoch in enumerate(self.log.epochs()):
            truth = truth_by_epoch.get(epoch, {})
            result = self.attack(truth, upto_epoch=epoch)
            curve.append(
                {
                    "epoch": epoch,
                    "versions": k + 1,
                    "mean_confidence": result.mean_confidence,
                    "stable_confidence": result.mean_confidence_over(stable),
                    "mean_anonymity": result.mean_anonymity,
                }
            )
        return curve


# -- differential reads --------------------------------------------------------


@dataclass
class EpochDiffResult:
    """Outcome of diffing consecutive epochs to isolate churned owners."""

    pairs: int  # consecutive (epoch, epoch') observation pairs diffed
    claimed_bits: int  # provider bits the attacker claims changed
    true_bits: int  # claimed bits that are genuine truth changes
    churned_owners: list  # owners flagged as churned (any nonempty diff)
    false_churn_owners: list  # flagged owners whose truth never moved

    @property
    def precision(self) -> float:
        """Fraction of claimed changes that are real.  An attacker who
        claims nothing is never wrong (vacuous 1.0) -- exactly the sticky
        no-churn outcome."""
        if self.claimed_bits == 0:
            return 1.0
        return self.true_bits / self.claimed_bits


class EpochDiffAttacker:
    """Diff each owner's responses across consecutive observed epochs."""

    def __init__(self, log: ObservationLog):
        self.log = log

    def attack(
        self, truth_by_epoch: Mapping[int, Mapping[int, set]]
    ) -> EpochDiffResult:
        pairs = 0
        claimed = 0
        true_changed = 0
        flagged = set()
        truly_churned = set()
        for owner, per_epoch in self.log.by_owner().items():
            epochs = sorted(per_epoch)
            for prev, cur in zip(epochs, epochs[1:]):
                observed_diff = per_epoch[prev] ^ per_epoch[cur]
                pairs += 1
                claimed += len(observed_diff)
                if observed_diff:
                    flagged.add(owner)
                if prev not in truth_by_epoch or cur not in truth_by_epoch:
                    continue  # unscoreable pair: no ground truth at hand
                true_diff = frozenset(
                    truth_by_epoch[prev].get(owner, ())
                ) ^ frozenset(truth_by_epoch[cur].get(owner, ()))
                true_changed += len(observed_diff & true_diff)
                if true_diff:
                    truly_churned.add(owner)
        return EpochDiffResult(
            pairs=pairs,
            claimed_bits=claimed,
            true_bits=true_changed,
            churned_owners=sorted(flagged),
            false_churn_owners=sorted(flagged - truly_churned),
        )


# -- quasi-identifier linkage --------------------------------------------------


@dataclass
class LinkageResult:
    """Outcome of linking external records to owners, then claiming."""

    links: dict  # target index -> owner id the attacker linked it to
    scores: dict = field(default_factory=dict)  # target index -> match score
    n_targets: int = 0
    linkage_precision: float = 0.0  # linked targets pointing at the right owner
    membership_confidence: float = 0.0  # claim success on linked owners

    @property
    def linked(self) -> int:
        return len(self.links)


class LinkageAttacker:
    """Bloom-encoded quasi-identifier linkage feeding membership claims.

    The attacker holds ``targets`` (its own dirty records: typos, nickname
    variants) and a leaked ``directory`` (owner id -> demographic fields),
    both encodable under a shared linkage ``key`` -- the insider scenario
    the Bloom keying defends against outsiders but not key holders.  Each
    target is matched against the whole directory; a ``MATCH`` decision
    links it, and the linked owner's *latest observed* provider set becomes
    the claim surface.
    """

    def __init__(
        self,
        log: ObservationLog,
        encoder: Optional[BloomEncoder] = None,
        matcher: Optional[RecordMatcher] = None,
    ):
        self.log = log
        self.encoder = encoder or BloomEncoder(size=512, hashes=8, key=b"redteam")
        self.matcher = matcher or RecordMatcher()

    def _latest_sets(self) -> dict:
        out = {}
        for owner, per_epoch in self.log.by_owner().items():
            out[owner] = per_epoch[max(per_epoch)]
        return out

    def attack(
        self,
        targets: Sequence[Mapping[str, str]],
        directory: Mapping[int, Mapping[str, str]],
        truth: Optional[Mapping[int, Sequence[int]]] = None,
        true_owners: Optional[Sequence[Optional[int]]] = None,
    ) -> LinkageResult:
        encoded_dir = {
            owner: self.encoder.encode_record(dict(fields))
            for owner, fields in directory.items()
        }
        links: dict[int, int] = {}
        scores: dict[int, float] = {}
        for idx, target in enumerate(targets):
            encoded = self.encoder.encode_record(dict(target))
            best_owner, best = None, None
            for owner, candidate in encoded_dir.items():
                result = self.matcher.compare(encoded, candidate)
                if best is None or result.score > best.score:
                    best_owner, best = owner, result
            if best is not None and best.decision is MatchDecision.MATCH:
                links[idx] = best_owner
                scores[idx] = best.score

        precision = 0.0
        if links and true_owners is not None:
            correct = sum(
                1 for idx, owner in links.items() if true_owners[idx] == owner
            )
            precision = correct / len(links)

        confidence = 0.0
        if links and truth is not None:
            latest = self._latest_sets()
            scored = [
                _confidence(frozenset(truth.get(owner, ())), latest[owner])
                for owner in links.values()
                if owner in latest
            ]
            confidence = sum(scored) / len(scored) if scored else 0.0

        return LinkageResult(
            links=links,
            scores=scores,
            n_targets=len(targets),
            linkage_precision=precision,
            membership_confidence=confidence,
        )
