"""The adversary's substrate: an epoch-tagged log of observed responses.

Every attack in this package starts from the same primitive: the adversary
issues ordinary ``query`` requests against the live fleet and writes down
what came back.  :class:`ObservationLog` is that notebook -- one record per
observed response, ``(epoch, owner_id, provider_set)``, in a crash-safe
append format so a long-running observation campaign survives the
adversary's own process dying mid-write (the same WAL recovery contract as
:class:`~repro.updates.deltalog.DeltaLog`).

File layout::

    EPPIOBS1 | u32 header_len | header JSON
    ( u32 body_len | u32 crc32(body) | body ) *

where each body packs ``u64 epoch | u64 owner | u32 n | n * i32 provider``.
Records are independently crc-checked; a torn tail is truncated on open.
``ObservationLog(path=None)`` keeps everything in memory -- handy for
property tests that stand up hundreds of tiny campaigns.

:class:`LiveObserver` is the collection half: it drives a
:class:`~repro.serving.client.LocatorClient` over real sockets (protocol
v1 or v2 -- whatever the client speaks), reads the **per-response** epoch
tag the server stamps on every answer, and appends one observation per
query.  It deliberately routes around the client's result cache: an
adversary re-asking after a republication must see the fresh row, not a
memo of the old one.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.errors import ModelError
from repro.serving.protocol import VERB_QUERY
from repro.serving.server import shard_of

__all__ = ["LiveObserver", "Observation", "ObservationLog", "ObservationLogError"]

MAGIC = b"EPPIOBS1"
_U32 = struct.Struct(">I")
_RECORD_HEADER = struct.Struct(">II")  # body length, crc32(body)
_BODY_FIXED = struct.Struct(">QQI")  # epoch, owner, provider count


class ObservationLogError(ModelError):
    """The file is not a readable observation log."""


@dataclass(frozen=True)
class Observation:
    """One observed query response."""

    epoch: int
    owner_id: int
    providers: frozenset


class ObservationLog:
    """Append-only, crash-safe store of epoch-tagged query observations.

    ``ObservationLog(path)`` opens (or creates) the file at ``path`` and
    replays every intact record into memory; a torn tail left by a crash
    mid-append is truncated before the next write.  ``path=None`` keeps the
    log purely in memory.  Usable as a context manager.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.repaired_bytes = 0
        self._observations: list[Observation] = []
        self._file = None
        if path is None:
            return
        if os.path.exists(path):
            self._replay(path)
        else:
            with open(path, "wb") as fh:
                fh.write(MAGIC)
                header = b"{}"
                fh.write(_U32.pack(len(header)))
                fh.write(header)
        self._file = open(path, "ab")

    # -- durability -----------------------------------------------------------

    def _replay(self, path: str) -> None:
        with open(path, "rb") as fh:
            blob = fh.read()
        if len(blob) < len(MAGIC) + _U32.size or not blob.startswith(MAGIC):
            raise ObservationLogError(f"{path!r} is not an observation log")
        (header_len,) = _U32.unpack_from(blob, len(MAGIC))
        offset = len(MAGIC) + _U32.size + header_len
        if offset > len(blob):
            raise ObservationLogError(f"{path!r} has a truncated header")
        good_end = offset
        while offset + _RECORD_HEADER.size <= len(blob):
            body_len, crc = _RECORD_HEADER.unpack_from(blob, offset)
            body_start = offset + _RECORD_HEADER.size
            body = blob[body_start : body_start + body_len]
            if len(body) < body_len or zlib.crc32(body) != crc:
                break  # torn tail: keep everything before it
            self._observations.append(self._decode(body))
            offset = body_start + body_len
            good_end = offset
        if good_end < len(blob):
            self.repaired_bytes = len(blob) - good_end
            with open(path, "r+b") as fh:
                fh.truncate(good_end)

    @staticmethod
    def _decode(body: bytes) -> Observation:
        epoch, owner, count = _BODY_FIXED.unpack_from(body, 0)
        expected = _BODY_FIXED.size + 4 * count
        if len(body) != expected:
            raise ObservationLogError(
                f"record body is {len(body)} bytes, expected {expected}"
            )
        providers = struct.unpack_from(f">{count}i", body, _BODY_FIXED.size)
        return Observation(epoch, owner, frozenset(providers))

    def append(self, epoch: int, owner_id: int, providers: Iterable[int]) -> None:
        """Record one observed response (flushed per record)."""
        if epoch < 0 or owner_id < 0:
            raise ObservationLogError(
                f"epoch and owner must be >= 0, got ({epoch}, {owner_id})"
            )
        ids = sorted(int(p) for p in providers)
        body = _BODY_FIXED.pack(epoch, owner_id, len(ids)) + struct.pack(
            f">{len(ids)}i", *ids
        )
        self._observations.append(Observation(epoch, owner_id, frozenset(ids)))
        if self._file is not None:
            self._file.write(_RECORD_HEADER.pack(len(body), zlib.crc32(body)))
            self._file.write(body)
            self._file.flush()

    def sync(self) -> None:
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "ObservationLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the adversary's views ------------------------------------------------

    @property
    def observations(self) -> list[Observation]:
        return list(self._observations)

    @property
    def n_records(self) -> int:
        return len(self._observations)

    def epochs(self) -> list[int]:
        """Distinct epochs observed, ascending."""
        return sorted({obs.epoch for obs in self._observations})

    def owners(self) -> list[int]:
        return sorted({obs.owner_id for obs in self._observations})

    def by_owner(self) -> dict:
        """``owner -> {epoch -> provider frozenset}``, newest record wins.

        Re-observing the same ``(owner, epoch)`` overwrites -- the response
        is deterministic per epoch, and during a rolling reload the later
        observation is the one the adversary acts on.
        """
        view: dict[int, dict[int, frozenset]] = {}
        for obs in self._observations:
            view.setdefault(obs.owner_id, {})[obs.epoch] = obs.providers
        return view


class LiveObserver:
    """Collects observations from a live fleet through a real client.

    ``client`` is a :class:`~repro.serving.client.LocatorClient`; queries
    are addressed straight at the owner's home shard with
    :meth:`~repro.serving.client.LocatorClient.call`, so every harvest hits
    the wire (no client-side cache) and the per-response ``epoch`` tag is
    captured verbatim -- during a rolling reload one harvest can legally
    straddle two epochs, and the log records exactly which answer came from
    which.
    """

    def __init__(self, client, log: ObservationLog):
        self.client = client
        self.log = log

    async def observe(self, owner_id: int) -> Observation:
        """One query, one record."""
        addr = self.client.servers[shard_of(owner_id, len(self.client.servers))]
        response = await self.client.call(addr, VERB_QUERY, owner=owner_id)
        epoch = int(response.get("epoch", 0))
        providers = [int(p) for p in response["providers"]]
        self.log.append(epoch, owner_id, providers)
        return Observation(epoch, owner_id, frozenset(providers))

    async def harvest(self, owner_ids: Iterable[int]) -> int:
        """Observe every owner once; returns the number of records added."""
        count = 0
        for owner_id in owner_ids:
            await self.observe(owner_id)
            count += 1
        return count
