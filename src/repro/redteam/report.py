"""The red-team lab's deliverable: a privacy report for a served index.

Where :class:`~repro.serving.loadgen.LoadReport` answers "how fast", a
:class:`PrivacyReport` answers "how much did the adversary learn":

* the **degradation curve** -- longitudinal intersection-attack success
  after each successive epoch of observation.  The headline claim of the
  sticky-republication design is that this curve is *flat* for owners whose
  truth never changed; the fresh-coin baseline climbs monotonically as
  β^k noise dies off;
* **per-ε-tier success** -- attack success grouped by privacy tier, so the
  personalized-privacy contract (stricter ε => more decoys => lower attack
  success) is measurable per tier, not as one blended number;
* the **anonymity-set distribution** -- sizes of the surviving candidate
  sets the adversary is left to claim against;
* **epoch-diff** and optional **linkage** attack outcomes.

The report is plain data: JSON round-trips losslessly, so ``eppi redteam
run`` can write it and ``eppi redteam report`` can pretty-print it later.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import asdict, dataclass, field
from typing import Optional

__all__ = ["PrivacyReport"]


@dataclass
class PrivacyReport:
    """Aggregate adversarial outcome of one observation campaign."""

    mode: str  # "sticky" or "naive" republication
    epochs: list  # distinct epochs observed
    observed_owners: int = 0
    n_observations: int = 0
    #: per-epoch intersection-attack rows (see
    #: :meth:`LongitudinalIntersectionAttacker.degradation_curve`)
    degradation_curve: list = field(default_factory=list)
    #: tier -> mean intersection-attack confidence at the final epoch
    per_tier_success: dict = field(default_factory=dict)
    #: summary stats over final-epoch anonymity-set sizes
    anonymity_sets: dict = field(default_factory=dict)
    #: epoch-diff attack summary
    diff: dict = field(default_factory=dict)
    #: optional linkage attack summary
    linkage: Optional[dict] = None

    @property
    def final_confidence(self) -> float:
        if not self.degradation_curve:
            return 0.0
        return float(self.degradation_curve[-1]["mean_confidence"])

    @property
    def degradation_delta(self) -> float:
        """Stable-owner attack-success drift, first epoch to last.

        Zero (to the noise floor) is the sticky guarantee; positive means
        republication leaks -- every republished version hands the
        intersection attacker fresh noise to strip.
        """
        if len(self.degradation_curve) < 2:
            return 0.0
        return float(
            self.degradation_curve[-1]["stable_confidence"]
            - self.degradation_curve[0]["stable_confidence"]
        )

    @staticmethod
    def summarize_anonymity(sizes) -> dict:
        sizes = sorted(int(s) for s in sizes)
        if not sizes:
            return {"min": 0, "median": 0.0, "mean": 0.0, "max": 0}
        return {
            "min": sizes[0],
            "median": float(statistics.median(sizes)),
            "mean": float(statistics.fmean(sizes)),
            "max": sizes[-1],
        }

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "PrivacyReport":
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "PrivacyReport":
        return cls.from_dict(json.loads(text))

    # -- display --------------------------------------------------------------

    def format(self) -> str:
        lines = [
            f"republication   {self.mode}",
            f"epochs observed {len(self.epochs)} ({self.epochs})",
            f"owners observed {self.observed_owners}",
            f"observations    {self.n_observations}",
        ]
        for row in self.degradation_curve:
            lines.append(
                f"  epoch {row['epoch']:>3}  versions {row['versions']:>2}  "
                f"success {row['mean_confidence']:.3f}  "
                f"stable {row['stable_confidence']:.3f}  "
                f"anonymity {row['mean_anonymity']:.1f}"
            )
        lines.append(f"degradation     {self.degradation_delta:+.3f} (stable owners)")
        for tier in sorted(self.per_tier_success):
            lines.append(
                f"tier {tier:<10} success {self.per_tier_success[tier]:.3f}"
            )
        if self.anonymity_sets:
            a = self.anonymity_sets
            lines.append(
                f"anonymity sets  min {a['min']}  median {a['median']:.1f}  "
                f"mean {a['mean']:.1f}  max {a['max']}"
            )
        if self.diff:
            lines.append(
                f"epoch diff      {self.diff['claimed_bits']} bits claimed, "
                f"precision {self.diff['precision']:.3f}, "
                f"{len(self.diff['false_churn_owners'])} false-churn owners"
            )
        if self.linkage:
            lines.append(
                f"linkage         {self.linkage['linked']}/"
                f"{self.linkage['n_targets']} linked, "
                f"precision {self.linkage['linkage_precision']:.3f}, "
                f"claim success {self.linkage['membership_confidence']:.3f}"
            )
        return "\n".join(lines)
