"""Secure multi-party computation substrate.

From-scratch replacements for the cryptographic machinery the paper builds
on: additive and Shamir secret sharing, a Boolean-circuit compiler, a
GMW-style c-party MPC engine (standing in for FairplayMP), the SecSumShare
secure-sum protocol, the CountBelow / β-selection circuits (Alg. 2), the
full secure β pipeline (Alg. 1) and the pure-MPC baseline.
"""

from repro.mpc.additive import AdditiveSharing, Share
from repro.mpc.bgw import BGWEngine, BGWStats, SharedValue
from repro.mpc.betacalc import SecureBetaResult, secure_beta_calculation
from repro.mpc.conversion import A2BCorrelation, A2BDealer, A2BResult, a2b_convert
from repro.mpc.countbelow import (
    COIN_BITS,
    ENGINES,
    EPSILON_SCALE_BITS,
    CountBelowResult,
    SelectionResult,
    build_count_circuit,
    build_count_identity_circuit,
    build_selection_circuit,
    build_selection_identity_circuit,
    run_beta_selection,
    run_count_below,
)
from repro.mpc.field import Zq, default_modulus_for_sum
from repro.mpc.gmw import (
    BatchGMWEngine,
    BatchGMWResult,
    GMWEngine,
    GMWProtocol,
    GMWResult,
    GMWStats,
    PartyTranscript,
    expected_stats,
)
from repro.mpc.pure import PureMPCResult, build_pure_circuit, run_pure_beta_calculation
from repro.mpc.secsum import ProviderView, SecSumResult, SecSumShare
from repro.mpc.shamir import DEFAULT_PRIME, ShamirShare, ShamirSharing
from repro.mpc.triples import BitTriple, SharedBitTriple, TripleDealer

__all__ = [
    "A2BCorrelation",
    "A2BDealer",
    "A2BResult",
    "AdditiveSharing",
    "BGWEngine",
    "BGWStats",
    "BatchGMWEngine",
    "BatchGMWResult",
    "BitTriple",
    "COIN_BITS",
    "CountBelowResult",
    "DEFAULT_PRIME",
    "ENGINES",
    "EPSILON_SCALE_BITS",
    "GMWEngine",
    "GMWProtocol",
    "GMWResult",
    "GMWStats",
    "PartyTranscript",
    "ProviderView",
    "PureMPCResult",
    "SecSumResult",
    "SecSumShare",
    "SecureBetaResult",
    "SelectionResult",
    "ShamirShare",
    "ShamirSharing",
    "Share",
    "SharedBitTriple",
    "SharedValue",
    "TripleDealer",
    "Zq",
    "a2b_convert",
    "build_count_circuit",
    "build_count_identity_circuit",
    "build_pure_circuit",
    "build_selection_circuit",
    "build_selection_identity_circuit",
    "default_modulus_for_sum",
    "expected_stats",
    "run_beta_selection",
    "run_count_below",
    "run_pure_beta_calculation",
    "secure_beta_calculation",
]
