"""Secure β calculation: the complete phase-1 pipeline (paper Alg. 1).

Orchestrates the MPC-reduced computation flow of Eq. 9 end to end:

    provider bits --SecSumShare--> c coordinator shares
                  --CountBelow (GMW)--> #common identities + ξ
                  --λ (public, Eq. 7)-->
                  --β-selection (GMW)--> per-identity "publish as 1" bits
                  --open σ for unselected--> β* in the clear (Eq. 3/4/5)

The returned β vector is what providers feed into randomized publication
(phase 2).  The reference (trusted, centralized) computation of the same
function is :func:`repro.core.construction.compute_betas`; tests assert the
two agree.
"""

from __future__ import annotations

import functools
import math
import random
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.mixing import compute_lambda
from repro.core.policies import BetaPolicy, frequency_threshold
from repro.mpc.countbelow import (
    COIN_BITS,
    CountBelowResult,
    SelectionResult,
    build_count_circuit,
    build_selection_circuit,
    run_beta_selection,
    run_count_below,
    scale_epsilon,
)
from repro.mpc.field import Zq, default_modulus_for_sum
from repro.mpc.gmw import expected_stats
from repro.mpc.offline.factory import TripleFactory
from repro.mpc.offline.phases import PhaseReport
from repro.mpc.secsum import SecSumResult, SecSumShare

__all__ = ["SecureBetaResult", "secure_beta_calculation", "DEFAULT_OFFLINE_SEED"]

# Factory seeding is deliberately *not* drawn from the protocol rng: triple
# values never influence Beaver outputs, and keeping the offline stream out
# of the protocol's coin stream is what makes dealer-fed and factory-fed
# constructions byte-identical.
DEFAULT_OFFLINE_SEED = 0x0FF1CE

TRIPLE_SOURCES = ("dealer", "factory")


@dataclass
class SecureBetaResult:
    """Outputs and full accounting of one secure β calculation."""

    betas: np.ndarray  # final per-identity publishing probabilities
    n_common: int  # truly common count, revealed by CountBelow
    n_natural_decoys: int  # broadcast-but-not-common count, ditto
    xi: float  # revealed by CountBelow
    lambda_: float  # public mixing probability (Eq. 7)
    publish_as_one: list[int]  # per-identity selection bits (public)
    opened_frequencies: dict[int, int]  # identity -> opened frequency
    thresholds: list[int]  # public per-identity frequency thresholds
    secsum: SecSumResult
    count_result: CountBelowResult
    selection_result: SelectionResult
    # Per-phase setup/offline/online accounting; populated when triples come
    # from the offline factory, None under the trusted dealer.
    phases: Optional[PhaseReport] = None

    @property
    def total_and_gates(self) -> int:
        return self.count_result.stats.and_gates + self.selection_result.stats.and_gates

    @property
    def total_circuit_size(self) -> int:
        return (
            self.count_result.gates_evaluated
            + self.selection_result.gates_evaluated
        )


def _count_phase_words(
    engine: str, m: int, n_ids: int, c: int, thresholds: list[int],
    epsilons: list[float], width: int, high_threshold: int,
    common_sigma_threshold: float,
) -> int:
    """Exact CountBelow triple-word demand, for factory provisioning."""
    if engine == "mono":
        eps_scaled = [scale_epsilon(e) for e in epsilons]
        circuit = build_count_circuit(c, thresholds, eps_scaled, width, high_threshold)
        return math.ceil(expected_stats(circuit, c).and_gates / 64)
    return _decomposed_count_words(m, n_ids, c, common_sigma_threshold, engine)


def _selection_phase_words(
    engine: str, m: int, n_ids: int, c: int, thresholds: list[int],
    width: int, lambda_: float, common_sigma_threshold: float,
) -> int:
    """Exact β-selection triple-word demand once λ is public."""
    lambda_scaled = round(lambda_ * (1 << COIN_BITS))
    if engine == "mono":
        circuit = build_selection_circuit(c, thresholds, lambda_scaled, width)
        return math.ceil(expected_stats(circuit, c).and_gates / 64)
    return _decomposed_selection_words(
        m, n_ids, c, common_sigma_threshold, lambda_scaled, engine
    )


# Pricing walks every circuit in the schedule, which costs ~10 ms -- real
# money on the factory-provisioning path, where it delays production start.
# The decomposed engines' demand depends only on these scalars, so cache it.
@functools.lru_cache(maxsize=128)
def _decomposed_count_words(
    m: int, n_ids: int, c: int, common_sigma_threshold: float, engine: str
) -> int:
    from repro.analysis.cost_model import ConstructionCostModel

    model = ConstructionCostModel(
        m, n_ids, c, common_sigma_threshold=common_sigma_threshold
    )
    return model.count_phase_words(engine)


@functools.lru_cache(maxsize=128)
def _decomposed_selection_words(
    m: int, n_ids: int, c: int, common_sigma_threshold: float,
    lambda_scaled: int, engine: str,
) -> int:
    from repro.analysis.cost_model import ConstructionCostModel

    model = ConstructionCostModel(
        m, n_ids, c, common_sigma_threshold=common_sigma_threshold
    )
    return model.selection_phase_words(lambda_scaled, engine)


def secure_beta_calculation(
    provider_bits: list[list[int]],
    epsilons: list[float],
    policy: BetaPolicy,
    c: int,
    rng: random.Random,
    common_sigma_threshold: float = 0.5,
    engine: str = "mono",
    triple_source: str = "dealer",
    factory: TripleFactory | None = None,
    offline_producers: int = 2,
    offline_seed: int = DEFAULT_OFFLINE_SEED,
) -> SecureBetaResult:
    """Run Alg. 1 over ``m`` providers' private bits for ``n`` identities.

    ``provider_bits[i][j]`` is provider ``i``'s membership bit for identity
    ``j``.  ``c`` is the collusion-tolerance parameter (number of
    coordinators / shares).  ``common_sigma_threshold`` is the public bound
    separating truly common identities from natural decoys (see
    :mod:`repro.core.mixing`).  ``engine`` selects the secure-evaluation
    strategy for both MPC stages (see :mod:`repro.mpc.countbelow`):
    ``"batch"`` evaluates the identity universe bitsliced, 64 at a time.

    ``triple_source`` picks where Beaver triples come from: ``"dealer"``
    keeps the trusted dealer; ``"factory"`` streams them from the dealerless
    offline pipeline (:mod:`repro.mpc.offline`), with production running
    concurrently with (and ahead of) the online evaluation.  Pass a started
    ``factory`` to manage its lifecycle (and quotas) yourself -- e.g. a
    pre-filled factory for a sequential offline-then-online baseline;
    otherwise one is created with the exact demand (count-phase words up
    front, selection words topped up once λ is public) and closed before
    returning.  Outputs are byte-identical across both sources: triple
    values never leak into Beaver-masked results, and the engines' coin
    streams do not depend on the source.
    """
    m = len(provider_bits)
    if m == 0:
        raise ValueError("need at least one provider")
    n_ids = len(provider_bits[0])
    if len(epsilons) != n_ids:
        raise ValueError(
            f"need one epsilon per identity ({n_ids}), got {len(epsilons)}"
        )
    for i, row in enumerate(provider_bits):
        for v in row:
            if v not in (0, 1):
                raise ValueError(f"provider {i} supplied non-bit value {v}")
    if triple_source not in TRIPLE_SOURCES:
        raise ValueError(
            f"unknown triple_source {triple_source!r} (expected one of {TRIPLE_SOURCES})"
        )
    if factory is not None and triple_source != "factory":
        raise ValueError("passing a factory requires triple_source='factory'")

    ring = Zq(default_modulus_for_sum(m))
    width = (ring.q - 1).bit_length()
    call_start = time.perf_counter()

    high_threshold = max(1, math.ceil(common_sigma_threshold * m))

    own_factory = None
    source = None
    provisioned = 0
    thresholds: list[int] | None = None
    if triple_source == "factory" and factory is None:
        # Provision the selection stage up front with a nominal
        # non-degenerate λ: the selection circuit's AND count does not
        # depend on λ's value (only the degenerate λ ∈ {0, 1} folds the
        # coin comparator away, shrinking the circuit), so this is the
        # exact demand in the common case and a safe over-estimate in
        # the degenerate ones.  Provisioning early keeps the producers
        # streaming through the count phase instead of stalling on the
        # λ barrier; any shortfall is topped up via add_quota below.
        # The decomposed engines' demand is threshold-independent, so for
        # them the factory starts *before* the O(n) threshold computation
        # below -- another slice of serial prep hidden under production.
        # The monolithic circuit's size does depend on the thresholds.
        if engine == "mono":
            thresholds = [frequency_threshold(policy, e, m) for e in epsilons]
        count_words = _count_phase_words(
            engine, m, n_ids, c, thresholds or [], list(epsilons), width,
            high_threshold, common_sigma_threshold,
        )
        selection_upper = _selection_phase_words(
            engine, m, n_ids, c, thresholds or [], width,
            1.0 / (1 << COIN_BITS), common_sigma_threshold,
        )
        provisioned = count_words + selection_upper
        own_factory = TripleFactory(
            parties=c,
            seed=offline_seed,
            target_words=provisioned,
            producers=offline_producers,
        ).start()
        factory = own_factory
    if triple_source == "factory":
        source = factory.source()

    # Public per-identity thresholds t_j = ceil(σ'_j · m) (Alg. 1, line 2).
    if thresholds is None:
        thresholds = [frequency_threshold(policy, e, m) for e in epsilons]

    try:
        # Stage 1.1: SecSumShare (paper Fig. 3, phase 1.1) -- triple
        # production is already running underneath it in factory mode.
        secsum = SecSumShare(m=m, c=c, ring=ring, rng=rng)
        sum_result = secsum.run(provider_bits)

        # Stage 1.2a: CountBelow under generic MPC (Alg. 1, line 3).
        online_start = time.perf_counter()
        count_result = run_count_below(
            sum_result.coordinator_shares,
            thresholds,
            list(epsilons),
            ring,
            rng,
            high_threshold=high_threshold,
            engine=engine,
            triple_source=source,
        )

        # λ is computed from public values only (Eq. 7, net of natural decoys).
        lambda_ = compute_lambda(
            count_result.n_common,
            n_ids,
            count_result.xi,
            n_natural_decoys=count_result.n_natural_decoys,
        )

        # λ is now public, so the selection circuit's exact triple demand
        # is known; top up the auto-managed factory if the nominal-λ
        # provisioning fell short (it only can for exotic circuits whose
        # size grows with λ's bit pattern).
        if own_factory is not None:
            exact = source.words_consumed + _selection_phase_words(
                engine, m, n_ids, c, thresholds, width, lambda_,
                common_sigma_threshold,
            )
            if exact > provisioned:
                own_factory.add_quota(exact - provisioned)

        # Stage 1.2b: per-identity β-selection under generic MPC.
        selection_result = run_beta_selection(
            sum_result.coordinator_shares,
            thresholds,
            lambda_,
            ring,
            rng,
            engine=engine,
            triple_source=source,
        )
        online_end = time.perf_counter()

        phases = None
        if source is not None:
            phases = _build_phase_report(
                factory, source, call_start, online_start, online_end,
                count_result, selection_result,
            )
    finally:
        if own_factory is not None:
            own_factory.close()

    # Non-private end of the flow (Eq. 9): open σ only for identities that
    # were *not* selected, then evaluate the heavy β* math in the clear.
    betas = np.zeros(n_ids, dtype=float)
    opened: dict[int, int] = {}
    for j, bit in enumerate(selection_result.publish_as_one):
        if bit:
            betas[j] = 1.0
        else:
            freq = sum_result.reconstruct(ring, j)
            opened[j] = freq
            betas[j] = policy.beta(freq / m, epsilons[j], m)

    return SecureBetaResult(
        betas=betas,
        n_common=count_result.n_common,
        n_natural_decoys=count_result.n_natural_decoys,
        xi=count_result.xi,
        lambda_=lambda_,
        publish_as_one=list(selection_result.publish_as_one),
        opened_frequencies=opened,
        thresholds=thresholds,
        secsum=sum_result,
        count_result=count_result,
        selection_result=selection_result,
        phases=phases,
    )


def _build_phase_report(
    factory: TripleFactory,
    source,
    call_start: float,
    online_start: float,
    online_end: float,
    count_result: CountBelowResult,
    selection_result: SelectionResult,
) -> PhaseReport:
    """Assemble the setup/offline/online split for one factory-fed run."""
    report = PhaseReport()
    report.setup.add(factory.setup_stats)
    report.offline.add(factory.offline_stats)
    # Offline wall time is the production *span* (parallel producers), not
    # summed producer busy time; the overlap with this call's protocol work
    # is the part the pipeline hid from the critical path.
    p0 = factory.started_at if factory.started_at is not None else call_start
    p1 = factory.finished_at if factory.finished_at is not None else online_end
    report.offline.wall_time_s = max(0.0, p1 - p0)
    report.offline.hidden_time_s = max(
        0.0, min(p1, online_end) - max(p0, call_start)
    )
    online = report.online
    for stats in (count_result.stats, selection_result.stats):
        online.bits_sent += stats.bits_sent
        online.messages += stats.messages
        online.rounds += stats.rounds
    online.wall_time_s = online_end - online_start
    report.triple_words_produced = factory.words_produced
    report.triple_words_consumed = source.words_consumed
    report.stall_time_s = source.stall_time_s
    return report

