"""Secure β calculation: the complete phase-1 pipeline (paper Alg. 1).

Orchestrates the MPC-reduced computation flow of Eq. 9 end to end:

    provider bits --SecSumShare--> c coordinator shares
                  --CountBelow (GMW)--> #common identities + ξ
                  --λ (public, Eq. 7)-->
                  --β-selection (GMW)--> per-identity "publish as 1" bits
                  --open σ for unselected--> β* in the clear (Eq. 3/4/5)

The returned β vector is what providers feed into randomized publication
(phase 2).  The reference (trusted, centralized) computation of the same
function is :func:`repro.core.construction.compute_betas`; tests assert the
two agree.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np

from repro.core.mixing import compute_lambda
from repro.core.policies import BetaPolicy, frequency_threshold
from repro.mpc.countbelow import (
    CountBelowResult,
    SelectionResult,
    run_beta_selection,
    run_count_below,
)
from repro.mpc.field import Zq, default_modulus_for_sum
from repro.mpc.secsum import SecSumResult, SecSumShare

__all__ = ["SecureBetaResult", "secure_beta_calculation"]


@dataclass
class SecureBetaResult:
    """Outputs and full accounting of one secure β calculation."""

    betas: np.ndarray  # final per-identity publishing probabilities
    n_common: int  # truly common count, revealed by CountBelow
    n_natural_decoys: int  # broadcast-but-not-common count, ditto
    xi: float  # revealed by CountBelow
    lambda_: float  # public mixing probability (Eq. 7)
    publish_as_one: list[int]  # per-identity selection bits (public)
    opened_frequencies: dict[int, int]  # identity -> opened frequency
    thresholds: list[int]  # public per-identity frequency thresholds
    secsum: SecSumResult
    count_result: CountBelowResult
    selection_result: SelectionResult

    @property
    def total_and_gates(self) -> int:
        return self.count_result.stats.and_gates + self.selection_result.stats.and_gates

    @property
    def total_circuit_size(self) -> int:
        return (
            self.count_result.gates_evaluated
            + self.selection_result.gates_evaluated
        )


def secure_beta_calculation(
    provider_bits: list[list[int]],
    epsilons: list[float],
    policy: BetaPolicy,
    c: int,
    rng: random.Random,
    common_sigma_threshold: float = 0.5,
    engine: str = "mono",
) -> SecureBetaResult:
    """Run Alg. 1 over ``m`` providers' private bits for ``n`` identities.

    ``provider_bits[i][j]`` is provider ``i``'s membership bit for identity
    ``j``.  ``c`` is the collusion-tolerance parameter (number of
    coordinators / shares).  ``common_sigma_threshold`` is the public bound
    separating truly common identities from natural decoys (see
    :mod:`repro.core.mixing`).  ``engine`` selects the secure-evaluation
    strategy for both MPC stages (see :mod:`repro.mpc.countbelow`):
    ``"batch"`` evaluates the identity universe bitsliced, 64 at a time.
    """
    m = len(provider_bits)
    if m == 0:
        raise ValueError("need at least one provider")
    n_ids = len(provider_bits[0])
    if len(epsilons) != n_ids:
        raise ValueError(
            f"need one epsilon per identity ({n_ids}), got {len(epsilons)}"
        )
    for i, row in enumerate(provider_bits):
        for v in row:
            if v not in (0, 1):
                raise ValueError(f"provider {i} supplied non-bit value {v}")

    ring = Zq(default_modulus_for_sum(m))

    # Stage 1.1: SecSumShare (paper Fig. 3, phase 1.1).
    secsum = SecSumShare(m=m, c=c, ring=ring, rng=rng)
    sum_result = secsum.run(provider_bits)

    # Public per-identity thresholds t_j = ceil(σ'_j · m) (Alg. 1, line 2).
    thresholds = [frequency_threshold(policy, e, m) for e in epsilons]

    # Stage 1.2a: CountBelow under generic MPC (Alg. 1, line 3).
    high_threshold = max(1, math.ceil(common_sigma_threshold * m))
    count_result = run_count_below(
        sum_result.coordinator_shares,
        thresholds,
        list(epsilons),
        ring,
        rng,
        high_threshold=high_threshold,
        engine=engine,
    )

    # λ is computed from public values only (Eq. 7, net of natural decoys).
    lambda_ = compute_lambda(
        count_result.n_common,
        n_ids,
        count_result.xi,
        n_natural_decoys=count_result.n_natural_decoys,
    )

    # Stage 1.2b: per-identity β-selection under generic MPC.
    selection_result = run_beta_selection(
        sum_result.coordinator_shares, thresholds, lambda_, ring, rng, engine=engine
    )

    # Non-private end of the flow (Eq. 9): open σ only for identities that
    # were *not* selected, then evaluate the heavy β* math in the clear.
    betas = np.zeros(n_ids, dtype=float)
    opened: dict[int, int] = {}
    for j, bit in enumerate(selection_result.publish_as_one):
        if bit:
            betas[j] = 1.0
        else:
            freq = sum_result.reconstruct(ring, j)
            opened[j] = freq
            betas[j] = policy.beta(freq / m, epsilons[j], m)

    return SecureBetaResult(
        betas=betas,
        n_common=count_result.n_common,
        n_natural_decoys=count_result.n_natural_decoys,
        xi=count_result.xi,
        lambda_=lambda_,
        publish_as_one=list(selection_result.publish_as_one),
        opened_frequencies=opened,
        thresholds=thresholds,
        secsum=sum_result,
        count_result=count_result,
        selection_result=selection_result,
    )
