"""Secure β calculation: the complete phase-1 pipeline (paper Alg. 1).

Orchestrates the MPC-reduced computation flow of Eq. 9 end to end:

    provider bits --SecSumShare--> c coordinator shares
                  --CountBelow (GMW)--> #common identities + ξ
                  --λ (public, Eq. 7)-->
                  --β-selection (GMW)--> per-identity "publish as 1" bits
                  --open σ for unselected--> β* in the clear (Eq. 3/4/5)

The returned β vector is what providers feed into randomized publication
(phase 2).  The reference (trusted, centralized) computation of the same
function is :func:`repro.core.construction.compute_betas`; tests assert the
two agree.
"""

from __future__ import annotations

import functools
import math
import random
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.mixing import compute_lambda
from repro.core.policies import BetaPolicy, frequency_threshold
from repro.mpc.countbelow import (
    COIN_BITS,
    CountBelowResult,
    CountBelowState,
    SelectionResult,
    build_count_circuit,
    build_selection_circuit,
    run_beta_selection,
    run_beta_selection_subset,
    run_count_below,
    scale_epsilon,
    update_count_below,
)
from repro.mpc.field import Zq, default_modulus_for_sum
from repro.mpc.gmw import expected_stats
from repro.mpc.offline.factory import TripleFactory
from repro.mpc.offline.phases import PhaseReport
from repro.mpc.secsum import SecSumResult, SecSumShare

__all__ = [
    "IncrementalBetaState",
    "IncrementalPassInfo",
    "SecureBetaResult",
    "secure_beta_calculation",
    "secure_beta_update",
    "selection_closure",
    "DEFAULT_OFFLINE_SEED",
]

# Factory seeding is deliberately *not* drawn from the protocol rng: triple
# values never influence Beaver outputs, and keeping the offline stream out
# of the protocol's coin stream is what makes dealer-fed and factory-fed
# constructions byte-identical.
DEFAULT_OFFLINE_SEED = 0x0FF1CE

TRIPLE_SOURCES = ("dealer", "factory")


@dataclass
class IncrementalBetaState:
    """Everything a construction must hold to be maintained incrementally.

    Captured by ``secure_beta_calculation(..., keep_state=True)`` and
    consumed (and updated in place) by :func:`secure_beta_update`.  The
    secret material -- coordinator frequency shares and the CountBelow tree
    levels -- never leaves the coordinators in a deployment; the public
    material (λ, selection bits, opened frequencies, β) is exactly what a
    full run reveals anyway.
    """

    m: int
    c: int
    engine: str
    policy: BetaPolicy
    epsilons: list[float]
    thresholds: list[int]
    common_sigma_threshold: float
    high_threshold: int
    ring: Zq
    secsum: SecSumResult
    count_state: CountBelowState
    coins: np.ndarray  # persisted (n, c*COIN_BITS) decoy-coin matrix
    lambda_: float
    publish_as_one: list[int]
    betas: np.ndarray
    opened_frequencies: dict[int, int]

    @property
    def n_identities(self) -> int:
        return len(self.thresholds)


@dataclass
class IncrementalPassInfo:
    """Public shape of one incremental pass (for accounting + benchmarks)."""

    dirty: list[int]  # identities whose inputs changed
    closure: list[int]  # identities securely re-evaluated in selection
    lambda_before: float
    lambda_after: float
    triple_words_provisioned: int = 0


def selection_closure(
    dirty: list[int],
    publish_as_one: list[int],
    lambda_scaled_before: int,
    lambda_scaled_after: int,
) -> list[int]:
    """Identities whose selection bit can change under this pass.

    The dirty identities always re-run (their frequency shares moved).  A
    *clean* identity's circuit ``common_j OR (r_j < λ)`` has both operands
    frozen except λ, and both disjuncts are monotone in λ, so with the
    persisted coin ``r_j``:

    * λ unchanged -- no clean bit can move: closure = dirty set only;
    * λ increased -- a clean 1 stays 1 (whichever disjunct held still
      holds); only clean 0s (the identities *below* the old rank boundary)
      can cross ``r_j < λ``;
    * λ decreased -- a clean 0 stays 0; only clean 1s can lose their coin.

    Everything outside the returned closure provably keeps its previous
    public bit, which is the dirty-set-closure argument (DESIGN.md §7.10)
    that makes the incremental pass exact rather than approximate.
    """
    dirty_set = set(int(j) for j in dirty)
    closure = set(dirty_set)
    if lambda_scaled_after > lambda_scaled_before:
        closure.update(
            j for j, bit in enumerate(publish_as_one)
            if not bit and j not in dirty_set
        )
    elif lambda_scaled_after < lambda_scaled_before:
        closure.update(
            j for j, bit in enumerate(publish_as_one)
            if bit and j not in dirty_set
        )
    return sorted(closure)


@dataclass
class SecureBetaResult:
    """Outputs and full accounting of one secure β calculation."""

    betas: np.ndarray  # final per-identity publishing probabilities
    n_common: int  # truly common count, revealed by CountBelow
    n_natural_decoys: int  # broadcast-but-not-common count, ditto
    xi: float  # revealed by CountBelow
    lambda_: float  # public mixing probability (Eq. 7)
    publish_as_one: list[int]  # per-identity selection bits (public)
    opened_frequencies: dict[int, int]  # identity -> opened frequency
    thresholds: list[int]  # public per-identity frequency thresholds
    secsum: SecSumResult
    count_result: CountBelowResult
    selection_result: SelectionResult
    # Per-phase setup/offline/online accounting; populated when triples come
    # from the offline factory, None under the trusted dealer.
    phases: Optional[PhaseReport] = None
    # Held material for incremental maintenance (``keep_state=True`` full
    # runs and every :func:`secure_beta_update` result).
    state: Optional[IncrementalBetaState] = None
    # Populated only by :func:`secure_beta_update`.
    incremental: Optional[IncrementalPassInfo] = None

    @property
    def total_and_gates(self) -> int:
        return self.count_result.stats.and_gates + self.selection_result.stats.and_gates

    @property
    def total_circuit_size(self) -> int:
        return (
            self.count_result.gates_evaluated
            + self.selection_result.gates_evaluated
        )


def _count_phase_words(
    engine: str, m: int, n_ids: int, c: int, thresholds: list[int],
    epsilons: list[float], width: int, high_threshold: int,
    common_sigma_threshold: float,
) -> int:
    """Exact CountBelow triple-word demand, for factory provisioning."""
    if engine == "mono":
        eps_scaled = [scale_epsilon(e) for e in epsilons]
        circuit = build_count_circuit(c, thresholds, eps_scaled, width, high_threshold)
        return math.ceil(expected_stats(circuit, c).and_gates / 64)
    return _decomposed_count_words(m, n_ids, c, common_sigma_threshold, engine)


def _selection_phase_words(
    engine: str, m: int, n_ids: int, c: int, thresholds: list[int],
    width: int, lambda_: float, common_sigma_threshold: float,
) -> int:
    """Exact β-selection triple-word demand once λ is public."""
    lambda_scaled = round(lambda_ * (1 << COIN_BITS))
    if engine == "mono":
        circuit = build_selection_circuit(c, thresholds, lambda_scaled, width)
        return math.ceil(expected_stats(circuit, c).and_gates / 64)
    return _decomposed_selection_words(
        m, n_ids, c, common_sigma_threshold, lambda_scaled, engine
    )


# Pricing walks every circuit in the schedule, which costs ~10 ms -- real
# money on the factory-provisioning path, where it delays production start.
# The decomposed engines' demand depends only on these scalars, so cache it.
@functools.lru_cache(maxsize=128)
def _decomposed_count_words(
    m: int, n_ids: int, c: int, common_sigma_threshold: float, engine: str
) -> int:
    from repro.analysis.cost_model import ConstructionCostModel

    model = ConstructionCostModel(
        m, n_ids, c, common_sigma_threshold=common_sigma_threshold
    )
    return model.count_phase_words(engine)


@functools.lru_cache(maxsize=128)
def _decomposed_selection_words(
    m: int, n_ids: int, c: int, common_sigma_threshold: float,
    lambda_scaled: int, engine: str,
) -> int:
    from repro.analysis.cost_model import ConstructionCostModel

    model = ConstructionCostModel(
        m, n_ids, c, common_sigma_threshold=common_sigma_threshold
    )
    return model.selection_phase_words(lambda_scaled, engine)


def secure_beta_calculation(
    provider_bits: list[list[int]],
    epsilons: list[float],
    policy: BetaPolicy,
    c: int,
    rng: random.Random,
    common_sigma_threshold: float = 0.5,
    engine: str = "mono",
    triple_source: str = "dealer",
    factory: TripleFactory | None = None,
    offline_producers: int = 2,
    offline_seed: int = DEFAULT_OFFLINE_SEED,
    keep_state: bool = False,
    coins: Optional[np.ndarray] = None,
) -> SecureBetaResult:
    """Run Alg. 1 over ``m`` providers' private bits for ``n`` identities.

    ``coins`` (decomposed engines only) replays an explicit decoy-coin
    matrix through the selection stage instead of drawing fresh coins from
    ``rng`` -- the knob that makes a from-scratch run byte-comparable to
    an incremental :func:`secure_beta_update` chain holding those coins.

    ``provider_bits[i][j]`` is provider ``i``'s membership bit for identity
    ``j``.  ``c`` is the collusion-tolerance parameter (number of
    coordinators / shares).  ``common_sigma_threshold`` is the public bound
    separating truly common identities from natural decoys (see
    :mod:`repro.core.mixing`).  ``engine`` selects the secure-evaluation
    strategy for both MPC stages (see :mod:`repro.mpc.countbelow`):
    ``"batch"`` evaluates the identity universe bitsliced, 64 at a time.

    ``triple_source`` picks where Beaver triples come from: ``"dealer"``
    keeps the trusted dealer; ``"factory"`` streams them from the dealerless
    offline pipeline (:mod:`repro.mpc.offline`), with production running
    concurrently with (and ahead of) the online evaluation.  Pass a started
    ``factory`` to manage its lifecycle (and quotas) yourself -- e.g. a
    pre-filled factory for a sequential offline-then-online baseline;
    otherwise one is created with the exact demand (count-phase words up
    front, selection words topped up once λ is public) and closed before
    returning.  Outputs are byte-identical across both sources: triple
    values never leak into Beaver-masked results, and the engines' coin
    streams do not depend on the source.

    ``keep_state=True`` (decomposed engines only) additionally captures the
    held secret material on ``result.state`` so later churn can be folded
    in with :func:`secure_beta_update` at cost ``O(k)`` in the dirty count
    instead of a full rerun.
    """
    m = len(provider_bits)
    if m == 0:
        raise ValueError("need at least one provider")
    n_ids = len(provider_bits[0])
    if len(epsilons) != n_ids:
        raise ValueError(
            f"need one epsilon per identity ({n_ids}), got {len(epsilons)}"
        )
    for i, row in enumerate(provider_bits):
        for v in row:
            if v not in (0, 1):
                raise ValueError(f"provider {i} supplied non-bit value {v}")
    if triple_source not in TRIPLE_SOURCES:
        raise ValueError(
            f"unknown triple_source {triple_source!r} (expected one of {TRIPLE_SOURCES})"
        )
    if factory is not None and triple_source != "factory":
        raise ValueError("passing a factory requires triple_source='factory'")
    if keep_state and engine == "mono":
        raise ValueError("keep_state requires a decomposed engine (scalar/batch)")

    ring = Zq(default_modulus_for_sum(m))
    width = (ring.q - 1).bit_length()
    call_start = time.perf_counter()

    high_threshold = max(1, math.ceil(common_sigma_threshold * m))

    own_factory = None
    source = None
    provisioned = 0
    thresholds: list[int] | None = None
    if triple_source == "factory" and factory is None:
        # Provision the selection stage up front with a nominal
        # non-degenerate λ: the selection circuit's AND count does not
        # depend on λ's value (only the degenerate λ ∈ {0, 1} folds the
        # coin comparator away, shrinking the circuit), so this is the
        # exact demand in the common case and a safe over-estimate in
        # the degenerate ones.  Provisioning early keeps the producers
        # streaming through the count phase instead of stalling on the
        # λ barrier; any shortfall is topped up via add_quota below.
        # The decomposed engines' demand is threshold-independent, so for
        # them the factory starts *before* the O(n) threshold computation
        # below -- another slice of serial prep hidden under production.
        # The monolithic circuit's size does depend on the thresholds.
        if engine == "mono":
            thresholds = [frequency_threshold(policy, e, m) for e in epsilons]
        count_words = _count_phase_words(
            engine, m, n_ids, c, thresholds or [], list(epsilons), width,
            high_threshold, common_sigma_threshold,
        )
        selection_upper = _selection_phase_words(
            engine, m, n_ids, c, thresholds or [], width,
            1.0 / (1 << COIN_BITS), common_sigma_threshold,
        )
        provisioned = count_words + selection_upper
        own_factory = TripleFactory(
            parties=c,
            seed=offline_seed,
            target_words=provisioned,
            producers=offline_producers,
        ).start()
        factory = own_factory
    if triple_source == "factory":
        source = factory.source()

    # Public per-identity thresholds t_j = ceil(σ'_j · m) (Alg. 1, line 2).
    if thresholds is None:
        thresholds = [frequency_threshold(policy, e, m) for e in epsilons]

    try:
        # Stage 1.1: SecSumShare (paper Fig. 3, phase 1.1) -- triple
        # production is already running underneath it in factory mode.
        secsum = SecSumShare(m=m, c=c, ring=ring, rng=rng)
        sum_result = secsum.run(provider_bits)

        # Stage 1.2a: CountBelow under generic MPC (Alg. 1, line 3).
        online_start = time.perf_counter()
        count_result = run_count_below(
            sum_result.coordinator_shares,
            thresholds,
            list(epsilons),
            ring,
            rng,
            high_threshold=high_threshold,
            engine=engine,
            triple_source=source,
            keep_state=keep_state,
        )

        # λ is computed from public values only (Eq. 7, net of natural decoys).
        lambda_ = compute_lambda(
            count_result.n_common,
            n_ids,
            count_result.xi,
            n_natural_decoys=count_result.n_natural_decoys,
        )

        # λ is now public, so the selection circuit's exact triple demand
        # is known; top up the auto-managed factory if the nominal-λ
        # provisioning fell short (it only can for exotic circuits whose
        # size grows with λ's bit pattern).
        if own_factory is not None:
            exact = source.words_consumed + _selection_phase_words(
                engine, m, n_ids, c, thresholds, width, lambda_,
                common_sigma_threshold,
            )
            if exact > provisioned:
                own_factory.add_quota(exact - provisioned)

        # Stage 1.2b: per-identity β-selection under generic MPC.
        selection_result = run_beta_selection(
            sum_result.coordinator_shares,
            thresholds,
            lambda_,
            ring,
            rng,
            engine=engine,
            triple_source=source,
            coins=coins,
        )
        online_end = time.perf_counter()

        phases = None
        if source is not None:
            phases = _build_phase_report(
                factory, source, call_start, online_start, online_end,
                count_result, selection_result,
            )
    finally:
        if own_factory is not None:
            own_factory.close()

    # Non-private end of the flow (Eq. 9): open σ only for identities that
    # were *not* selected, then evaluate the heavy β* math in the clear.
    betas = np.zeros(n_ids, dtype=float)
    opened: dict[int, int] = {}
    for j, bit in enumerate(selection_result.publish_as_one):
        if bit:
            betas[j] = 1.0
        else:
            freq = sum_result.reconstruct(ring, j)
            opened[j] = freq
            betas[j] = policy.beta(freq / m, epsilons[j], m)

    state = None
    if keep_state:
        state = IncrementalBetaState(
            m=m,
            c=c,
            engine=engine,
            policy=policy,
            epsilons=list(epsilons),
            thresholds=list(thresholds),
            common_sigma_threshold=common_sigma_threshold,
            high_threshold=high_threshold,
            ring=ring,
            secsum=sum_result,
            count_state=count_result.state,
            coins=selection_result.coins,
            lambda_=lambda_,
            publish_as_one=list(selection_result.publish_as_one),
            betas=betas.copy(),
            opened_frequencies=dict(opened),
        )

    return SecureBetaResult(
        betas=betas,
        n_common=count_result.n_common,
        n_natural_decoys=count_result.n_natural_decoys,
        xi=count_result.xi,
        lambda_=lambda_,
        publish_as_one=list(selection_result.publish_as_one),
        opened_frequencies=opened,
        thresholds=thresholds,
        secsum=sum_result,
        count_result=count_result,
        selection_result=selection_result,
        phases=phases,
        state=state,
    )


def secure_beta_update(
    state: IncrementalBetaState,
    provider_bits: list[list[int]],
    dirty: list[int],
    rng: random.Random,
    triple_source: str = "dealer",
    factory: TripleFactory | None = None,
    offline_producers: int = 2,
    offline_seed: int = DEFAULT_OFFLINE_SEED,
) -> SecureBetaResult:
    """Fold churn into a held construction at ``O(k)`` secure cost.

    ``state`` is the result of a ``keep_state=True`` full run (or a previous
    update -- the state threads through); ``provider_bits`` is the providers'
    *new* full bit matrix and ``dirty`` names the identity columns whose
    bits may have changed.  The pass re-runs SecSumShare only over the dirty
    columns (:meth:`~repro.mpc.secsum.SecSumShare.apply_delta`), patches the
    three CountBelow reduction trees along the dirty root paths
    (:func:`~repro.mpc.countbelow.update_count_below`), recomputes the
    public λ, and securely re-evaluates selection for the dirty set plus
    the λ-drift closure (:func:`selection_closure`) -- every identity
    outside the closure provably keeps its previous public bit, so the
    result is *identical* to a from-scratch run over the updated inputs
    evaluated with the persisted decoy coins.

    ``triple_source="factory"`` provisions the pass λ-exactly: incremental
    count words plus a nominal dirty-only selection estimate up front, with
    an ``add_quota`` top-up once λ (and hence the closure) is public.
    ``state`` is updated in place and re-attached to the returned result, so
    updates chain.  The returned :class:`SecureBetaResult` carries
    full-universe outputs (β, selection bits, opened frequencies) plus an
    :class:`IncrementalPassInfo` describing the pass.
    """
    m, c = state.m, state.c
    engine = state.engine
    ring = state.ring
    n_ids = state.n_identities
    if len(provider_bits) != m:
        raise ValueError(f"expected bits from {m} providers, got {len(provider_bits)}")
    for i, row in enumerate(provider_bits):
        if len(row) != n_ids:
            raise ValueError(
                f"provider {i} supplied {len(row)} bits, state covers {n_ids}"
            )
    if triple_source not in TRIPLE_SOURCES:
        raise ValueError(
            f"unknown triple_source {triple_source!r} (expected one of {TRIPLE_SOURCES})"
        )
    if factory is not None and triple_source != "factory":
        raise ValueError("passing a factory requires triple_source='factory'")
    dirty_ids = sorted(set(int(j) for j in dirty))
    if dirty_ids and not 0 <= dirty_ids[0] <= dirty_ids[-1] < n_ids:
        raise ValueError(f"dirty identity out of range: {dirty_ids}")
    for i, row in enumerate(provider_bits):
        for j in dirty_ids:
            if row[j] not in (0, 1):
                raise ValueError(f"provider {i} supplied non-bit value {row[j]}")

    call_start = time.perf_counter()
    lambda_before = state.lambda_
    lambda_scaled_before = round(lambda_before * (1 << COIN_BITS))

    own_factory = None
    source = None
    provisioned = 0
    if triple_source == "factory" and factory is None:
        # λ-exact provisioning, incremental flavour: the count-phase demand
        # is fully determined by the dirty set, and the selection demand by
        # the closure -- which needs λ.  Nominally the closure is just the
        # dirty set (λ unmoved); any λ drift widens it, covered by the
        # add_quota top-up once λ is public.  Production therefore starts
        # before any online work, exactly as in the full run.
        count_words = _incremental_count_words(
            m, n_ids, c, state.common_sigma_threshold, engine, tuple(dirty_ids)
        )
        selection_nominal = _incremental_selection_words(
            m, n_ids, c, state.common_sigma_threshold, engine,
            len(dirty_ids), lambda_scaled_before,
        )
        provisioned = max(1, count_words + selection_nominal)
        own_factory = TripleFactory(
            parties=c,
            seed=offline_seed,
            target_words=provisioned,
            producers=offline_producers,
        ).start()
        factory = own_factory
    if triple_source == "factory":
        source = factory.source()

    try:
        # Stage 1.1 (delta): re-share only the dirty columns.
        secsum = SecSumShare(m=m, c=c, ring=ring, rng=rng)
        sum_result = secsum.apply_delta(state.secsum, provider_bits, dirty_ids)

        # Stage 1.2a (delta): patch the held reduction trees, re-open roots.
        online_start = time.perf_counter()
        count_result = update_count_below(
            state.count_state,
            sum_result.coordinator_shares,
            dirty_ids,
            state.thresholds,
            state.epsilons,
            ring,
            rng,
            engine=engine,
            triple_source=source,
        )

        lambda_ = compute_lambda(
            count_result.n_common,
            n_ids,
            count_result.xi,
            n_natural_decoys=count_result.n_natural_decoys,
        )
        lambda_scaled_after = round(lambda_ * (1 << COIN_BITS))

        # The closure: dirty identities plus the clean identities whose
        # persisted coin comparison can flip under the λ drift.
        closure = selection_closure(
            dirty_ids, state.publish_as_one,
            lambda_scaled_before, lambda_scaled_after,
        )

        if own_factory is not None:
            exact = source.words_consumed + _incremental_selection_words(
                m, n_ids, c, state.common_sigma_threshold, engine,
                len(closure), lambda_scaled_after,
            )
            if exact > provisioned:
                own_factory.add_quota(exact - provisioned)

        # Stage 1.2b (delta): selection over the closure, persisted coins.
        selection_result = run_beta_selection_subset(
            sum_result.coordinator_shares,
            state.thresholds,
            lambda_,
            ring,
            rng,
            closure,
            state.coins,
            engine=engine,
            triple_source=source,
        )
        online_end = time.perf_counter()

        phases = None
        if source is not None:
            phases = _build_phase_report(
                factory, source, call_start, online_start, online_end,
                count_result, selection_result,
            )
    finally:
        if own_factory is not None:
            own_factory.close()

    # Splice the closure's fresh public bits into the held full-universe
    # outputs; everything outside the closure keeps its previous bit (the
    # §7.10 argument) and, being clean, its previous frequency and β.
    publish = list(state.publish_as_one)
    betas = state.betas.copy()
    opened = dict(state.opened_frequencies)
    for pos, j in enumerate(closure):
        bit = selection_result.publish_as_one[pos]
        publish[j] = int(bit)
        if bit:
            betas[j] = 1.0
            opened.pop(j, None)
        else:
            freq = sum_result.reconstruct(ring, j)
            opened[j] = freq
            betas[j] = state.policy.beta(freq / m, state.epsilons[j], m)

    state.secsum = sum_result
    state.lambda_ = lambda_
    state.publish_as_one = publish
    state.betas = betas.copy()
    state.opened_frequencies = dict(opened)

    return SecureBetaResult(
        betas=betas,
        n_common=count_result.n_common,
        n_natural_decoys=count_result.n_natural_decoys,
        xi=count_result.xi,
        lambda_=lambda_,
        publish_as_one=publish,
        opened_frequencies=opened,
        thresholds=list(state.thresholds),
        secsum=sum_result,
        count_result=count_result,
        selection_result=selection_result,
        phases=phases,
        state=state,
        incremental=IncrementalPassInfo(
            dirty=dirty_ids,
            closure=closure,
            lambda_before=lambda_before,
            lambda_after=lambda_,
            triple_words_provisioned=provisioned,
        ),
    )


@functools.lru_cache(maxsize=256)
def _incremental_count_words(
    m: int, n_ids: int, c: int, common_sigma_threshold: float, engine: str,
    dirty: tuple[int, ...],
) -> int:
    from repro.analysis.cost_model import ConstructionCostModel

    model = ConstructionCostModel(
        m, n_ids, c, common_sigma_threshold=common_sigma_threshold
    )
    return model.incremental_count_words(dirty, engine)


def _incremental_selection_words(
    m: int, n_ids: int, c: int, common_sigma_threshold: float, engine: str,
    n_subset: int, lambda_scaled: int,
) -> int:
    from repro.analysis.cost_model import ConstructionCostModel

    model = ConstructionCostModel(
        m, n_ids, c, common_sigma_threshold=common_sigma_threshold
    )
    return model.incremental_selection_words(n_subset, lambda_scaled, engine)


def _build_phase_report(
    factory: TripleFactory,
    source,
    call_start: float,
    online_start: float,
    online_end: float,
    count_result: CountBelowResult,
    selection_result: SelectionResult,
) -> PhaseReport:
    """Assemble the setup/offline/online split for one factory-fed run."""
    report = PhaseReport()
    report.setup.add(factory.setup_stats)
    report.offline.add(factory.offline_stats)
    # Offline wall time is the production *span* (parallel producers), not
    # summed producer busy time; the overlap with this call's protocol work
    # is the part the pipeline hid from the critical path.
    p0 = factory.started_at if factory.started_at is not None else call_start
    p1 = factory.finished_at if factory.finished_at is not None else online_end
    report.offline.wall_time_s = max(0.0, p1 - p0)
    report.offline.hidden_time_s = max(
        0.0, min(p1, online_end) - max(p0, call_start)
    )
    online = report.online
    for stats in (count_result.stats, selection_result.stats):
        online.bits_sent += stats.bits_sent
        online.messages += stats.messages
        online.rounds += stats.rounds
    online.wall_time_s = online_end - online_start
    report.triple_words_produced = factory.words_produced
    report.triple_words_consumed = source.words_consumed
    report.stall_time_s = source.stall_time_s
    return report

