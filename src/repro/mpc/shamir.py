"""(t, n) Shamir secret sharing over a prime field.

The paper's pure-MPC baseline and the floating-point MPC line of work it cites
([35], Aliasgari et al.) build on Shamir sharing; we provide a full
implementation so the arithmetic pure-MPC comparator has a faithful substrate
and so the collusion-tolerance ablation can compare threshold schemes against
the (c, c) additive scheme used by SecSumShare.

A secret ``v`` is embedded as the constant term of a random degree-``t - 1``
polynomial over ``GF(p)``; party ``i`` receives the evaluation at ``x = i + 1``.
Any ``t`` shares reconstruct via Lagrange interpolation; fewer reveal nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

__all__ = ["ShamirSharing", "ShamirShare", "DEFAULT_PRIME"]

# A Mersenne prime comfortably larger than any frequency sum we shard
# (2^61 - 1); fits in a machine word on 64-bit CPython for fast arithmetic.
DEFAULT_PRIME = (1 << 61) - 1


@dataclass(frozen=True)
class ShamirShare:
    """A point ``(x, y)`` on the sharing polynomial."""

    x: int
    y: int


class ShamirSharing:
    """A (threshold, parties) Shamir scheme over ``GF(prime)``."""

    def __init__(self, threshold: int, parties: int, prime: int = DEFAULT_PRIME):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if parties < threshold:
            raise ValueError(
                f"need at least threshold={threshold} parties, got {parties}"
            )
        if prime <= parties:
            raise ValueError("prime must exceed the number of parties")
        self.threshold = threshold
        self.parties = parties
        self.prime = prime

    def share(self, secret: int, rng: random.Random) -> list[ShamirShare]:
        """Produce one share per party for ``secret``."""
        p = self.prime
        secret = secret % p
        coeffs = [secret] + [rng.randrange(p) for _ in range(self.threshold - 1)]
        return [
            ShamirShare(x=i + 1, y=_poly_eval(coeffs, i + 1, p))
            for i in range(self.parties)
        ]

    def reconstruct(self, shares: Sequence[ShamirShare]) -> int:
        """Recover the secret from any ``threshold`` distinct shares."""
        if len(shares) < self.threshold:
            raise ValueError(
                f"need at least {self.threshold} shares, got {len(shares)}"
            )
        pts = shares[: self.threshold]
        xs = [s.x for s in pts]
        if len(set(xs)) != len(xs):
            raise ValueError("shares must have distinct x coordinates")
        return _lagrange_at_zero(pts, self.prime)

    def add(self, a: Sequence[ShamirShare], b: Sequence[ShamirShare]) -> list[ShamirShare]:
        """Share-wise addition (valid sharing of the sum; degree preserved)."""
        self._check_aligned(a, b)
        p = self.prime
        return [ShamirShare(x=s.x, y=(s.y + t.y) % p) for s, t in zip(a, b)]

    def add_constant(self, a: Sequence[ShamirShare], k: int) -> list[ShamirShare]:
        """Add a public constant to every share (shifts the polynomial)."""
        p = self.prime
        return [ShamirShare(x=s.x, y=(s.y + k) % p) for s in a]

    def scale(self, a: Sequence[ShamirShare], k: int) -> list[ShamirShare]:
        """Multiply by a public constant."""
        p = self.prime
        return [ShamirShare(x=s.x, y=(s.y * k) % p) for s in a]

    def _check_aligned(self, a: Sequence[ShamirShare], b: Sequence[ShamirShare]) -> None:
        if len(a) != len(b):
            raise ValueError("share vectors have different lengths")
        for s, t in zip(a, b):
            if s.x != t.x:
                raise ValueError("share vectors are not party-aligned")


def _poly_eval(coeffs: Sequence[int], x: int, p: int) -> int:
    """Horner evaluation of the polynomial with ``coeffs[0]`` constant term."""
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * x + c) % p
    return acc


def _lagrange_at_zero(points: Sequence[ShamirShare], p: int) -> int:
    """Lagrange interpolation of the polynomial through ``points`` at x=0."""
    total = 0
    for i, pi in enumerate(points):
        num, den = 1, 1
        for j, pj in enumerate(points):
            if i == j:
                continue
            num = (num * (-pj.x)) % p
            den = (den * (pi.x - pj.x)) % p
        total = (total + pi.y * num * pow(den, p - 2, p)) % p
    return total
