"""Triple sources: the seam between preprocessing and the online engines.

A *triple source* is anything exposing the dealer surface the GMW engines
consume (``deal`` / ``deal_batch`` / ``issued``, see
:mod:`repro.mpc.triples`).  This module provides the offline-fed
implementations:

* :class:`PrefetchedTripleSource` -- a fixed pool of dealerless triples,
  fully produced up front.  This is the *sequential* offline-then-online
  shape: the offline phase sits on the critical path.
* :class:`FactoryTripleSource` (in :mod:`repro.mpc.offline.factory`) --
  streams from the asynchronous factory queue, overlapping production with
  online evaluation.

Both serve words from 64-lane blocks.  When an engine asks for fewer lanes
(the tail chunk of a batch run), a full word is consumed and the dead lanes
are masked off -- the gap shows up as ``utilization < 1`` in the phase
report rather than as silently recycled randomness, matching how a real
deployment burns preprocessed material.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ReproError
from repro.mpc.triples import SharedBitTriple, mask_dead_lanes

__all__ = ["OfflineError", "OfflineExhausted", "PrefetchedTripleSource"]


class OfflineError(ReproError):
    """Base class for offline-subsystem failures."""


class OfflineExhausted(OfflineError):
    """A triple source ran out of preprocessed material."""


class _WordServingSource:
    """Shared machinery: serve bitsliced words + scalar lane-by-lane deals."""

    parties: int

    def __init__(self, parties: int):
        self.parties = parties
        self.issued = 0
        self.words_consumed = 0
        self._scalar_word: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._scalar_lane = 0

    # Subclasses implement: fetch ``count`` full 64-lane words.
    def _take_words(self, count: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        raise NotImplementedError

    def deal_batch(
        self, count: int, lanes: int = 64
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if not 1 <= lanes <= 64:
            raise ValueError(f"lanes must be in [1, 64], got {lanes}")
        if count == 0:
            empty = np.zeros((0, self.parties), dtype=np.uint64)
            return empty, empty.copy(), empty.copy()
        arrays = self._take_words(count)
        self.words_consumed += count
        self.issued += count * lanes
        return mask_dead_lanes(arrays, lanes)

    def deal(self) -> list[SharedBitTriple]:
        """Serve one scalar triple from a buffered word, lane by lane."""
        if self._scalar_word is None or self._scalar_lane >= 64:
            a, b, c = self._take_words(1)
            self.words_consumed += 1
            self._scalar_word = (a[0], b[0], c[0])
            self._scalar_lane = 0
        a, b, c = self._scalar_word
        bit = np.uint64(1 << self._scalar_lane)
        self._scalar_lane += 1
        self.issued += 1
        return [
            SharedBitTriple(
                a=int(bool(a[p] & bit)),
                b=int(bool(b[p] & bit)),
                c=int(bool(c[p] & bit)),
            )
            for p in range(self.parties)
        ]


class PrefetchedTripleSource(_WordServingSource):
    """A bounded, fully-materialized pool of dealerless triple words."""

    def __init__(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray, parties: int | None = None
    ):
        if a.shape != b.shape or a.shape != c.shape:
            raise ValueError("share arrays must have identical shapes")
        super().__init__(parties if parties is not None else int(a.shape[1]))
        self._a, self._b, self._c = a, b, c
        self._cursor = 0

    @property
    def words_remaining(self) -> int:
        return int(self._a.shape[0]) - self._cursor

    def _take_words(self, count: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if count > self.words_remaining:
            raise OfflineExhausted(
                f"prefetched pool exhausted: need {count} words, "
                f"have {self.words_remaining}"
            )
        lo, hi = self._cursor, self._cursor + count
        self._cursor = hi
        return self._a[lo:hi], self._b[lo:hi], self._c[lo:hi]
