"""Dealerless asynchronous offline phase for the GMW engines.

Produces Beaver bit-triples without the trusted dealer: a simulated
OT-extension generator (:mod:`.generator`) feeds an asynchronous, bounded,
backpressured :class:`~repro.mpc.offline.factory.TripleFactory` whose
producers run ahead of and concurrently with the online phase.  See
DESIGN.md §7.9.
"""

from repro.mpc.offline.factory import (
    FactoryTripleSource,
    OfflineProducerError,
    QueueClosed,
    TripleFactory,
    TripleQueue,
)
from repro.mpc.offline.generator import (
    DEFAULT_OFFLINE_BANDWIDTH_BPS,
    DEFAULT_OFFLINE_LATENCY_S,
    KAPPA,
    DealerlessTripleGenerator,
    TripleBlock,
    splitmix64,
)
from repro.mpc.offline.phases import PhaseReport, PhaseStats
from repro.mpc.offline.sources import (
    OfflineError,
    OfflineExhausted,
    PrefetchedTripleSource,
)

__all__ = [
    "KAPPA",
    "DEFAULT_OFFLINE_BANDWIDTH_BPS",
    "DEFAULT_OFFLINE_LATENCY_S",
    "DealerlessTripleGenerator",
    "TripleBlock",
    "splitmix64",
    "TripleFactory",
    "TripleQueue",
    "FactoryTripleSource",
    "PrefetchedTripleSource",
    "PhaseReport",
    "PhaseStats",
    "OfflineError",
    "OfflineExhausted",
    "OfflineProducerError",
    "QueueClosed",
]
