"""Dealerless Beaver-triple generation from pairwise-correlated randomness.

Replaces the trusted :class:`~repro.mpc.triples.TripleDealer` for the offline
phase: the ``c`` MPC parties jointly produce XOR-shared bit triples using a
*simulated OT-extension* protocol in the IKNP style.  Per batch each party
draws random share words ``a_p, b_p``; every ordered pair ``(i, j)`` then
runs a correlated-OT over the bit-lanes so that the pair ends up with XOR
shares of the cross term ``a_i & b_j``.  Party ``p``'s product share is

    c_p = (a_p & b_p) XOR  XOR_{j != p} u_{pj}  XOR  XOR_{i != p} v_{ip}

with ``u_{ij} ^ v_{ij} = a_i & b_j``, so the shares reconstruct to
``c = a & b`` lane-wise -- the exact format :meth:`TripleDealer.deal_batch`
emits and :class:`~repro.mpc.gmw.BatchGMWEngine` consumes.

Like the rest of the repo's MPC substrate the parties are co-simulated in
one process, so the OT is *emulated*: pads that a real receiver would obtain
from the OT-extension matrix are derived here by selecting between the
sender's two pads with the receiver's choice bit.  What is faithful is (a)
the algebra -- shares are genuinely pairwise-correlated randomness, no party
ever materializes ``a``, ``b`` or ``c``; (b) the wire shape -- the
extension matrix is bulk traffic whose serialization dominates offline
wall time, which is why the phase is worth pipelining (two kernels cover
the *local* computation: ``kernel="hashed"`` emulates the full per-lane
PRG/hash transcript as a real party would compute it, while the default
``kernel="fast"`` samples the same pad distribution directly on packed
words, the standard co-simulation shortcut); and (c) the communication
accounting, recorded per party through
:class:`repro.net.metrics.NetworkMetrics` exactly like the online engine:
``n * kappa`` extension-matrix bits receiver->sender plus ``n`` correction
bits sender->receiver per batch, plus the one-time base-OT setup.

When constructed with a ``link_bandwidth_bps``, the generator additionally
*waits out* each batch's simulated per-link wire time, making offline
wall-clock bandwidth-faithful: the extension matrix is bulk traffic, so a
producer spends most of its wall time waiting on the wire -- which is
precisely the time the :class:`~repro.mpc.offline.factory.TripleFactory`
hides under the online phase's CPU work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.mpc.triples import mask_dead_lanes
from repro.net.metrics import NetworkMetrics
from repro.net.transport import HEADER_BITS

from .phases import PhaseStats

__all__ = [
    "KAPPA",
    "BASE_OT_BITS_PER_OT",
    "DEFAULT_OFFLINE_BANDWIDTH_BPS",
    "DEFAULT_OFFLINE_LATENCY_S",
    "TripleBlock",
    "DealerlessTripleGenerator",
    "splitmix64",
]

# Computational security parameter: width of the OT-extension matrix.
KAPPA = 128
# Emulated base-OT wire cost per OT instance (public-key operation: one
# group element each way plus two ciphertexts, Chou-Orlandi shape).
BASE_OT_BITS_PER_OT = 3 * 256

# Default wire profile for offline production (used by the factory): the
# preprocessing committee runs over a 200 Mbps provisioned slice -- twice
# the WAN ablation's per-link bandwidth, a fifth of the LAN profile's --
# so bulk extension-matrix traffic never contends with the latency-critical
# online phase, with LAN-grade propagation.  The extension matrix
# dominates: each triple word moves ``64 * (kappa + 1)`` bits per ordered
# pair, which at kappa=128 makes the offline phase bandwidth-bound, exactly
# why it pays to pipeline it under the online computation.
DEFAULT_OFFLINE_BANDWIDTH_BPS = 200e6
DEFAULT_OFFLINE_LATENCY_S = 0.0002

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer -- the subsystem's PRG / hash core."""
    with np.errstate(over="ignore"):
        z = (x + _GOLDEN).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


class _Stream:
    """Counter-mode splitmix64 word stream (one per party / pair role)."""

    def __init__(self, seed: int):
        self._seed = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
        self._counter = 0

    def words(self, n: int) -> np.ndarray:
        ctr = np.arange(self._counter, self._counter + n, dtype=np.uint64)
        self._counter += n
        return splitmix64(self._seed ^ (ctr * _GOLDEN))


def _unpack_bits(words: np.ndarray) -> np.ndarray:
    """uint64 words -> flat lane-major bit array (lane i = bit i of word)."""
    return np.unpackbits(words.view(np.uint8), bitorder="little")


def _pack_bits(bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_unpack_bits`; ``len(bits)`` must be a multiple of 64."""
    return np.packbits(bits, bitorder="little").view(np.uint64)


@dataclass
class TripleBlock:
    """One batch of bitsliced triple shares plus its offline cost."""

    a: np.ndarray  # (words, parties) uint64
    b: np.ndarray
    c: np.ndarray
    lanes: int
    stats: PhaseStats

    @property
    def words(self) -> int:
        return int(self.a.shape[0])

    @property
    def triples(self) -> int:
        return self.words * self.lanes


class DealerlessTripleGenerator:
    """Joint triple production for ``parties`` co-simulated MPC parties.

    Deterministic in ``seed``: the per-party input streams and per-pair
    OT-extension streams are all derived from it, so two generators with the
    same seed produce identical blocks (which is what lets multi-process
    factory producers partition the work space reproducibly).
    """

    def __init__(
        self,
        parties: int,
        seed: int,
        metrics: NetworkMetrics | None = None,
        kappa: int = KAPPA,
        link_bandwidth_bps: float | None = None,
        link_latency_s: float = 0.0,
        kernel: str = "fast",
        interrupt=None,
    ):
        if parties < 2:
            raise ValueError(f"need at least 2 parties, got {parties}")
        if kappa % 64 != 0 or kappa < 64:
            raise ValueError(f"kappa must be a positive multiple of 64, got {kappa}")
        if link_bandwidth_bps is not None and link_bandwidth_bps <= 0:
            raise ValueError("link_bandwidth_bps must be positive")
        if kernel not in ("fast", "hashed"):
            raise ValueError(f"kernel must be 'fast' or 'hashed', got {kernel}")
        self.parties = parties
        self.kappa = kappa
        # ``hashed`` emulates the full IKNP transcript (extension matrix,
        # two hash evaluations per lane) -- the reference for the protocol's
        # computational shape.  ``fast`` samples the identical joint share
        # distribution directly on packed words (u uniform per pair,
        # v = u ^ (a_i & b_j), exactly the relation the hashed pads
        # satisfy), skipping the local-computation emulation that a
        # co-simulation does not need.  Both kernels produce valid triples
        # with the same wire accounting and wire time; only the hashed
        # one burns CPU shaped like a real party's.
        self.kernel = kernel
        # Wire-time emulation: when a bandwidth is set, each phase *waits*
        # for its dominant per-link transfer (pairs run on disjoint links in
        # parallel, so the span is one link's serialization plus round
        # latency).  ``None`` keeps the generator compute-only for tests;
        # the factory turns this on so offline wall-clock is wire-faithful
        # and genuinely overlappable with online CPU work.
        self.link_bandwidth_bps = link_bandwidth_bps
        self.link_latency_s = link_latency_s
        # Optional threading.Event: when set, pending wire waits return
        # early -- lets a shutting-down factory reclaim a producer that is
        # mid-transfer instead of waiting out the simulated link.
        self.interrupt = interrupt
        self._kw = kappa // 64  # extension-matrix row width in uint64 words
        self.metrics = metrics if metrics is not None else NetworkMetrics()
        self.words_produced = 0
        self._setup_done = False
        root = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
        # Independent streams: party p's (a, b) input randomness, and one
        # extension stream + folded base-OT secret per ordered pair (i, j).
        self._party_streams = [
            _Stream(int(splitmix64(root ^ np.uint64(0x5150 + p))))
            for p in range(parties)
        ]
        self._pair_streams: dict[tuple[int, int], _Stream] = {}
        self._pair_secret: dict[tuple[int, int], np.ndarray] = {}
        for i in range(parties):
            for j in range(parties):
                if i == j:
                    continue
                tag = np.uint64(0xA11CE + i * parties + j)
                self._pair_streams[(i, j)] = _Stream(int(splitmix64(root ^ tag)))

    # ------------------------------------------------------------------
    # Setup phase: emulated base OTs, once per ordered pair.
    # ------------------------------------------------------------------
    def setup(self) -> PhaseStats:
        """Run (or re-report) the one-time base-OT phase.

        Each ordered pair runs ``kappa`` base OTs seeding the extension
        matrix; we account their wire cost and derive the sender's folded
        correlation secret ``s`` from the pair stream.  Idempotent: calling
        twice neither re-charges the metrics nor reseeds the secrets.
        """
        stats = PhaseStats(rounds=2 if not self._setup_done else 0)
        if self._setup_done:
            return stats
        for (i, j), stream in self._pair_streams.items():
            self._pair_secret[(i, j)] = stream.words(self._kw)
            # Receiver j's masked public keys, then sender i's ciphertexts.
            recv_bits = self.kappa * 256 + HEADER_BITS
            send_bits = self.kappa * (BASE_OT_BITS_PER_OT - 256) + HEADER_BITS
            stats.record_send(j, recv_bits)
            stats.record_send(i, send_bits)
            self.metrics.record_send(j, "base_ot_pk", recv_bits)
            self.metrics.record_send(i, "base_ot_ct", send_bits)
        self._setup_done = True
        self._wait_wire(self.kappa * BASE_OT_BITS_PER_OT + 2 * HEADER_BITS, rounds=2)
        return stats

    # ------------------------------------------------------------------
    # Offline phase: batched OT-extension triple production.
    # ------------------------------------------------------------------
    def generate(self, words: int, lanes: int = 64) -> TripleBlock:
        """Produce ``words`` bitsliced triple words (``words * lanes`` triples).

        Returns share arrays of shape ``(words, parties)`` with dead lanes
        masked, plus the batch's :class:`PhaseStats` (2 rounds: extension
        matrix receiver->sender, corrections sender->receiver, all pairs in
        parallel).
        """
        if words < 0:
            raise ValueError(f"words must be non-negative, got {words}")
        if not 1 <= lanes <= 64:
            raise ValueError(f"lanes must be in [1, 64], got {lanes}")
        if not self._setup_done:
            self.setup()
        stats = PhaseStats(rounds=2 if words else 0)
        if words == 0:
            empty = np.zeros((0, self.parties), dtype=np.uint64)
            return TripleBlock(a=empty, b=empty.copy(), c=empty.copy(), lanes=lanes, stats=stats)

        n_bits = words * 64
        p = self.parties
        a = np.empty((words, p), dtype=np.uint64)
        b = np.empty((words, p), dtype=np.uint64)
        for k in range(p):
            a[:, k] = self._party_streams[k].words(words)
            b[:, k] = self._party_streams[k].words(words)
        c = a & b  # local term a_p & b_p, cross terms XORed in below

        if self.kernel == "fast":
            self._cross_terms_fast(a, b, c, words, n_bits, stats)
        else:
            self._cross_terms_hashed(a, b, c, words, n_bits, stats)

        self.words_produced += words
        # Per-link batch span: extension matrix one way, corrections back.
        self._wait_wire(
            (n_bits * self.kappa + HEADER_BITS) + (n_bits + HEADER_BITS), rounds=2
        )
        am, bm, cm = mask_dead_lanes((a, b, c), lanes)
        return TripleBlock(a=am, b=bm, c=cm, lanes=lanes, stats=stats)

    def _cross_terms_fast(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        words: int,
        n_bits: int,
        stats: PhaseStats,
    ) -> None:
        """Bitsliced cross-term sampling, packed-word arithmetic throughout.

        Per ordered pair the correlated OT leaves sender ``i`` with a
        uniform pad ``u`` and receiver ``j`` with ``v = u ^ (a_i & b_j)``
        -- the *only* property of the hashed transcript the triples depend
        on.  We sample that joint distribution directly from the pair
        stream, 64 lanes per uint64 op, with the identical wire accounting.
        """
        p = self.parties
        for i in range(p):
            for j in range(p):
                if i == j:
                    continue
                u = self._pair_streams[(i, j)].words(words)
                v = u ^ (a[:, i] & b[:, j])
                c[:, i] ^= u
                c[:, j] ^= v
                self._record_pair_wire(i, j, n_bits, stats)

    def _cross_terms_hashed(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        words: int,
        n_bits: int,
        stats: PhaseStats,
    ) -> None:
        """Full IKNP-transcript emulation (reference computational shape)."""
        p = self.parties
        a_bits = [_unpack_bits(np.ascontiguousarray(a[:, k])) for k in range(p)]
        b_bits = [_unpack_bits(np.ascontiguousarray(b[:, k])) for k in range(p)]
        acc = [np.zeros(n_bits, dtype=np.uint8) for _ in range(p)]

        kw = self._kw
        for i in range(p):
            for j in range(p):
                if i == j:
                    continue
                # Correlated OT, sender i (input a_i), receiver j (choice b_j).
                # Full-width emulation: each OT instance is a kappa-bit row of
                # the extension matrix; q = t0 ^ (b * s) row-wise, pads are a
                # chained hash over the row's kappa/64 words.
                s = self._pair_secret[(i, j)]
                t0 = self._pair_streams[(i, j)].words(n_bits * kw).reshape(n_bits, kw)
                with np.errstate(over="ignore"):
                    b_mask = b_bits[j].astype(np.uint64) * np.uint64(
                        0xFFFFFFFFFFFFFFFF
                    )
                q = t0 ^ (b_mask[:, None] & s[None, :])
                pad0 = self._hash_rows(q)
                pad1 = self._hash_rows(q ^ s[None, :])
                cor = pad0 ^ pad1 ^ a_bits[i]  # correction bits, on the wire
                # Receiver pad = H(t0) = pad_{b}; co-simulated via select.
                recv_pad = np.where(b_bits[j].astype(bool), pad1, pad0)
                u = pad0  # sender's share of a_i & b_j
                v = np.where(b_bits[j].astype(bool), recv_pad ^ cor, recv_pad)
                acc[i] ^= u
                acc[j] ^= v
                self._record_pair_wire(i, j, n_bits, stats)

        for k in range(p):
            c[:, k] ^= _pack_bits(acc[k])

    def _record_pair_wire(
        self, i: int, j: int, n_bits: int, stats: PhaseStats
    ) -> None:
        """Wire accounting: extension matrix j -> i, corrections i -> j."""
        ext_bits = n_bits * self.kappa + HEADER_BITS
        cor_bits = n_bits + HEADER_BITS
        stats.record_send(j, ext_bits)
        stats.record_send(i, cor_bits)
        self.metrics.record_send(j, "ot_ext_matrix", ext_bits)
        self.metrics.record_send(i, "ot_ext_cor", cor_bits)

    def _wait_wire(self, per_link_bits: int, rounds: int) -> None:
        """Sleep out one phase's simulated wire time (no-op when disabled)."""
        if self.link_bandwidth_bps is None:
            return
        delay = rounds * self.link_latency_s + per_link_bits / self.link_bandwidth_bps
        if self.interrupt is not None:
            self.interrupt.wait(delay)
        else:
            time.sleep(delay)

    def _hash_rows(self, rows: np.ndarray) -> np.ndarray:
        """Chained splitmix64 digest of each kappa-bit row -> one pad bit."""
        digest = splitmix64(rows[:, 0])
        for col in range(1, rows.shape[1]):
            digest = splitmix64(digest ^ rows[:, col])
        return (digest & np.uint64(1)).astype(np.uint8)
