"""Per-phase accounting for the split setup / offline / online pipeline.

The online GMW engines already report rounds/bytes through
:class:`repro.mpc.gmw.GMWStats`; the dealerless offline subsystem adds two
more phases (base-OT *setup* and OT-extension *offline* triple production).
This module holds the small containers that carry those per-phase numbers --
communication from :class:`repro.net.metrics.NetworkMetrics`-style counters,
plus wall-clock time -- so benchmarks and the CLI can show where construction
cost actually goes and how much of the offline phase the pipelined factory
hides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PhaseStats", "PhaseReport"]


@dataclass
class PhaseStats:
    """Cost counters for one protocol phase.

    ``bits_sent`` / ``messages`` / ``rounds`` follow the same conventions as
    the online :class:`~repro.mpc.gmw.GMWStats`; ``wall_time_s`` is real
    elapsed time of the phase as observed by the caller, and
    ``hidden_time_s`` is the part of that wall time that overlapped another
    phase (and therefore did not extend the end-to-end critical path).
    """

    bits_sent: int = 0
    messages: int = 0
    rounds: int = 0
    wall_time_s: float = 0.0
    hidden_time_s: float = 0.0
    per_party_bits: dict[int, int] = field(default_factory=dict)

    @property
    def bytes_sent(self) -> float:
        return self.bits_sent / 8

    @property
    def exposed_time_s(self) -> float:
        """Wall time this phase contributed to the critical path."""
        return max(0.0, self.wall_time_s - self.hidden_time_s)

    def add(self, other: "PhaseStats") -> None:
        self.bits_sent += other.bits_sent
        self.messages += other.messages
        self.rounds += other.rounds
        self.wall_time_s += other.wall_time_s
        self.hidden_time_s += other.hidden_time_s
        for party, bits in other.per_party_bits.items():
            self.per_party_bits[party] = self.per_party_bits.get(party, 0) + bits

    def record_send(self, sender: int, bits: int) -> None:
        self.messages += 1
        self.bits_sent += bits
        self.per_party_bits[sender] = self.per_party_bits.get(sender, 0) + bits

    def as_dict(self) -> dict:
        return {
            "bits_sent": self.bits_sent,
            "messages": self.messages,
            "rounds": self.rounds,
            "wall_time_s": self.wall_time_s,
            "hidden_time_s": self.hidden_time_s,
            "exposed_time_s": self.exposed_time_s,
        }


@dataclass
class PhaseReport:
    """Setup / offline / online split for one secure construction run.

    ``setup`` covers the one-time base-OT emulation, ``offline`` the
    OT-extension triple production, ``online`` the GMW circuit evaluation.
    ``triple_words_produced`` / ``triple_words_consumed`` expose offline
    utilization (pre-provisioning overshoots when the data-dependent
    selection circuit comes in under the worst-case bound).
    """

    setup: PhaseStats = field(default_factory=PhaseStats)
    offline: PhaseStats = field(default_factory=PhaseStats)
    online: PhaseStats = field(default_factory=PhaseStats)
    triple_words_produced: int = 0
    triple_words_consumed: int = 0
    stall_time_s: float = 0.0

    @property
    def total_wall_time_s(self) -> float:
        return (
            self.setup.wall_time_s
            + self.offline.wall_time_s
            + self.online.wall_time_s
        )

    @property
    def critical_path_s(self) -> float:
        """End-to-end time after subtracting overlapped offline work."""
        return (
            self.setup.exposed_time_s
            + self.offline.exposed_time_s
            + self.online.exposed_time_s
        )

    @property
    def utilization(self) -> float:
        if self.triple_words_produced == 0:
            return 1.0
        return self.triple_words_consumed / self.triple_words_produced

    def as_dict(self) -> dict:
        return {
            "setup": self.setup.as_dict(),
            "offline": self.offline.as_dict(),
            "online": self.online.as_dict(),
            "triple_words_produced": self.triple_words_produced,
            "triple_words_consumed": self.triple_words_consumed,
            "utilization": self.utilization,
            "stall_time_s": self.stall_time_s,
        }
