"""Asynchronous triple factory: bounded queue + ahead-running producers.

The factory runs :class:`~repro.mpc.offline.generator.DealerlessTripleGenerator`
producers *ahead of and concurrently with* the online phase, streaming
bitsliced triple blocks into a bounded :class:`TripleQueue`:

::

              ┌─> producer 0 ──┐ (persistent                  online engine
    work queue┤                │  processes)
    (chunked  ├─> producer 1 ──┤ mp.Queue ─> feeder ─> TripleQueue ─> FactoryTripleSource
     quotas)  └─>    ...     ──┘ (bounded)   (thread)  (bounded,       .deal_batch()
                                                        watermark)

Backpressure is end-to-end: when the online side consumes slowly the
``TripleQueue`` fills and enters *draining* state, the feeder stops moving
blocks, the bounded ``mp.Queue`` fills, and producers block on ``put`` --
no unbounded memory growth.  Refill is watermark-driven: once the online
side draws the queue down to ``low_watermark`` words, puts unblock and
producers sprint again (hysteresis, not per-word thrash).

Producers default to **threads**: with the wire model on (the default),
producers spend most of their wall time sleeping out simulated link
transfers, releasing the GIL -- which is exactly the time the online
engine's CPU work fills.  Blocks then flow by reference, with no
serialization cost.  ``mode="process"`` forks real producer processes
instead, which is what compute-bound production (``link_bandwidth_bps=None``
on a multi-core box) needs, since the numpy bit-packing kernels hold the
GIL.

Failure is never a hang: if a producer dies (exception, ``SIGKILL``), the
feeder marks the queue failed and every blocked or future ``take`` raises
:class:`OfflineProducerError`.
"""

from __future__ import annotations

import multiprocessing
import queue as stdlib_queue
import sys
import threading
import time
from collections import deque

import numpy as np

from .generator import (
    DEFAULT_OFFLINE_BANDWIDTH_BPS,
    DEFAULT_OFFLINE_LATENCY_S,
    KAPPA,
    DealerlessTripleGenerator,
)
from .phases import PhaseStats
from .sources import OfflineError, OfflineExhausted, _WordServingSource

__all__ = [
    "QueueClosed",
    "OfflineProducerError",
    "TripleQueue",
    "TripleFactory",
    "FactoryTripleSource",
]

# Default sizing: blocks big enough to amortize per-block overhead but
# small enough that the consumer never waits long on a block boundary
# (~8 ms of wire per block at the default profile), a queue deep enough
# to ride out online bursts, refill once 1/4 full.
DEFAULT_BLOCK_WORDS = 96
DEFAULT_CAPACITY_WORDS = 2048

# How long a consumer waits on an empty queue before concluding the
# pipeline wedged (generous: producing one block takes ~10 ms).
TAKE_TIMEOUT_S = 60.0


class QueueClosed(OfflineError):
    """The factory was closed while triples were still being awaited."""


class OfflineProducerError(OfflineError):
    """A producer task died (exception or kill) before finishing its quota."""


class TripleQueue:
    """Bounded buffer of bitsliced triple words with watermark hysteresis.

    Producers append whole blocks via :meth:`put_block`; the consumer draws
    arbitrary word counts via :meth:`take`.  When depth reaches
    ``capacity_words`` the queue enters draining state and puts block until
    depth falls to ``low_watermark`` (or a consumer is starved, which
    force-reopens puts so a take larger than the remaining depth can never
    deadlock against the watermark).
    """

    def __init__(self, capacity_words: int, low_watermark: int | None = None):
        if capacity_words < 1:
            raise ValueError(f"capacity_words must be positive, got {capacity_words}")
        self.capacity_words = capacity_words
        self.low_watermark = (
            low_watermark if low_watermark is not None else max(1, capacity_words // 4)
        )
        if not 0 <= self.low_watermark <= capacity_words:
            raise ValueError(
                f"low_watermark {self.low_watermark} outside [0, {capacity_words}]"
            )
        self._lock = threading.Lock()
        self._state_changed = threading.Condition(self._lock)
        # Each entry: [a, b, c] arrays of shape (words, parties); the head
        # entry may be partially consumed, tracked by ``_head_offset``.
        self._blocks: deque[list[np.ndarray]] = deque()
        self._head_offset = 0
        self._depth = 0
        self._draining = False
        self._closed = False
        self._finished = False
        self._failure: BaseException | None = None
        self.words_put = 0
        self.words_taken = 0
        self.refill_cycles = 0

    @property
    def depth_words(self) -> int:
        with self._lock:
            return self._depth

    def put_block(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
        """Append a block of full 64-lane words; blocks while draining."""
        n = int(a.shape[0])
        with self._state_changed:
            while self._draining and not (self._closed or self._failure):
                self._state_changed.wait(timeout=1.0)
            if self._failure is not None:
                raise OfflineProducerError(str(self._failure)) from self._failure
            if self._closed:
                raise QueueClosed("queue closed while producing")
            self._blocks.append([a, b, c])
            self._depth += n
            self.words_put += n
            if self._depth >= self.capacity_words:
                self._draining = True
            self._state_changed.notify_all()

    def take(
        self, count: int, timeout: float = TAKE_TIMEOUT_S
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Remove and return ``count`` words, blocking until available."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        deadline = time.monotonic() + timeout
        with self._state_changed:
            while self._depth < count:
                if self._failure is not None:
                    raise OfflineProducerError(str(self._failure)) from self._failure
                if self._closed:
                    raise QueueClosed("queue closed while awaiting triples")
                if self._finished:
                    raise OfflineExhausted(
                        f"factory produced all its triples but {count} more words "
                        f"were requested (depth={self._depth}); raise target_words"
                    )
                if self._draining:
                    # A starved consumer overrides the watermark: reopen puts
                    # immediately so large takes can't deadlock.
                    self._draining = False
                    self.refill_cycles += 1
                    self._state_changed.notify_all()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise OfflineError(
                        f"timed out after {timeout:.0f}s waiting for {count} triple "
                        f"words (depth={self._depth}) -- pipeline wedged?"
                    )
                self._state_changed.wait(timeout=min(remaining, 1.0))
            parts: list[list[np.ndarray]] = []
            need = count
            while need > 0:
                head = self._blocks[0]
                avail = int(head[0].shape[0]) - self._head_offset
                grab = min(avail, need)
                lo = self._head_offset
                parts.append([arr[lo : lo + grab] for arr in head])
                need -= grab
                if grab == avail:
                    self._blocks.popleft()
                    self._head_offset = 0
                else:
                    self._head_offset += grab
            self._depth -= count
            self.words_taken += count
            if self._draining and self._depth <= self.low_watermark:
                self._draining = False
                self.refill_cycles += 1
                self._state_changed.notify_all()
        if len(parts) == 1:
            a, b, c = parts[0]
            return a, b, c
        return (
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.concatenate([p[2] for p in parts]),
        )

    def finish(self) -> None:
        """Producers completed their quota; takes beyond depth now error."""
        with self._state_changed:
            self._finished = True
            self._state_changed.notify_all()

    def unfinish(self) -> None:
        """More production is coming (a new quota wave); clear exhaustion."""
        with self._state_changed:
            self._finished = False
            self._state_changed.notify_all()

    def fail(self, exc: BaseException) -> None:
        """Poison the queue: wake everyone with ``OfflineProducerError``."""
        with self._state_changed:
            if self._failure is None:
                self._failure = exc
            self._state_changed.notify_all()

    def close(self) -> None:
        with self._state_changed:
            self._closed = True
            self._state_changed.notify_all()


def _stats_from_dict(d: dict) -> PhaseStats:
    stats = PhaseStats(
        bits_sent=d["bits_sent"],
        messages=d["messages"],
        rounds=d["rounds"],
        wall_time_s=d.get("wall_time_s", 0.0),
    )
    stats.per_party_bits.update({int(k): v for k, v in d.get("per_party_bits", {}).items()})
    return stats


def _stats_to_dict(stats: PhaseStats, wall_time_s: float = 0.0) -> dict:
    return {
        "bits_sent": stats.bits_sent,
        "messages": stats.messages,
        "rounds": stats.rounds,
        "wall_time_s": wall_time_s,
        "per_party_bits": dict(stats.per_party_bits),
    }


def _producer_main(
    work_q,
    out_q,
    producer_id: int,
    parties: int,
    seed: int,
    block_words: int,
    kappa: int,
    wire_bandwidth_bps: float | None = None,
    wire_latency_s: float = 0.0,
    stop_event: threading.Event | None = None,
) -> None:
    """Persistent producer loop: runs in a child process (or thread).

    Pulls word-count chunks off the shared ``work_q`` until it sees the
    ``None`` sentinel (or, in thread mode, the stop event), so a mid-run
    quota top-up never pays a process spawn -- the workers are already hot.
    """

    def put(item) -> bool:
        # Child processes block here when the channel is full (backpressure)
        # and get terminated by close(); thread producers poll the stop
        # event instead so close() never strands them on a full channel.
        if stop_event is None:
            out_q.put(item)
            return True
        while not stop_event.is_set():
            try:
                out_q.put(item, timeout=0.2)
                return True
            except stdlib_queue.Full:
                continue
        return False

    def next_chunk():
        while stop_event is None or not stop_event.is_set():
            try:
                return work_q.get(timeout=0.2)
            except stdlib_queue.Empty:
                continue
        return None

    try:
        gen = DealerlessTripleGenerator(
            parties,
            seed,
            kappa=kappa,
            link_bandwidth_bps=wire_bandwidth_bps,
            link_latency_s=wire_latency_s,
            # Thread producers abandon in-flight wire waits on shutdown so
            # close() reclaims them immediately.
            interrupt=stop_event,
        )
        t0 = time.perf_counter()
        setup = gen.setup()
        if not put(
            ("setup", producer_id, _stats_to_dict(setup, time.perf_counter() - t0))
        ):
            return
        while True:
            chunk = next_chunk()
            if chunk is None:
                break
            remaining = int(chunk)
            while remaining > 0:
                n = min(block_words, remaining)
                t0 = time.perf_counter()
                blk = gen.generate(n)
                dt = time.perf_counter() - t0
                if not put(
                    (
                        "block",
                        producer_id,
                        blk.a,
                        blk.b,
                        blk.c,
                        _stats_to_dict(blk.stats, dt),
                    )
                ):
                    return
                remaining -= n
        put(("done", producer_id))
    except QueueClosed:
        pass
    except BaseException as exc:  # noqa: BLE001 - must cross the process boundary
        try:
            put(("error", producer_id, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass


class _ThreadChannel:
    """Duck-typed stand-in for ``mp.Queue`` when producers are threads."""

    def __init__(self, maxsize: int):
        self._q: stdlib_queue.Queue = stdlib_queue.Queue(maxsize=maxsize)

    def put(self, item, timeout: float | None = None) -> None:
        self._q.put(item, timeout=timeout)

    def get(self, timeout: float):
        return self._q.get(timeout=timeout)


class TripleFactory:
    """Runs dealerless producers ahead of the online phase.

    ``target_words`` is the total preprocessing quota.  :meth:`start`
    launches ``producers`` *persistent* workers that pull block-sized word
    chunks off a shared work queue and stream finished blocks through a
    bounded channel into the in-process :class:`TripleQueue`; the online
    engines then consume via :meth:`source`.  Because workers are
    persistent, a mid-run :meth:`add_quota` is just more chunks on the work
    queue -- no spawn cost on the protocol's critical path.  Use as a
    context manager, or call :meth:`close` explicitly -- close is
    idempotent and also runs on failure paths.

    ``mode="thread"`` (default) keeps producers in-process: they are
    wire-wait dominated (see module docstring), so threads overlap cleanly
    with online CPU and hand blocks over by reference.  ``mode="process"``
    forks real producer processes for compute-bound production and for
    fault-injection tests.  Producers simulate the offline wire (see
    :data:`~repro.mpc.offline.generator.DEFAULT_OFFLINE_BANDWIDTH_BPS`),
    splitting the provisioned link bandwidth between them; pass
    ``link_bandwidth_bps=None`` for compute-only production in tests.
    """

    def __init__(
        self,
        parties: int,
        seed: int,
        target_words: int,
        producers: int = 2,
        block_words: int = DEFAULT_BLOCK_WORDS,
        capacity_words: int = DEFAULT_CAPACITY_WORDS,
        low_watermark: int | None = None,
        mode: str = "thread",
        kappa: int = KAPPA,
        link_bandwidth_bps: float | None = DEFAULT_OFFLINE_BANDWIDTH_BPS,
        link_latency_s: float = DEFAULT_OFFLINE_LATENCY_S,
    ):
        if target_words < 0:
            raise ValueError(f"target_words must be non-negative, got {target_words}")
        if producers < 1:
            raise ValueError(f"need at least one producer, got {producers}")
        if mode not in ("process", "thread"):
            raise ValueError(f"mode must be 'process' or 'thread', got {mode}")
        self.parties = parties
        self.seed = seed
        self.target_words = target_words
        self.producers = producers
        self.block_words = block_words
        self.mode = mode
        self.kappa = kappa
        # Producers share the provisioned offline link: each gets an even
        # bandwidth slice, so aggregate wire time is bandwidth-conserving.
        self.link_bandwidth_bps = (
            None if link_bandwidth_bps is None else link_bandwidth_bps / producers
        )
        self.link_latency_s = link_latency_s
        self.queue = TripleQueue(capacity_words, low_watermark)
        self.setup_stats = PhaseStats()
        self.offline_stats = PhaseStats()
        self._producer_rounds: dict[int, int] = {}
        self._workers: list = []
        self._feeder: threading.Thread | None = None
        self._feeder_stop = threading.Event()
        self._production_over = threading.Event()
        # Serializes quota bookkeeping between add_quota (caller thread)
        # and the feeder's finished-signal, so a quota top-up can never
        # race a stale "all done" into a spurious OfflineExhausted.
        self._admin_lock = threading.Lock()
        self._dispatched_words = 0
        self._started = False
        self._closed = False
        self.started_at: float | None = None
        self.finished_at: float | None = None

    # ------------------------------------------------------------------
    def start(self) -> "TripleFactory":
        if self._started:
            raise OfflineError("factory already started")
        self._started = True
        self.started_at = time.perf_counter()
        # Bound in-flight blocks between child and feeder so backpressure
        # reaches the producers even before the TripleQueue fills.
        channel_depth = max(2, self.queue.capacity_words // max(1, self.block_words))
        if self.mode == "process":
            self._ctx = self._mp_context()
            self._channel = self._ctx.Queue(maxsize=channel_depth)
            self._work_q = self._ctx.Queue()
        else:
            self._ctx = None
            self._channel = _ThreadChannel(maxsize=channel_depth)
            self._work_q = _ThreadChannel(maxsize=0)
            # The online engine's numpy kernels are GIL-holding and only
            # yield at the interpreter's switch interval (5 ms default) --
            # at that granularity a producer thread waits ~5 ms just to
            # *begin* each simulated wire sleep, serializing the pipeline.
            # Tighten the interval while the factory runs; close() restores.
            self._old_switch_interval = sys.getswitchinterval()
            sys.setswitchinterval(0.001)
        self._spawn_workers()
        with self._admin_lock:
            self._dispatch(self.target_words)
        self._feeder = threading.Thread(target=self._feed, daemon=True)
        self._feeder.start()
        return self

    def add_quota(self, words: int) -> None:
        """Enqueue ``words`` of additional production on the live workers.

        Used when the triple demand is only known mid-protocol (the
        β-selection circuit's exact size needs λ, which the count phase
        reveals): the factory tops up without tearing anything down or
        spawning anything new, and consumers blocked on the queue simply
        keep waiting for the extra chunks.
        """
        if not self._started:
            raise OfflineError("factory not started; call start() first")
        if self._closed:
            raise OfflineError("factory already closed")
        if words < 0:
            raise ValueError(f"words must be non-negative, got {words}")
        if words == 0:
            return
        with self._admin_lock:
            self.target_words += words
            self.finished_at = None
            self._production_over.clear()
            self.queue.unfinish()
            self._dispatch(words)

    def _spawn_workers(self) -> None:
        """Launch the persistent producer pool (once, at start)."""
        for pid in range(self.producers):
            args = (
                self._work_q,
                self._channel,
                pid,
                self.parties,
                self._producer_seed(pid),
                self.block_words,
                self.kappa,
                self.link_bandwidth_bps,
                self.link_latency_s,
            )
            if self.mode == "process":
                worker = self._ctx.Process(target=_producer_main, args=args, daemon=True)
            else:
                worker = threading.Thread(
                    target=_producer_main, args=args + (self._feeder_stop,), daemon=True
                )
            worker.start()
            self._workers.append(worker)

    def _dispatch(self, words: int) -> None:
        """Split ``words`` into block-sized chunks on the work queue (lock held).

        Block granularity keeps the pool load-balanced: whichever worker
        frees up first takes the next chunk.
        """
        full, rem = divmod(words, self.block_words)
        for _ in range(full):
            self._work_q.put(self.block_words)
        if rem:
            self._work_q.put(rem)
        self._dispatched_words += words

    def source(self) -> "FactoryTripleSource":
        if not self._started:
            raise OfflineError("factory not started; call start() first")
        return FactoryTripleSource(self)

    def join_producers(self, timeout: float | None = None) -> None:
        """Block until the full quota is enqueued (the *sequential* shape).

        Requires ``capacity_words >= target_words``, otherwise backpressure
        would park producers forever with nobody consuming.
        """
        if self.queue.capacity_words < self.target_words:
            raise OfflineError(
                "join_producers needs capacity_words >= target_words "
                f"({self.queue.capacity_words} < {self.target_words})"
            )
        if not self._production_over.wait(timeout=timeout):
            raise OfflineError("timed out waiting for producers to finish")
        failure = self.queue._failure
        if failure is not None:
            raise OfflineProducerError(str(failure)) from failure

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._feeder_stop.set()
        # Close the queue first: a feeder parked in put_block (draining)
        # exits via QueueClosed instead of riding out its join timeout.
        self.queue.close()
        # Sentinels let idle process workers exit cleanly; busy or wedged
        # ones get terminated below (thread workers poll the stop event).
        if self._started:
            for _ in self._workers:
                try:
                    self._work_q.put(None)
                except Exception:
                    break
            # Wake a feeder parked on an empty channel so it notices the
            # stop flag now instead of riding out its poll timeout.
            try:
                self._channel.put(("wake",), timeout=0.01)
            except Exception:
                pass
        if self._feeder is not None:
            self._feeder.join(timeout=5.0)
        for w in self._workers:
            if isinstance(w, threading.Thread):
                w.join(timeout=2.0)
            else:
                w.join(timeout=0.5)
                if w.is_alive():
                    w.terminate()
                    w.join(timeout=1.0)
        if self.mode == "process":
            # Undelivered chunks may still sit in the mp queues' feeder
            # buffers; without cancel_join_thread a dead consumer (e.g. a
            # killed worker) would deadlock interpreter exit on the flush.
            for q in (self._work_q, self._channel):
                try:
                    q.close()
                    q.cancel_join_thread()
                except Exception:
                    pass
        if getattr(self, "_old_switch_interval", None) is not None:
            sys.setswitchinterval(self._old_switch_interval)

    def __enter__(self) -> "TripleFactory":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    @property
    def words_produced(self) -> int:
        return self.queue.words_put

    @property
    def production_span_s(self) -> float:
        """Wall-clock from start to last block enqueued (0 while running)."""
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    def _producer_seed(self, k: int) -> int:
        # Distinct deterministic streams per producer.
        return (self.seed * 0x9E3779B97F4A7C15 + k + 1) & 0xFFFFFFFFFFFFFFFF

    @staticmethod
    def _mp_context():
        # ``fork`` keeps producer startup at ~10 ms (numpy already mapped);
        # unlike the serving fleet, producers are forked exactly once from
        # the caller's thread before any pipeline threads exist, so the
        # fork-with-threads hazard that pushes the fleet to spawn does not
        # apply here.  Fall back to spawn where fork is unavailable.
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    def _feed(self) -> None:
        """Feeder thread: drain the channel into the queue, watch for deaths."""
        suspicion = 0
        try:
            self._maybe_finish()  # degenerate zero-quota start
            while not self._feeder_stop.is_set():
                try:
                    item = self._channel.get(timeout=0.1)
                except (stdlib_queue.Empty, OSError, EOFError):
                    # A worker death is only fatal while quota is outstanding; a
                    # block can still be crossing the channel when its
                    # producer gets killed, so require two consecutive empty
                    # windows before declaring the pipeline dead.
                    if not self._production_over.is_set() and self._dead_producer():
                        suspicion += 1
                        if suspicion >= 2:
                            self.queue.fail(
                                OfflineProducerError(
                                    "offline producer died before finishing its "
                                    "quota (killed or crashed hard)"
                                )
                            )
                            return
                    else:
                        suspicion = 0
                    continue
                suspicion = 0
                kind = item[0]
                if kind == "block":
                    _, _, a, b, c, stats_dict = item
                    self.offline_stats.add(_stats_from_dict(stats_dict))
                    pid = item[1]
                    self._producer_rounds[pid] = (
                        self._producer_rounds.get(pid, 0) + stats_dict["rounds"]
                    )
                    self.queue.put_block(a, b, c)
                    self._maybe_finish()
                elif kind == "setup":
                    self.setup_stats.add(_stats_from_dict(item[2]))
                elif kind == "error":
                    self.queue.fail(
                        OfflineProducerError(f"producer {item[1]} failed: {item[2]}")
                    )
                    return
                # "done" (a worker retired on the close sentinel) needs no
                # bookkeeping: completion is tracked by words, not workers.
        except QueueClosed:
            pass
        except BaseException as exc:  # noqa: BLE001 - never die silently
            self.queue.fail(exc)
        finally:
            self._production_over.set()

    def _maybe_finish(self) -> None:
        """Signal quota completion; stays re-armable for later top-ups."""
        with self._admin_lock:
            if self._production_over.is_set():
                return
            if self.queue.words_put < self.target_words:
                return
            # Parallel producers: phase round count is the slowest
            # producer's sequential rounds, not the sum across producers.
            if self._producer_rounds:
                self.offline_stats.rounds = max(self._producer_rounds.values())
            self.finished_at = time.perf_counter()
            self.queue.finish()
            self._production_over.set()

    def _dead_producer(self) -> bool:
        if self.mode != "process":
            return any(not w.is_alive() for w in self._workers)
        return any(
            not w.is_alive() and w.exitcode != 0 for w in self._workers
        )


class FactoryTripleSource(_WordServingSource):
    """Dealer-compatible source streaming from a running factory."""

    def __init__(self, factory: TripleFactory):
        super().__init__(factory.parties)
        self.factory = factory
        self.stall_time_s = 0.0

    def _take_words(self, count: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        t0 = time.perf_counter()
        arrays = self.factory.queue.take(count)
        self.stall_time_s += time.perf_counter() - t0
        return arrays
