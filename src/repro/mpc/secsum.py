"""SecSumShare: the parallel secure-sum protocol (paper Sec. IV-B-1, Fig. 3).

Given ``m`` providers each holding a private Boolean per identity, the
protocol outputs ``c`` coordinator-held shares whose sum (mod q) equals the
identity's frequency -- *without* any party learning the frequency or any
other party's input.  It runs in four steps:

1. **Generating shares** -- provider ``p_i`` splits its bit ``M(i, j)`` into
   ``c`` additive shares ``S(i, j, k)``;
2. **Distributing shares** -- share ``k`` goes to the ``k``-th ring successor
   ``p_{(i+k) mod m}`` (share 0 stays local);
3. **Summing shares** -- each provider sums everything it received into a
   *super-share*;
4. **Aggregating super-shares** -- provider ``i`` ships its super-share to
   coordinator ``i mod c``; coordinator sums arrivals into ``s(k, j)``.

Guarantees (Sec. IV-C): (2c−3)-secrecy of inputs and c-secrecy of the output
sum (Thm. 4.1 -- the coordinator shares form a (c, c) additive sharing).

This module is the *computation* of the protocol: deterministic data-flow
with per-party transcripts for the secrecy tests.  The message-level version
timed by the Fig. 6 benchmarks runs on the network simulator in
:mod:`repro.protocol.secsum_nodes`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.mpc.additive import AdditiveSharing
from repro.mpc.field import Zq

__all__ = ["SecSumShare", "SecSumResult", "ProviderView"]


@dataclass
class ProviderView:
    """Everything provider ``i`` observes during one run (for secrecy tests)."""

    provider: int
    received_shares: list[int] = field(default_factory=list)
    super_share: int = 0


@dataclass
class SecSumResult:
    """Coordinator shares plus per-party observability data."""

    coordinator_shares: list[list[int]]  # [coordinator k][identity j]
    provider_views: list[ProviderView]
    coordinator_received: list[list[int]]  # super-shares seen by coordinator k

    def reconstruct(self, ring: Zq, identity: int) -> int:
        """Open the frequency of one identity (requires all c shares)."""
        return ring.sum(shares[identity] for shares in self.coordinator_shares)


class SecSumShare:
    """One SecSumShare instance over ``m`` providers with ``c`` shares."""

    def __init__(self, m: int, c: int, ring: Zq, rng: random.Random):
        if c < 2:
            raise ValueError(f"collusion parameter c must be >= 2, got {c}")
        if m < c:
            raise ValueError(f"need at least c={c} providers, got {m}")
        self.m = m
        self.c = c
        self.ring = ring
        self._rng = rng
        self._sharing = AdditiveSharing(ring, c)

    def run(self, inputs: list[list[int]]) -> SecSumResult:
        """Execute the protocol for all identities at once.

        ``inputs[i][j]`` is provider ``i``'s private value for identity ``j``
        (a membership bit in the paper, but any ring element sums correctly).
        """
        m, c = self.m, self.c
        if len(inputs) != m:
            raise ValueError(f"expected inputs from {m} providers, got {len(inputs)}")
        n_ids = len(inputs[0])
        for i, row in enumerate(inputs):
            if len(row) != n_ids:
                raise ValueError(
                    f"provider {i} supplied {len(row)} values, expected {n_ids}"
                )
        if self.ring.q < 1 << 31:
            return self._run_vectorized(inputs, n_ids)
        return self._run_scalar(inputs, n_ids)

    def _run_vectorized(self, inputs: list[list[int]], n_ids: int) -> SecSumResult:
        """Array implementation: one RNG draw and O(m*c) numpy ops total.

        Replaces the per-element Python loops of :meth:`_run_scalar`; both
        paths realize the identical protocol data-flow, this one bounded by
        ``q < 2**31`` so int64 accumulation cannot wrap.
        """
        m, c, q = self.m, self.c, self.ring.q
        np_rng = np.random.default_rng(self._rng.getrandbits(64))

        # Step 1: shares[i, j, k] = share k of M(i, j), all drawn at once.
        flat = [v for row in inputs for v in row]
        shares = self._sharing.share_matrix(flat, np_rng).reshape(m, n_ids, c)

        # Step 2: ring distribution.  Provider dest = (i + k) % m receives
        # share k from sender i; per (sender, k) pair that is one whole
        # identity-row, so the transcript is rebuilt row-at-a-time.
        views = [ProviderView(provider=i) for i in range(m)]
        for i in range(m):
            for k in range(1, c):
                views[(i + k) % m].received_shares.extend(
                    int(v) for v in shares[i, :, k]
                )

        # Step 3: super-shares.  received-by-i share k came from (i - k) % m,
        # i.e. rolling the sender axis forward by k aligns it with i.
        supers = np.zeros((m, n_ids), dtype=np.int64)
        for k in range(c):
            supers += np.roll(shares[:, :, k], shift=k, axis=0)
        supers %= q
        for i in range(m):
            views[i].super_share = int(supers[i, 0]) if n_ids else 0

        # Step 4: aggregate at c coordinators; provider i reports to i mod c.
        coordinator_shares = []
        coordinator_received: list[list[int]] = []
        for k in range(c):
            mine = supers[k::c]
            coordinator_shares.append([int(v) for v in mine.sum(axis=0) % q])
            coordinator_received.append([int(v) for v in mine.reshape(-1)])
        return SecSumResult(
            coordinator_shares=coordinator_shares,
            provider_views=views,
            coordinator_received=coordinator_received,
        )

    def apply_delta(
        self,
        prev: SecSumResult,
        inputs: list[list[int]],
        dirty: list[int],
    ) -> SecSumResult:
        """Re-share only the *dirty* identity columns; reuse held shares.

        ``prev`` is the result of an earlier :meth:`run` (or an earlier
        ``apply_delta``) over the same ``m``/``c`` topology.  ``inputs`` is
        the providers' *new* full input matrix and ``dirty`` names the
        identity columns whose bits may have changed.  The protocol is
        re-executed over exactly the dirty sub-matrix -- the same four
        SecSumShare steps, restricted to ``len(dirty)`` columns, so the
        secure work (and the wire traffic modelled from it) is
        ``O(m * |dirty|)`` instead of ``O(m * n)`` -- and the fresh
        coordinator shares are spliced into a copy of the held vectors.

        Clean columns keep their previous coordinator shares verbatim: an
        additive sharing does not go stale, so reuse leaks nothing new.
        Returns a new :class:`SecSumResult` whose per-party transcripts
        cover only the delta run (what actually crossed the wire).
        """
        m, c = self.m, self.c
        if len(inputs) != m:
            raise ValueError(f"expected inputs from {m} providers, got {len(inputs)}")
        if len(prev.coordinator_shares) != c:
            raise ValueError(
                f"previous result carries {len(prev.coordinator_shares)} "
                f"coordinator share vectors, expected {c}"
            )
        n_ids = len(inputs[0])
        for k, shares in enumerate(prev.coordinator_shares):
            if len(shares) != n_ids:
                raise ValueError(
                    f"coordinator {k} held {len(shares)} shares, "
                    f"inputs cover {n_ids} identities"
                )
        dirty_ids = sorted(set(int(j) for j in dirty))
        if dirty_ids and not 0 <= dirty_ids[0] <= dirty_ids[-1] < n_ids:
            raise ValueError(f"dirty identity out of range: {dirty_ids}")
        coordinator_shares = [list(shares) for shares in prev.coordinator_shares]
        if not dirty_ids:
            return SecSumResult(
                coordinator_shares=coordinator_shares,
                provider_views=[ProviderView(provider=i) for i in range(m)],
                coordinator_received=[[] for _ in range(c)],
            )
        sub_inputs = [[row[j] for j in dirty_ids] for row in inputs]
        delta = self.run(sub_inputs)
        for k in range(c):
            for pos, j in enumerate(dirty_ids):
                coordinator_shares[k][j] = delta.coordinator_shares[k][pos]
        return SecSumResult(
            coordinator_shares=coordinator_shares,
            provider_views=delta.provider_views,
            coordinator_received=delta.coordinator_received,
        )

    def _run_scalar(self, inputs: list[list[int]], n_ids: int) -> SecSumResult:
        """Reference implementation (also the big-modulus fallback)."""
        m, c = self.m, self.c

        # Step 1: every provider shares every input value into c pieces.
        # shares[i][j] = list of c share values of M(i, j).
        shares = [
            [self._sharing.share(value, self._rng) for value in row]
            for row in inputs
        ]

        # Step 2: ring distribution -- share k of provider i lands at
        # provider (i + k) mod m.  received[i][j] collects what p_i holds.
        received: list[list[list[int]]] = [
            [[] for _ in range(n_ids)] for _ in range(m)
        ]
        views = [ProviderView(provider=i) for i in range(m)]
        for i in range(m):
            for j in range(n_ids):
                for k in range(c):
                    dest = (i + k) % m
                    value = shares[i][j][k]
                    received[dest][j].append(value)
                    if dest != i:
                        views[dest].received_shares.append(value)

        # Step 3: super-shares.
        supers = [
            [self.ring.sum(received[i][j]) for j in range(n_ids)] for i in range(m)
        ]
        for i in range(m):
            # Record the (single-identity-summed) super share for inspection.
            views[i].super_share = supers[i][0] if n_ids else 0

        # Step 4: aggregate at c coordinators (providers 0 .. c-1 by
        # convention); provider i reports to coordinator i mod c.
        coordinator_shares = [[0] * n_ids for _ in range(c)]
        coordinator_received: list[list[int]] = [[] for _ in range(c)]
        for i in range(m):
            k = i % c
            for j in range(n_ids):
                coordinator_shares[k][j] = self.ring.add(
                    coordinator_shares[k][j], supers[i][j]
                )
            coordinator_received[k].extend(supers[i])
        return SecSumResult(
            coordinator_shares=coordinator_shares,
            provider_views=views,
            coordinator_received=coordinator_received,
        )
