"""GMW-style semi-honest Boolean MPC over XOR shares.

This module plays the role of the FairplayMP runtime in the paper's
prototype: it takes a compiled Boolean circuit and evaluates it among ``c``
simulated parties such that no party (and no coalition smaller than ``c``)
learns anything beyond the circuit outputs.

Protocol recap (Goldreich-Micali-Wigderson, semi-honest variant):

* every wire value is XOR-shared across the parties;
* XOR and NOT gates are evaluated locally (NOT by flipping party 0's share);
* each AND gate consumes one Beaver triple ``(a, b, c = a&b)``: parties open
  the masked differences ``d = x ^ a`` and ``e = y ^ b`` (one broadcast
  round), then set their share of ``z = x & y`` to
  ``c_i ^ (d & b_i) ^ (e & a_i)`` with party 0 additionally XOR-ing ``d & e``;
* output wires are opened at the end.

AND gates at the same multiplicative depth are batched into a single round,
matching how circuit-based MPC engines amortize communication; the recorded
round/message/bit counts feed the network-cost model used for Fig. 6a/6c.

Two engines share the layer schedule of
:mod:`repro.mpc.circuits.compiled`:

* :class:`GMWProtocol` (alias :data:`GMWEngine`) -- the scalar
  one-instance-at-a-time engine, kept as the correctness oracle;
* :class:`BatchGMWEngine` -- the bitsliced engine: up to 64 independent
  instances ride in the bit-lanes of one ``uint64`` per wire, so a single
  pass over the circuit evaluates 64 instances, and the Beaver masking of a
  layer is one vectorized array expression across lanes *and* gates.

The batch engine deliberately reports **per-instance** communication stats
computed with the same accounting helpers as the scalar engine: bitslicing
is a computational speedup of the simulation, not a change to the paper's
Fig. 6 cost model (see DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.mpc.circuits.compiled import (
    LANES,
    OP_CONST,
    OP_INPUT,
    OP_NOT,
    OP_XOR,
    CompiledCircuit,
    compile_circuit,
    pack_lanes,
    unpack_lanes,
)
from repro.mpc.circuits.gates import Circuit
from repro.mpc.triples import TripleDealer

__all__ = [
    "GMWProtocol",
    "GMWEngine",
    "BatchGMWEngine",
    "GMWResult",
    "BatchGMWResult",
    "GMWStats",
    "PartyTranscript",
    "account_and_layer",
    "account_output_opening",
    "expected_stats",
]

_FULL_MASK = np.uint64((1 << LANES) - 1)


@dataclass
class GMWStats:
    """Communication/computation accounting for one secure evaluation."""

    parties: int = 0
    and_gates: int = 0
    rounds: int = 0
    messages: int = 0
    bits_sent: int = 0
    triples_consumed: int = 0

    def add(self, other: "GMWStats", times: int = 1) -> None:
        """Accumulate ``other`` (scaled by ``times``) into this record."""
        self.and_gates += other.and_gates * times
        self.rounds += other.rounds * times
        self.messages += other.messages * times
        self.bits_sent += other.bits_sent * times
        self.triples_consumed += other.triples_consumed * times


def account_and_layer(stats: GMWStats, parties: int, n_ands: int) -> None:
    """Charge one AND-layer broadcast round to ``stats``.

    All ANDs of a layer open their ``(d, e)`` masks together: one round,
    ``p*(p-1)`` messages, each carrying the 2 opened bits of every AND.
    This is the single source of truth used by the scalar and batch engines.
    """
    if n_ands <= 0:
        return
    stats.rounds += 1
    stats.messages += parties * (parties - 1)
    stats.bits_sent += 2 * n_ands * parties * (parties - 1)


def account_output_opening(stats: GMWStats, parties: int, n_outputs: int) -> None:
    """Charge the final output-opening round to ``stats``.

    A circuit with no outputs (or an evaluation that keeps its outputs
    shared) pays nothing -- centralizing the empty/non-empty branch here is
    what keeps the scalar and batch engines from double- or under-counting
    the opening traffic.
    """
    if n_outputs <= 0:
        return
    stats.rounds += 1
    stats.messages += parties * (parties - 1)
    stats.bits_sent += n_outputs * parties * (parties - 1)


def expected_stats(
    circuit: Circuit, parties: int, open_outputs: bool = True
) -> GMWStats:
    """Analytic per-instance stats of one GMW evaluation of ``circuit``.

    Derived from the compiled layer schedule with the same accounting
    helpers the engines use, so an actual scalar run reports exactly these
    numbers; the batch engine uses this as its per-instance record.
    """
    compiled = compile_circuit(circuit)
    stats = GMWStats(parties=parties)
    for layer in compiled.layers:
        account_and_layer(stats, parties, layer.n_ands)
        stats.and_gates += layer.n_ands
    if open_outputs:
        account_output_opening(stats, parties, compiled.n_outputs)
    stats.triples_consumed = stats.and_gates
    return stats


@dataclass
class PartyTranscript:
    """Everything one party observes: its shares and all opened bits.

    Used by the secrecy tests -- under XOR sharing every recorded value is
    either a uniformly random share or a uniformly masked opening, so the
    transcript of any single party must be distribution-independent of other
    parties' inputs.
    """

    party: int
    input_shares: list[int] = field(default_factory=list)
    opened_values: list[int] = field(default_factory=list)
    output_bits: list[int] = field(default_factory=list)


@dataclass
class GMWResult:
    """Outputs plus accounting and per-party transcripts.

    When the evaluation keeps its outputs secret (``open_outputs=False``),
    ``outputs`` is empty and ``output_shares[p][k]`` holds party ``p``'s XOR
    share of output wire ``k`` instead.
    """

    outputs: list[int]
    stats: GMWStats
    transcripts: list[PartyTranscript]
    output_shares: Optional[list[list[int]]] = None


class GMWProtocol:
    """Evaluate one circuit among ``parties`` simulated semi-honest parties."""

    def __init__(
        self,
        circuit: Circuit,
        parties: int,
        rng: random.Random,
        triple_source=None,
    ):
        if parties < 2:
            raise ValueError(f"GMW needs >= 2 parties, got {parties}")
        circuit.validate()
        self.circuit = circuit
        self.compiled: CompiledCircuit = compile_circuit(circuit)
        self.parties = parties
        self._rng = rng
        # The dealer runs on a stream forked off the protocol rng, and the
        # fork draw happens whether or not an external source is plugged in:
        # the protocol's own coin stream is therefore identical in dealer
        # and factory mode, which is what makes factory-fed runs produce
        # byte-identical outputs to dealer-fed ones (Beaver outputs never
        # depend on triple values, only on these coins).
        dealer_seed = rng.getrandbits(64)
        if triple_source is None:
            self.dealer = TripleDealer(parties, random.Random(dealer_seed))
        else:
            self.dealer = triple_source

    # -- input sharing ---------------------------------------------------------

    def share_inputs(self, inputs: Sequence[int]) -> list[list[int]]:
        """XOR-share a plaintext input vector; result indexed [party][input]."""
        if len(inputs) != self.circuit.n_inputs:
            raise ValueError(
                f"circuit has {self.circuit.n_inputs} inputs, got {len(inputs)}"
            )
        shares = [[0] * len(inputs) for _ in range(self.parties)]
        for j, bit in enumerate(inputs):
            if bit not in (0, 1):
                raise ValueError(f"inputs must be bits, got {bit}")
            parity = 0
            for p in range(self.parties - 1):
                r = self._rng.getrandbits(1)
                shares[p][j] = r
                parity ^= r
            shares[self.parties - 1][j] = parity ^ bit
        return shares

    # -- evaluation ---------------------------------------------------------

    def run(self, inputs: Sequence[int], open_outputs: bool = True) -> GMWResult:
        """Share ``inputs``, evaluate securely, open outputs."""
        return self.run_shared(self.share_inputs(inputs), open_outputs=open_outputs)

    def run_shared(
        self,
        input_shares: Sequence[Sequence[int]],
        open_outputs: bool = True,
    ) -> GMWResult:
        """Evaluate from pre-shared inputs (indexed [party][input])."""
        if len(input_shares) != self.parties:
            raise ValueError(
                f"expected shares for {self.parties} parties, got {len(input_shares)}"
            )
        n_in = self.circuit.n_inputs
        for p, row in enumerate(input_shares):
            if len(row) != n_in:
                raise ValueError(f"party {p} supplied {len(row)} shares, need {n_in}")

        stats = GMWStats(parties=self.parties)
        transcripts = [PartyTranscript(party=p) for p in range(self.parties)]
        for p in range(self.parties):
            transcripts[p].input_shares = list(input_shares[p])

        # wire_shares[p][w] = party p's XOR share of wire w
        wire_shares = [[0] * self.circuit.n_wires for _ in range(self.parties)]

        for layer in self.compiled.layers:
            # AND arguments always come from strictly earlier layers, so the
            # whole layer's Beaver openings happen before its linear gates.
            for a_wire, b_wire, out in zip(layer.and_a, layer.and_b, layer.and_out):
                self._eval_and(int(a_wire), int(b_wire), int(out), wire_shares, transcripts, stats)
            account_and_layer(stats, self.parties, layer.n_ands)
            stats.and_gates += layer.n_ands
            for op, a0, a1, out, aux in layer.linear:
                if op == OP_XOR:
                    for p in range(self.parties):
                        wire_shares[p][out] = wire_shares[p][a0] ^ wire_shares[p][a1]
                elif op == OP_NOT:
                    for p in range(self.parties):
                        wire_shares[p][out] = wire_shares[p][a0]
                    wire_shares[0][out] ^= 1
                elif op == OP_INPUT:
                    for p in range(self.parties):
                        wire_shares[p][out] = input_shares[p][aux]
                elif op == OP_CONST:
                    wire_shares[0][out] = aux

        outputs: list[int] = []
        output_shares: Optional[list[list[int]]] = None
        if open_outputs:
            for w in self.circuit.outputs:
                bit = 0
                for p in range(self.parties):
                    bit ^= wire_shares[p][w]
                outputs.append(bit)
            account_output_opening(stats, self.parties, len(self.circuit.outputs))
        else:
            output_shares = [
                [wire_shares[p][w] for w in self.circuit.outputs]
                for p in range(self.parties)
            ]
        for p in range(self.parties):
            transcripts[p].output_bits = list(outputs)
        stats.triples_consumed = stats.and_gates
        return GMWResult(
            outputs=outputs,
            stats=stats,
            transcripts=transcripts,
            output_shares=output_shares,
        )

    # -- internals ------------------------------------------------------------

    def _eval_and(
        self,
        a_wire: int,
        b_wire: int,
        out: int,
        wire_shares: list[list[int]],
        transcripts: list[PartyTranscript],
        stats: GMWStats,
    ) -> None:
        triple = self.dealer.deal()
        # Masked openings d = x ^ a, e = y ^ b (public once broadcast).
        d = 0
        e = 0
        for p in range(self.parties):
            d ^= wire_shares[p][a_wire] ^ triple[p].a
            e ^= wire_shares[p][b_wire] ^ triple[p].b
        for p in range(self.parties):
            z = triple[p].c ^ (d & triple[p].b) ^ (e & triple[p].a)
            if p == 0:
                z ^= d & e
            wire_shares[p][out] = z
            transcripts[p].opened_values.extend((d, e))


# The scalar engine under the name the batched pipelines pair it with.
GMWEngine = GMWProtocol


@dataclass
class BatchGMWResult:
    """Result of one bitsliced evaluation over ``n_instances`` lanes.

    ``outputs[i][k]`` is instance ``i``'s opened output bit ``k`` (``None``
    when outputs stay shared; then ``output_shares[p, i, k]`` holds party
    ``p``'s XOR share instead).  ``per_instance`` is the scalar-identical
    per-instance accounting; ``stats`` aggregates it over all instances --
    the paper's cost model, under which lanes do not share rounds.
    ``physical_rounds`` counts the broadcast rounds the batched evaluation
    actually needed (one per AND layer per 64-lane chunk).
    """

    n_instances: int
    outputs: Optional[np.ndarray]
    output_shares: Optional[np.ndarray]
    per_instance: GMWStats
    stats: GMWStats
    physical_rounds: int


class BatchGMWEngine:
    """Bitsliced GMW: up to 64 instances per pass, one circuit, shared rounds.

    Wire state is an ``(n_wires, parties)`` ``uint64`` array; bit-lane ``i``
    of every word belongs to instance ``i``.  Linear gates are interpreted
    once for all lanes; each AND layer gathers its argument words with one
    fancy-index, draws its Beaver triples with one vectorized
    :meth:`TripleDealer.deal_batch`, and applies the masking identity as
    whole-array expressions -- vectorized across gates *and* lanes.
    """

    def __init__(
        self,
        circuit: Circuit,
        parties: int,
        rng: random.Random,
        triple_source=None,
    ):
        if parties < 2:
            raise ValueError(f"GMW needs >= 2 parties, got {parties}")
        circuit.validate()
        self.circuit = circuit
        self.compiled: CompiledCircuit = compile_circuit(circuit)
        self.parties = parties
        self._rng = rng
        self._np_rng = np.random.default_rng(rng.getrandbits(64))
        # Forked dealer stream; the seed draw happens in both modes so the
        # engine's coin consumption -- and hence every opened value and
        # output -- is byte-identical whether triples come from the trusted
        # dealer or the offline factory (see GMWProtocol.__init__).
        dealer_seed = rng.getrandbits(64)
        if triple_source is None:
            self.dealer = TripleDealer(parties, random.Random(dealer_seed))
        else:
            self.dealer = triple_source

    # -- input sharing ---------------------------------------------------------

    def share_inputs(self, inputs: np.ndarray) -> np.ndarray:
        """XOR-share a packed chunk: ``(n_inst, n_inputs)`` bits ->
        ``(n_inputs, parties)`` lane-packed share words."""
        mat = np.asarray(inputs, dtype=np.uint8)
        if mat.ndim != 2 or mat.shape[1] != self.compiled.n_inputs:
            raise ValueError(
                f"expected an (n, {self.compiled.n_inputs}) input matrix, "
                f"got shape {mat.shape}"
            )
        if mat.shape[0] > LANES:
            raise ValueError(f"at most {LANES} instances per chunk, got {mat.shape[0]}")
        if mat.size and mat.max() > 1:
            raise ValueError("inputs must be bits")
        packed = pack_lanes(mat)  # (n_inputs,)
        n_in = packed.shape[0]
        rand = self._np_rng.integers(
            0, 1 << 64, size=(n_in, self.parties - 1), dtype=np.uint64
        )
        last = np.bitwise_xor.reduce(rand, axis=1) ^ packed
        return np.concatenate([rand, last[:, None]], axis=1)

    # -- evaluation ---------------------------------------------------------

    def run(self, inputs: np.ndarray, open_outputs: bool = True) -> BatchGMWResult:
        """Share and evaluate many instances, chunking 64 lanes at a time."""
        mat = np.asarray(inputs, dtype=np.uint8)
        if mat.ndim != 2 or mat.shape[1] != self.compiled.n_inputs:
            raise ValueError(
                f"expected an (n, {self.compiled.n_inputs}) input matrix, "
                f"got shape {mat.shape}"
            )
        n = mat.shape[0]
        if n == 0:
            raise ValueError("need at least one instance")
        chunks = []
        for start in range(0, n, LANES):
            chunk = mat[start : start + LANES]
            chunks.append(
                self.run_shared(
                    self.share_inputs(chunk), chunk.shape[0], open_outputs=open_outputs
                )
            )
        return _merge_chunk_results(chunks, self.parties)

    def run_shared_bits(
        self, share_bits: np.ndarray, open_outputs: bool = True
    ) -> BatchGMWResult:
        """Evaluate many instances whose inputs are *already* secret-shared.

        ``share_bits`` is ``(parties, n_instances, n_inputs)``: party ``p``'s
        XOR share bit of each input of each instance (the layout
        ``run_shared(..., open_outputs=False)`` hands back, letting staged
        pipelines chain batched evaluations without ever opening).  Instances
        are lane-packed 64 at a time.
        """
        arr = np.asarray(share_bits, dtype=np.uint8)
        if arr.ndim != 3 or arr.shape[0] != self.parties or (
            arr.shape[2] != self.compiled.n_inputs
        ):
            raise ValueError(
                f"expected a ({self.parties}, n, {self.compiled.n_inputs}) share "
                f"tensor, got shape {arr.shape}"
            )
        n = arr.shape[1]
        if n == 0:
            raise ValueError("need at least one instance")
        chunks = []
        for start in range(0, n, LANES):
            chunk = arr[:, start : start + LANES, :]
            packed = np.stack(
                [pack_lanes(chunk[p]) for p in range(self.parties)], axis=1
            )
            chunks.append(
                self.run_shared(packed, chunk.shape[1], open_outputs=open_outputs)
            )
        return _merge_chunk_results(chunks, self.parties)

    def run_shared(
        self,
        input_shares: np.ndarray,
        n_instances: int,
        open_outputs: bool = True,
    ) -> BatchGMWResult:
        """Evaluate one pre-shared chunk.

        ``input_shares`` is the ``(n_inputs, parties)`` lane-packed share
        matrix (as produced by :meth:`share_inputs`, or assembled from
        upstream secret shares); ``n_instances`` says how many lanes are
        live -- surplus lanes carry garbage and are dropped on unpack.
        """
        shares = np.ascontiguousarray(input_shares, dtype=np.uint64)
        if shares.shape != (self.compiled.n_inputs, self.parties):
            raise ValueError(
                f"expected a ({self.compiled.n_inputs}, {self.parties}) share "
                f"matrix, got shape {shares.shape}"
            )
        if not 1 <= n_instances <= LANES:
            raise ValueError(f"n_instances must be in [1, {LANES}], got {n_instances}")

        compiled = self.compiled
        parties = self.parties
        wires = np.zeros((compiled.n_wires, parties), dtype=np.uint64)
        physical_rounds = 0

        for layer in compiled.layers:
            k = layer.n_ands
            if k:
                x = wires[layer.and_a]  # (k, parties)
                y = wires[layer.and_b]
                ta, tb, tc = self.dealer.deal_batch(k, lanes=n_instances)
                # One broadcast round: open d = x ^ a and e = y ^ b for the
                # whole layer, all lanes at once.
                d = np.bitwise_xor.reduce(x ^ ta, axis=1)  # (k,)
                e = np.bitwise_xor.reduce(y ^ tb, axis=1)
                z = tc ^ (d[:, None] & tb) ^ (e[:, None] & ta)
                z[:, 0] ^= d & e
                wires[layer.and_out] = z
                physical_rounds += 1
            for op, a0, a1, out, aux in layer.linear:
                if op == OP_XOR:
                    wires[out] = wires[a0] ^ wires[a1]
                elif op == OP_NOT:
                    wires[out] = wires[a0]
                    wires[out, 0] ^= _FULL_MASK
                elif op == OP_INPUT:
                    wires[out] = shares[aux]
                else:  # OP_CONST
                    wires[out, 0] = _FULL_MASK if aux else np.uint64(0)

        per_instance = expected_stats(self.circuit, parties, open_outputs=open_outputs)
        outputs: Optional[np.ndarray] = None
        output_shares: Optional[np.ndarray] = None
        out_words = wires[compiled.outputs]  # (n_outputs, parties)
        if open_outputs:
            opened = np.bitwise_xor.reduce(out_words, axis=1) if compiled.n_outputs else (
                np.zeros(0, dtype=np.uint64)
            )
            outputs = unpack_lanes(opened, n_instances)
            if compiled.n_outputs:
                physical_rounds += 1
        else:
            # (parties, n_instances, n_outputs): party-major secret shares.
            output_shares = np.stack(
                [unpack_lanes(out_words[:, p], n_instances) for p in range(parties)]
            )

        stats = GMWStats(parties=parties)
        stats.add(per_instance, times=n_instances)
        return BatchGMWResult(
            n_instances=n_instances,
            outputs=outputs,
            output_shares=output_shares,
            per_instance=per_instance,
            stats=stats,
            physical_rounds=physical_rounds,
        )


def _merge_chunk_results(chunks: list[BatchGMWResult], parties: int) -> BatchGMWResult:
    if len(chunks) == 1:
        return chunks[0]
    stats = GMWStats(parties=parties)
    for ch in chunks:
        stats.add(ch.stats)
    outputs = None
    if chunks[0].outputs is not None:
        outputs = np.concatenate([ch.outputs for ch in chunks], axis=0)
    output_shares = None
    if chunks[0].output_shares is not None:
        output_shares = np.concatenate([ch.output_shares for ch in chunks], axis=1)
    return BatchGMWResult(
        n_instances=sum(ch.n_instances for ch in chunks),
        outputs=outputs,
        output_shares=output_shares,
        per_instance=chunks[0].per_instance,
        stats=stats,
        physical_rounds=sum(ch.physical_rounds for ch in chunks),
    )
