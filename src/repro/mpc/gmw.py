"""GMW-style semi-honest Boolean MPC over XOR shares.

This module plays the role of the FairplayMP runtime in the paper's
prototype: it takes a compiled Boolean circuit and evaluates it among ``c``
simulated parties such that no party (and no coalition smaller than ``c``)
learns anything beyond the circuit outputs.

Protocol recap (Goldreich-Micali-Wigderson, semi-honest variant):

* every wire value is XOR-shared across the parties;
* XOR and NOT gates are evaluated locally (NOT by flipping party 0's share);
* each AND gate consumes one Beaver triple ``(a, b, c = a&b)``: parties open
  the masked differences ``d = x ^ a`` and ``e = y ^ b`` (one broadcast
  round), then set their share of ``z = x & y`` to
  ``c_i ^ (d & b_i) ^ (e & a_i)`` with party 0 additionally XOR-ing ``d & e``;
* output wires are opened at the end.

AND gates at the same multiplicative depth are batched into a single round,
matching how circuit-based MPC engines amortize communication; the recorded
round/message/byte counts feed the network-cost model used for Fig. 6a/6c.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.mpc.circuits.gates import Circuit, GateOp
from repro.mpc.triples import TripleDealer

__all__ = ["GMWProtocol", "GMWResult", "GMWStats", "PartyTranscript"]


@dataclass
class GMWStats:
    """Communication/computation accounting for one secure evaluation."""

    parties: int = 0
    and_gates: int = 0
    rounds: int = 0
    messages: int = 0
    bits_sent: int = 0
    triples_consumed: int = 0


@dataclass
class PartyTranscript:
    """Everything one party observes: its shares and all opened bits.

    Used by the secrecy tests -- under XOR sharing every recorded value is
    either a uniformly random share or a uniformly masked opening, so the
    transcript of any single party must be distribution-independent of other
    parties' inputs.
    """

    party: int
    input_shares: list[int] = field(default_factory=list)
    opened_values: list[int] = field(default_factory=list)
    output_bits: list[int] = field(default_factory=list)


@dataclass
class GMWResult:
    """Outputs plus accounting and per-party transcripts."""

    outputs: list[int]
    stats: GMWStats
    transcripts: list[PartyTranscript]


class GMWProtocol:
    """Evaluate one circuit among ``parties`` simulated semi-honest parties."""

    def __init__(self, circuit: Circuit, parties: int, rng: random.Random):
        if parties < 2:
            raise ValueError(f"GMW needs >= 2 parties, got {parties}")
        circuit.validate()
        self.circuit = circuit
        self.parties = parties
        self._rng = rng
        self.dealer = TripleDealer(parties, rng)

    # -- input sharing ---------------------------------------------------------

    def share_inputs(self, inputs: Sequence[int]) -> list[list[int]]:
        """XOR-share a plaintext input vector; result indexed [party][input]."""
        if len(inputs) != self.circuit.n_inputs:
            raise ValueError(
                f"circuit has {self.circuit.n_inputs} inputs, got {len(inputs)}"
            )
        shares = [[0] * len(inputs) for _ in range(self.parties)]
        for j, bit in enumerate(inputs):
            if bit not in (0, 1):
                raise ValueError(f"inputs must be bits, got {bit}")
            parity = 0
            for p in range(self.parties - 1):
                r = self._rng.getrandbits(1)
                shares[p][j] = r
                parity ^= r
            shares[self.parties - 1][j] = parity ^ bit
        return shares

    # -- evaluation ---------------------------------------------------------

    def run(self, inputs: Sequence[int]) -> GMWResult:
        """Share ``inputs``, evaluate securely, open outputs."""
        return self.run_shared(self.share_inputs(inputs))

    def run_shared(self, input_shares: Sequence[Sequence[int]]) -> GMWResult:
        """Evaluate from pre-shared inputs (indexed [party][input])."""
        if len(input_shares) != self.parties:
            raise ValueError(
                f"expected shares for {self.parties} parties, got {len(input_shares)}"
            )
        n_in = self.circuit.n_inputs
        for p, row in enumerate(input_shares):
            if len(row) != n_in:
                raise ValueError(f"party {p} supplied {len(row)} shares, need {n_in}")

        stats = GMWStats(parties=self.parties)
        transcripts = [PartyTranscript(party=p) for p in range(self.parties)]
        for p in range(self.parties):
            transcripts[p].input_shares = list(input_shares[p])

        # wire_shares[p][w] = party p's XOR share of wire w
        wire_shares = [[0] * self.circuit.n_wires for _ in range(self.parties)]

        for layer in self._and_layers():
            batch: list[tuple[int, int, int]] = []  # (wire, d, e) openings
            for gate_idx in layer:
                gate = self.circuit.gates[gate_idx]
                if gate.op is GateOp.INPUT:
                    for p in range(self.parties):
                        wire_shares[p][gate.out] = input_shares[p][gate.input_index]
                elif gate.op is GateOp.CONST:
                    wire_shares[0][gate.out] = gate.const_value
                elif gate.op is GateOp.XOR:
                    a, b = gate.args
                    for p in range(self.parties):
                        wire_shares[p][gate.out] = (
                            wire_shares[p][a] ^ wire_shares[p][b]
                        )
                elif gate.op is GateOp.NOT:
                    (a,) = gate.args
                    for p in range(self.parties):
                        wire_shares[p][gate.out] = wire_shares[p][a]
                    wire_shares[0][gate.out] ^= 1
                elif gate.op is GateOp.AND:
                    self._eval_and(gate, wire_shares, batch, transcripts, stats)
            if batch:
                # All ANDs in this layer opened their (d, e) masks together.
                stats.rounds += 1
                # Each party broadcasts 2 bits per AND to every other party.
                opened = 2 * len(batch)
                stats.messages += self.parties * (self.parties - 1)
                stats.bits_sent += opened * self.parties * (self.parties - 1)

        outputs = []
        for w in self.circuit.outputs:
            bit = 0
            for p in range(self.parties):
                bit ^= wire_shares[p][w]
            outputs.append(bit)
        if self.circuit.outputs:
            stats.rounds += 1
            stats.messages += self.parties * (self.parties - 1)
            stats.bits_sent += len(self.circuit.outputs) * self.parties * (self.parties - 1)
        for p in range(self.parties):
            transcripts[p].output_bits = list(outputs)
        stats.triples_consumed = stats.and_gates
        return GMWResult(outputs=outputs, stats=stats, transcripts=transcripts)

    # -- internals ------------------------------------------------------------

    def _eval_and(
        self,
        gate,
        wire_shares: list[list[int]],
        batch: list[tuple[int, int, int]],
        transcripts: list[PartyTranscript],
        stats: GMWStats,
    ) -> None:
        a_wire, b_wire = gate.args
        triple = self.dealer.deal()
        # Masked openings d = x ^ a, e = y ^ b (public once broadcast).
        d = 0
        e = 0
        for p in range(self.parties):
            d ^= wire_shares[p][a_wire] ^ triple[p].a
            e ^= wire_shares[p][b_wire] ^ triple[p].b
        for p in range(self.parties):
            z = triple[p].c ^ (d & triple[p].b) ^ (e & triple[p].a)
            if p == 0:
                z ^= d & e
            wire_shares[p][gate.out] = z
            transcripts[p].opened_values.extend((d, e))
        batch.append((gate.out, d, e))
        stats.and_gates += 1

    def _and_layers(self) -> list[list[int]]:
        """Group gates into layers with equal multiplicative depth.

        Within a layer all AND gates are communication-independent, so their
        openings share one broadcast round.  Linear gates ride along with the
        layer in which their inputs become available.
        """
        depth = [0] * self.circuit.n_wires
        layers: dict[int, list[int]] = {}
        for i, gate in enumerate(self.circuit.gates):
            if gate.op in (GateOp.INPUT, GateOp.CONST):
                d = 0
            elif gate.op is GateOp.AND:
                d = max(depth[a] for a in gate.args) + 1
            else:
                d = max((depth[a] for a in gate.args), default=0)
            depth[gate.out] = d
            layers.setdefault(d, []).append(i)
        return [layers[d] for d in sorted(layers)]
