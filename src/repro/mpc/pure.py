"""Pure-MPC baseline: β calculation without the SecSumShare reduction.

This is the comparison system of the paper's Fig. 6: all ``m`` providers
feed their private bits *directly* into one generic-MPC computation that
follows the Eq. 8 flow -- i.e. it evaluates the **raw probability β***
(division / multiplication / square root, in fixed point) *inside* the
secure computation, per identity.  Contrast with the ǫ-PPI pipeline
(Eq. 9), which pushes that arithmetic to the public end and leaves only a
comparison inside MPC.

Three compounding costs make this baseline scale badly:

* frequency is an in-circuit popcount over ``m`` secret bits;
* β* needs a restoring divider (basic policy) plus multiplier and square
  root (Chernoff) per identity -- hundreds to thousands of AND gates where
  the reduced protocol spends ~``log m``;
* the protocol runs among ``m`` parties, so every AND opening is an
  ``m x (m-1)`` broadcast, and decoy coins come from all ``m`` parties.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np

from repro.core.mixing import compute_lambda
from repro.core.policies import (
    BasicPolicy,
    BetaPolicy,
    ChernoffPolicy,
    IncrementedExpectationPolicy,
)
from repro.mpc.circuits import (
    Circuit,
    CircuitBuilder,
    bits_to_int,
    less_than_const,
    popcount,
)
from repro.mpc.circuits.fixedpoint import (
    ONE,
    beta_basic_circuit,
    beta_chernoff_circuit,
    beta_incremented_circuit,
    beta_width,
)
from repro.mpc.countbelow import COIN_BITS, EPSILON_SCALE_BITS, max_tree, scale_epsilon
from repro.mpc.gmw import GMWProtocol, GMWStats

__all__ = ["PureMPCResult", "build_pure_circuit", "run_pure_beta_calculation"]


@dataclass
class PureMPCResult:
    """Outputs and accounting of the monolithic pure-MPC β calculation."""

    betas: np.ndarray
    n_common: int
    n_natural_decoys: int
    xi: float
    lambda_: float
    publish_as_one: list[int]
    stats: GMWStats
    count_circuit: Circuit
    selection_circuit: Circuit

    @property
    def total_circuit_size(self) -> int:
        return self.count_circuit.stats().size + self.selection_circuit.stats().size

    @property
    def total_and_gates(self) -> int:
        return (
            self.count_circuit.stats().multiplicative_size
            + self.selection_circuit.stats().multiplicative_size
        )


def _beta_in_circuit(
    b: CircuitBuilder,
    policy: BetaPolicy,
    freq_bits: list[int],
    m: int,
    epsilon: float,
) -> list[int]:
    """Compile the policy's β* formula over the secret frequency (Eq. 8)."""
    if isinstance(policy, ChernoffPolicy):
        return beta_chernoff_circuit(b, freq_bits, m, epsilon, policy.gamma)
    if isinstance(policy, IncrementedExpectationPolicy):
        return beta_incremented_circuit(b, freq_bits, m, epsilon, policy.delta)
    if isinstance(policy, BasicPolicy):
        return beta_basic_circuit(b, freq_bits, m, epsilon)
    raise ValueError(f"no in-circuit compilation for policy {policy.name!r}")


def build_pure_circuit(
    m: int,
    epsilons: list[float],
    policy: BetaPolicy,
    lambda_scaled: int | None,
    high_threshold: int = 0,
) -> Circuit:
    """Compile the monolithic Eq. 8 circuit over ``m`` providers' raw bits.

    With ``lambda_scaled is None`` the *count* variant is built (outputs:
    truly-common count + natural-decoy count + ξ, split by the public
    ``high_threshold``); otherwise the *selection* variant (outputs per
    identity: the selection bit and the masked fixed-point β -- opened only
    when the identity is not selected, keeping mixed identities' β secret).
    """
    n_ids = len(epsilons)
    b = CircuitBuilder()
    provider_bits = [[b.input_bit() for _ in range(n_ids)] for _ in range(m)]
    coin_bits = None
    if lambda_scaled is not None:
        coin_bits = [
            [b.input_bits(COIN_BITS) for _ in range(n_ids)] for _ in range(m)
        ]

    broadcast_bits = []
    high_bits = []
    beta_bits_per_id = []
    for j, eps in enumerate(epsilons):
        freq = popcount(b, [provider_bits[i][j] for i in range(m)])
        beta = _beta_in_circuit(b, policy, freq, m, eps)
        beta_bits_per_id.append(beta)
        # Eq. 8's test: the raw probability crossed 1.0.
        broadcast_bits.append(b.not_(less_than_const(b, beta, ONE)))
        if high_threshold > (1 << len(freq)) - 1:
            high_bits.append(b.zero())
        else:
            high_bits.append(b.not_(less_than_const(b, freq, high_threshold)))

    if lambda_scaled is None:
        truly = [b.and_(broadcast_bits[j], high_bits[j]) for j in range(n_ids)]
        natural = [
            b.and_(broadcast_bits[j], b.not_(high_bits[j])) for j in range(n_ids)
        ]
        zero_eps = b.constant_bits(0, EPSILON_SCALE_BITS)
        gated = [
            b.mux_bits(
                truly[j],
                b.constant_bits(scale_epsilon(epsilons[j]), EPSILON_SCALE_BITS),
                zero_eps,
            )
            for j in range(n_ids)
        ]
        xi = max_tree(b, gated)
        b.output_bits(popcount(b, truly))
        b.output_bits(popcount(b, natural))
        b.output_bits(xi)
        return b.build()

    for j in range(n_ids):
        r = [
            b.xor_many([coin_bits[i][j][bit] for i in range(m)])
            for bit in range(COIN_BITS)
        ]
        if lambda_scaled >= (1 << COIN_BITS):
            coin = b.one()
        elif lambda_scaled == 0:
            coin = b.zero()
        else:
            coin = less_than_const(b, r, lambda_scaled)
        select = b.or_(broadcast_bits[j], coin)
        b.output(select)
        # Masked β: opened only when the identity is not selected.
        zero = b.constant_bits(0, beta_width())
        masked = b.mux_bits(select, zero, beta_bits_per_id[j])
        b.output_bits(masked)
    return b.build()


def run_pure_beta_calculation(
    provider_bits: list[list[int]],
    epsilons: list[float],
    policy: BetaPolicy,
    rng: random.Random,
    common_sigma_threshold: float = 0.5,
) -> PureMPCResult:
    """Execute the two-stage pure-MPC β calculation among all ``m`` parties.

    Returned β values for unselected identities carry the fixed-point
    precision of the in-circuit arithmetic (``1 / 2^FRAC_BITS``).
    """
    m = len(provider_bits)
    if m < 2:
        raise ValueError("pure MPC needs at least 2 providers")
    n_ids = len(provider_bits[0])
    if len(epsilons) != n_ids:
        raise ValueError("need one epsilon per identity")

    high_threshold = max(1, math.ceil(common_sigma_threshold * m))

    # Stage 1: truly-common / natural-decoy counts + ξ.
    count_circuit = build_pure_circuit(
        m, list(epsilons), policy, None, high_threshold
    )
    count_inputs = [bit for row in provider_bits for bit in row]
    count_proto = GMWProtocol(count_circuit, parties=m, rng=rng)
    count_run = count_proto.run(count_inputs)
    count_width = (len(count_run.outputs) - EPSILON_SCALE_BITS) // 2
    n_common = bits_to_int(count_run.outputs[:count_width])
    n_natural = bits_to_int(count_run.outputs[count_width : 2 * count_width])
    xi = bits_to_int(count_run.outputs[2 * count_width :]) / (1 << EPSILON_SCALE_BITS)
    lambda_ = compute_lambda(n_common, n_ids, xi, n_natural_decoys=n_natural)

    # Stage 2: selection + masked β opening.
    lambda_scaled = round(lambda_ * (1 << COIN_BITS))
    sel_circuit = build_pure_circuit(
        m, list(epsilons), policy, lambda_scaled, high_threshold
    )
    # Input order mirrors the circuit declaration: every provider's
    # membership bits first, then every provider's coin bits.
    sel_inputs: list[int] = [bit for row in provider_bits for bit in row]
    for _ in range(m):
        for _ in range(n_ids):
            sel_inputs.extend(rng.getrandbits(1) for _ in range(COIN_BITS))
    sel_proto = GMWProtocol(sel_circuit, parties=m, rng=rng)
    sel_run = sel_proto.run(sel_inputs)

    w_beta = beta_width()
    betas = np.zeros(n_ids, dtype=float)
    publish_as_one: list[int] = []
    pos = 0
    for j in range(n_ids):
        select = sel_run.outputs[pos]
        pos += 1
        beta_fixed = bits_to_int(sel_run.outputs[pos : pos + w_beta])
        pos += w_beta
        publish_as_one.append(select)
        if select:
            betas[j] = 1.0
        else:
            betas[j] = min(1.0, beta_fixed / ONE)

    stats = GMWStats(
        parties=m,
        and_gates=count_run.stats.and_gates + sel_run.stats.and_gates,
        rounds=count_run.stats.rounds + sel_run.stats.rounds,
        messages=count_run.stats.messages + sel_run.stats.messages,
        bits_sent=count_run.stats.bits_sent + sel_run.stats.bits_sent,
        triples_consumed=count_run.stats.triples_consumed
        + sel_run.stats.triples_consumed,
    )
    return PureMPCResult(
        betas=betas,
        n_common=n_common,
        n_natural_decoys=n_natural,
        xi=xi,
        lambda_=lambda_,
        publish_as_one=publish_as_one,
        stats=stats,
        count_circuit=count_circuit,
        selection_circuit=sel_circuit,
    )
