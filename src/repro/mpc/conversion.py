"""Arithmetic-to-Boolean share conversion (the TASTY-style hybrid glue).

The paper's related work (Sec. VI-B) highlights TASTY's observation that
different MPC models win on different workload modules -- sums are free on
arithmetic shares, comparisons are cheap on Boolean shares -- and that a
practical system needs conversion between them.  ǫ-PPI's own pipeline is
exactly such a hybrid: SecSumShare produces *additive arithmetic* shares
mod ``2^w``, and CountBelow consumes them in a *Boolean* circuit.

CountBelow converts implicitly (it feeds the share bits into an in-circuit
adder).  This module implements the standard explicit alternative,
**masked-opening A2B**:

1. a dealer samples ``r`` uniform in ``Z_{2^w}`` and hands the parties an
   additive arithmetic sharing of ``r`` *and* a Boolean (XOR) sharing of
   ``r``'s bits;
2. the parties locally add their arithmetic shares of ``x`` and ``r`` and
   open ``z = x + r mod 2^w`` -- uniformly distributed, so it leaks nothing;
3. a Boolean circuit computes ``x = z − r`` from the *public* ``z`` and the
   *shared* bits of ``r`` (one subtractor), yielding XOR shares of ``x``'s
   bits.

Cost: one opening round plus a ``w``-bit subtractor (~``w`` AND gates) --
versus the ``(c−1)·w`` ANDs of the implicit in-circuit addition.  The
ablation bench `bench_ablation_hybrid.py` measures both, reproducing the
TASTY trade-off inside this codebase.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.mpc.circuits import CircuitBuilder, bits_to_int, int_to_bits
from repro.mpc.circuits.multiplier import ripple_sub
from repro.mpc.field import Zq
from repro.mpc.gmw import GMWProtocol, GMWStats

__all__ = ["A2BDealer", "A2BCorrelation", "a2b_convert", "A2BResult"]


@dataclass(frozen=True)
class A2BCorrelation:
    """Per-party correlated randomness for one conversion.

    ``arith_share`` is the party's additive share of ``r`` (mod ``2^w``);
    ``bool_shares`` its XOR shares of ``r``'s ``w`` bits.
    """

    arith_share: int
    bool_shares: tuple[int, ...]


class A2BDealer:
    """Trusted dealer for A2B correlations (the OT-phase substitution, as
    for Beaver triples -- see DESIGN.md)."""

    def __init__(self, parties: int, ring: Zq, rng: random.Random):
        if parties < 2:
            raise ValueError(f"need at least 2 parties, got {parties}")
        width = (ring.q - 1).bit_length()
        if (1 << width) != ring.q:
            raise ValueError("A2B requires a power-of-two modulus")
        self.parties = parties
        self.ring = ring
        self.width = width
        self._rng = rng
        self.issued = 0

    def deal(self) -> list[A2BCorrelation]:
        """One correlation: additive sharing of r + XOR sharing of bits(r)."""
        r = self.ring.random_element(self._rng)
        # Additive shares of r.
        arith = self.ring.random_elements(self._rng, self.parties - 1)
        arith.append(self.ring.sub(r, self.ring.sum(arith)))
        # XOR shares of each bit of r.
        r_bits = int_to_bits(r, self.width)
        bool_shares = [[0] * self.width for _ in range(self.parties)]
        for i, bit in enumerate(r_bits):
            parity = 0
            for p in range(self.parties - 1):
                s = self._rng.getrandbits(1)
                bool_shares[p][i] = s
                parity ^= s
            bool_shares[self.parties - 1][i] = parity ^ bit
        self.issued += 1
        return [
            A2BCorrelation(
                arith_share=arith[p], bool_shares=tuple(bool_shares[p])
            )
            for p in range(self.parties)
        ]


@dataclass
class A2BResult:
    """Outcome of one conversion: XOR bit-shares of the secret value."""

    bit_shares: list[list[int]]  # [party][bit]
    opened_mask: int  # the public z = x + r (uniform)
    stats: GMWStats

    def reconstruct(self) -> int:
        """Open the converted value (test/debug helper)."""
        width = len(self.bit_shares[0])
        bits = []
        for i in range(width):
            b = 0
            for shares in self.bit_shares:
                b ^= shares[i]
            bits.append(b)
        return bits_to_int(bits)


def a2b_convert(
    arith_shares: list[int],
    ring: Zq,
    dealer: A2BDealer,
    rng: random.Random,
) -> A2BResult:
    """Convert an additive arithmetic sharing into XOR bit shares.

    ``arith_shares[p]`` is party p's additive share of the secret ``x``.
    The returned bit shares XOR to ``bits(x)``; the conversion reveals only
    the uniformly-masked ``z = x + r``.
    """
    parties = len(arith_shares)
    if parties != dealer.parties:
        raise ValueError(
            f"share count {parties} does not match dealer parties {dealer.parties}"
        )
    width = dealer.width
    correlation = dealer.deal()

    # Step 2: open z = x + r (each party broadcasts its masked share).
    z = ring.sum(
        ring.add(arith_shares[p], correlation[p].arith_share)
        for p in range(parties)
    )

    # Step 3: Boolean circuit x = z - r over public z and shared bits of r.
    b = CircuitBuilder()
    r_bits = b.input_bits(width)
    z_bits = b.constant_bits(z, width)
    diff, _ = ripple_sub(b, z_bits, r_bits)
    b.output_bits(diff)
    circuit = b.build()

    protocol = GMWProtocol(circuit, parties, rng)
    input_shares = [list(correlation[p].bool_shares) for p in range(parties)]
    # Evaluate under GMW but *keep the outputs shared*: we re-share the
    # opened outputs here for test observability; a production pipeline
    # would splice the output wires into the next circuit instead.
    result = protocol.run_shared(input_shares)
    out_bits = result.outputs
    # Re-share the output bits so downstream code sees per-party shares.
    bit_shares = [[0] * width for _ in range(parties)]
    for i, bit in enumerate(out_bits):
        parity = 0
        for p in range(parties - 1):
            s = rng.getrandbits(1)
            bit_shares[p][i] = s
            parity ^= s
        bit_shares[parties - 1][i] = parity ^ bit
    # Account the opening of z: one broadcast round.
    result.stats.rounds += 1
    result.stats.messages += parties * (parties - 1)
    result.stats.bits_sent += width * parties * (parties - 1)
    return A2BResult(bit_shares=bit_shares, opened_mask=z, stats=result.stats)
