"""BGW-style arithmetic MPC over Shamir shares.

The paper's related-work survey (Sec. VI-B) contrasts Boolean-circuit
engines (Fairplay/FairplayMP -- our :mod:`repro.mpc.gmw`) with
arithmetic-circuit runtimes (VIFF [18]); TASTY [17] mixes the two because
each model wins on different workloads.  This module provides the
arithmetic side so the hybrid comparison can be reproduced: secure sums are
*free* over Shamir shares (one local addition), while comparisons -- the
operation CountBelow actually needs -- are notoriously expensive in the
arithmetic model, which is exactly why the paper's CountBelow uses a
Boolean engine.

Semi-honest BGW:

* inputs are (t, n) Shamir-shared; additions and public-constant operations
  are local;
* each multiplication raises the polynomial degree to 2t−2 and is repaired
  by *degree reduction*: parties reshare their product points and linearly
  recombine (implemented with a dealer-free resharing round);
* requires ``n >= 2t - 1`` honest-majority parties.

Accounting mirrors :class:`repro.mpc.gmw.GMWStats`: one round and
``n (n-1)`` messages per multiplication layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.mpc.shamir import ShamirShare, ShamirSharing

__all__ = ["BGWEngine", "BGWStats", "SharedValue"]


@dataclass
class BGWStats:
    """Cost accounting for one BGW session."""

    parties: int = 0
    multiplications: int = 0
    additions: int = 0
    rounds: int = 0
    messages: int = 0
    field_elements_sent: int = 0


@dataclass(frozen=True)
class SharedValue:
    """A (t, n) Shamir-shared field element held across the parties."""

    shares: tuple[ShamirShare, ...]

    def __len__(self) -> int:
        return len(self.shares)


class BGWEngine:
    """Semi-honest arithmetic MPC among ``parties`` simulated parties."""

    def __init__(self, threshold: int, parties: int, rng: random.Random):
        if parties < 2 * threshold - 1:
            raise ValueError(
                f"BGW needs n >= 2t-1 (honest majority): t={threshold}, n={parties}"
            )
        self.scheme = ShamirSharing(threshold, parties)
        self.threshold = threshold
        self.parties = parties
        self._rng = rng
        self.stats = BGWStats(parties=parties)

    # -- I/O --------------------------------------------------------------

    def share(self, value: int) -> SharedValue:
        """A party inputs ``value`` by dealing Shamir shares to everyone."""
        shares = self.scheme.share(value, self._rng)
        # One message per receiving party.
        self.stats.messages += self.parties - 1
        self.stats.field_elements_sent += self.parties - 1
        return SharedValue(shares=tuple(shares))

    def open(self, value: SharedValue) -> int:
        """Reconstruct a shared value (everyone broadcasts their share)."""
        self.stats.rounds += 1
        self.stats.messages += self.parties * (self.parties - 1)
        self.stats.field_elements_sent += self.parties * (self.parties - 1)
        return self.scheme.reconstruct(list(value.shares))

    # -- linear operations (local, free) ----------------------------------------

    def add(self, a: SharedValue, b: SharedValue) -> SharedValue:
        self.stats.additions += 1
        return SharedValue(shares=tuple(self.scheme.add(list(a.shares), list(b.shares))))

    def add_constant(self, a: SharedValue, k: int) -> SharedValue:
        return SharedValue(
            shares=tuple(self.scheme.add_constant(list(a.shares), k))
        )

    def scale(self, a: SharedValue, k: int) -> SharedValue:
        return SharedValue(shares=tuple(self.scheme.scale(list(a.shares), k)))

    def sum(self, values: Sequence[SharedValue]) -> SharedValue:
        """Secure sum: entirely local -- the arithmetic model's sweet spot."""
        if not values:
            raise ValueError("sum over zero shared values")
        acc = values[0]
        for v in values[1:]:
            acc = self.add(acc, v)
        return acc

    # -- multiplication (interactive) ---------------------------------------

    def multiply(self, a: SharedValue, b: SharedValue) -> SharedValue:
        """One BGW multiplication with degree reduction.

        Each party multiplies its two share points (degree doubles), then
        reshares the product point with a fresh degree-(t−1) polynomial; the
        new shares are recombined with the Lagrange coefficients of the
        degree-(2t−2) interpolation at 0.  One communication round,
        all-to-all resharing.
        """
        p = self.scheme.prime
        n, t = self.parties, self.threshold
        # Party i's local product point (x_i, a_i * b_i).
        products = [
            (a.shares[i].x, (a.shares[i].y * b.shares[i].y) % p) for i in range(n)
        ]
        # Lagrange coefficients to interpolate degree-(2t-2) poly at 0 from
        # the first 2t-1 points.
        use = products[: 2 * t - 1]
        coeffs = _lagrange_coefficients([x for x, _ in use], p)
        # Each contributing party reshares its product point.
        new_shares = [0] * n
        for (x_i, prod), lam in zip(use, coeffs):
            resharing = self.scheme.share((prod * lam) % p, self._rng)
            for j in range(n):
                new_shares[j] = (new_shares[j] + resharing[j].y) % p
        self.stats.multiplications += 1
        self.stats.rounds += 1
        self.stats.messages += (2 * t - 1) * (n - 1)
        self.stats.field_elements_sent += (2 * t - 1) * (n - 1)
        return SharedValue(
            shares=tuple(ShamirShare(x=j + 1, y=new_shares[j]) for j in range(n))
        )


def _lagrange_coefficients(xs: list[int], p: int) -> list[int]:
    """Coefficients λ_i with ``f(0) = Σ λ_i f(x_i)`` for distinct x_i."""
    coeffs = []
    for i, x_i in enumerate(xs):
        num, den = 1, 1
        for j, x_j in enumerate(xs):
            if i == j:
                continue
            num = (num * (-x_j)) % p
            den = (den * (x_i - x_j)) % p
        coeffs.append((num * pow(den, p - 2, p)) % p)
    return coeffs
