"""(c, c) additive secret sharing with additive homomorphism.

This is the sharing scheme underlying the SecSumShare protocol (paper
Sec. IV-B-1 and Theorem 4.1).  A secret ``v`` in ``Z_q`` is split into ``c``
shares ``s_0 .. s_{c-1}`` with ``sum(s_k) ≡ v (mod q)``: the first ``c - 1``
shares are uniform random ring elements and the last one is chosen to make the
sum correct.

Properties (Thm. 4.1):

* **Recoverability** -- the sum of all ``c`` shares reconstructs the secret.
* **Secrecy** -- any proper subset of shares is jointly uniform and therefore
  statistically independent of the secret.
* **Additive homomorphism** -- share-wise addition of two sharings is a valid
  sharing of the sum of the secrets, which is what lets SecSumShare aggregate
  locally without communication per addition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mpc.field import Zq

__all__ = ["AdditiveSharing", "Share"]


@dataclass(frozen=True)
class Share:
    """One additive share: the ``index``-th of ``count`` shares of some secret.

    Shares are tagged with their index and total count purely as a guard
    against protocol bugs (mixing shares of different sharings); the tags
    carry no secret information.
    """

    index: int
    count: int
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"share index {self.index} out of range for count {self.count}"
            )
        if self.value < 0:
            raise ValueError(f"share value must be canonical (>= 0), got {self.value}")


class AdditiveSharing:
    """A (c, c) additive secret-sharing scheme over ``Z_q``."""

    def __init__(self, ring: Zq, count: int):
        if count < 2:
            raise ValueError(f"need at least 2 shares, got {count}")
        self.ring = ring
        self.count = count

    def share(self, secret: int, rng: random.Random) -> list[int]:
        """Split ``secret`` into ``count`` raw share values.

        The first ``count - 1`` values are uniform; the last absorbs the
        difference so the modular sum equals the secret.
        """
        secret = self.ring.reduce(secret)
        values = self.ring.random_elements(rng, self.count - 1)
        last = self.ring.sub(secret, self.ring.sum(values))
        values.append(last)
        return values

    def share_matrix(self, values: Sequence[int], np_rng: np.random.Generator) -> np.ndarray:
        """Vectorized :meth:`share`: split many secrets with one random draw.

        Returns an ``(len(values), count)`` int64 matrix whose row ``j`` is a
        valid (c, c) sharing of ``values[j]``: the first ``count - 1``
        columns are one uniform batch draw and the last column absorbs the
        modular difference.  Requires ``q < 2**31`` so the column sums fit
        int64 without wrapping.
        """
        q = self.ring.q
        if q >= 1 << 31:
            raise ValueError("share_matrix requires modulus < 2**31; use share()")
        vals = np.asarray(values, dtype=np.int64) % q
        if vals.ndim != 1:
            raise ValueError(f"expected a 1-D secret vector, got shape {vals.shape}")
        rand = np_rng.integers(0, q, size=(vals.size, self.count - 1), dtype=np.int64)
        last = (vals - rand.sum(axis=1)) % q
        return np.concatenate([rand, last[:, None]], axis=1)

    def share_tagged(self, secret: int, rng: random.Random) -> list[Share]:
        """Like :meth:`share` but returning tagged :class:`Share` objects."""
        return [
            Share(index=k, count=self.count, value=v)
            for k, v in enumerate(self.share(secret, rng))
        ]

    def reconstruct(self, values: Sequence[int]) -> int:
        """Recover the secret from all ``count`` raw share values."""
        if len(values) != self.count:
            raise ValueError(
                f"reconstruction needs exactly {self.count} shares, got {len(values)}"
            )
        return self.ring.sum(values)

    def reconstruct_tagged(self, shares: Sequence[Share]) -> int:
        """Recover the secret from tagged shares, validating the tags."""
        if len(shares) != self.count:
            raise ValueError(
                f"reconstruction needs exactly {self.count} shares, got {len(shares)}"
            )
        seen = set()
        for s in shares:
            if s.count != self.count:
                raise ValueError(
                    f"share tagged for {s.count}-of-{s.count} scheme, expected {self.count}"
                )
            if s.index in seen:
                raise ValueError(f"duplicate share index {s.index}")
            seen.add(s.index)
        return self.ring.sum(s.value for s in shares)

    def add(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Share-wise addition: a valid sharing of ``secret(a) + secret(b)``."""
        if len(a) != self.count or len(b) != self.count:
            raise ValueError("share vectors must both have length == count")
        return [self.ring.add(x, y) for x, y in zip(a, b)]

    def add_constant(self, a: Sequence[int], k: int) -> list[int]:
        """Add a public constant to a sharing (added to share 0 only)."""
        if len(a) != self.count:
            raise ValueError("share vector must have length == count")
        out = list(a)
        out[0] = self.ring.add(out[0], k)
        return out

    def scale(self, a: Sequence[int], k: int) -> list[int]:
        """Multiply a sharing by a public constant."""
        if len(a) != self.count:
            raise ValueError("share vector must have length == count")
        return [self.ring.mul(x, k) for x in a]

    def zero_sharing(self, rng: random.Random) -> list[int]:
        """A fresh random sharing of zero (useful for re-randomization)."""
        return self.share(0, rng)

    def rerandomize(self, a: Sequence[int], rng: random.Random) -> list[int]:
        """Return an independent-looking sharing of the same secret."""
        return self.add(a, self.zero_sharing(rng))
