"""Modular (ring ``Z_q``) arithmetic used by the secret-sharing layer.

The SecSumShare protocol of the paper (Sec. IV-B-1) works in the ring of
integers modulo a public modulus ``q``.  ``q`` must be strictly larger than the
largest possible secret sum -- for the frequency sums of the paper this means
``q > m`` (the number of providers) so that identity frequencies never wrap.

All shares in this codebase are plain Python ints reduced modulo ``q``; this
module centralizes the modular arithmetic so protocols never hand-roll ``%``
expressions (and so a future swap to a prime field for Shamir sharing touches
one file).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Zq", "default_modulus_for_sum"]


def default_modulus_for_sum(max_sum: int) -> int:
    """Return a safe modulus for secrets whose sum never exceeds ``max_sum``.

    A power of two is chosen for cheap reduction; correctness only requires
    ``q > max_sum``.
    """
    if max_sum < 0:
        raise ValueError(f"max_sum must be non-negative, got {max_sum}")
    q = 1
    while q <= max_sum:
        q <<= 1
    return q


@dataclass(frozen=True)
class Zq:
    """The ring of integers modulo ``q``.

    Instances are tiny immutable value objects; protocols hold one and use it
    for every arithmetic step so the modulus is impossible to mix up between
    parties.
    """

    q: int

    def __post_init__(self) -> None:
        if self.q < 2:
            raise ValueError(f"modulus must be >= 2, got {self.q}")

    def reduce(self, x: int) -> int:
        """Reduce an integer into canonical range ``[0, q)``."""
        return x % self.q

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.q

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.q

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.q

    def neg(self, a: int) -> int:
        return (-a) % self.q

    def sum(self, xs: Iterable[int]) -> int:
        """Sum of many ring elements."""
        total = 0
        for x in xs:
            total += x
        return total % self.q

    def inv(self, a: int) -> int:
        """Multiplicative inverse (requires ``gcd(a, q) == 1``)."""
        a = a % self.q
        if a == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse")
        g, x = _extended_gcd(a, self.q)
        if g != 1:
            raise ZeroDivisionError(f"{a} is not invertible modulo {self.q}")
        return x % self.q

    def pow(self, a: int, e: int) -> int:
        return pow(a % self.q, e, self.q)

    def random_element(self, rng: random.Random) -> int:
        """Uniformly random ring element."""
        return rng.randrange(self.q)

    def random_elements(self, rng: random.Random, count: int) -> list[int]:
        return [rng.randrange(self.q) for _ in range(count)]

    def contains(self, x: int) -> bool:
        return 0 <= x < self.q

    def check_all(self, xs: Sequence[int]) -> None:
        """Raise ``ValueError`` if any element is outside canonical range."""
        for x in xs:
            if not self.contains(x):
                raise ValueError(f"element {x} outside Z_{self.q}")


def _extended_gcd(a: int, b: int) -> tuple[int, int]:
    """Return ``(g, x)`` with ``g = gcd(a, b)`` and ``a*x ≡ g (mod b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_x, x = x, old_x - quotient * x
    return old_r, old_x
