"""CountBelow and secure β-selection: the generic-MPC stage (paper Alg. 2).

The ``c`` coordinators arrive here holding additive shares ``s(k, j)`` of
each identity's frequency (SecSumShare outputs).  Two circuits are compiled
and evaluated under GMW (:mod:`repro.mpc.gmw` -- our FairplayMP stand-in):

1. **CountBelow** (Alg. 2) -- reconstruct each ``S[j] = Σ_k s(k, j)``
   *inside the circuit* (modular adder over ``Z_{2^w}``), compare against the
   public per-identity threshold ``t_j``, and reveal only

   * the number of common identities (``S[j] >= t_j`` count), and
   * ξ = max ǫ over common identities (needed to set λ, Sec. III-B-2) --
     computed as a mux/max tree over the public ǫ values gated by the secret
     common bits.

2. **β-selection** -- after λ is public, a second circuit decides per
   identity whether it is published with β = 1: ``common_j OR decoy_j``
   where the decoy coin ``decoy_j = (r_j < λ·2^k)`` is drawn from jointly
   random bits contributed by all coordinators (so no single party knows
   which non-common identities are decoys -- required for the mixing defence
   to survive collusion, see paper Sec. III-B-2).

Identities whose selection bit is 0 are *opened*: their frequency shares are
exchanged and β* is computed in the clear (cheap, non-secure end of the
Eq. 9 computation flow).  This is exactly the paper's "push complex
computation toward the non-private end" optimization.

Engines
-------
Both protocols run in one of three modes (``engine=`` parameter):

* ``"mono"`` (default) -- the original monolithic circuit covering all
  identities at once, evaluated by the scalar GMW engine.  Kept as-is so
  every existing caller and test behaves identically.
* ``"scalar"`` -- the *decomposed* formulation: one small cached circuit per
  identity (thresholds/ǫ as public input bits, so the structure is
  identity-independent) plus staged pairwise reduction trees over the
  unopened per-identity output shares, everything evaluated one instance at
  a time.  This is the correctness/throughput baseline for batching.
* ``"batch"`` -- the same decomposition evaluated bitsliced: 64 identities
  per pass through :class:`~repro.mpc.gmw.BatchGMWEngine`, including the
  reduction-tree levels (which stay wide enough to fill lanes until the very
  top).  Public outputs and per-identity communication stats are identical
  to ``"scalar"`` by construction; only wall-clock changes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

import numpy as np

from repro.mpc.circuits import (
    Circuit,
    CircuitBuilder,
    bits_to_int,
    int_to_bits,
    less_than,
    less_than_const,
    popcount,
    ripple_add,
    ripple_add_mod2k,
)
from repro.mpc.circuits.compiled import compile_circuit
from repro.mpc.circuits.evaluator import bit_matrix_to_ints, ints_to_bit_matrix
from repro.mpc.field import Zq
from repro.mpc.gmw import (
    BatchGMWEngine,
    GMWProtocol,
    GMWStats,
    account_output_opening,
    expected_stats,
)

__all__ = [
    "CountBelowResult",
    "CountBelowState",
    "SelectionResult",
    "build_count_circuit",
    "build_selection_circuit",
    "build_count_identity_circuit",
    "build_selection_identity_circuit",
    "run_count_below",
    "run_beta_selection",
    "run_beta_selection_subset",
    "update_count_below",
    "EPSILON_SCALE_BITS",
    "COIN_BITS",
    "ENGINES",
    "max_tree",
    "scale_epsilon",
]

# Valid values of the ``engine=`` parameter (see module docstring).
ENGINES = ("mono", "scalar", "batch")

# Fixed-point resolution for public ǫ values inside the ξ-max circuit.
EPSILON_SCALE_BITS = 10
# Resolution of the Bernoulli(λ) decoy coins.
COIN_BITS = 16


@dataclass
class CountBelowState:
    """Held secret material that makes CountBelow incrementally updatable.

    Captured by a ``keep_state=True`` run of the decomposed engines and
    consumed by :func:`update_count_below`.  Holds, per reduction tree
    (truly-common sum, natural-decoy sum, gated-ǫ max), *every level's*
    share array: ``levels[0]`` are the per-identity output shares of the
    count-identity circuit (the tree leaves) and ``levels[-1]`` is the
    single-element root.  A delta touching ``k`` leaves then re-evaluates
    only the ``O(k log n)`` pair circuits on the dirty root paths instead
    of rebuilding all ``n - 1`` internal nodes, and re-opens only the three
    roots -- exactly the values a from-scratch run would reveal, so the
    incremental pass leaks nothing beyond a full one.
    """

    width: int
    high_threshold: int
    n_identities: int
    truly_levels: list  # list[np.ndarray], each (parties, n_level, w_level)
    natural_levels: list
    xi_levels: list
    # Opened aggregates of the last (full or incremental) evaluation.
    n_common: int = 0
    n_natural_decoys: int = 0
    xi_scaled: int = 0


@dataclass
class CountBelowResult:
    """Public outputs of the CountBelow MPC.

    ``n_common`` counts *truly common* identities (frequency at/above the
    public high threshold); ``n_natural_decoys`` counts identities whose β
    forces broadcast (frequency ≥ t_j) but which are not frequency-common --
    they already serve as decoys for the mixing defence (see
    :mod:`repro.core.mixing`).
    """

    n_common: int
    n_natural_decoys: int
    xi_scaled: int  # max ǫ over truly commons, scaled by 2^EPSILON_SCALE_BITS
    stats: GMWStats
    circuit: Circuit
    engine: str = "mono"
    # Total non-free gates evaluated across all instances/tree levels of a
    # decomposed run (None in mono mode: the single circuit's size applies).
    total_gates: Optional[int] = None
    # Per-identity stats of one decomposed instance (None in mono mode).
    stats_per_identity: Optional[GMWStats] = None
    # Held tree material for incremental maintenance (decomposed engines
    # with ``keep_state=True`` only).
    state: Optional[CountBelowState] = None

    @property
    def xi(self) -> float:
        return self.xi_scaled / (1 << EPSILON_SCALE_BITS)

    @property
    def gates_evaluated(self) -> int:
        """Non-free gates evaluated, whichever engine produced the result."""
        if self.total_gates is not None:
            return self.total_gates
        return self.circuit.stats().size


@dataclass
class SelectionResult:
    """Public outputs of the β-selection MPC."""

    publish_as_one: list[int]  # per-identity bit: β forced to 1
    stats: GMWStats
    circuit: Circuit
    engine: str = "mono"
    total_gates: Optional[int] = None
    stats_per_identity: Optional[GMWStats] = None
    # The (n, c*COIN_BITS) decoy-coin bit matrix the run evaluated with
    # (decomposed engines only).  Persisting it is what lets an incremental
    # re-selection reproduce every clean identity's coin comparison bit-for
    # -bit -- the sticky-decoy requirement of intersection-closed
    # republication.
    coins: Optional[np.ndarray] = None

    @property
    def gates_evaluated(self) -> int:
        if self.total_gates is not None:
            return self.total_gates
        return self.circuit.stats().size


def build_count_circuit(
    c: int,
    thresholds: list[int],
    epsilons_scaled: list[int],
    width: int,
    high_threshold: int,
) -> Circuit:
    """Compile Alg. 2 (+ ξ computation) for ``len(thresholds)`` identities.

    Input layout: party-major -- for coordinator ``k``, for identity ``j``,
    ``width`` little-endian bits of share ``s(k, j)``.

    Per identity the circuit derives ``broadcast_j = S_j ≥ t_j`` (β forced
    to 1) and ``high_j = S_j ≥ high_threshold`` (frequency-common); it
    reveals only three aggregates: the truly-common count
    (broadcast ∧ high), the natural-decoy count (broadcast ∧ ¬high), and
    ξ = max ǫ over the truly common.

    Builds are memoized on the full parameter tuple: repeated runs over the
    same policy (the common case in benchmarks and the construction
    simulator) pay circuit compilation once.
    """
    if len(thresholds) != len(epsilons_scaled):
        raise ValueError("thresholds/epsilons must align")
    return _build_count_circuit_cached(
        c, tuple(thresholds), tuple(epsilons_scaled), width, high_threshold
    )


@lru_cache(maxsize=32)
def _build_count_circuit_cached(
    c: int,
    thresholds: tuple,
    epsilons_scaled: tuple,
    width: int,
    high_threshold: int,
) -> Circuit:
    n_ids = len(thresholds)
    b = CircuitBuilder()
    # Declare all inputs first (party-major order).
    share_bits = [
        [b.input_bits(width) for _ in range(n_ids)] for _ in range(c)
    ]
    truly_bits = []
    natural_bits = []
    for j, t in enumerate(thresholds):
        total = share_bits[0][j]
        for k in range(1, c):
            total = ripple_add_mod2k(b, total, share_bits[k][j])
        if t > (1 << width) - 1:
            broadcast = b.zero()  # threshold unreachable: never broadcast
        else:
            broadcast = b.not_(less_than_const(b, total, t))
        if high_threshold > (1 << width) - 1:
            high = b.zero()
        else:
            high = b.not_(less_than_const(b, total, high_threshold))
        truly = b.and_(broadcast, high)
        truly_bits.append(truly)
        natural_bits.append(b.and_(broadcast, b.not_(high)))
    count_truly = popcount(b, truly_bits)
    count_natural = popcount(b, natural_bits)
    # ξ = max over j of (truly_j ? ǫ_j : 0), as a mux/max tree.
    zero_eps = b.constant_bits(0, EPSILON_SCALE_BITS)
    gated = [
        b.mux_bits(
            truly_bits[j],
            b.constant_bits(epsilons_scaled[j], EPSILON_SCALE_BITS),
            zero_eps,
        )
        for j in range(n_ids)
    ]
    xi = max_tree(b, gated)
    b.output_bits(count_truly)
    b.output_bits(count_natural)
    b.output_bits(xi)
    return b.build()


def build_selection_circuit(
    c: int, thresholds: list[int], lambda_scaled: int, width: int
) -> Circuit:
    """Compile the per-identity β-selection: ``common_j OR (r_j < λ)``.

    Input layout: for each coordinator, first its frequency-share bits
    (identity-major), then its ``COIN_BITS`` random bits per identity.  The
    XOR of all parties' random bits yields jointly uniform ``r_j``.

    Memoized like :func:`build_count_circuit`.
    """
    if not 0 <= lambda_scaled <= (1 << COIN_BITS):
        raise ValueError(f"lambda_scaled out of range: {lambda_scaled}")
    return _build_selection_circuit_cached(c, tuple(thresholds), lambda_scaled, width)


@lru_cache(maxsize=32)
def _build_selection_circuit_cached(
    c: int, thresholds: tuple, lambda_scaled: int, width: int
) -> Circuit:
    n_ids = len(thresholds)
    b = CircuitBuilder()
    share_bits = []
    rand_bits = []
    for _ in range(c):
        share_bits.append([b.input_bits(width) for _ in range(n_ids)])
        rand_bits.append([b.input_bits(COIN_BITS) for _ in range(n_ids)])
    for j, t in enumerate(thresholds):
        total = share_bits[0][j]
        for k in range(1, c):
            total = ripple_add_mod2k(b, total, share_bits[k][j])
        if t > (1 << width) - 1:
            common = b.zero()
        else:
            common = b.not_(less_than_const(b, total, t))
        # Jointly random value r_j = XOR of all parties' contributions.
        r = [
            b.xor_many([rand_bits[k][j][i] for k in range(c)])
            for i in range(COIN_BITS)
        ]
        if lambda_scaled >= (1 << COIN_BITS):
            coin = b.one()
        elif lambda_scaled == 0:
            coin = b.zero()
        else:
            coin = less_than_const(b, r, lambda_scaled)
        b.output(b.or_(common, coin))
    return b.build()


# -- decomposed (per-identity) circuits ---------------------------------------


@lru_cache(maxsize=None)
def build_count_identity_circuit(
    c: int, width: int, high_threshold: int, eps_bits: int = EPSILON_SCALE_BITS
) -> Circuit:
    """One identity's slice of Alg. 2, with identity-specific data as inputs.

    The monolithic :func:`build_count_circuit` bakes every identity's
    threshold and ǫ in as constants, so each identity gets a structurally
    different circuit -- useless for bitslicing.  Here the per-identity data
    travels as *public input bits* instead, making one cached circuit serve
    the whole identity universe:

    * ``c * width`` bits -- the coordinators' frequency shares ``s(k, j)``;
    * ``width`` bits -- the public threshold ``t_j`` (clamped to 0 when
      unrepresentable);
    * 1 ``reach`` bit -- 0 iff ``t_j`` exceeds the ring maximum, forcing
      ``broadcast = 0`` exactly like the mono builder's constant-zero arm;
    * ``eps_bits`` bits -- the scaled public ǫ_j.

    ``high_threshold`` stays a baked constant (it is uniform across the run
    and part of the cache key).  Outputs, kept *unopened* for the reduction
    trees: ``truly_j``, ``natural_j``, and the gated ǫ
    (``truly_j ? ǫ_j : 0``, one AND per bit).
    """
    b = CircuitBuilder()
    share_bits = [b.input_bits(width) for _ in range(c)]
    t_bits = b.input_bits(width)
    reach = b.input_bit()
    eps_in = b.input_bits(eps_bits)
    total = share_bits[0]
    for k in range(1, c):
        total = ripple_add_mod2k(b, total, share_bits[k])
    broadcast = b.and_(b.not_(less_than(b, total, t_bits)), reach)
    if high_threshold > (1 << width) - 1:
        high = b.zero()
    else:
        high = b.not_(less_than_const(b, total, high_threshold))
    truly = b.and_(broadcast, high)
    b.output(truly)
    b.output(b.and_(broadcast, b.not_(high)))
    for bit in eps_in:
        b.output(b.and_(truly, bit))
    return b.build()


@lru_cache(maxsize=None)
def build_selection_identity_circuit(
    c: int, width: int, lambda_scaled: int, coin_bits: int = COIN_BITS
) -> Circuit:
    """One identity's β-selection: ``(S ≥ t AND reach) OR (r < λ)``.

    Same input-lifting as :func:`build_count_identity_circuit`; λ stays a
    baked constant (uniform per run, part of the cache key).  The single
    output bit is public per identity, so it is opened directly -- no
    reduction stage needed.
    """
    if not 0 <= lambda_scaled <= (1 << coin_bits):
        raise ValueError(f"lambda_scaled out of range: {lambda_scaled}")
    b = CircuitBuilder()
    share_bits = [b.input_bits(width) for _ in range(c)]
    rand_bits = [b.input_bits(coin_bits) for _ in range(c)]
    t_bits = b.input_bits(width)
    reach = b.input_bit()
    total = share_bits[0]
    for k in range(1, c):
        total = ripple_add_mod2k(b, total, share_bits[k])
    common = b.and_(b.not_(less_than(b, total, t_bits)), reach)
    r = [b.xor_many([rand_bits[k][i] for k in range(c)]) for i in range(coin_bits)]
    if lambda_scaled >= (1 << coin_bits):
        coin = b.one()
    elif lambda_scaled == 0:
        coin = b.zero()
    else:
        coin = less_than_const(b, r, lambda_scaled)
    b.output(b.or_(common, coin))
    return b.build()


@lru_cache(maxsize=None)
def _pair_sum_circuit(width: int) -> Circuit:
    """``x + y`` over two ``width``-bit operands, full ``width + 1``-bit out."""
    b = CircuitBuilder()
    x = b.input_bits(width)
    y = b.input_bits(width)
    b.output_bits(ripple_add(b, x, y))
    return b.build()


@lru_cache(maxsize=None)
def _pair_max_circuit(width: int) -> Circuit:
    """``max(x, y)`` over two ``width``-bit operands."""
    b = CircuitBuilder()
    x = b.input_bits(width)
    y = b.input_bits(width)
    b.output_bits(b.mux_bits(less_than(b, x, y), y, x))
    return b.build()


@dataclass
class _StageResult:
    """One fleet of identical circuit instances, evaluated by either engine."""

    opened: Optional[np.ndarray]  # (n, n_outputs) public bits, or None
    shares: Optional[np.ndarray]  # (parties, n, n_outputs) share bits, or None
    per_instance: GMWStats
    stats: GMWStats  # per_instance * n
    gates: int  # non-free gates evaluated across all instances


def _run_stage(
    circuit: Circuit,
    parties: int,
    rng: random.Random,
    engine: str,
    plain: Optional[np.ndarray] = None,
    shared: Optional[np.ndarray] = None,
    open_outputs: bool = True,
    triple_source=None,
) -> _StageResult:
    """Evaluate ``n`` instances of ``circuit``, scalar or bitsliced.

    Exactly one of ``plain`` (an ``(n, n_inputs)`` plaintext bit matrix,
    shared internally) and ``shared`` (a ``(parties, n, n_inputs)`` matrix of
    existing XOR share bits) must be given.  Both engines report identical
    per-instance stats -- the scalar path is the oracle the batch path's
    analytic accounting is asserted against in the tests.

    ``triple_source`` optionally replaces the per-stage trusted dealer with
    an offline source (see :mod:`repro.mpc.offline`); one source is shared
    across every stage of a construction so preprocessing is drawn down
    sequentially.
    """
    if (plain is None) == (shared is None):
        raise ValueError("exactly one of plain/shared inputs required")
    if engine == "batch":
        eng = BatchGMWEngine(circuit, parties, rng, triple_source=triple_source)
        if plain is not None:
            res = eng.run(plain, open_outputs=open_outputs)
        else:
            res = eng.run_shared_bits(shared, open_outputs=open_outputs)
        n = res.n_instances
        return _StageResult(
            opened=res.outputs,
            shares=res.output_shares,
            per_instance=res.per_instance,
            stats=res.stats,
            gates=compile_circuit(circuit).gate_count * n,
        )
    if engine != "scalar":
        raise ValueError(f"unknown engine {engine!r} (expected scalar/batch)")
    protocol = GMWProtocol(circuit, parties, rng, triple_source=triple_source)
    n = plain.shape[0] if plain is not None else shared.shape[1]
    n_out = len(circuit.outputs)
    opened = np.zeros((n, n_out), dtype=np.uint8) if open_outputs else None
    shares_out = (
        None if open_outputs else np.zeros((parties, n, n_out), dtype=np.uint8)
    )
    stats = GMWStats(parties=parties)
    for i in range(n):
        if plain is not None:
            res = protocol.run([int(v) for v in plain[i]], open_outputs=open_outputs)
        else:
            res = protocol.run_shared(
                [[int(v) for v in shared[p, i]] for p in range(parties)],
                open_outputs=open_outputs,
            )
        if open_outputs:
            opened[i] = res.outputs
        else:
            for p in range(parties):
                shares_out[p, i] = res.output_shares[p]
        stats.add(res.stats)
    per_instance = expected_stats(circuit, parties, open_outputs=open_outputs)
    return _StageResult(
        opened=opened,
        shares=shares_out,
        per_instance=per_instance,
        stats=stats,
        gates=compile_circuit(circuit).gate_count * n,
    )


def _secure_tree_reduce(
    shares: np.ndarray,
    mode: str,
    parties: int,
    rng: random.Random,
    engine: str,
    stats: GMWStats,
    triple_source=None,
    levels: Optional[list] = None,
) -> tuple[np.ndarray, int]:
    """Pairwise sum/max reduction over secret-shared numbers, kept shared.

    ``shares`` is ``(parties, n, width)``: party-wise XOR share bits of ``n``
    little-endian numbers.  Each level pairs elements and evaluates the
    2-ary sum (width grows by 1) or max circuit as one `_run_stage` fleet --
    so in batch mode a level with ``k`` pairs is just ``ceil(k/64)``
    bitsliced passes.  An odd trailing element is carried up zero-padded
    (all-zero share columns are a valid sharing of 0, free of communication).

    Returns the ``(parties, width_final)`` shares of the result plus the
    total non-free gate count; communication is accumulated into ``stats``.
    When ``levels`` is given, every level's share array (leaves included)
    is appended to it as an owned copy -- the held material
    :func:`_secure_tree_update` later patches along dirty root paths.
    """
    if mode not in ("sum", "max"):
        raise ValueError(f"unknown reduction mode {mode!r}")
    if shares.shape[1] < 1:
        raise ValueError("reduction over zero elements")
    arr = shares
    gates = 0
    while arr.shape[1] > 1:
        if levels is not None:
            levels.append(np.array(arr, dtype=np.uint8, copy=True))
        n, width = arr.shape[1], arr.shape[2]
        circuit = _pair_sum_circuit(width) if mode == "sum" else _pair_max_circuit(width)
        n_pairs = n // 2
        left = arr[:, 0 : 2 * n_pairs : 2, :]
        right = arr[:, 1 : 2 * n_pairs : 2, :]
        stage = _run_stage(
            circuit,
            parties,
            rng,
            engine,
            shared=np.concatenate([left, right], axis=2),
            open_outputs=False,
            triple_source=triple_source,
        )
        stats.add(stage.stats)
        gates += stage.gates
        out = stage.shares  # (parties, n_pairs, width_out)
        if n % 2:
            carry = arr[:, -1:, :]
            pad_cols = out.shape[2] - width
            if pad_cols:
                pad = np.zeros((parties, 1, pad_cols), dtype=np.uint8)
                carry = np.concatenate([carry, pad], axis=2)
            out = np.concatenate([out, carry], axis=1)
        arr = out
    if levels is not None:
        levels.append(np.array(arr, dtype=np.uint8, copy=True))
    return arr[:, 0, :], gates


def _secure_tree_update(
    levels: list,
    dirty_leaves: list[int],
    mode: str,
    parties: int,
    rng: random.Random,
    engine: str,
    stats: GMWStats,
    triple_source=None,
) -> int:
    """Recompute a held reduction tree along the dirty leaves' root paths.

    ``levels`` is the per-level share-array stack recorded by
    :func:`_secure_tree_reduce` (leaves first, root last); ``levels[0]``
    must already hold the *updated* leaf shares at the dirty positions.
    Level by level, only the pair circuits whose operands contain a dirty
    element are re-evaluated (one `_run_stage` fleet per level, so batch
    mode bitslices the dirty pairs), and an odd-carry element propagates by
    zero-padded copy exactly as in the full reduction.  Values therefore
    match a from-scratch rebuild bit-for-bit while evaluating
    ``O(k log n)`` instead of ``n - 1`` pair circuits.

    Returns the non-free gates evaluated; communication accumulates into
    ``stats``.  The root (``levels[-1]``) is left *shared* -- opening is
    the caller's single final round, as in the full run.
    """
    if mode not in ("sum", "max"):
        raise ValueError(f"unknown reduction mode {mode!r}")
    gates = 0
    dirty = sorted(set(int(j) for j in dirty_leaves))
    if dirty and not 0 <= dirty[0] <= dirty[-1] < levels[0].shape[1]:
        raise ValueError(f"dirty leaf out of range: {dirty}")
    for li in range(len(levels) - 1):
        arr = levels[li]
        nxt = levels[li + 1]
        n, width = arr.shape[1], arr.shape[2]
        n_pairs = n // 2
        parents = sorted({j // 2 for j in dirty if j < 2 * n_pairs})
        carry_dirty = bool(n % 2) and (n - 1) in dirty
        next_dirty = list(parents)
        if parents:
            circuit = (
                _pair_sum_circuit(width) if mode == "sum" else _pair_max_circuit(width)
            )
            idx = np.asarray(parents, dtype=np.int64)
            left = arr[:, 2 * idx, :]
            right = arr[:, 2 * idx + 1, :]
            stage = _run_stage(
                circuit,
                parties,
                rng,
                engine,
                shared=np.concatenate([left, right], axis=2),
                open_outputs=False,
                triple_source=triple_source,
            )
            stats.add(stage.stats)
            gates += stage.gates
            nxt[:, idx, :] = stage.shares
        if carry_dirty:
            nxt[:, n_pairs, :width] = arr[:, n - 1, :]
            nxt[:, n_pairs, width:] = 0
            next_dirty.append(n_pairs)
        dirty = next_dirty
    return gates


def _open_shared_int(share_bits: np.ndarray) -> int:
    """Open one secret-shared number: XOR shares across parties, decode."""
    bits = np.bitwise_xor.reduce(share_bits, axis=0)
    return int(bit_matrix_to_ints(bits[None, :])[0])


def _identity_input_blocks(
    coordinator_shares: list[list[int]],
    thresholds: list[int],
    width: int,
) -> tuple[list[np.ndarray], np.ndarray, np.ndarray]:
    """Shared input-encoding of the decomposed entry points.

    Returns the per-coordinator share-bit blocks, the threshold-bit block
    (clamped to 0 where unrepresentable), and the reach column.
    """
    n_ids = len(thresholds)
    max_val = (1 << width) - 1
    share_mats = []
    for shares in coordinator_shares:
        if len(shares) != n_ids:
            raise ValueError("coordinator share vectors must align with thresholds")
        share_mats.append(ints_to_bit_matrix(shares, width))
    t_mat = ints_to_bit_matrix(
        [t if t <= max_val else 0 for t in thresholds], width
    )
    reach_col = np.asarray(
        [[1 if t <= max_val else 0] for t in thresholds], dtype=np.uint8
    )
    return share_mats, t_mat, reach_col


def _run_count_below_staged(
    coordinator_shares: list[list[int]],
    thresholds: list[int],
    eps_scaled: list[int],
    width: int,
    high_threshold: int,
    rng: random.Random,
    engine: str,
    triple_source=None,
    keep_state: bool = False,
) -> CountBelowResult:
    """CountBelow via per-identity circuits + secure reduction trees."""
    c = len(coordinator_shares)
    n_ids = len(thresholds)
    circuit = build_count_identity_circuit(c, width, high_threshold)
    share_mats, t_mat, reach_col = _identity_input_blocks(
        coordinator_shares, thresholds, width
    )
    eps_mat = ints_to_bit_matrix(eps_scaled, EPSILON_SCALE_BITS)
    inputs = np.concatenate(share_mats + [t_mat, reach_col, eps_mat], axis=1)

    totals = GMWStats(parties=c)
    stage = _run_stage(
        circuit,
        c,
        rng,
        engine,
        plain=inputs,
        open_outputs=False,
        triple_source=triple_source,
    )
    totals.add(stage.stats)
    gates = stage.gates

    levels: dict[str, Optional[list]] = {
        key: [] if keep_state else None for key in ("truly", "natural", "xi")
    }
    truly_sh, g = _secure_tree_reduce(
        stage.shares[:, :, 0:1], "sum", c, rng, engine, totals, triple_source,
        levels=levels["truly"],
    )
    gates += g
    natural_sh, g = _secure_tree_reduce(
        stage.shares[:, :, 1:2], "sum", c, rng, engine, totals, triple_source,
        levels=levels["natural"],
    )
    gates += g
    xi_sh, g = _secure_tree_reduce(
        stage.shares[:, :, 2:], "max", c, rng, engine, totals, triple_source,
        levels=levels["xi"],
    )
    gates += g

    # Single final opening round: the three aggregates are revealed together.
    n_opened = truly_sh.shape[1] + natural_sh.shape[1] + xi_sh.shape[1]
    account_output_opening(totals, c, n_opened)
    n_common = _open_shared_int(truly_sh)
    n_natural = _open_shared_int(natural_sh)
    xi_scaled = _open_shared_int(xi_sh)
    state = None
    if keep_state:
        state = CountBelowState(
            width=width,
            high_threshold=high_threshold,
            n_identities=n_ids,
            truly_levels=levels["truly"],
            natural_levels=levels["natural"],
            xi_levels=levels["xi"],
            n_common=n_common,
            n_natural_decoys=n_natural,
            xi_scaled=xi_scaled,
        )
    return CountBelowResult(
        n_common=n_common,
        n_natural_decoys=n_natural,
        xi_scaled=xi_scaled,
        stats=totals,
        circuit=circuit,
        engine=engine,
        total_gates=gates,
        stats_per_identity=stage.per_instance,
        state=state,
    )


def update_count_below(
    state: CountBelowState,
    coordinator_shares: list[list[int]],
    dirty: list[int],
    thresholds: list[int],
    epsilons: list[float],
    ring: Zq,
    rng: random.Random,
    engine: str = "batch",
    triple_source=None,
) -> CountBelowResult:
    """Delta-aware CountBelow: secure work restricted to the dirty set.

    ``state`` is the held material of a prior ``keep_state=True`` run;
    ``coordinator_shares`` are the *updated* full share vectors (clean
    columns unchanged, dirty columns freshly re-shared via
    :meth:`~repro.mpc.secsum.SecSumShare.apply_delta`).  The count-identity
    circuit is re-evaluated only for ``dirty`` identities, the three
    reduction trees are patched along the dirty root paths
    (:func:`_secure_tree_update`), and the three roots are re-opened in one
    final round -- the same public aggregates a full run would reveal.

    ``state`` is updated in place (leaf shares, tree levels, opened
    aggregates).  An empty dirty set returns the cached aggregates with
    zero communication.  Requires a decomposed engine.
    """
    if engine not in ("scalar", "batch"):
        raise ValueError(
            f"incremental CountBelow requires a decomposed engine, got {engine!r}"
        )
    c = len(coordinator_shares)
    n_ids = len(thresholds)
    if n_ids != state.n_identities:
        raise ValueError(
            f"state covers {state.n_identities} identities, inputs {n_ids}"
        )
    if len(epsilons) != n_ids:
        raise ValueError("thresholds/epsilons must align")
    width = (ring.q - 1).bit_length()
    if width != state.width:
        raise ValueError(f"state width {state.width} != ring width {width}")
    circuit = build_count_identity_circuit(c, width, state.high_threshold)
    dirty_ids = sorted(set(int(j) for j in dirty))
    totals = GMWStats(parties=c)
    if not dirty_ids:
        return CountBelowResult(
            n_common=state.n_common,
            n_natural_decoys=state.n_natural_decoys,
            xi_scaled=state.xi_scaled,
            stats=totals,
            circuit=circuit,
            engine=engine,
            total_gates=0,
            stats_per_identity=expected_stats(circuit, c, open_outputs=False),
            state=state,
        )
    if not 0 <= dirty_ids[0] <= dirty_ids[-1] < n_ids:
        raise ValueError(f"dirty identity out of range: {dirty_ids}")

    eps_scaled = [scale_epsilon(e) for e in epsilons]
    sub_shares = [[shares[j] for j in dirty_ids] for shares in coordinator_shares]
    sub_thresholds = [thresholds[j] for j in dirty_ids]
    share_mats, t_mat, reach_col = _identity_input_blocks(
        sub_shares, sub_thresholds, width
    )
    eps_mat = ints_to_bit_matrix([eps_scaled[j] for j in dirty_ids], EPSILON_SCALE_BITS)
    inputs = np.concatenate(share_mats + [t_mat, reach_col, eps_mat], axis=1)
    stage = _run_stage(
        circuit,
        c,
        rng,
        engine,
        plain=inputs,
        open_outputs=False,
        triple_source=triple_source,
    )
    totals.add(stage.stats)
    gates = stage.gates

    idx = np.asarray(dirty_ids, dtype=np.int64)
    state.truly_levels[0][:, idx, :] = stage.shares[:, :, 0:1]
    state.natural_levels[0][:, idx, :] = stage.shares[:, :, 1:2]
    state.xi_levels[0][:, idx, :] = stage.shares[:, :, 2:]
    for levels, mode in (
        (state.truly_levels, "sum"),
        (state.natural_levels, "sum"),
        (state.xi_levels, "max"),
    ):
        gates += _secure_tree_update(
            levels, dirty_ids, mode, c, rng, engine, totals, triple_source
        )

    truly_sh = state.truly_levels[-1][:, 0, :]
    natural_sh = state.natural_levels[-1][:, 0, :]
    xi_sh = state.xi_levels[-1][:, 0, :]
    n_opened = truly_sh.shape[1] + natural_sh.shape[1] + xi_sh.shape[1]
    account_output_opening(totals, c, n_opened)
    state.n_common = _open_shared_int(truly_sh)
    state.n_natural_decoys = _open_shared_int(natural_sh)
    state.xi_scaled = _open_shared_int(xi_sh)
    return CountBelowResult(
        n_common=state.n_common,
        n_natural_decoys=state.n_natural_decoys,
        xi_scaled=state.xi_scaled,
        stats=totals,
        circuit=circuit,
        engine=engine,
        total_gates=gates,
        stats_per_identity=stage.per_instance,
        state=state,
    )


def _run_beta_selection_staged(
    coordinator_shares: list[list[int]],
    thresholds: list[int],
    lambda_scaled: int,
    width: int,
    rng: random.Random,
    engine: str,
    triple_source=None,
    coins: Optional[np.ndarray] = None,
) -> SelectionResult:
    """β-selection via the per-identity circuit (outputs public, no trees)."""
    c = len(coordinator_shares)
    n_ids = len(thresholds)
    circuit = build_selection_identity_circuit(c, width, lambda_scaled)
    share_mats, t_mat, reach_col = _identity_input_blocks(
        coordinator_shares, thresholds, width
    )
    # Decoy coins: drawn identically for both engines (numpy stream seeded
    # from the protocol rng) so same-seed scalar/batch runs select the same
    # identities exactly.  An explicit ``coins`` matrix (a previous run's
    # persisted draw) replaces the fresh draw -- the replay knob incremental
    # maintenance and its equivalence tests are built on.
    if coins is None:
        np_rng = np.random.default_rng(rng.getrandbits(64))
        coins = np_rng.integers(0, 2, size=(n_ids, c * COIN_BITS), dtype=np.uint8)
    else:
        coins = np.asarray(coins, dtype=np.uint8)
        if coins.shape != (n_ids, c * COIN_BITS):
            raise ValueError(
                f"coins must have shape ({n_ids}, {c * COIN_BITS}), "
                f"got {coins.shape}"
            )
    inputs = np.concatenate(share_mats + [coins, t_mat, reach_col], axis=1)
    stage = _run_stage(
        circuit,
        c,
        rng,
        engine,
        plain=inputs,
        open_outputs=True,
        triple_source=triple_source,
    )
    return SelectionResult(
        publish_as_one=[int(b) for b in stage.opened[:, 0]],
        stats=stage.stats,
        circuit=circuit,
        engine=engine,
        total_gates=stage.gates,
        stats_per_identity=stage.per_instance,
        coins=coins,
    )


def run_beta_selection_subset(
    coordinator_shares: list[list[int]],
    thresholds: list[int],
    lambda_: float,
    ring: Zq,
    rng: random.Random,
    subset: list[int],
    coins: np.ndarray,
    engine: str = "batch",
    triple_source=None,
) -> SelectionResult:
    """β-selection evaluated only for the ``subset`` identities.

    The incremental entry point: ``coordinator_shares``/``thresholds``/
    ``coins`` span the *full* identity universe, ``subset`` names the
    identities whose selection bit must be (re-)evaluated -- the dirty set
    plus the λ-drift closure computed by the caller (see
    :mod:`repro.mpc.betacalc`).  Coins come from the persisted matrix of
    the prior run, so an untouched identity re-evaluated here reproduces
    its previous coin comparison exactly.  ``publish_as_one`` is aligned
    with ``subset`` order.  Requires a decomposed engine.
    """
    if engine not in ("scalar", "batch"):
        raise ValueError(
            f"incremental selection requires a decomposed engine, got {engine!r}"
        )
    c = len(coordinator_shares)
    n_ids = len(thresholds)
    width = (ring.q - 1).bit_length()
    if (1 << width) != ring.q:
        raise ValueError("selection requires a power-of-two modulus")
    if not 0.0 <= lambda_ <= 1.0:
        raise ValueError(f"lambda must be in [0, 1], got {lambda_}")
    lambda_scaled = round(lambda_ * (1 << COIN_BITS))
    circuit = build_selection_identity_circuit(c, width, lambda_scaled)
    subset_ids = sorted(set(int(j) for j in subset))
    coins = np.asarray(coins, dtype=np.uint8)
    if coins.shape != (n_ids, c * COIN_BITS):
        raise ValueError(
            f"coins must have shape ({n_ids}, {c * COIN_BITS}), got {coins.shape}"
        )
    if not subset_ids:
        return SelectionResult(
            publish_as_one=[],
            stats=GMWStats(parties=c),
            circuit=circuit,
            engine=engine,
            total_gates=0,
            stats_per_identity=expected_stats(circuit, c, open_outputs=True),
            coins=coins,
        )
    if not 0 <= subset_ids[0] <= subset_ids[-1] < n_ids:
        raise ValueError(f"subset identity out of range: {subset_ids}")
    sub_shares = [[shares[j] for j in subset_ids] for shares in coordinator_shares]
    sub_thresholds = [thresholds[j] for j in subset_ids]
    share_mats, t_mat, reach_col = _identity_input_blocks(
        sub_shares, sub_thresholds, width
    )
    sub_coins = coins[np.asarray(subset_ids, dtype=np.int64)]
    inputs = np.concatenate(share_mats + [sub_coins, t_mat, reach_col], axis=1)
    stage = _run_stage(
        circuit,
        c,
        rng,
        engine,
        plain=inputs,
        open_outputs=True,
        triple_source=triple_source,
    )
    return SelectionResult(
        publish_as_one=[int(b) for b in stage.opened[:, 0]],
        stats=stage.stats,
        circuit=circuit,
        engine=engine,
        total_gates=stage.gates,
        stats_per_identity=stage.per_instance,
        coins=coins,
    )


def run_count_below(
    coordinator_shares: list[list[int]],
    thresholds: list[int],
    epsilons: list[float],
    ring: Zq,
    rng: random.Random,
    high_threshold: int | None = None,
    engine: str = "mono",
    triple_source=None,
    keep_state: bool = False,
) -> CountBelowResult:
    """Execute CountBelow under GMW among the ``c`` coordinators.

    ``high_threshold`` is the public frequency bound separating truly common
    identities from natural decoys; by default every broadcast identity
    counts as common (pass an explicit value -- typically ``ceil(0.5 m)`` --
    to enable the natural-decoy accounting).

    ``engine`` selects the evaluation strategy (see module docstring):
    ``"mono"`` keeps the original monolithic circuit; ``"scalar"`` and
    ``"batch"`` run the decomposed per-identity formulation, the latter
    bitsliced 64 identities at a time.

    ``keep_state=True`` (decomposed engines only) additionally captures the
    per-identity output shares and every reduction-tree level on
    ``result.state``, enabling :func:`update_count_below`.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (expected one of {ENGINES})")
    c = len(coordinator_shares)
    n_ids = len(thresholds)
    if len(epsilons) != n_ids:
        raise ValueError("thresholds/epsilons must align")
    width = (ring.q - 1).bit_length()
    if (1 << width) != ring.q:
        raise ValueError("CountBelow requires a power-of-two modulus")
    if high_threshold is None:
        high_threshold = 0  # every broadcast identity is "high"
    eps_scaled = [scale_epsilon(e) for e in epsilons]
    if engine != "mono":
        return _run_count_below_staged(
            coordinator_shares,
            thresholds,
            eps_scaled,
            width,
            high_threshold,
            rng,
            engine,
            triple_source,
            keep_state=keep_state,
        )
    if keep_state:
        raise ValueError("keep_state requires a decomposed engine (scalar/batch)")
    circuit = build_count_circuit(c, thresholds, eps_scaled, width, high_threshold)
    inputs = _flatten_share_inputs(coordinator_shares, n_ids, width)
    protocol = GMWProtocol(circuit, parties=c, rng=rng, triple_source=triple_source)
    result = protocol.run(inputs)
    count_width = (len(result.outputs) - EPSILON_SCALE_BITS) // 2
    n_common = bits_to_int(result.outputs[:count_width])
    n_natural = bits_to_int(result.outputs[count_width : 2 * count_width])
    xi_scaled = bits_to_int(result.outputs[2 * count_width :])
    return CountBelowResult(
        n_common=n_common,
        n_natural_decoys=n_natural,
        xi_scaled=xi_scaled,
        stats=result.stats,
        circuit=circuit,
    )


def run_beta_selection(
    coordinator_shares: list[list[int]],
    thresholds: list[int],
    lambda_: float,
    ring: Zq,
    rng: random.Random,
    engine: str = "mono",
    triple_source=None,
    coins: Optional[np.ndarray] = None,
) -> SelectionResult:
    """Execute the β-selection circuit under GMW among the coordinators.

    ``engine`` and ``triple_source`` as in :func:`run_count_below`.
    ``coins`` (decomposed engines only) replays an explicit decoy-coin
    matrix instead of drawing a fresh one -- see
    :func:`run_beta_selection_subset`.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r} (expected one of {ENGINES})")
    c = len(coordinator_shares)
    n_ids = len(thresholds)
    width = (ring.q - 1).bit_length()
    if (1 << width) != ring.q:
        raise ValueError("selection requires a power-of-two modulus")
    if not 0.0 <= lambda_ <= 1.0:
        raise ValueError(f"lambda must be in [0, 1], got {lambda_}")
    lambda_scaled = round(lambda_ * (1 << COIN_BITS))
    if engine != "mono":
        return _run_beta_selection_staged(
            coordinator_shares, thresholds, lambda_scaled, width, rng, engine,
            triple_source, coins=coins,
        )
    if coins is not None:
        raise ValueError("explicit coins require a decomposed engine (scalar/batch)")
    circuit = build_selection_circuit(c, thresholds, lambda_scaled, width)
    inputs: list[int] = []
    for k in range(c):
        for j in range(n_ids):
            inputs.extend(int_to_bits(coordinator_shares[k][j], width))
        for _ in range(n_ids):
            inputs.extend(rng.getrandbits(1) for _ in range(COIN_BITS))
    protocol = GMWProtocol(circuit, parties=c, rng=rng, triple_source=triple_source)
    result = protocol.run(inputs)
    return SelectionResult(
        publish_as_one=list(result.outputs), stats=result.stats, circuit=circuit
    )


def _flatten_share_inputs(
    coordinator_shares: list[list[int]], n_ids: int, width: int
) -> list[int]:
    inputs: list[int] = []
    for shares in coordinator_shares:
        if len(shares) != n_ids:
            raise ValueError("coordinator share vectors must align with thresholds")
        for value in shares:
            inputs.extend(int_to_bits(value, width))
    return inputs


def scale_epsilon(epsilon: float) -> int:
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
    return min((1 << EPSILON_SCALE_BITS) - 1, round(epsilon * (1 << EPSILON_SCALE_BITS)))


def max_tree(b: CircuitBuilder, numbers: list[list[int]]) -> list[int]:
    """Balanced unsigned-max reduction over equal-width bit vectors."""
    if not numbers:
        raise ValueError("max over zero numbers")
    level = numbers
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            x, y = level[i], level[i + 1]
            nxt.append(b.mux_bits(less_than(b, x, y), y, x))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]
