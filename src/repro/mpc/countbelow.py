"""CountBelow and secure β-selection: the generic-MPC stage (paper Alg. 2).

The ``c`` coordinators arrive here holding additive shares ``s(k, j)`` of
each identity's frequency (SecSumShare outputs).  Two circuits are compiled
and evaluated under GMW (:mod:`repro.mpc.gmw` -- our FairplayMP stand-in):

1. **CountBelow** (Alg. 2) -- reconstruct each ``S[j] = Σ_k s(k, j)``
   *inside the circuit* (modular adder over ``Z_{2^w}``), compare against the
   public per-identity threshold ``t_j``, and reveal only

   * the number of common identities (``S[j] >= t_j`` count), and
   * ξ = max ǫ over common identities (needed to set λ, Sec. III-B-2) --
     computed as a mux/max tree over the public ǫ values gated by the secret
     common bits.

2. **β-selection** -- after λ is public, a second circuit decides per
   identity whether it is published with β = 1: ``common_j OR decoy_j``
   where the decoy coin ``decoy_j = (r_j < λ·2^k)`` is drawn from jointly
   random bits contributed by all coordinators (so no single party knows
   which non-common identities are decoys -- required for the mixing defence
   to survive collusion, see paper Sec. III-B-2).

Identities whose selection bit is 0 are *opened*: their frequency shares are
exchanged and β* is computed in the clear (cheap, non-secure end of the
Eq. 9 computation flow).  This is exactly the paper's "push complex
computation toward the non-private end" optimization.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.mpc.circuits import (
    Circuit,
    CircuitBuilder,
    bits_to_int,
    int_to_bits,
    less_than,
    less_than_const,
    popcount,
    ripple_add_mod2k,
)
from repro.mpc.field import Zq
from repro.mpc.gmw import GMWProtocol, GMWStats

__all__ = [
    "CountBelowResult",
    "SelectionResult",
    "build_count_circuit",
    "build_selection_circuit",
    "run_count_below",
    "run_beta_selection",
    "EPSILON_SCALE_BITS",
    "COIN_BITS",
    "max_tree",
    "scale_epsilon",
]

# Fixed-point resolution for public ǫ values inside the ξ-max circuit.
EPSILON_SCALE_BITS = 10
# Resolution of the Bernoulli(λ) decoy coins.
COIN_BITS = 16


@dataclass
class CountBelowResult:
    """Public outputs of the CountBelow MPC.

    ``n_common`` counts *truly common* identities (frequency at/above the
    public high threshold); ``n_natural_decoys`` counts identities whose β
    forces broadcast (frequency ≥ t_j) but which are not frequency-common --
    they already serve as decoys for the mixing defence (see
    :mod:`repro.core.mixing`).
    """

    n_common: int
    n_natural_decoys: int
    xi_scaled: int  # max ǫ over truly commons, scaled by 2^EPSILON_SCALE_BITS
    stats: GMWStats
    circuit: Circuit

    @property
    def xi(self) -> float:
        return self.xi_scaled / (1 << EPSILON_SCALE_BITS)


@dataclass
class SelectionResult:
    """Public outputs of the β-selection MPC."""

    publish_as_one: list[int]  # per-identity bit: β forced to 1
    stats: GMWStats
    circuit: Circuit


def build_count_circuit(
    c: int,
    thresholds: list[int],
    epsilons_scaled: list[int],
    width: int,
    high_threshold: int,
) -> Circuit:
    """Compile Alg. 2 (+ ξ computation) for ``len(thresholds)`` identities.

    Input layout: party-major -- for coordinator ``k``, for identity ``j``,
    ``width`` little-endian bits of share ``s(k, j)``.

    Per identity the circuit derives ``broadcast_j = S_j ≥ t_j`` (β forced
    to 1) and ``high_j = S_j ≥ high_threshold`` (frequency-common); it
    reveals only three aggregates: the truly-common count
    (broadcast ∧ high), the natural-decoy count (broadcast ∧ ¬high), and
    ξ = max ǫ over the truly common.
    """
    if len(thresholds) != len(epsilons_scaled):
        raise ValueError("thresholds/epsilons must align")
    n_ids = len(thresholds)
    b = CircuitBuilder()
    # Declare all inputs first (party-major order).
    share_bits = [
        [b.input_bits(width) for _ in range(n_ids)] for _ in range(c)
    ]
    truly_bits = []
    natural_bits = []
    for j, t in enumerate(thresholds):
        total = share_bits[0][j]
        for k in range(1, c):
            total = ripple_add_mod2k(b, total, share_bits[k][j])
        if t > (1 << width) - 1:
            broadcast = b.zero()  # threshold unreachable: never broadcast
        else:
            broadcast = b.not_(less_than_const(b, total, t))
        if high_threshold > (1 << width) - 1:
            high = b.zero()
        else:
            high = b.not_(less_than_const(b, total, high_threshold))
        truly = b.and_(broadcast, high)
        truly_bits.append(truly)
        natural_bits.append(b.and_(broadcast, b.not_(high)))
    count_truly = popcount(b, truly_bits)
    count_natural = popcount(b, natural_bits)
    # ξ = max over j of (truly_j ? ǫ_j : 0), as a mux/max tree.
    zero_eps = b.constant_bits(0, EPSILON_SCALE_BITS)
    gated = [
        b.mux_bits(
            truly_bits[j],
            b.constant_bits(epsilons_scaled[j], EPSILON_SCALE_BITS),
            zero_eps,
        )
        for j in range(n_ids)
    ]
    xi = max_tree(b, gated)
    b.output_bits(count_truly)
    b.output_bits(count_natural)
    b.output_bits(xi)
    return b.build()


def build_selection_circuit(
    c: int, thresholds: list[int], lambda_scaled: int, width: int
) -> Circuit:
    """Compile the per-identity β-selection: ``common_j OR (r_j < λ)``.

    Input layout: for each coordinator, first its frequency-share bits
    (identity-major), then its ``COIN_BITS`` random bits per identity.  The
    XOR of all parties' random bits yields jointly uniform ``r_j``.
    """
    n_ids = len(thresholds)
    if not 0 <= lambda_scaled <= (1 << COIN_BITS):
        raise ValueError(f"lambda_scaled out of range: {lambda_scaled}")
    b = CircuitBuilder()
    share_bits = []
    rand_bits = []
    for _ in range(c):
        share_bits.append([b.input_bits(width) for _ in range(n_ids)])
        rand_bits.append([b.input_bits(COIN_BITS) for _ in range(n_ids)])
    for j, t in enumerate(thresholds):
        total = share_bits[0][j]
        for k in range(1, c):
            total = ripple_add_mod2k(b, total, share_bits[k][j])
        if t > (1 << width) - 1:
            common = b.zero()
        else:
            common = b.not_(less_than_const(b, total, t))
        # Jointly random value r_j = XOR of all parties' contributions.
        r = [
            b.xor_many([rand_bits[k][j][i] for k in range(c)])
            for i in range(COIN_BITS)
        ]
        if lambda_scaled >= (1 << COIN_BITS):
            coin = b.one()
        elif lambda_scaled == 0:
            coin = b.zero()
        else:
            coin = less_than_const(b, r, lambda_scaled)
        b.output(b.or_(common, coin))
    return b.build()


def run_count_below(
    coordinator_shares: list[list[int]],
    thresholds: list[int],
    epsilons: list[float],
    ring: Zq,
    rng: random.Random,
    high_threshold: int | None = None,
) -> CountBelowResult:
    """Execute CountBelow under GMW among the ``c`` coordinators.

    ``high_threshold`` is the public frequency bound separating truly common
    identities from natural decoys; by default every broadcast identity
    counts as common (pass an explicit value -- typically ``ceil(0.5 m)`` --
    to enable the natural-decoy accounting).
    """
    c = len(coordinator_shares)
    n_ids = len(thresholds)
    width = (ring.q - 1).bit_length()
    if (1 << width) != ring.q:
        raise ValueError("CountBelow requires a power-of-two modulus")
    if high_threshold is None:
        high_threshold = 0  # every broadcast identity is "high"
    eps_scaled = [scale_epsilon(e) for e in epsilons]
    circuit = build_count_circuit(c, thresholds, eps_scaled, width, high_threshold)
    inputs = _flatten_share_inputs(coordinator_shares, n_ids, width)
    protocol = GMWProtocol(circuit, parties=c, rng=rng)
    result = protocol.run(inputs)
    count_width = (len(result.outputs) - EPSILON_SCALE_BITS) // 2
    n_common = bits_to_int(result.outputs[:count_width])
    n_natural = bits_to_int(result.outputs[count_width : 2 * count_width])
    xi_scaled = bits_to_int(result.outputs[2 * count_width :])
    return CountBelowResult(
        n_common=n_common,
        n_natural_decoys=n_natural,
        xi_scaled=xi_scaled,
        stats=result.stats,
        circuit=circuit,
    )


def run_beta_selection(
    coordinator_shares: list[list[int]],
    thresholds: list[int],
    lambda_: float,
    ring: Zq,
    rng: random.Random,
) -> SelectionResult:
    """Execute the β-selection circuit under GMW among the coordinators."""
    c = len(coordinator_shares)
    n_ids = len(thresholds)
    width = (ring.q - 1).bit_length()
    if (1 << width) != ring.q:
        raise ValueError("selection requires a power-of-two modulus")
    if not 0.0 <= lambda_ <= 1.0:
        raise ValueError(f"lambda must be in [0, 1], got {lambda_}")
    lambda_scaled = round(lambda_ * (1 << COIN_BITS))
    circuit = build_selection_circuit(c, thresholds, lambda_scaled, width)
    inputs: list[int] = []
    for k in range(c):
        for j in range(n_ids):
            inputs.extend(int_to_bits(coordinator_shares[k][j], width))
        for _ in range(n_ids):
            inputs.extend(rng.getrandbits(1) for _ in range(COIN_BITS))
    protocol = GMWProtocol(circuit, parties=c, rng=rng)
    result = protocol.run(inputs)
    return SelectionResult(
        publish_as_one=list(result.outputs), stats=result.stats, circuit=circuit
    )


def _flatten_share_inputs(
    coordinator_shares: list[list[int]], n_ids: int, width: int
) -> list[int]:
    inputs: list[int] = []
    for shares in coordinator_shares:
        if len(shares) != n_ids:
            raise ValueError("coordinator share vectors must align with thresholds")
        for value in shares:
            inputs.extend(int_to_bits(value, width))
    return inputs


def scale_epsilon(epsilon: float) -> int:
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
    return min((1 << EPSILON_SCALE_BITS) - 1, round(epsilon * (1 << EPSILON_SCALE_BITS)))


def max_tree(b: CircuitBuilder, numbers: list[list[int]]) -> list[int]:
    """Balanced unsigned-max reduction over equal-width bit vectors."""
    if not numbers:
        raise ValueError("max over zero numbers")
    level = numbers
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            x, y = level[i], level[i + 1]
            nxt.append(b.mux_bits(less_than(b, x, y), y, x))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]
