"""Beaver multiplication triples for the GMW engine.

GMW evaluates XOR gates locally but needs one interaction per AND gate.  The
standard technique is a *Beaver triple*: a random triple ``(a, b, c)`` with
``c = a AND b``, secret-shared among the parties ahead of time.  During the
online phase each AND consumes one triple.

The paper runs FairplayMP whose offline phase uses oblivious transfer between
the real machines; we cannot run OT against real hosts inside a deterministic
simulation, so triples come from a trusted dealer (`TripleDealer`).  This is
the standard MPC-lab substitution (see DESIGN.md): the *online* phase -- the
part whose round and message complexity determines the scaling behaviour the
paper measures -- is unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

__all__ = ["BitTriple", "SharedBitTriple", "TripleDealer"]


@dataclass(frozen=True)
class BitTriple:
    """A plaintext Beaver triple over GF(2): ``c == a & b``."""

    a: int
    b: int
    c: int

    def __post_init__(self) -> None:
        for name, v in (("a", self.a), ("b", self.b), ("c", self.c)):
            if v not in (0, 1):
                raise ValueError(f"triple component {name} must be a bit, got {v}")
        if self.c != (self.a & self.b):
            raise ValueError("invalid triple: c != a & b")


@dataclass(frozen=True)
class SharedBitTriple:
    """One party's XOR-shares of a Beaver triple."""

    a: int
    b: int
    c: int


class TripleDealer:
    """Trusted dealer handing out XOR-shared Beaver triples to ``parties``.

    The dealer also keeps a count of triples issued: the count equals the
    number of AND gates evaluated, which is the dominant term of the
    circuit-size metric reported in Fig. 6b.
    """

    def __init__(self, parties: int, rng: random.Random):
        if parties < 2:
            raise ValueError(f"need at least 2 parties, got {parties}")
        self.parties = parties
        self._rng = rng
        self._np_rng: np.random.Generator | None = None
        self.issued = 0

    def deal(self) -> list[SharedBitTriple]:
        """Generate one triple and split it into per-party XOR shares."""
        rng = self._rng
        a, b = rng.getrandbits(1), rng.getrandbits(1)
        triple = BitTriple(a=a, b=b, c=a & b)
        shares_a = self._xor_share(triple.a)
        shares_b = self._xor_share(triple.b)
        shares_c = self._xor_share(triple.c)
        self.issued += 1
        return [
            SharedBitTriple(a=shares_a[i], b=shares_b[i], c=shares_c[i])
            for i in range(self.parties)
        ]

    def deal_many(self, count: int) -> list[list[SharedBitTriple]]:
        """Deal ``count`` triples; result indexed ``[triple][party]``."""
        return [self.deal() for _ in range(count)]

    def deal_batch(
        self, count: int, lanes: int = 64
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Deal ``count * lanes`` independent bit triples, bitsliced.

        Returns ``(a, b, c)`` share arrays of shape ``(count, parties)`` and
        dtype ``uint64``: entry ``[g, p]`` holds party ``p``'s XOR share of
        64 lane-parallel triples for gate ``g`` -- bit-lane ``i`` of the
        reconstructed words satisfies ``c = a & b`` independently per lane.
        One vectorized draw replaces ``3 * parties * count * lanes``
        scalar RNG calls, which is what makes the batched GMW online phase
        triple-supply-bound no longer.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if not 1 <= lanes <= 64:
            raise ValueError(f"lanes must be in [1, 64], got {lanes}")
        if self._np_rng is None:
            # Seeded from the dealer's own stream so runs stay reproducible.
            self._np_rng = np.random.default_rng(self._rng.getrandbits(64))
        rng = self._np_rng
        a = rng.integers(0, 1 << 64, size=count, dtype=np.uint64)
        b = rng.integers(0, 1 << 64, size=count, dtype=np.uint64)
        c = a & b
        shares = []
        for word in (a, b, c):
            parts = rng.integers(
                0, 1 << 64, size=(count, self.parties - 1), dtype=np.uint64
            )
            last = np.bitwise_xor.reduce(parts, axis=1) ^ word if self.parties > 1 else word
            shares.append(np.concatenate([parts, last[:, None]], axis=1))
        self.issued += count * lanes
        return shares[0], shares[1], shares[2]

    def _xor_share(self, bit: int) -> list[int]:
        shares = [self._rng.getrandbits(1) for _ in range(self.parties - 1)]
        parity = 0
        for s in shares:
            parity ^= s
        shares.append(parity ^ bit)
        return shares
