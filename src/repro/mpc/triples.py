"""Beaver multiplication triples for the GMW engine.

GMW evaluates XOR gates locally but needs one interaction per AND gate.  The
standard technique is a *Beaver triple*: a random triple ``(a, b, c)`` with
``c = a AND b``, secret-shared among the parties ahead of time.  During the
online phase each AND consumes one triple.

The paper runs FairplayMP whose offline phase uses oblivious transfer between
the real machines; we cannot run OT against real hosts inside a deterministic
simulation, so triples come from a trusted dealer (`TripleDealer`).  This is
the standard MPC-lab substitution (see DESIGN.md): the *online* phase -- the
part whose round and message complexity determines the scaling behaviour the
paper measures -- is unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

__all__ = [
    "BitTriple",
    "SharedBitTriple",
    "TripleDealer",
    "mask_dead_lanes",
    "unpack_triple_batch",
]

# The triple-source seam: the GMW engines accept any object exposing the
# dealer's dealing surface --
#
#     deal() -> list[SharedBitTriple]                      (scalar engine)
#     deal_batch(count, lanes) -> (a, b, c) uint64 arrays  (batch engine)
#     issued -> int                                        (circuit-size metric)
#
# ``TripleDealer`` below is the trusted-dealer implementation; the dealerless
# offline subsystem (:mod:`repro.mpc.offline`) provides drop-in sources that
# draw from a distributed preprocessing pipeline instead.


@dataclass(frozen=True)
class BitTriple:
    """A plaintext Beaver triple over GF(2): ``c == a & b``."""

    a: int
    b: int
    c: int

    def __post_init__(self) -> None:
        for name, v in (("a", self.a), ("b", self.b), ("c", self.c)):
            if v not in (0, 1):
                raise ValueError(f"triple component {name} must be a bit, got {v}")
        if self.c != (self.a & self.b):
            raise ValueError("invalid triple: c != a & b")


@dataclass(frozen=True)
class SharedBitTriple:
    """One party's XOR-shares of a Beaver triple."""

    a: int
    b: int
    c: int


class TripleDealer:
    """Trusted dealer handing out XOR-shared Beaver triples to ``parties``.

    The dealer also keeps a count of triples issued: the count equals the
    number of AND gates evaluated, which is the dominant term of the
    circuit-size metric reported in Fig. 6b.
    """

    def __init__(self, parties: int, rng: random.Random):
        if parties < 2:
            raise ValueError(f"need at least 2 parties, got {parties}")
        self.parties = parties
        self._rng = rng
        self._np_rng: np.random.Generator | None = None
        self.issued = 0

    def deal(self) -> list[SharedBitTriple]:
        """Generate one triple and split it into per-party XOR shares."""
        rng = self._rng
        a, b = rng.getrandbits(1), rng.getrandbits(1)
        triple = BitTriple(a=a, b=b, c=a & b)
        shares_a = self._xor_share(triple.a)
        shares_b = self._xor_share(triple.b)
        shares_c = self._xor_share(triple.c)
        self.issued += 1
        return [
            SharedBitTriple(a=shares_a[i], b=shares_b[i], c=shares_c[i])
            for i in range(self.parties)
        ]

    def deal_many(self, count: int) -> list[list[SharedBitTriple]]:
        """Deal ``count`` triples; result indexed ``[triple][party]``.

        Routed through :meth:`deal_batch` so scalar callers get the
        vectorized draw: one full word per 64 triples plus one partial word
        for the remainder, keeping ``issued`` at exactly ``count``.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return []
        out: list[list[SharedBitTriple]] = []
        words, rem = divmod(count, 64)
        if words:
            out.extend(unpack_triple_batch(self.deal_batch(words, lanes=64), lanes=64))
        if rem:
            out.extend(unpack_triple_batch(self.deal_batch(1, lanes=rem), lanes=rem))
        return out

    def deal_batch(
        self, count: int, lanes: int = 64
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Deal ``count * lanes`` independent bit triples, bitsliced.

        Returns ``(a, b, c)`` share arrays of shape ``(count, parties)`` and
        dtype ``uint64``: entry ``[g, p]`` holds party ``p``'s XOR share of
        64 lane-parallel triples for gate ``g`` -- bit-lane ``i`` of the
        reconstructed words satisfies ``c = a & b`` independently per lane.
        One vectorized draw replaces ``3 * parties * count * lanes``
        scalar RNG calls, which is what makes the batched GMW online phase
        triple-supply-bound no longer.

        With ``lanes < 64`` the unused high bit-lanes are masked to zero in
        every share word, so dead lanes carry no random material and the
        arrays contain exactly the ``count * lanes`` triples that ``issued``
        accounts for.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if not 1 <= lanes <= 64:
            raise ValueError(f"lanes must be in [1, 64], got {lanes}")
        if self._np_rng is None:
            # Seeded from the dealer's own stream so runs stay reproducible.
            self._np_rng = np.random.default_rng(self._rng.getrandbits(64))
        rng = self._np_rng
        a = rng.integers(0, 1 << 64, size=count, dtype=np.uint64)
        b = rng.integers(0, 1 << 64, size=count, dtype=np.uint64)
        c = a & b
        shares = []
        for word in (a, b, c):
            parts = rng.integers(
                0, 1 << 64, size=(count, self.parties - 1), dtype=np.uint64
            )
            last = np.bitwise_xor.reduce(parts, axis=1) ^ word if self.parties > 1 else word
            shares.append(np.concatenate([parts, last[:, None]], axis=1))
        self.issued += count * lanes
        return mask_dead_lanes((shares[0], shares[1], shares[2]), lanes)

    def _xor_share(self, bit: int) -> list[int]:
        shares = [self._rng.getrandbits(1) for _ in range(self.parties - 1)]
        parity = 0
        for s in shares:
            parity ^= s
        shares.append(parity ^ bit)
        return shares


def mask_dead_lanes(
    arrays: tuple[np.ndarray, np.ndarray, np.ndarray], lanes: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Zero the unused high bit-lanes of bitsliced triple share arrays.

    Share words always hold 64 lanes; when a consumer only uses the low
    ``lanes`` of them, the remaining bit positions must not carry random
    material -- they are unaccounted-for triples and, in the dealerless
    pipeline, unconsumed correlated randomness.  Masking makes the arrays
    self-describing: what you see is exactly what ``issued`` counted.
    """
    if not 1 <= lanes <= 64:
        raise ValueError(f"lanes must be in [1, 64], got {lanes}")
    if lanes == 64:
        return arrays
    mask = np.uint64((1 << lanes) - 1)
    a, b, c = arrays
    return a & mask, b & mask, c & mask


def unpack_triple_batch(
    arrays: tuple[np.ndarray, np.ndarray, np.ndarray], lanes: int = 64
) -> list[list[SharedBitTriple]]:
    """Explode bitsliced ``(a, b, c)`` share arrays into scalar share lists.

    Inverse of the bitslicing done by :meth:`TripleDealer.deal_batch`:
    returns ``count * lanes`` triples indexed ``[triple][party]``, lane-major
    within each word (lane 0 of word 0 first), matching the order in which
    scalar dealing would have produced them.
    """
    a, b, c = arrays
    count, parties = a.shape
    out: list[list[SharedBitTriple]] = []
    for g in range(count):
        for lane in range(lanes):
            bit = np.uint64(1 << lane)
            out.append(
                [
                    SharedBitTriple(
                        a=int(bool(a[g, p] & bit)),
                        b=int(bool(b[g, p] & bit)),
                        c=int(bool(c[g, p] & bit)),
                    )
                    for p in range(parties)
                ]
            )
    return out
