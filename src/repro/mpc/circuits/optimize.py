"""Circuit optimization passes: constant folding, CSE, dead-gate removal.

FairplayMP's SFDL compiler optimizes the circuits it emits; our builders
likewise generate redundancies (e.g. padding zeros flowing into adders,
repeated comparisons against the same threshold).  :func:`optimize` runs
three classic passes to a fixed point:

1. **constant folding** -- gates whose inputs are known constants are
   replaced by constants (`0 AND x = 0`, `0 XOR x = x`, ...);
2. **common-subexpression elimination** -- structurally identical gates
   (same op, same canonicalized args) are merged;
3. **dead-gate elimination** -- gates unreachable from any output wire are
   dropped.

Inputs are always preserved (their positions are part of the protocol
interface), so an optimized circuit is plug-compatible: same input vector,
same outputs, verified by the equivalence property test.  AND-gate savings
translate one-to-one into saved Beaver triples and broadcast rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpc.circuits.gates import Circuit, GateOp

__all__ = ["optimize", "OptimizationReport"]


@dataclass
class OptimizationReport:
    """Gate-count deltas of one optimization run."""

    before_total: int
    after_total: int
    before_and: int
    after_and: int

    @property
    def gates_removed(self) -> int:
        return self.before_total - self.after_total

    @property
    def and_gates_removed(self) -> int:
        return self.before_and - self.after_and


def optimize(circuit: Circuit) -> tuple[Circuit, OptimizationReport]:
    """Return an equivalent, smaller circuit plus the savings report."""
    circuit.validate()
    before = circuit.stats()

    # resolve[w] maps an original wire to its replacement in the new
    # circuit; const[w] holds a known constant value when folding applies.
    new = Circuit()
    resolve: dict[int, int] = {}
    const: dict[int, int] = {}
    # CSE table: (op, canonical args / const value / input index) -> wire.
    seen: dict[tuple, int] = {}

    def intern_const(value: int) -> int:
        key = (GateOp.CONST, value)
        if key not in seen:
            seen[key] = new.add_const(value)
        return seen[key]

    for gate in circuit.gates:
        if gate.op is GateOp.INPUT:
            # Inputs are the protocol interface: always emitted, in order.
            wire = new.add_input()
            resolve[gate.out] = wire
            continue
        if gate.op is GateOp.CONST:
            resolve[gate.out] = intern_const(gate.const_value)
            const[gate.out] = gate.const_value
            continue

        args = [resolve[a] for a in gate.args]
        arg_consts = [const.get(a) for a in gate.args]

        folded = _fold(gate.op, args, arg_consts)
        if folded is not None:
            kind, value = folded
            if kind == "const":
                resolve[gate.out] = intern_const(value)
                const[gate.out] = value
            else:  # forward to an existing wire
                resolve[gate.out] = value
            continue

        # CSE: canonicalize commutative args.
        canon = tuple(sorted(args)) if gate.op in (GateOp.XOR, GateOp.AND) else tuple(args)
        key = (gate.op, canon)
        if key in seen:
            resolve[gate.out] = seen[key]
            continue
        wire = new.add_gate(gate.op, canon)
        seen[key] = wire
        resolve[gate.out] = wire

    for out in circuit.outputs:
        new.mark_output(resolve[out])

    pruned = _prune_dead(new)
    after = pruned.stats()
    return pruned, OptimizationReport(
        before_total=before.size,
        after_total=after.size,
        before_and=before.and_,
        after_and=after.and_,
    )


def _fold(op: GateOp, args: list[int], consts: list) -> tuple | None:
    """Constant-folding rules.  Returns ("const", v), ("wire", w) or None."""
    if op is GateOp.NOT:
        (c,) = consts
        if c is not None:
            return ("const", c ^ 1)
        return None
    a_const, b_const = consts
    a_wire, b_wire = args
    if op is GateOp.XOR:
        if a_const is not None and b_const is not None:
            return ("const", a_const ^ b_const)
        if a_const == 0:
            return ("wire", b_wire)
        if b_const == 0:
            return ("wire", a_wire)
        if a_wire == b_wire:
            return ("const", 0)
        return None
    if op is GateOp.AND:
        if a_const is not None and b_const is not None:
            return ("const", a_const & b_const)
        if a_const == 0 or b_const == 0:
            return ("const", 0)
        if a_const == 1:
            return ("wire", b_wire)
        if b_const == 1:
            return ("wire", a_wire)
        if a_wire == b_wire:
            return ("wire", a_wire)
        return None
    return None


def _prune_dead(circuit: Circuit) -> Circuit:
    """Drop gates not reachable from any output (inputs always kept)."""
    live = set(circuit.outputs)
    for gate in reversed(circuit.gates):
        if gate.out in live:
            live.update(gate.args)
    pruned = Circuit()
    mapping: dict[int, int] = {}
    for gate in circuit.gates:
        if gate.op is GateOp.INPUT:
            mapping[gate.out] = pruned.add_input()
        elif gate.out in live:
            if gate.op is GateOp.CONST:
                mapping[gate.out] = pruned.add_const(gate.const_value)
            else:
                mapping[gate.out] = pruned.add_gate(
                    gate.op, tuple(mapping[a] for a in gate.args)
                )
    pruned.mark_outputs(mapping[w] for w in circuit.outputs)
    pruned.validate()
    return pruned
