"""Arithmetic sub-circuits: adders and popcount trees.

All integers are little-endian bit vectors.  The key consumers are:

* `CountBelow` (paper Alg. 2) -- sums ``c`` coordinator shares per identity
  (modular ripple-carry addition) and counts thresholds (popcount of
  comparator outputs);
* the pure-MPC baseline -- sums ``m`` provider bits directly in-circuit.
"""

from __future__ import annotations

from typing import Sequence

from repro.mpc.circuits.builder import CircuitBuilder

__all__ = [
    "half_adder",
    "full_adder",
    "ripple_add",
    "ripple_add_mod2k",
    "add_many",
    "popcount",
]


def half_adder(b: CircuitBuilder, x: int, y: int) -> tuple[int, int]:
    """Return ``(sum, carry)`` for two bits."""
    return b.xor(x, y), b.and_(x, y)


def full_adder(b: CircuitBuilder, x: int, y: int, cin: int) -> tuple[int, int]:
    """Return ``(sum, carry)`` for two bits plus carry-in.

    Uses the 1-AND construction: carry = cin ^ ((x ^ cin) & (y ^ cin)).
    """
    x_c = b.xor(x, cin)
    y_c = b.xor(y, cin)
    s = b.xor(x_c, y)
    carry = b.xor(cin, b.and_(x_c, y_c))
    return s, carry


def ripple_add(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> list[int]:
    """Add two equal-width numbers, returning ``width + 1`` result bits."""
    if len(xs) != len(ys):
        raise ValueError("ripple_add operands must have equal width")
    out: list[int] = []
    carry = b.zero()
    for x, y in zip(xs, ys):
        s, carry = full_adder(b, x, y, carry)
        out.append(s)
    out.append(carry)
    return out


def ripple_add_mod2k(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> list[int]:
    """Add two equal-width numbers modulo ``2^width`` (carry-out dropped).

    This is how CountBelow sums additive shares over ``Z_q`` when ``q`` is a
    power of two: modular wrap-around is exactly truncation of the carry.
    """
    return ripple_add(b, xs, ys)[: len(xs)]


def add_many(b: CircuitBuilder, numbers: Sequence[Sequence[int]], modular: bool = False) -> list[int]:
    """Balanced adder tree over >= 1 equal-width numbers.

    Non-modular mode widens intermediate results so the exact sum is
    preserved; modular mode keeps the input width and wraps mod ``2^width``.
    """
    if not numbers:
        raise ValueError("add_many needs at least one number")
    width = len(numbers[0])
    for n in numbers:
        if len(n) != width:
            raise ValueError("add_many operands must share a width")
    level = [list(n) for n in numbers]
    while len(level) > 1:
        nxt: list[list[int]] = []
        for i in range(0, len(level) - 1, 2):
            a, bb = level[i], level[i + 1]
            if modular:
                nxt.append(ripple_add_mod2k(b, a, bb))
            else:
                w = max(len(a), len(bb))
                a = _pad(b, a, w)
                bb = _pad(b, bb, w)
                nxt.append(ripple_add(b, a, bb))
        if len(level) % 2:
            nxt.append(level[-1])
        if not modular:
            w = max(len(n) for n in nxt)
            nxt = [_pad(b, n, w) for n in nxt]
        level = nxt
    return level[0]


def popcount(b: CircuitBuilder, bits: Sequence[int]) -> list[int]:
    """Number of set bits among ``bits``, as an exact-width bit vector."""
    if not bits:
        raise ValueError("popcount over zero bits")
    return add_many(b, [[bit] for bit in bits], modular=False)


def _pad(b: CircuitBuilder, bits: list[int], width: int) -> list[int]:
    if len(bits) >= width:
        return bits
    return bits + [b.zero()] * (width - len(bits))
