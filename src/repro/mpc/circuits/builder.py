"""High-level circuit construction helpers.

`CircuitBuilder` wraps a :class:`~repro.mpc.circuits.gates.Circuit` with the
derived operators (OR, MUX, equality, ...) used by the arithmetic sub-circuits
in :mod:`repro.mpc.circuits.adder` and :mod:`repro.mpc.circuits.comparator`.

Multi-bit integers are represented as little-endian lists of wire ids
(``bits[0]`` is the least significant bit), matching the convention of the
adder/comparator modules.
"""

from __future__ import annotations

from typing import Sequence

from repro.mpc.circuits.gates import Circuit, GateOp

__all__ = ["CircuitBuilder"]


class CircuitBuilder:
    """Fluent builder producing a :class:`Circuit`."""

    def __init__(self) -> None:
        self.circuit = Circuit()
        self._zero: int | None = None
        self._one: int | None = None

    # -- wires ------------------------------------------------------------

    def input_bit(self) -> int:
        return self.circuit.add_input()

    def input_bits(self, width: int) -> list[int]:
        """``width`` fresh input wires, little-endian."""
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        return [self.circuit.add_input() for _ in range(width)]

    def zero(self) -> int:
        """The shared constant-0 wire (created lazily, reused)."""
        if self._zero is None:
            self._zero = self.circuit.add_const(0)
        return self._zero

    def one(self) -> int:
        if self._one is None:
            self._one = self.circuit.add_const(1)
        return self._one

    def constant_bits(self, value: int, width: int) -> list[int]:
        """Wires for the little-endian binary expansion of ``value``."""
        if value < 0:
            raise ValueError(f"constants must be non-negative, got {value}")
        if value >= (1 << width):
            raise ValueError(f"{value} does not fit in {width} bits")
        return [self.one() if (value >> i) & 1 else self.zero() for i in range(width)]

    # -- primitive gates ----------------------------------------------------

    def xor(self, a: int, b: int) -> int:
        return self.circuit.add_gate(GateOp.XOR, (a, b))

    def and_(self, a: int, b: int) -> int:
        return self.circuit.add_gate(GateOp.AND, (a, b))

    def not_(self, a: int) -> int:
        return self.circuit.add_gate(GateOp.NOT, (a,))

    # -- derived gates --------------------------------------------------------

    def or_(self, a: int, b: int) -> int:
        """``a | b`` as ``(a ^ b) ^ (a & b)``."""
        return self.xor(self.xor(a, b), self.and_(a, b))

    def xnor(self, a: int, b: int) -> int:
        return self.not_(self.xor(a, b))

    def mux(self, sel: int, if_true: int, if_false: int) -> int:
        """``sel ? if_true : if_false`` = ``if_false ^ (sel & (if_true ^ if_false))``."""
        return self.xor(if_false, self.and_(sel, self.xor(if_true, if_false)))

    def mux_bits(self, sel: int, if_true: Sequence[int], if_false: Sequence[int]) -> list[int]:
        if len(if_true) != len(if_false):
            raise ValueError("mux arms must have equal width")
        return [self.mux(sel, t, f) for t, f in zip(if_true, if_false)]

    def and_many(self, bits: Sequence[int]) -> int:
        """Balanced AND-tree over one or more bits."""
        return self._tree(list(bits), self.and_)

    def or_many(self, bits: Sequence[int]) -> int:
        return self._tree(list(bits), self.or_)

    def xor_many(self, bits: Sequence[int]) -> int:
        return self._tree(list(bits), self.xor)

    def equal_bits(self, a: Sequence[int], b: Sequence[int]) -> int:
        """1 iff the two little-endian bit vectors encode the same integer."""
        if len(a) != len(b):
            raise ValueError("equality operands must have equal width")
        return self.and_many([self.xnor(x, y) for x, y in zip(a, b)])

    def is_zero(self, bits: Sequence[int]) -> int:
        return self.not_(self.or_many(bits))

    # -- outputs ------------------------------------------------------------

    def output(self, wire: int) -> None:
        self.circuit.mark_output(wire)

    def output_bits(self, bits: Sequence[int]) -> None:
        self.circuit.mark_outputs(bits)

    def build(self) -> Circuit:
        self.circuit.validate()
        return self.circuit

    # -- internals ------------------------------------------------------------

    def _tree(self, bits: list[int], op) -> int:
        if not bits:
            raise ValueError("tree reduction over zero bits")
        while len(bits) > 1:
            nxt = [op(bits[i], bits[i + 1]) for i in range(0, len(bits) - 1, 2)]
            if len(bits) % 2:
                nxt.append(bits[-1])
            bits = nxt
        return bits[0]
