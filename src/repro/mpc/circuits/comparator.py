"""Comparison sub-circuits.

`CountBelow` (paper Alg. 2, line 4: ``if S[j] < t``) needs an unsigned
less-than over reconstructed frequency sums.  The circuits here follow the
classic ripple construction: compute the borrow chain of ``a - b``; the final
borrow is ``a < b``.
"""

from __future__ import annotations

from typing import Sequence

from repro.mpc.circuits.builder import CircuitBuilder

__all__ = ["less_than", "less_than_const", "greater_equal", "equals_const"]


def less_than(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> int:
    """1 iff unsigned ``xs < ys`` (equal widths, little-endian).

    Borrow recurrence, LSB to MSB:
    ``borrow' = (~x & y) | (borrow & ~(x ^ y))``, realized with 1 AND per bit
    via ``borrow' = borrow ^ ((x ^ borrow) & (y ^ borrow))`` -- the same trick
    as the full adder, since borrow-out is the majority of (~x, y, borrow).
    """
    if len(xs) != len(ys):
        raise ValueError("less_than operands must have equal width")
    borrow = b.zero()
    for x, y in zip(xs, ys):
        x_b = b.xor(x, borrow)
        y_b = b.xor(y, borrow)
        # majority(~x, y, borrow) == borrow ^ ((~x ^ borrow) & (y ^ borrow));
        # fold the NOT into the XOR chain: (~x ^ borrow) = NOT(x ^ borrow).
        borrow = b.xor(borrow, b.and_(b.not_(x_b), y_b))
    return borrow


def less_than_const(b: CircuitBuilder, xs: Sequence[int], value: int) -> int:
    """1 iff unsigned ``xs < value`` for a public constant threshold."""
    ys = b.constant_bits(value, len(xs))
    return less_than(b, xs, ys)


def greater_equal(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> int:
    """1 iff unsigned ``xs >= ys``."""
    return b.not_(less_than(b, xs, ys))


def equals_const(b: CircuitBuilder, xs: Sequence[int], value: int) -> int:
    """1 iff ``xs`` encodes exactly ``value``."""
    ys = b.constant_bits(value, len(xs))
    return b.equal_bits(xs, ys)
