"""In-circuit fixed-point evaluation of the β formulas (Eq. 3/4/5).

This is the heart of the *pure-MPC baseline*: the Eq. 8 computation flow
evaluates the raw probability β* inside the secure computation, which means
division, multiplication and square roots over secret values.  The ǫ-PPI
reordering (Eq. 9) replaces all of this with a single comparison -- these
circuits exist to measure exactly what that replacement saves.

Representation: unsigned fixed point with ``FRAC_BITS`` fractional bits
(β value 1.0 == ``ONE = 2^FRAC_BITS``).  All formulas take the secret
frequency bit-vector ``f`` and public constants (m, ǫ, Δ, γ) and return the
bits of ``β · ONE``, saturating rather than wrapping (a saturated β simply
classifies the identity as common, which is the correct semantics).

Formulas, derived from the paper:

* basic (Eq. 3):      β_b = f·ǫ / ((m − f)(1 − ǫ))
* incremented (Eq. 4): β_d = β_b + Δ
* Chernoff (Eq. 5):   β_c = β_b + G + sqrt(G² + 2 β_b G),
                       G = ln(1/(1−γ)) / (m − f)
"""

from __future__ import annotations

from typing import Sequence

from repro.mpc.circuits.adder import ripple_add
from repro.mpc.circuits.builder import CircuitBuilder
from repro.mpc.circuits.divider import divide, isqrt
from repro.mpc.circuits.multiplier import (
    multiply,
    multiply_const,
    ripple_sub,
    shift_left,
    truncate,
)

__all__ = [
    "FRAC_BITS",
    "ONE",
    "beta_basic_circuit",
    "beta_incremented_circuit",
    "beta_chernoff_circuit",
    "beta_width",
]

FRAC_BITS = 8
ONE = 1 << FRAC_BITS
# Output width of every β circuit: integer part up to 2 bits (saturating at
# just above 1.0 is enough -- larger values are clamped) + fraction.
_BETA_INT_BITS = 2


def beta_width() -> int:
    """Bit width of the fixed-point β values produced here."""
    return FRAC_BITS + _BETA_INT_BITS


def beta_basic_circuit(
    b: CircuitBuilder, freq: Sequence[int], m: int, epsilon: float
) -> list[int]:
    """β_b · ONE = (f · C1) / (m − f) with C1 = round(ǫ/(1−ǫ) · ONE).

    ǫ = 0 short-circuits to the zero constant; ǫ = 1 to saturation (only
    broadcast satisfies the degree) -- matching
    :func:`repro.core.policies.basic_beta`'s edge cases.
    """
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
    if epsilon == 0.0:
        return [b.zero()] * beta_width()
    if epsilon == 1.0:
        return _saturated(b)
    c1 = max(1, round(epsilon / (1.0 - epsilon) * ONE))
    numerator = multiply_const(b, freq, c1)
    denominator = _m_minus_f(b, freq, m, width=len(numerator))
    quotient, _ = divide(b, numerator, denominator)
    return _saturate(b, quotient)


def beta_incremented_circuit(
    b: CircuitBuilder, freq: Sequence[int], m: int, epsilon: float, delta: float
) -> list[int]:
    """β_d · ONE = β_b · ONE + round(Δ · ONE), gated so β_b = 0 stays 0."""
    if delta < 0:
        raise ValueError(f"delta must be >= 0, got {delta}")
    base = beta_basic_circuit(b, freq, m, epsilon)
    bump = round(delta * ONE)
    if bump == 0:
        return base
    bumped = ripple_add(b, base, b.constant_bits(bump, len(base)))
    # Keep absent identities (β_b = 0) at zero: Eq. 4's gate.
    nonzero = b.or_many(base)
    return _saturate(b, b.mux_bits(nonzero, bumped, [b.zero()] * len(bumped)))


def beta_chernoff_circuit(
    b: CircuitBuilder, freq: Sequence[int], m: int, epsilon: float, gamma: float
) -> list[int]:
    """β_c · ONE per Eq. 5, all arithmetic in-circuit.

    ``G·ONE = C2 / (m − f)`` with the public constant
    ``C2 = round(ln(1/(1−γ)) · ONE)``; the discriminant
    ``G² + 2 β_b G`` is evaluated at ONE-scale via two multiplications and
    the square root via :func:`isqrt` on the ONE²-scaled value.
    """
    import math

    if not 0.5 < gamma < 1.0:
        raise ValueError(f"gamma must be in (0.5, 1), got {gamma}")
    if epsilon == 0.0:
        return [b.zero()] * beta_width()
    beta_b = beta_basic_circuit(b, freq, m, epsilon)

    c2 = max(1, round(math.log(1.0 / (1.0 - gamma)) * ONE))
    c2_bits = max(1, c2.bit_length())
    numerator = b.constant_bits(c2, c2_bits)
    denominator = _m_minus_f(b, freq, m, width=c2_bits)
    g, _ = divide(b, numerator, denominator)
    g = _saturate(b, g)

    # Discriminant at ONE scale: (G·ONE)² / ONE + 2 (β_b·ONE)(G·ONE) / ONE.
    g_sq = truncate(multiply(b, g, g), FRAC_BITS)
    cross = truncate(multiply(b, beta_b, g), FRAC_BITS)
    cross2 = shift_left(b, cross, 1)
    width = max(len(g_sq), len(cross2))
    disc = ripple_add(b, _pad(b, g_sq, width), _pad(b, cross2, width))

    # sqrt(v)·ONE = isqrt(v·ONE · ONE) where disc = v·ONE.
    root = isqrt(b, shift_left(b, disc, FRAC_BITS))
    root = _saturate(b, root)

    total = ripple_add(b, beta_b, g)
    total = ripple_add(b, total, _pad(b, root, len(total)))
    return _saturate(b, total)


def _m_minus_f(b: CircuitBuilder, freq: Sequence[int], m: int, width: int) -> list[int]:
    """``m − f`` widened to ``width`` bits (f ≤ m by construction)."""
    w = max(width, max(1, m.bit_length()), len(freq))
    m_bits = b.constant_bits(m, w)
    f_bits = _pad(b, list(freq), w)
    diff, _ = ripple_sub(b, m_bits, f_bits)
    return diff[:width] if width <= len(diff) else _pad(b, diff, width)


def _saturate(b: CircuitBuilder, bits: Sequence[int]) -> list[int]:
    """Clamp a non-negative fixed-point value into the β output width.

    Values with any bit set above the output width saturate to the maximum
    representable β (which is > 1.0, i.e. "common").
    """
    width = beta_width()
    bits = list(bits)
    if len(bits) <= width:
        return _pad(b, bits, width)
    overflow = b.or_many(bits[width:])
    max_bits = [b.one()] * width
    return b.mux_bits(overflow, max_bits, bits[:width])


def _saturated(b: CircuitBuilder) -> list[int]:
    return [b.one()] * beta_width()


def _pad(b: CircuitBuilder, bits: list[int], width: int) -> list[int]:
    if len(bits) >= width:
        return list(bits)
    return list(bits) + [b.zero()] * (width - len(bits))
