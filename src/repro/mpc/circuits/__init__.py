"""Boolean-circuit framework: the computation model of the generic-MPC stage.

This package plays the role of FairplayMP's circuit compiler in the paper's
prototype: protocol logic (CountBelow, the pure-MPC baseline) is *compiled*
to circuits of XOR/AND/NOT gates, whose gate counts give the circuit-size
metric of Fig. 6b and which the GMW engine evaluates securely.
"""

from repro.mpc.circuits.adder import (
    add_many,
    full_adder,
    half_adder,
    popcount,
    ripple_add,
    ripple_add_mod2k,
)
from repro.mpc.circuits.builder import CircuitBuilder
from repro.mpc.circuits.comparator import (
    equals_const,
    greater_equal,
    less_than,
    less_than_const,
)
from repro.mpc.circuits.compiled import (
    LANES,
    CompiledCircuit,
    CompiledLayer,
    compile_circuit,
    evaluate_batch,
    pack_lanes,
    unpack_lanes,
)
from repro.mpc.circuits.evaluator import (
    bit_matrix_to_ints,
    bits_to_int,
    evaluate,
    int_to_bits,
    ints_to_bit_matrix,
)
from repro.mpc.circuits.divider import divide, isqrt
from repro.mpc.circuits.gates import Circuit, CircuitStats, Gate, GateOp
from repro.mpc.circuits.multiplier import (
    multiply,
    multiply_const,
    ripple_sub,
    shift_left,
    truncate,
)
from repro.mpc.circuits.optimize import OptimizationReport, optimize

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "CircuitStats",
    "CompiledCircuit",
    "CompiledLayer",
    "Gate",
    "GateOp",
    "LANES",
    "add_many",
    "bit_matrix_to_ints",
    "bits_to_int",
    "compile_circuit",
    "equals_const",
    "evaluate",
    "evaluate_batch",
    "full_adder",
    "greater_equal",
    "half_adder",
    "int_to_bits",
    "ints_to_bit_matrix",
    "pack_lanes",
    "unpack_lanes",
    "less_than",
    "less_than_const",
    "multiply",
    "multiply_const",
    "popcount",
    "ripple_add",
    "ripple_add_mod2k",
    "ripple_sub",
    "shift_left",
    "truncate",
    "divide",
    "isqrt",
    "optimize",
    "OptimizationReport",
]
