"""Restoring division and integer square-root circuits.

These are the expensive cores of the in-MPC β* evaluation (pure-MPC
baseline, paper Eq. 8): a ``w``-bit restoring divider costs ~``3 w^2`` AND
gates and the digit-recurrence square root about half that -- compared to
the single ``w``-AND comparator the ǫ-PPI reordering (Eq. 9) leaves inside
MPC.
"""

from __future__ import annotations

from typing import Sequence

from repro.mpc.circuits.builder import CircuitBuilder
from repro.mpc.circuits.multiplier import ripple_sub

__all__ = ["divide", "isqrt"]


def divide(
    b: CircuitBuilder, numerator: Sequence[int], denominator: Sequence[int]
) -> tuple[list[int], list[int]]:
    """Unsigned restoring division: returns ``(quotient, remainder)``.

    Classic long division, MSB first: shift the remainder left, bring down
    the next numerator bit, conditionally subtract the denominator.  A zero
    denominator yields the all-ones quotient (saturation) -- callers in the
    β circuits rely on this: ``f = m`` makes ``m - f = 0`` and the saturated
    β correctly classifies the identity as common.

    Quotient width = numerator width; remainder width = denominator width.
    """
    if not numerator or not denominator:
        raise ValueError("divide needs non-empty operands")
    wd = len(denominator)
    # Remainder register one bit wider than the denominator so the shifted
    # value always fits before the conditional subtract.
    remainder = [b.zero()] * (wd + 1)
    den_wide = list(denominator) + [b.zero()]
    quotient: list[int] = [b.zero()] * len(numerator)
    for i in reversed(range(len(numerator))):
        # remainder = (remainder << 1) | numerator[i]
        remainder = [numerator[i]] + remainder[:-1]
        diff, borrow = ripple_sub(b, remainder, den_wide)
        keep = b.not_(borrow)  # 1 iff remainder >= denominator
        quotient[i] = keep
        remainder = b.mux_bits(keep, diff, remainder)
    return quotient, remainder[:wd]


def isqrt(b: CircuitBuilder, xs: Sequence[int]) -> list[int]:
    """Integer square root by binary digit recurrence.

    Returns ``floor(sqrt(x))`` with ``ceil(width / 2)`` bits.  Each of the
    ``w/2`` iterations performs one trial subtraction on a ``w+2``-bit
    register -- the same restoring pattern as :func:`divide`.
    """
    if not xs:
        raise ValueError("isqrt needs a non-empty operand")
    width = len(xs)
    if width % 2:
        xs = list(xs) + [b.zero()]
        width += 1
    out_width = width // 2
    # Registers sized to hold the largest trial value.
    reg_w = width + 2
    remainder = [b.zero()] * reg_w
    root = [b.zero()] * reg_w
    for i in reversed(range(out_width)):
        # Bring down the next two bits of x (MSB first).
        remainder = [xs[2 * i], xs[2 * i + 1]] + remainder[:-2]
        # trial = (root << 2) | 1  -- root currently holds the partial root
        # aligned so that appending "01" forms the classic trial value.
        trial = [b.one(), b.zero()] + root[:-2]
        diff, borrow = ripple_sub(b, remainder, trial)
        keep = b.not_(borrow)
        remainder = b.mux_bits(keep, diff, remainder)
        # root = (root << 1) | keep
        root = [keep] + root[:-1]
    return root[:out_width]
