"""Multiplication and subtraction sub-circuits.

Used by the fixed-point β-formula circuits of the pure-MPC baseline
(:mod:`repro.mpc.circuits.fixedpoint`): the paper's Eq. 8 flow evaluates the
"raw probability β*" -- division, multiplication, square root -- inside the
secure computation, which is precisely the cost the ǫ-PPI reordering
(Eq. 9) eliminates.
"""

from __future__ import annotations

from typing import Sequence

from repro.mpc.circuits.adder import add_many
from repro.mpc.circuits.builder import CircuitBuilder

__all__ = ["multiply", "multiply_const", "ripple_sub", "shift_left", "truncate"]


def multiply(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> list[int]:
    """Schoolbook multiplication: ``len(xs) + len(ys)`` result bits.

    Partial products are AND rows summed by the adder tree, so the AND cost
    is ``len(xs) * len(ys)`` -- the quadratic blow-up that makes in-MPC
    arithmetic expensive.
    """
    if not xs or not ys:
        raise ValueError("multiply needs non-empty operands")
    out_width = len(xs) + len(ys)
    rows = []
    for i, y_bit in enumerate(ys):
        row = [b.zero()] * i
        row.extend(b.and_(x_bit, y_bit) for x_bit in xs)
        row.extend([b.zero()] * (out_width - len(row)))
        rows.append(row)
    return add_many(b, rows, modular=True)[:out_width]


def multiply_const(b: CircuitBuilder, xs: Sequence[int], value: int) -> list[int]:
    """Multiply by a public constant via shift-and-add (no AND per bit pair).

    Result width: ``len(xs) + value.bit_length()``.
    """
    if value < 0:
        raise ValueError(f"constant must be non-negative, got {value}")
    out_width = len(xs) + max(1, value.bit_length())
    if value == 0:
        return [b.zero()] * out_width
    rows = []
    for i in range(value.bit_length()):
        if (value >> i) & 1:
            row = [b.zero()] * i + list(xs)
            row.extend([b.zero()] * (out_width - len(row)))
            rows.append(row)
    return add_many(b, rows, modular=True)[:out_width]


def ripple_sub(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> tuple[list[int], int]:
    """Unsigned subtraction ``xs - ys``: returns (difference, borrow_out).

    ``borrow_out = 1`` iff ``xs < ys`` (the difference then wraps mod
    ``2^width``).  One AND per bit, like the adder.
    """
    if len(xs) != len(ys):
        raise ValueError("ripple_sub operands must have equal width")
    diff: list[int] = []
    borrow = b.zero()
    for x, y in zip(xs, ys):
        x_b = b.xor(x, borrow)
        y_b = b.xor(y, borrow)
        diff.append(b.xor(x_b, y))
        borrow = b.xor(borrow, b.and_(b.not_(x_b), y_b))
    return diff, borrow


def shift_left(b: CircuitBuilder, xs: Sequence[int], amount: int) -> list[int]:
    """Multiply by ``2^amount`` (free: wire relabeling plus zero bits)."""
    if amount < 0:
        raise ValueError(f"shift amount must be >= 0, got {amount}")
    return [b.zero()] * amount + list(xs)


def truncate(xs: Sequence[int], amount: int) -> list[int]:
    """Divide by ``2^amount`` (free: drop low bits)."""
    if amount < 0:
        raise ValueError(f"truncate amount must be >= 0, got {amount}")
    if amount >= len(xs):
        raise ValueError("truncating away every bit")
    return list(xs[amount:])
