"""Compiled circuits: the flat, array-backed form shared by all evaluators.

A :class:`~repro.mpc.circuits.gates.Circuit` is a list of `Gate` objects --
convenient to build, slow to interpret.  `compile_circuit` lowers it once
into a :class:`CompiledCircuit`: flat ``numpy`` opcode/argument/output
arrays plus a precomputed layer schedule (gates grouped by multiplicative
depth, AND gates of each layer gathered into index arrays).  Both the
plaintext evaluators and the GMW engines run off this form, so the layering
logic -- which also determines the round accounting -- exists in exactly one
place.

The compiled form is what makes *bitsliced* batch evaluation possible: with
every wire holding a ``uint64`` whose bit-lanes are independent instances,
one pass over the compiled program evaluates up to 64 instances at once,
and the per-layer AND index arrays let the Beaver-triple masking be
vectorized across gates as well as lanes (see :mod:`repro.mpc.gmw`).

Compilation is cached on the circuit object itself: building is O(gates)
and every identity in a batched CountBelow run shares one circuit, so the
cache turns n compilations into one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.mpc.circuits.gates import Circuit, GateOp

__all__ = [
    "CompiledCircuit",
    "CompiledLayer",
    "compile_circuit",
    "evaluate_batch",
    "pack_lanes",
    "unpack_lanes",
    "LANES",
]

# Lane capacity of one machine word: instances per bitsliced evaluation pass.
LANES = 64

# Opcodes of the flat program (values match the array in ``ops``).
OP_INPUT, OP_CONST, OP_XOR, OP_AND, OP_NOT = range(5)

_OPCODE = {
    GateOp.INPUT: OP_INPUT,
    GateOp.CONST: OP_CONST,
    GateOp.XOR: OP_XOR,
    GateOp.AND: OP_AND,
    GateOp.NOT: OP_NOT,
}

_FULL_MASK = (1 << LANES) - 1


@dataclass
class CompiledLayer:
    """One multiplicative-depth layer of the schedule.

    ``linear`` holds the non-AND gates of the layer in topological order as
    ``(op, arg0, arg1, out, aux)`` tuples (``aux`` is the input index for
    INPUT gates and the bit value for CONST gates).  AND gates are safe to
    evaluate *before* the layer's linear gates -- their arguments always come
    from strictly earlier layers -- which is what lets one vectorized Beaver
    step handle the whole layer.
    """

    linear: list = field(default_factory=list)
    and_a: np.ndarray = None
    and_b: np.ndarray = None
    and_out: np.ndarray = None

    @property
    def n_ands(self) -> int:
        return len(self.and_out)


@dataclass
class CompiledCircuit:
    """Flat program: numpy opcode/arg/out arrays + the layer schedule."""

    n_wires: int
    n_inputs: int
    ops: np.ndarray  # uint8, one opcode per gate
    arg0: np.ndarray  # int64, first argument wire (-1 if none)
    arg1: np.ndarray  # int64, second argument wire (-1 if none)
    out: np.ndarray  # int64, output wire (== gate index)
    aux: np.ndarray  # int64, input index / const value
    outputs: np.ndarray  # int64, output wire ids
    layers: list  # list[CompiledLayer]
    and_gates: int
    gate_count: int  # non-free gates (the Fig. 6b "size" metric)

    @property
    def n_outputs(self) -> int:
        return len(self.outputs)


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Lower ``circuit`` to flat arrays + AND layers (cached on the circuit)."""
    cached = getattr(circuit, "_compiled", None)
    if cached is not None:
        return cached

    n = circuit.n_wires
    ops = np.zeros(n, dtype=np.uint8)
    arg0 = np.full(n, -1, dtype=np.int64)
    arg1 = np.full(n, -1, dtype=np.int64)
    out = np.zeros(n, dtype=np.int64)
    aux = np.zeros(n, dtype=np.int64)

    depth = [0] * n
    layer_gates: dict = {}
    and_total = 0
    size = 0
    for i, gate in enumerate(circuit.gates):
        code = _OPCODE[gate.op]
        ops[i] = code
        out[i] = gate.out
        if gate.args:
            arg0[i] = gate.args[0]
            if len(gate.args) > 1:
                arg1[i] = gate.args[1]
        if gate.op is GateOp.INPUT:
            aux[i] = gate.input_index
            d = 0
        elif gate.op is GateOp.CONST:
            aux[i] = gate.const_value
            d = 0
        elif gate.op is GateOp.AND:
            d = max(depth[a] for a in gate.args) + 1
            and_total += 1
            size += 1
        else:
            d = max((depth[a] for a in gate.args), default=0)
            size += 1
        depth[gate.out] = d
        layer_gates.setdefault(d, []).append(i)

    layers: list[CompiledLayer] = []
    for d in sorted(layer_gates):
        linear = []
        la, lb, lo = [], [], []
        for i in layer_gates[d]:
            if ops[i] == OP_AND:
                la.append(arg0[i])
                lb.append(arg1[i])
                lo.append(out[i])
            else:
                linear.append((int(ops[i]), int(arg0[i]), int(arg1[i]), int(out[i]), int(aux[i])))
        layers.append(
            CompiledLayer(
                linear=linear,
                and_a=np.asarray(la, dtype=np.int64),
                and_b=np.asarray(lb, dtype=np.int64),
                and_out=np.asarray(lo, dtype=np.int64),
            )
        )

    compiled = CompiledCircuit(
        n_wires=n,
        n_inputs=circuit.n_inputs,
        ops=ops,
        arg0=arg0,
        arg1=arg1,
        out=out,
        aux=aux,
        outputs=np.asarray(circuit.outputs, dtype=np.int64),
        layers=layers,
        and_gates=and_total,
        gate_count=size,
    )
    circuit._compiled = compiled
    return compiled


# -- lane packing ------------------------------------------------------------


def pack_lanes(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(n_lanes, n_cols)`` 0/1 matrix into ``(n_cols,)`` uint64 words.

    Lane ``i`` (instance ``i``) becomes bit ``i`` of every output word.
    """
    b = np.ascontiguousarray(bits, dtype=np.uint64)
    if b.ndim != 2:
        raise ValueError(f"expected a 2-D bit matrix, got shape {b.shape}")
    n_lanes = b.shape[0]
    if n_lanes > LANES:
        raise ValueError(f"at most {LANES} lanes per word, got {n_lanes}")
    if n_lanes == 0:
        return np.zeros(b.shape[1], dtype=np.uint64)
    shifts = np.arange(n_lanes, dtype=np.uint64)[:, None]
    return np.bitwise_or.reduce(b << shifts, axis=0)


def unpack_lanes(words: np.ndarray, n_lanes: int) -> np.ndarray:
    """Inverse of :func:`pack_lanes`: ``(n_cols,)`` words -> ``(n_lanes, n_cols)``."""
    if n_lanes > LANES:
        raise ValueError(f"at most {LANES} lanes per word, got {n_lanes}")
    w = np.ascontiguousarray(words, dtype=np.uint64)
    shifts = np.arange(n_lanes, dtype=np.uint64)[:, None]
    return ((w[None, :] >> shifts) & np.uint64(1)).astype(np.uint8)


# -- bitsliced plaintext evaluation ---------------------------------------------


def evaluate_batch(circuit: Circuit, inputs: Sequence[Sequence[int]]) -> np.ndarray:
    """Evaluate ``circuit`` on many input rows at once, bitsliced.

    ``inputs`` is an ``(n_instances, n_inputs)`` 0/1 matrix; the result is the
    ``(n_instances, n_outputs)`` matrix of output bits, row ``i`` equal to
    ``evaluate(circuit, inputs[i])``.  Instances are packed 64 to a word;
    larger batches are chunked transparently.
    """
    compiled = compile_circuit(circuit)
    mat = np.asarray(inputs, dtype=np.uint8)
    if mat.ndim != 2 or mat.shape[1] != compiled.n_inputs:
        raise ValueError(
            f"expected an (n, {compiled.n_inputs}) input matrix, got shape {mat.shape}"
        )
    if mat.size and mat.max() > 1:
        raise ValueError("inputs must be bits")
    n = mat.shape[0]
    out = np.empty((n, compiled.n_outputs), dtype=np.uint8)
    for start in range(0, n, LANES):
        chunk = mat[start : start + LANES]
        packed = _evaluate_packed(compiled, pack_lanes(chunk))
        out[start : start + LANES] = unpack_lanes(packed, chunk.shape[0])
    return out


def _evaluate_packed(compiled: CompiledCircuit, packed_inputs: np.ndarray) -> np.ndarray:
    """One bitsliced pass: packed input words -> packed output words."""
    wires = np.zeros(compiled.n_wires, dtype=np.uint64)
    inputs = packed_inputs
    full = np.uint64(_FULL_MASK)
    for layer in compiled.layers:
        if layer.n_ands:
            wires[layer.and_out] = wires[layer.and_a] & wires[layer.and_b]
        for op, a0, a1, w, aux in layer.linear:
            if op == OP_XOR:
                wires[w] = wires[a0] ^ wires[a1]
            elif op == OP_NOT:
                wires[w] = wires[a0] ^ full
            elif op == OP_INPUT:
                wires[w] = inputs[aux]
            else:  # OP_CONST
                wires[w] = full if aux else np.uint64(0)
    return wires[compiled.outputs]
