"""Plaintext circuit evaluation and bit-vector encode/decode helpers.

The plaintext evaluator is the correctness oracle for the GMW engine: every
secure evaluation in the test suite is cross-checked against
:func:`evaluate`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mpc.circuits.gates import Circuit, GateOp

__all__ = [
    "evaluate",
    "int_to_bits",
    "bits_to_int",
    "ints_to_bit_matrix",
    "bit_matrix_to_ints",
]


def evaluate(circuit: Circuit, inputs: Sequence[int]) -> list[int]:
    """Evaluate ``circuit`` on a flat bit vector, returning output bits."""
    if len(inputs) != circuit.n_inputs:
        raise ValueError(
            f"circuit has {circuit.n_inputs} inputs, got {len(inputs)} values"
        )
    for v in inputs:
        if v not in (0, 1):
            raise ValueError(f"inputs must be bits, got {v}")
    wires = [0] * circuit.n_wires
    for gate in circuit.gates:
        if gate.op is GateOp.INPUT:
            wires[gate.out] = inputs[gate.input_index]
        elif gate.op is GateOp.CONST:
            wires[gate.out] = gate.const_value
        elif gate.op is GateOp.XOR:
            wires[gate.out] = wires[gate.args[0]] ^ wires[gate.args[1]]
        elif gate.op is GateOp.AND:
            wires[gate.out] = wires[gate.args[0]] & wires[gate.args[1]]
        elif gate.op is GateOp.NOT:
            wires[gate.out] = wires[gate.args[0]] ^ 1
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(f"unknown gate op {gate.op}")
    return [wires[w] for w in circuit.outputs]


def int_to_bits(value: int, width: int) -> list[int]:
    """Little-endian binary expansion; raises if ``value`` does not fit."""
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >= (1 << width):
        raise ValueError(f"{value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`int_to_bits`."""
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0/1, got {bit}")
        value |= bit << i
    return value


def ints_to_bit_matrix(values: Sequence[int], width: int) -> np.ndarray:
    """Vectorized :func:`int_to_bits` over many values.

    Returns an ``(len(values), width)`` uint8 matrix, row ``i`` the
    little-endian expansion of ``values[i]``.  This is the batch-width
    encoder for the bitsliced pipelines -- one shift/mask pass instead of a
    Python loop per value.
    """
    vals = np.asarray(values, dtype=np.int64)
    if vals.ndim != 1:
        raise ValueError(f"expected a 1-D value vector, got shape {vals.shape}")
    if vals.size:
        if vals.min() < 0:
            raise ValueError("values must be non-negative")
        if int(vals.max()) >= (1 << width):
            raise ValueError(f"{int(vals.max())} does not fit in {width} bits")
    shifts = np.arange(width, dtype=np.int64)
    return ((vals[:, None] >> shifts[None, :]) & 1).astype(np.uint8)


def bit_matrix_to_ints(bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`ints_to_bit_matrix`: ``(n, width)`` bits -> ``(n,)`` ints."""
    mat = np.asarray(bits, dtype=np.int64)
    if mat.ndim != 2:
        raise ValueError(f"expected a 2-D bit matrix, got shape {mat.shape}")
    weights = np.int64(1) << np.arange(mat.shape[1], dtype=np.int64)
    return (mat * weights[None, :]).sum(axis=1)
