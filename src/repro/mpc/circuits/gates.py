"""Boolean circuit representation.

Circuits are straight-line programs over single-bit wires with XOR / AND /
NOT gates plus constant and input wires.  This mirrors the computation model
of FairplayMP (the Boolean-circuit MPC engine used by the paper): XOR and NOT
are "free" under XOR-sharing while each AND gate costs one interactive
multiplication, so gate counts here translate directly into the paper's
circuit-size metric (Fig. 6b).

A circuit is built once (see :mod:`repro.mpc.circuits.builder`) and then
evaluated either in plaintext (:mod:`repro.mpc.circuits.evaluator`) or
securely under GMW (:mod:`repro.mpc.gmw`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

__all__ = ["GateOp", "Gate", "Circuit", "CircuitStats"]


class GateOp(enum.Enum):
    """Gate kinds supported by the evaluators."""

    INPUT = "input"  # value supplied at evaluation time
    CONST = "const"  # fixed 0/1
    XOR = "xor"
    AND = "and"
    NOT = "not"


@dataclass(frozen=True)
class Gate:
    """One gate; ``out`` is the wire this gate drives.

    ``args`` holds input wire ids (2 for XOR/AND, 1 for NOT, none for
    INPUT/CONST).  For CONST gates ``const_value`` carries the bit.  For INPUT
    gates ``input_index`` is the position in the evaluation-time input vector.
    """

    op: GateOp
    out: int
    args: tuple[int, ...] = ()
    const_value: int = 0
    input_index: int = -1


@dataclass
class CircuitStats:
    """Gate-count breakdown; ``size`` follows the FairplayMP convention of
    counting non-free gates (AND) plus linear gates, since compiled circuit
    size in the paper grows with total gates while *cost* is AND-dominated."""

    inputs: int = 0
    consts: int = 0
    xor: int = 0
    and_: int = 0
    not_: int = 0

    @property
    def total(self) -> int:
        return self.inputs + self.consts + self.xor + self.and_ + self.not_

    @property
    def size(self) -> int:
        """Total gate count (the Fig. 6b metric)."""
        return self.xor + self.and_ + self.not_

    @property
    def multiplicative_size(self) -> int:
        """AND-gate count: the number of interactive MPC operations."""
        return self.and_


class Circuit:
    """An immutable-after-build straight-line Boolean circuit."""

    def __init__(self) -> None:
        self.gates: list[Gate] = []
        self.outputs: list[int] = []
        self.n_inputs = 0

    def add_input(self) -> int:
        wire = len(self.gates)
        self.gates.append(Gate(op=GateOp.INPUT, out=wire, input_index=self.n_inputs))
        self.n_inputs += 1
        return wire

    def add_const(self, value: int) -> int:
        if value not in (0, 1):
            raise ValueError(f"constant must be a bit, got {value}")
        wire = len(self.gates)
        self.gates.append(Gate(op=GateOp.CONST, out=wire, const_value=value))
        return wire

    def add_gate(self, op: GateOp, args: Iterable[int]) -> int:
        args = tuple(args)
        arity = {GateOp.XOR: 2, GateOp.AND: 2, GateOp.NOT: 1}.get(op)
        if arity is None:
            raise ValueError(f"add_gate cannot create {op} gates")
        if len(args) != arity:
            raise ValueError(f"{op.value} gate needs {arity} args, got {len(args)}")
        for a in args:
            if not 0 <= a < len(self.gates):
                raise ValueError(f"argument wire {a} does not exist yet")
        wire = len(self.gates)
        self.gates.append(Gate(op=op, out=wire, args=args))
        return wire

    def mark_output(self, wire: int) -> None:
        if not 0 <= wire < len(self.gates):
            raise ValueError(f"output wire {wire} does not exist")
        self.outputs.append(wire)

    def mark_outputs(self, wires: Iterable[int]) -> None:
        for w in wires:
            self.mark_output(w)

    @property
    def n_wires(self) -> int:
        return len(self.gates)

    def stats(self) -> CircuitStats:
        s = CircuitStats()
        for g in self.gates:
            if g.op is GateOp.INPUT:
                s.inputs += 1
            elif g.op is GateOp.CONST:
                s.consts += 1
            elif g.op is GateOp.XOR:
                s.xor += 1
            elif g.op is GateOp.AND:
                s.and_ += 1
            elif g.op is GateOp.NOT:
                s.not_ += 1
        return s

    def validate(self) -> None:
        """Check topological well-formedness (every arg precedes its gate)."""
        input_positions = set()
        for i, g in enumerate(self.gates):
            if g.out != i:
                raise ValueError(f"gate {i} has inconsistent out wire {g.out}")
            for a in g.args:
                if a >= i:
                    raise ValueError(f"gate {i} reads not-yet-defined wire {a}")
            if g.op is GateOp.INPUT:
                if g.input_index in input_positions:
                    raise ValueError(f"duplicate input index {g.input_index}")
                input_positions.add(g.input_index)
        if input_positions != set(range(self.n_inputs)):
            raise ValueError("input indices are not contiguous from 0")
        for w in self.outputs:
            if not 0 <= w < len(self.gates):
                raise ValueError(f"dangling output wire {w}")
