"""Searchable-symmetric-encryption (SSE) index baseline (paper Sec. VI-A).

The paper contrasts PPI with the encrypted-index architecture
([31]-[34]): providers encrypt their local indexes and upload them to the
untrusted server; a searcher derives a per-keyword *trapdoor* and the
server scans the encrypted entries for matches.  Two architectural facts
motivate ǫ-PPI's design and are measurable here:

* **query-time crypto cost** -- an SSE lookup requires trapdoor derivation
  plus a per-entry PRF-comparison scan, where PPI answers from a plaintext
  matrix ("performance is a motivating factor behind the design of our
  PPI, by making no use of encryption during the query serving time");
* **authorization coupling** -- the searcher must hold the *provider's*
  key to build the trapdoor, i.e. must already know whom to ask ("this
  system architecture makes the assumption that a searcher already knows
  which provider possesses the data of her interest").

The construction follows the classic Song-Wagner-Perrig/Curtmala-style
keyword SSE, simplified to the locator use case (keyword = owner
identity): entry = HMAC(provider key, owner) with per-entry random salt,
so equal owners at one provider are unlinkable to equal owners at another.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from dataclasses import dataclass

from repro.core.model import MembershipMatrix

__all__ = ["SSEIndex", "SSEQueryStats", "build_sse_index"]


def _prf(key: bytes, data: bytes) -> bytes:
    return hmac.new(key, data, hashlib.sha256).digest()


@dataclass
class SSEQueryStats:
    """Work performed by one SSE query (the cost-model observables)."""

    trapdoors_derived: int
    entries_scanned: int
    prf_evaluations: int


class SSEIndex:
    """The untrusted server's view: per-provider lists of salted entries.

    Each entry is ``(salt, H(salt || PRF(k_p, owner)))``: without the
    provider key nothing links entries to owners or across providers.
    """

    def __init__(self, entries: dict[int, list[tuple[bytes, bytes]]]):
        self._entries = entries

    @property
    def n_providers(self) -> int:
        return len(self._entries)

    @property
    def total_entries(self) -> int:
        return sum(len(v) for v in self._entries.values())

    def search(
        self, owner_id: int, provider_keys: dict[int, bytes]
    ) -> tuple[list[int], SSEQueryStats]:
        """Search with the trapdoors the searcher can derive.

        ``provider_keys`` holds the keys of providers that authorized this
        searcher -- the architectural coupling: no key, no trapdoor, no
        result, regardless of where the records really are.
        """
        matches: list[int] = []
        scanned = 0
        prf_evals = 0
        owner_bytes = owner_id.to_bytes(8, "big")
        for pid, key in provider_keys.items():
            if pid not in self._entries:
                continue
            trapdoor = _prf(key, owner_bytes)
            prf_evals += 1
            for salt, digest in self._entries[pid]:
                scanned += 1
                prf_evals += 1
                if hashlib.sha256(salt + trapdoor).digest() == digest:
                    matches.append(pid)
                    break
        return matches, SSEQueryStats(
            trapdoors_derived=len(provider_keys),
            entries_scanned=scanned,
            prf_evaluations=prf_evals,
        )


def build_sse_index(
    matrix: MembershipMatrix,
    provider_keys: dict[int, bytes],
    rng: random.Random,
) -> SSEIndex:
    """Each provider encrypts its membership list and uploads it."""
    if set(provider_keys) != set(range(matrix.n_providers)):
        raise ValueError("need exactly one key per provider")
    entries: dict[int, list[tuple[bytes, bytes]]] = {}
    for pid in range(matrix.n_providers):
        key = provider_keys[pid]
        provider_entries = []
        for owner_id in matrix.owners_of(pid):
            salt = rng.getrandbits(128).to_bytes(16, "big")
            token = _prf(key, owner_id.to_bytes(8, "big"))
            provider_entries.append(
                (salt, hashlib.sha256(salt + token).digest())
            )
        rng.shuffle(provider_entries)
        entries[pid] = provider_entries
    return SSEIndex(entries)
