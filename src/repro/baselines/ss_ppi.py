"""SS-PPI baseline (paper ref [22], Tang/Wang/Liu CIKM'11).

SS-PPI is the grouping PPI hardened against colluding providers: groups are
formed by a *structured* (hash-based) assignment rather than a negotiated
random one, and the construction exchanges per-identity counts among
providers.  Two properties matter for the paper's comparison:

* its privacy under the primary attack is still group-based -> NO GUARANTEE
  (same instability as [12]/[13]);
* its construction *discloses the truthful identity frequency* σ_j to every
  participating provider -- so one colluding provider hands the
  common-identity attacker an exact frequency oracle: NO PROTECT against the
  common-identity attack (Table II row 2).

We model the disclosure explicitly: :class:`SSPPIResult.leaked_frequencies`
is available to the attacker model in
:mod:`repro.attacks.common_identity`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.grouping import GroupingPPI, GroupingResult
from repro.core.model import MembershipMatrix

__all__ = ["SSPPI", "SSPPIResult"]


@dataclass
class SSPPIResult:
    """Published SS-PPI index plus the information it leaks on the way."""

    grouping: GroupingResult
    leaked_frequencies: np.ndarray  # exact per-identity frequency counts

    @property
    def published(self) -> np.ndarray:
        return self.grouping.published


class SSPPI:
    """Structured grouping with construction-time frequency disclosure."""

    def __init__(self, n_groups: int):
        self.n_groups = n_groups
        self._grouping = GroupingPPI(n_groups)

    def construct(
        self, matrix: MembershipMatrix, rng: np.random.Generator
    ) -> SSPPIResult:
        # Structured assignment: provider i -> group hash(i) (deterministic,
        # collusion-resistant formation); modelled by a seeded permutation
        # that does not depend on provider negotiation.
        grouping = self._grouping.construct(matrix, rng)
        frequencies = np.array(
            [matrix.frequency(j) for j in range(matrix.n_owners)], dtype=np.int64
        )
        return SSPPIResult(grouping=grouping, leaked_frequencies=frequencies)
