"""Comparison systems: grouping PPI [12,13], SS-PPI [22], plain index.

The pure-MPC construction baseline lives with the MPC code in
:mod:`repro.mpc.pure`.
"""

from repro.baselines.grouping import GroupingPPI, GroupingResult
from repro.baselines.no_privacy import PlainIndex
from repro.baselines.ss_ppi import SSPPI, SSPPIResult
from repro.baselines.sse import SSEIndex, SSEQueryStats, build_sse_index

__all__ = [
    "GroupingPPI",
    "GroupingResult",
    "PlainIndex",
    "SSPPI",
    "SSPPIResult",
    "SSEIndex",
    "SSEQueryStats",
    "build_sse_index",
]
