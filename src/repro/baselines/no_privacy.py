"""Plain (no-privacy) locator index: publishes the true matrix verbatim.

The NO PROTECT end of the spectrum (paper Sec. II-C): every attack succeeds
with certainty, but searches contact exactly the true-positive providers.
Used as the search-cost floor in the overhead benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import MembershipMatrix

__all__ = ["PlainIndex"]


class PlainIndex:
    """Truthful publication of ``M`` -- zero privacy, zero overhead."""

    def construct(self, matrix: MembershipMatrix) -> np.ndarray:
        return matrix.to_dense()
