"""Grouping-based PPI baseline (paper refs [12], [13]; Appendix B).

Inspired by k-anonymity: providers are randomly assigned to disjoint privacy
groups; a group reports 1 for an identity iff *any* member holds it, and a
query returns every provider of every positive group.  True positives hide
among their group peers -- but the false-positive rate that results is an
accident of the random assignment, not a controlled quantity, which is the
paper's core criticism (NO GUARANTEE, Table II):

* different identities share one group assignment, so per-identity (let
  alone personalized) targets are unreachable;
* small groups produce wildly unstable false-positive rates (the Fig. 4a
  fluctuation);
* common identities appear in *every* group, so grouping does not hide them
  at all (Appendix B's common-term example).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConstructionError
from repro.core.model import MembershipMatrix

__all__ = ["GroupingPPI", "GroupingResult"]


@dataclass
class GroupingResult:
    """Published grouping index, expanded to provider granularity."""

    published: np.ndarray  # provider-level M' implied by group reports
    group_of: np.ndarray  # provider -> group id
    group_reports: np.ndarray  # groups x owners Boolean reports

    @property
    def n_groups(self) -> int:
        return self.group_reports.shape[0]


class GroupingPPI:
    """The randomized grouping construction of [12], [13]."""

    def __init__(self, n_groups: int):
        if n_groups < 1:
            raise ConstructionError(f"need at least one group, got {n_groups}")
        self.n_groups = n_groups

    def construct(
        self, matrix: MembershipMatrix, rng: np.random.Generator
    ) -> GroupingResult:
        """Randomly partition providers into groups and publish group reports."""
        m, n = matrix.n_providers, matrix.n_owners
        if self.n_groups > m:
            raise ConstructionError(
                f"{self.n_groups} groups exceed {m} providers"
            )
        # Random balanced-ish assignment: shuffle providers, deal round-robin.
        order = rng.permutation(m)
        group_of = np.empty(m, dtype=np.int64)
        group_of[order] = np.arange(m) % self.n_groups

        dense = matrix.to_dense()
        reports = np.zeros((self.n_groups, n), dtype=np.uint8)
        for g in range(self.n_groups):
            members = group_of == g
            if members.any():
                reports[g] = dense[members].max(axis=0)
        published = reports[group_of]
        return GroupingResult(
            published=published, group_of=group_of, group_reports=reports
        )
