"""TREC-WT10g-style information network emulation.

The paper adapts the hybrid-P2P collection table of Lu & Callan [23]
(documents from TREC-WT10g [24], grouped into 2,500-25,000 small digital
libraries) by treating each *collection* as a provider and each document's
*source URL host* as an owner identity.  This module synthesizes a network
with the same published structure:

* collection sizes follow a log-normal law (small libraries, a few large);
* documents of one host cluster on few collections but popular hosts spread
  across many (preferential attachment), producing the heavy-tailed
  host-frequency spectrum the common-identity attack exploits;
* identities are URL-host strings, providers are collection names, so the
  examples read like the paper's scenario.

The output is a full :class:`~repro.core.model.InformationNetwork` (records
delegated provider by provider), not just a matrix -- examples use it to run
the complete Delegate / ConstructPPI / QueryPPI / AuthSearch flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import InformationNetwork

__all__ = ["TrecLikeConfig", "build_trec_like_network"]


@dataclass(frozen=True)
class TrecLikeConfig:
    """Generation knobs, defaulted to echo the paper's dataset scale-down."""

    n_providers: int = 200
    n_owners: int = 1000
    mean_collection_size: float = 30.0  # documents per collection (log-normal)
    sigma_collection_size: float = 0.8
    attachment: float = 0.7  # preferential-attachment strength in [0, 1)
    epsilon_low: float = 0.0
    epsilon_high: float = 1.0


def build_trec_like_network(
    config: TrecLikeConfig, seed: int
) -> InformationNetwork:
    """Generate the network; owner ǫ values are uniform in the config range."""
    rng = np.random.default_rng(seed)
    cfg = config
    network = InformationNetwork(
        cfg.n_providers,
        provider_names=[f"collection-{i:05d}" for i in range(cfg.n_providers)],
    )
    epsilons = rng.uniform(cfg.epsilon_low, cfg.epsilon_high, size=cfg.n_owners)
    owners = [
        network.register_owner(f"host-{j:06d}.example.org", float(epsilons[j]))
        for j in range(cfg.n_owners)
    ]

    # How many documents each collection holds.
    sizes = rng.lognormal(
        mean=np.log(cfg.mean_collection_size), sigma=cfg.sigma_collection_size,
        size=cfg.n_providers,
    ).astype(int)
    sizes = np.maximum(sizes, 1)

    # Preferential attachment over hosts: popular hosts get ever more
    # documents, yielding the Zipf-like frequency spectrum of WT10g.
    host_weights = np.ones(cfg.n_owners, dtype=float)
    doc_counter = 0
    for pid in range(cfg.n_providers):
        for _ in range(int(sizes[pid])):
            if rng.random() < cfg.attachment:
                probs = host_weights / host_weights.sum()
                j = int(rng.choice(cfg.n_owners, p=probs))
            else:
                j = int(rng.integers(cfg.n_owners))
            host_weights[j] += 1.0
            network.delegate(
                owners[j], pid, payload=f"doc-{doc_counter:07d}"
            )
            doc_counter += 1
    return network
