"""Dataset substrate: synthetic stand-ins for the paper's TREC-derived
collection table (see the substitution table in DESIGN.md)."""

from repro.datasets.synthetic import (
    SyntheticDataset,
    exact_frequency_matrix,
    make_dataset,
    tiered_epsilons,
    uniform_epsilons,
    zipf_matrix,
)
from repro.datasets.trec_like import TrecLikeConfig, build_trec_like_network
from repro.datasets.workload import (
    QueryWorkload,
    popularity_workload,
    uniform_workload,
)

__all__ = [
    "QueryWorkload",
    "SyntheticDataset",
    "TrecLikeConfig",
    "build_trec_like_network",
    "exact_frequency_matrix",
    "make_dataset",
    "popularity_workload",
    "tiered_epsilons",
    "uniform_epsilons",
    "uniform_workload",
    "zipf_matrix",
]
