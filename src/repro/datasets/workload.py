"""Query workloads for search-cost experiments.

The paper's search-overhead discussion (Sec. V-A2, detailed in the tech
report) measures how many providers a searcher must contact per query.  A
workload is a sequence of owner lookups; generators model the two natural
shapes: uniform interest and popularity-skewed interest (searches correlate
with identity frequency -- common patients are also commonly searched for).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QueryWorkload", "uniform_workload", "popularity_workload"]


@dataclass(frozen=True)
class QueryWorkload:
    """A sequence of owner ids to look up."""

    owner_ids: np.ndarray
    name: str

    def __len__(self) -> int:
        return len(self.owner_ids)


def uniform_workload(
    n_owners: int, n_queries: int, rng: np.random.Generator
) -> QueryWorkload:
    """Every owner equally likely to be searched for."""
    return QueryWorkload(
        owner_ids=rng.integers(0, n_owners, size=n_queries), name="uniform"
    )


def popularity_workload(
    frequencies: np.ndarray, n_queries: int, rng: np.random.Generator
) -> QueryWorkload:
    """Search probability proportional to identity frequency (+1 smoothing,
    so absent owners can still be queried -- a realistic miss case)."""
    weights = np.asarray(frequencies, dtype=float) + 1.0
    probs = weights / weights.sum()
    return QueryWorkload(
        owner_ids=rng.choice(len(probs), size=n_queries, p=probs),
        name="popularity",
    )
