"""Synthetic membership-matrix generators.

The paper's experiments use a distributed document collection derived from
TREC-WT10g [23, 24]: collections play providers, source URLs play owner
identities.  We cannot ship that dataset, so these generators synthesize
matrices with the same *consumed characteristics* (see DESIGN.md): a heavy-
tailed (Zipf-like) identity-frequency spectrum over a configurable number of
providers, plus exact-frequency construction for controlled sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import MembershipMatrix

__all__ = [
    "zipf_matrix",
    "exact_frequency_matrix",
    "uniform_epsilons",
    "tiered_epsilons",
    "make_dataset",
    "SyntheticDataset",
]


@dataclass
class SyntheticDataset:
    """A generated matrix plus its generation parameters."""

    matrix: MembershipMatrix
    frequencies: np.ndarray
    epsilons: np.ndarray
    seed: int


def zipf_matrix(
    m: int,
    n: int,
    rng: np.random.Generator,
    zipf_a: float = 1.6,
    max_fraction: float = 0.1,
) -> MembershipMatrix:
    """Matrix with Zipf-distributed identity frequencies.

    Identity frequencies are drawn from a Zipf(``zipf_a``) law truncated at
    ``max_fraction * m`` (the TREC-derived collection table shows the same
    few-popular / many-rare skew).  Providers are chosen uniformly per
    identity, matching the random document placement of [23].
    """
    if m < 1 or n < 0:
        raise ValueError(f"invalid shape m={m}, n={n}")
    cap = max(1, int(max_fraction * m))
    freqs = np.minimum(rng.zipf(zipf_a, size=n), cap)
    matrix = MembershipMatrix(m, n)
    for j in range(n):
        providers = rng.choice(m, size=int(freqs[j]), replace=False)
        for pid in providers:
            matrix.set(int(pid), j)
    return matrix


def exact_frequency_matrix(
    m: int, frequencies: list[int], rng: np.random.Generator
) -> MembershipMatrix:
    """Matrix where identity ``j`` appears at exactly ``frequencies[j]``
    uniformly chosen providers -- the controlled workload for the Fig. 4/5
    frequency sweeps."""
    matrix = MembershipMatrix(m, len(frequencies))
    for j, f in enumerate(frequencies):
        if not 0 <= f <= m:
            raise ValueError(f"frequency {f} outside [0, {m}]")
        providers = rng.choice(m, size=f, replace=False)
        for pid in providers:
            matrix.set(int(pid), j)
    return matrix


def uniform_epsilons(n: int, rng: np.random.Generator) -> np.ndarray:
    """Per-owner degrees uniform in [0, 1] (the paper's default: "we
    randomly generate the privacy degree ǫ in the domain [0,1]")."""
    return rng.random(n)


def tiered_epsilons(
    n: int,
    rng: np.random.Generator,
    vip_fraction: float = 0.05,
    vip_epsilon: float = 0.95,
    average_epsilon: float = 0.5,
) -> np.ndarray:
    """VIP/average tiering from the paper's motivation: a small celebrity
    tier requests near-maximal privacy, everyone else a medium degree."""
    if not 0.0 <= vip_fraction <= 1.0:
        raise ValueError(f"vip_fraction must be in [0, 1], got {vip_fraction}")
    eps = np.full(n, average_epsilon, dtype=float)
    n_vip = int(round(vip_fraction * n))
    if n_vip:
        vip_ids = rng.choice(n, size=n_vip, replace=False)
        eps[vip_ids] = vip_epsilon
    return eps


def make_dataset(
    m: int,
    n: int,
    seed: int,
    zipf_a: float = 1.6,
    max_fraction: float = 0.1,
) -> SyntheticDataset:
    """One-call dataset: Zipf matrix + uniform ǫ, reproducible by seed."""
    rng = np.random.default_rng(seed)
    matrix = zipf_matrix(m, n, rng, zipf_a=zipf_a, max_fraction=max_fraction)
    freqs = np.array([matrix.frequency(j) for j in range(n)], dtype=np.int64)
    eps = uniform_epsilons(n, rng)
    return SyntheticDataset(matrix=matrix, frequencies=freqs, epsilons=eps, seed=seed)
