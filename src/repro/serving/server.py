"""The PPI locator server: an asyncio TCP service hosting a published index.

This is the third-party *PPI server* of paper Fig. 1, lifted off the
discrete-event simulator and onto real sockets.  The server is untrusted by
design -- everything it stores (the published matrix ``M'``) is public -- so
the runtime concerns here are purely operational:

* **concurrency** -- one task per connection, requests multiplexed by id;
* **backpressure** -- a bounded in-flight semaphore: past ``max_inflight``
  concurrently processed requests, further frames queue in the kernel
  socket buffer instead of growing unbounded server state;
* **sharding** -- an owner-sharded :class:`IndexShardStore`, so a fleet of
  server processes can each host ``owners where owner_id % n_shards ==
  shard_id``; a query routed to the wrong shard gets a ``wrong-shard``
  error naming the right one, which lets clients self-correct;
* **graceful shutdown** -- stop accepting, drain in-flight requests for a
  bounded period, then cancel stragglers.

:class:`ServingNode` is the protocol/lifecycle base shared with
:class:`repro.serving.provider.ProviderEndpoint`.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from dataclasses import dataclass
from typing import Any, Optional, Union

import numpy as np

from repro.core.errors import ModelError
from repro.core.index import PPIIndex
from repro.core.postings import PostingsIndex
from repro.serving.eventloop import reuse_port_supported
from repro.serving.metrics import MetricsRegistry
from repro.serving.protocol import (
    VERB_INFO,
    VERB_PING,
    VERB_QUERY,
    VERB_QUERY_BATCH,
    VERB_RELOAD,
    VERB_STATS,
    PreparedResponse,
    encode_frame,
    error_response,
    ok_response,
    prepare_ok_payload,
)
from repro.serving.protocol_v2 import (
    PROTOCOL_V2,
    DecodeError,
    FrameDecoder,
    RawReply,
    batch_response_parts,
    encode_frame_v2_parts,
    encode_reply_v2,
    pack_batch_segment,
    prepared_response_v2,
)

#: anything exposing the QueryPPI surface (query/query_many/n_owners/...)
ServableIndex = Union[PPIIndex, PostingsIndex]

__all__ = [
    "IndexShardStore",
    "PPIServer",
    "ResponseSlab",
    "ServingNode",
    "ShardSpec",
    "WrongShard",
    "shard_of",
]

#: one socket read per scheduling step; large enough that a pipelined burst
#: of requests lands in one syscall and is answered with one writev.
_READ_CHUNK = 256 * 1024


def _decode_error_reply(error: DecodeError) -> list:
    """The typed error frame for a malformed request, spoken in the same
    protocol the malformed frame arrived in."""
    if error.protocol == PROTOCOL_V2:
        return encode_frame_v2_parts(
            None, 0, {"code": error.code, "error": str(error)},
            response=True, error=True,
        )
    return [encode_frame(error_response(None, error.code, str(error)))]


def shard_of(owner_id: int, n_shards: int) -> int:
    """Owner-to-shard routing function shared by servers and clients."""
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    return owner_id % n_shards


@dataclass(frozen=True)
class ShardSpec:
    """Which slice of the owner space one server process hosts."""

    shard_id: int = 0
    n_shards: int = 1

    def __post_init__(self) -> None:
        if self.n_shards < 1 or not 0 <= self.shard_id < self.n_shards:
            raise ValueError(
                f"invalid shard spec {self.shard_id}/{self.n_shards}"
            )

    def owns(self, owner_id: int) -> bool:
        return shard_of(owner_id, self.n_shards) == self.shard_id


class WrongShard(Exception):
    """Query for an owner this shard does not host."""

    def __init__(self, owner_id: int, expected_shard: int, spec: ShardSpec):
        super().__init__(
            f"owner {owner_id} lives on shard {expected_shard}, "
            f"this is shard {spec.shard_id}/{spec.n_shards}"
        )
        self.owner_id = owner_id
        self.expected_shard = expected_shard


class IndexShardStore:
    """A published index restricted to one shard of the owner space.

    The full index is immutable, so a shard store simply *refuses* queries
    for owners outside its slice rather than slicing the matrix: the memory
    win of physical slicing belongs to a later PR, the routing contract is
    what matters here.  Works over either representation of the published
    index; serving fleets boot the CSR :class:`PostingsIndex` (mmap'd from
    a v2 snapshot) so lookups are O(result-size) slices.
    """

    def __init__(self, index: ServableIndex, spec: ShardSpec = ShardSpec()):
        self.index = index
        self.spec = spec

    def lookup(self, owner_id: int) -> list[int]:
        if not self.spec.owns(owner_id):
            raise WrongShard(owner_id, shard_of(owner_id, self.spec.n_shards), self.spec)
        return self.index.query(owner_id)

    def lookup_batch(self, owner_ids: list[int]) -> dict[int, list[int]]:
        if not owner_ids:
            return {}
        ids = np.asarray(owner_ids, dtype=np.int64)
        wrong = np.nonzero(ids % self.spec.n_shards != self.spec.shard_id)[0]
        if wrong.size:
            oid = int(ids[wrong[0]])
            raise WrongShard(oid, shard_of(oid, self.spec.n_shards), self.spec)
        return dict(zip(owner_ids, self.index.query_many(ids)))


class ServingNode:
    """Lifecycle + framing + base verbs (``ping``/``stats``/``info``) for
    every process in the serving runtime."""

    #: overridden by subclasses; shows up in ``info`` and error messages
    role = "node"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        protocols=(1, 2),
        reuse_port: bool = False,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if reuse_port and not reuse_port_supported():
            raise ValueError(
                "reuse_port requested but SO_REUSEPORT is not supported "
                "on this platform"
            )
        self.host = host
        self.port = port  # rewritten with the bound port after start()
        self.reuse_port = reuse_port
        self.protocols = frozenset(protocols)
        if not self.protocols or not self.protocols <= {1, 2}:
            raise ValueError(
                f"protocols must be a non-empty subset of {{1, 2}}, got {protocols!r}"
            )
        self.metrics = MetricsRegistry()
        self._max_inflight = max_inflight
        self._inflight = asyncio.Semaphore(max_inflight)
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._started_at = 0.0

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def running(self) -> bool:
        return self._server is not None

    async def start(self) -> "ServingNode":
        if self._server is not None:
            raise RuntimeError(f"{self.role} already started")
        # With reuse_port, N processes bind the *same* (host, port) and the
        # kernel load-balances accepted connections across their listeners
        # -- the per-core accept pattern FleetSupervisor(accept_procs=N)
        # builds on.  A lone reuse_port listener behaves like a normal one.
        self._server = await asyncio.start_server(
            self._on_connection,
            self.host,
            self.port,
            reuse_port=self.reuse_port or None,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        return self

    async def stop(self, drain_timeout: float = 1.0) -> None:
        """Graceful shutdown: close the listener, give in-flight requests
        ``drain_timeout`` seconds to finish, then cancel what remains."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        tasks = [t for t in self._conn_tasks if not t.done()]
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=drain_timeout)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._conn_tasks.clear()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    # -- connection handling -------------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._handle_connection(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Decode -> serve -> reply, batched per socket read.

        One ``read()`` may carry many pipelined frames (of either
        protocol: the decoder sniffs per frame); all their replies go out
        in a single ``writelines`` + ``drain`` -- one writev instead of a
        syscall per response.  The first malformed frame gets a typed
        error in its own protocol, after which the connection closes:
        framing is byte-positional, so a corrupt frame makes every later
        stream offset untrustworthy.
        """
        self.metrics.counter("connections_total").inc()
        self.metrics.gauge("connections_open").inc()
        decoder = FrameDecoder(protocols=self.protocols)
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                out: list = []
                for frame in decoder.feed(data):
                    self.metrics.counter(
                        f"frames_v{frame.protocol}_total"
                    ).inc()
                    verb = frame.message.get("verb")
                    response = await self._serve_one(frame.message, frame.protocol)
                    out.extend(self._encode_reply(verb, response, frame.protocol))
                if decoder.error is not None:
                    # Unparseable bytes: answer once, typed, then drop the
                    # connection -- framing is lost.
                    self.metrics.counter("protocol_errors_total").inc()
                    out.extend(_decode_error_reply(decoder.error))
                if out:
                    writer.writelines(out)
                    await writer.drain()
                if decoder.error is not None:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.metrics.gauge("connections_open").dec()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _encode_reply(self, verb: Any, response: Any, protocol: int) -> list:
        """Render one reply to wire parts in the request's protocol."""
        if isinstance(response, RawReply):
            return response.parts
        if isinstance(response, PreparedResponse):
            return [response.encode()]
        if protocol == PROTOCOL_V2:
            return encode_reply_v2(verb if isinstance(verb, str) else None, response)
        return [encode_frame(response)]

    async def _serve_one(self, message: dict[str, Any], protocol: int = 1) -> Any:
        request_id = message.get("id")
        verb = message.get("verb")
        self.metrics.counter("requests_total").inc()
        self.metrics.counter(f"requests_{verb}_total").inc()
        started = time.monotonic()
        async with self._inflight:
            self.metrics.gauge("inflight").inc()
            try:
                if not isinstance(verb, str):
                    return error_response(
                        request_id, "bad-request", "missing verb"
                    )
                if verb == VERB_PING:
                    return ok_response(request_id)
                if verb == VERB_STATS:
                    return ok_response(request_id, stats=self.metrics.snapshot())
                if verb == VERB_INFO:
                    return ok_response(request_id, **self.describe())
                return await self.handle(verb, message, request_id, protocol)
            except WrongShard as exc:
                self.metrics.counter("wrong_shard_total").inc()
                return error_response(
                    request_id, "wrong-shard", str(exc), shard=exc.expected_shard
                )
            except (ValueError, ModelError) as exc:
                # Caller's fault (unknown owner, malformed fields): answer
                # bad-request, keep the connection alive.
                self.metrics.counter("errors_total").inc()
                return error_response(request_id, "bad-request", str(exc))
            except Exception as exc:  # noqa: BLE001 -- fault barrier per request
                self.metrics.counter("errors_total").inc()
                return error_response(request_id, "internal", f"{type(exc).__name__}: {exc}")
            finally:
                self.metrics.gauge("inflight").dec()
                self.metrics.histogram("request_latency_s").observe(
                    time.monotonic() - started
                )

    # -- to override ---------------------------------------------------------

    async def handle(
        self, verb: str, message: dict[str, Any], request_id: Any, protocol: int = 1
    ) -> Any:
        return error_response(request_id, "unknown-verb", f"unknown verb {verb!r}")

    def describe(self) -> dict[str, Any]:
        return {
            "role": self.role,
            "uptime_s": time.monotonic() - self._started_at if self._started_at else 0.0,
            "max_inflight": self._max_inflight,
            "protocols": sorted(self.protocols),
            "reuse_port": self.reuse_port,
        }


class ResponseSlab:
    """Every wire rendering of one owner's ``query`` answer, pre-encoded.

    Rendered once per (owner, epoch) and cached: the v1 JSON payload
    (request id spliced in per frame), the v2 binary frame (payload + crc
    shared, a 24-byte header packed per request), and the owner's segment
    of a v2 binary ``query-batch`` response (concatenated scatter-gather
    without re-encoding).  ``v2_segment`` is ``None`` when the ids exceed
    the binary field widths; the batch path then falls back to JSON.
    """

    __slots__ = ("providers", "v1_payload", "v2_frame", "v2_segment")

    def __init__(self, owner_id: int, providers: list, epoch: int):
        self.providers = providers
        self.v1_payload = prepare_ok_payload(
            owner=owner_id, providers=providers, epoch=epoch
        )
        self.v2_frame = prepared_response_v2(
            VERB_QUERY, {"owner": owner_id, "providers": providers, "epoch": epoch}
        )
        try:
            self.v2_segment = pack_batch_segment(owner_id, providers)
        except Exception:  # noqa: BLE001 -- ids outside u64/u32: JSON fallback
            self.v2_segment = None


class PPIServer(ServingNode):
    """The locator service: ``query`` / ``query-batch`` over one index shard.

    The index is static *within a publication epoch* (paper Sec. III-C):
    the same owner always yields the identical provider list until a
    ``reload`` hot-swaps in a newer snapshot.  The server therefore keeps
    an LRU of *pre-encoded* response payload bytes per owner
    (``response_cache_size`` entries; 0 disables), so a hot owner's reply
    skips index lookup *and* JSON serialization -- only the request id is
    spliced in per frame.  Every cached payload embeds the epoch it was
    rendered under, and ``reload`` replaces the whole cache in the same
    event-loop step that swaps the index, so a post-swap request can never
    be answered with pre-swap bytes.  Cache effectiveness shows up in the
    ``response_cache_hits_total`` / ``response_cache_misses_total``
    counters of the ``stats`` verb; swaps in ``reloads_total`` and the
    ``epoch`` gauge.
    """

    role = "ppi-server"

    def __init__(
        self,
        index: ServableIndex,
        shard: ShardSpec = ShardSpec(),
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        response_cache_size: int = 4096,
        snapshot_path: Optional[str] = None,
        epoch: int = 0,
        protocols=(1, 2),
        reuse_port: bool = False,
    ):
        super().__init__(
            host=host,
            port=port,
            max_inflight=max_inflight,
            protocols=protocols,
            reuse_port=reuse_port,
        )
        self.store = IndexShardStore(index, shard)
        self.snapshot_path = snapshot_path
        self.epoch = epoch
        # Imported here to keep client (searcher) and server modules
        # dependency-light in both directions.
        from repro.serving.client import LRUCache

        self._response_cache = LRUCache(response_cache_size)
        self.metrics.gauge("epoch").set(epoch)

    @property
    def shard(self) -> ShardSpec:
        return self.store.spec

    def _slab_for(self, owner_id: int) -> ResponseSlab:
        """The cached renderings for one owner, rendering on miss.

        ``lookup`` raises (wrong shard / unknown owner) before anything is
        cached, so only valid replies are stored.
        """
        slab = self._response_cache.get(owner_id)
        if slab is None:
            providers = self.store.lookup(owner_id)
            slab = ResponseSlab(owner_id, providers, self.epoch)
            self._response_cache.put(owner_id, slab)
            self.metrics.counter("response_cache_misses_total").inc()
        else:
            self.metrics.counter("response_cache_hits_total").inc()
        return slab

    async def handle(
        self, verb: str, message: dict[str, Any], request_id: Any, protocol: int = 1
    ) -> Any:
        if verb == VERB_QUERY:
            owner_id = _require_int(message, "owner")
            slab = self._slab_for(owner_id)
            self.metrics.counter("queries_served").inc()
            if protocol == PROTOCOL_V2:
                return RawReply(slab.v2_frame.encode(request_id))
            return PreparedResponse(request_id, slab.v1_payload)
        if verb == VERB_QUERY_BATCH:
            owners = message.get("owners")
            if not isinstance(owners, list) or not all(
                isinstance(o, int) for o in owners
            ):
                raise ValueError("'owners' must be a list of owner ids")
            if protocol == PROTOCOL_V2:
                return self._handle_batch_v2(owners, request_id)
            results = self.store.lookup_batch(owners)
            self.metrics.counter("queries_served").inc(len(owners))
            return ok_response(
                request_id,
                results={str(oid): providers for oid, providers in results.items()},
                epoch=self.epoch,
            )
        if verb == VERB_RELOAD:
            return await self._handle_reload(message, request_id)
        return await super().handle(verb, message, request_id, protocol)

    def _handle_batch_v2(self, owners: list, request_id: Any) -> Any:
        """A binary ``query-batch`` reply assembled from cached segments.

        No awaits anywhere on this path: the cache reads, any fresh
        lookups, and the epoch all belong to one event-loop step, so the
        response is epoch-consistent by construction (the same argument
        ``_handle_reload`` makes for the swap).
        """
        unique = list(dict.fromkeys(owners))
        slabs: dict[int, ResponseSlab] = {}
        missing = []
        for oid in unique:
            slab = self._response_cache.get(oid)
            if slab is None:
                missing.append(oid)
            else:
                slabs[oid] = slab
        if missing:
            # Validates the whole batch (wrong-shard raises before anything
            # is cached), then renders each missing owner once.
            fetched = self.store.lookup_batch(missing)
            for oid, providers in fetched.items():
                slab = ResponseSlab(oid, providers, self.epoch)
                slabs[oid] = slab
                self._response_cache.put(oid, slab)
            self.metrics.counter("response_cache_misses_total").inc(len(missing))
        if len(unique) > len(missing):
            self.metrics.counter("response_cache_hits_total").inc(
                len(unique) - len(missing)
            )
        self.metrics.counter("queries_served").inc(len(owners))
        segments = [slabs[oid].v2_segment for oid in unique]
        if all(segment is not None for segment in segments):
            return RawReply(batch_response_parts(request_id, self.epoch, segments))
        # Ids wider than the binary fields: same reply, JSON payload.
        return ok_response(
            request_id,
            results={str(oid): slabs[oid].providers for oid in unique},
            epoch=self.epoch,
        )

    async def _handle_reload(
        self, message: dict[str, Any], request_id: Any
    ) -> dict[str, Any]:
        """Hot-swap the served index from a snapshot, without pausing.

        The load runs on the default executor, so in-flight queries keep
        being answered from the old index while the new one maps in.  The
        swap itself -- index, epoch, response cache -- happens between two
        awaits of this coroutine, and query handling contains no await
        points at all, so from the event loop's perspective every request
        is served entirely before or entirely after the swap: a response
        can never mix epochs, and no post-swap request sees pre-swap bytes.
        """
        path = message.get("snapshot", self.snapshot_path)
        if not isinstance(path, str) or not path:
            raise ValueError("no snapshot path to reload from")
        from repro.serving.snapshot import load_serving_state

        loop = asyncio.get_running_loop()
        index, epoch = await loop.run_in_executor(None, load_serving_state, path)
        self.swap_index(index, epoch, snapshot_path=path)
        return ok_response(
            request_id,
            epoch=epoch,
            n_owners=index.n_owners,
            n_providers=index.n_providers,
            snapshot=path,
        )

    def swap_index(
        self,
        index: ServableIndex,
        epoch: int,
        snapshot_path: Optional[str] = None,
    ) -> None:
        """Atomically swap the served index, epoch and response cache.

        This is the swap half of ``reload``, exposed so a replication
        applier can install an :class:`~repro.updates.segments.OverlayIndex`
        (same epoch, fresher overlays) or a locally-compacted snapshot
        without going over the wire.  Refuses to move the epoch backwards;
        equal epochs are fine (that is how overlay installs work).  No
        awaits: callers on the event loop get the same epoch-consistency
        argument as ``reload`` itself.
        """
        if epoch < self.epoch:
            if isinstance(index, PostingsIndex):
                index.release()
            raise ValueError(
                f"snapshot epoch {epoch} is older than serving epoch {self.epoch}"
            )
        old = self.store.index
        self.store.index = index
        self.epoch = epoch
        if snapshot_path is not None:
            self.snapshot_path = snapshot_path
        self._response_cache = type(self._response_cache)(
            self._response_cache.capacity
        )
        if isinstance(old, PostingsIndex) and old is not index:
            old.release()  # close the previous snapshot's mmap/fd now
        self.metrics.counter("reloads_total").inc()
        self.metrics.gauge("epoch").set(epoch)

    def describe(self) -> dict[str, Any]:
        base = super().describe()
        base.update(
            shard_id=self.shard.shard_id,
            n_shards=self.shard.n_shards,
            n_providers=self.store.index.n_providers,
            n_owners=self.store.index.n_owners,
            index_engine=type(self.store.index).__name__,
            response_cache_size=self._response_cache.capacity,
            epoch=self.epoch,
            snapshot_path=self.snapshot_path,
        )
        return base


def _require_int(message: dict[str, Any], key: str) -> int:
    value = message.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{key!r} must be an integer, got {value!r}")
    return value
