"""Wire protocol of the serving runtime: framing + message schema.

Every message is one *frame*: a 4-byte big-endian length header followed by
a UTF-8 JSON object.  The same framing carries both directions; requests and
responses are matched by an ``id`` the client chooses (monotonically
increasing per connection), so a pooled connection is reusable across
requests without ambiguity.

Request::

    {"id": 7, "verb": "query", "owner": 42}

Response (success)::

    {"id": 7, "ok": true, "providers": [3, 9, 17]}

Response (failure)::

    {"id": 7, "ok": false, "code": "wrong-shard", "error": "...", ...}

Verbs
-----

=================  =======================  =====================================
verb               served by                semantics
=================  =======================  =====================================
``ping``           server + provider        liveness probe, echoes ``{}``
``stats``          server + provider        metrics registry snapshot
``info``           server + provider        static facts (shard spec, sizes)
``query``          :class:`PPIServer`       ``QueryPPI(t)`` -> obscured list
``query-batch``    :class:`PPIServer`       many ``QueryPPI`` in one round trip
``reload``         :class:`PPIServer`       hot-swap the index from a snapshot
``search``         :class:`ProviderEndpoint`  ``AuthSearch``: ACL check + records
=================  =======================  =====================================

The index is static *within a publication epoch* (paper Sec. III-C), which
is what makes client-side result caching and idempotent retries safe:
re-asking the same ``query`` can never return a different list until the
fleet hot-swaps to a new epoch.  Every ``query`` / ``query-batch`` response
therefore carries the serving ``epoch``, so caches can be invalidated the
moment a newer epoch is first observed (see ``docs/PROTOCOL.md``).
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Optional

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "VERB_INFO",
    "VERB_PING",
    "VERB_QUERY",
    "VERB_QUERY_BATCH",
    "VERB_RELOAD",
    "VERB_SEARCH",
    "VERB_STATS",
    "ConnectionClosed",
    "FrameTooLarge",
    "PreparedResponse",
    "ProtocolError",
    "RemoteError",
    "encode_frame",
    "error_response",
    "ok_response",
    "prepare_ok_payload",
    "raise_for_response",
    "read_frame",
    "request",
    "write_frame",
]

PROTOCOL_VERSION = 1

# Refuse absurd frames before allocating: a full broadcast reply for a
# million-owner batch is still far below this.
MAX_FRAME_BYTES = 16 * 2**20

_HEADER = struct.Struct(">I")

VERB_PING = "ping"
VERB_STATS = "stats"
VERB_INFO = "info"
VERB_QUERY = "query"
VERB_QUERY_BATCH = "query-batch"
VERB_RELOAD = "reload"
VERB_SEARCH = "search"


class ProtocolError(Exception):
    """Malformed frame or message."""


class FrameTooLarge(ProtocolError):
    """Peer announced a frame above :data:`MAX_FRAME_BYTES`."""


class ConnectionClosed(ProtocolError):
    """Peer closed the connection (clean EOF between frames)."""


class RemoteError(Exception):
    """The peer answered with ``ok: false``.

    ``code`` is a machine-readable discriminator (``"wrong-shard"``,
    ``"unknown-verb"``, ``"bad-request"``, ``"internal"``); ``detail`` keeps
    any extra response fields (e.g. the correct shard id).
    """

    def __init__(self, code: str, message: str, detail: Optional[dict] = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.detail = detail or {}


# -- framing -----------------------------------------------------------------


def encode_frame(obj: dict[str, Any]) -> bytes:
    """Serialize one message to ``header + body`` bytes."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any]:
    """Read one framed message; raise :class:`ConnectionClosed` on clean EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed("peer closed the connection") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"peer announced a {length}-byte frame")
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed("connection closed mid-frame") from exc
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame body must be a JSON object")
    return obj


async def write_frame(writer: asyncio.StreamWriter, obj: dict[str, Any]) -> None:
    writer.write(encode_frame(obj))
    await writer.drain()


# -- message constructors ----------------------------------------------------


def request(verb: str, request_id: int, **fields: Any) -> dict[str, Any]:
    return {"id": request_id, "verb": verb, **fields}


def ok_response(request_id: Any, **fields: Any) -> dict[str, Any]:
    return {"id": request_id, "ok": True, **fields}


def error_response(
    request_id: Any, code: str, message: str, **fields: Any
) -> dict[str, Any]:
    return {"id": request_id, "ok": False, "code": code, "error": message, **fields}


def prepare_ok_payload(**fields: Any) -> bytes:
    """Pre-encode an ``ok`` response body with the request id left open.

    Returns the serialized object minus its opening brace --
    ``b'"ok":true,...}'`` -- so a cached payload can be completed for any
    request by prepending ``{"id":<id>,``.  The index is static within an
    epoch (paper Sec. III-C): the same owner always yields the same
    provider list until a ``reload``, so a server can cache these bytes and
    skip JSON re-serialization entirely for hot owners -- provided the
    cache is dropped wholesale on every epoch swap
    (:class:`repro.serving.server.PPIServer`).
    """
    return json.dumps({"ok": True, **fields}, separators=(",", ":")).encode(
        "utf-8"
    )[1:]


class PreparedResponse:
    """A response whose body suffix is already serialized.

    ``encode`` splices the per-request ``id`` in front of the shared
    payload bytes; everything after the first comma is byte-identical
    across requests for the same owner.
    """

    __slots__ = ("request_id", "payload")

    def __init__(self, request_id: Any, payload: bytes):
        self.request_id = request_id
        self.payload = payload

    def encode(self) -> bytes:
        """Full frame bytes (header + body) for this request."""
        body = (
            b'{"id":'
            + json.dumps(self.request_id, separators=(",", ":")).encode("utf-8")
            + b","
            + self.payload
        )
        if len(body) > MAX_FRAME_BYTES:
            raise FrameTooLarge(
                f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
            )
        return _HEADER.pack(len(body)) + body


def raise_for_response(response: dict[str, Any]) -> dict[str, Any]:
    """Return the response if ``ok``, else raise :class:`RemoteError`."""
    if response.get("ok"):
        return response
    detail = {
        k: v for k, v in response.items() if k not in ("id", "ok", "code", "error")
    }
    raise RemoteError(
        str(response.get("code", "internal")),
        str(response.get("error", "unknown remote error")),
        detail,
    )
