"""Closed-loop load generator for the serving runtime.

``n_workers`` concurrent workers each issue their next request only after
the previous one completed (closed-loop), which is the standard way to
probe a service's throughput/latency envelope without open-loop overload
artifacts.  Per-request wall-clock latencies feed a percentile report
(p50/p95/p99), plus QPS and error rate -- the serving counterpart of the
simulator's :func:`repro.service.run_concurrent_searchers` prediction, which
``benchmarks/bench_serving_throughput.py`` compares against.

Traffic shape is uniform round-robin by default; ``zipf_a > 0`` switches to
Zipf-distributed hot keys (rank ``i`` of ``owner_ids`` drawn with weight
``1/(i+1)**zipf_a``), seeded per ``(seed, worker)`` so a skewed run is
exactly reproducible -- the access pattern replica caches and the
replication bench care about.

``shape`` modulates the *arrival rate* on top of the key distribution:
``"diurnal"`` scales each worker's inter-request pause by a sine over the
request index (a compressed day/night cycle), ``"burst"`` fires the first
quarter of every period back-to-back and doubles the pause in the lull (a
flash crowd followed by quiet).  Both are deterministic in ``(seed,
worker)`` -- each worker gets a seeded phase offset, so shaped runs replay
exactly like uniform ones.

When a ``tier_of`` owner->tier map is supplied, per-request latencies are
additionally bucketed by the tier of the owner served, giving the per-ε-tier
SLO breakdown (``LoadReport.tier_latency_percentiles_ms``) that the
personalized-privacy story needs: strict-ε owners carry more decoys, and
their latency budget must be observable separately.
"""

from __future__ import annotations

import asyncio
import math
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.serving.client import LocatorClient, RetryPolicy, TransportError
from repro.serving.metrics import percentile
from repro.serving.protocol import RemoteError

__all__ = [
    "LoadReport",
    "TRAFFIC_SHAPES",
    "run_load",
    "run_load_multiprocess",
    "run_load_sync",
    "shape_pause_s",
]

TRAFFIC_SHAPES = ("uniform", "diurnal", "burst")

#: burst shape: fraction of each period fired back-to-back
_BURST_DUTY = 0.25


def shape_pause_s(
    shape: str, k: int, think_time_s: float, period: int, phase: int = 0
) -> float:
    """Inter-request pause for request ``k`` of a shaped schedule.

    ``"uniform"`` is the flat closed-loop pause.  ``"diurnal"`` scales it by
    ``1 + sin(2π (k + phase) / period)`` -- arrival rate swings through a
    full day/night cycle every ``period`` requests.  ``"burst"`` fires the
    first ``_BURST_DUTY`` of each period with no pause at all and doubles
    the pause for the rest.  Pure function of its arguments, so schedules
    replay exactly.
    """
    if shape == "uniform":
        return think_time_s
    pos = (k + phase) % period
    if shape == "diurnal":
        return think_time_s * (1.0 + math.sin(2.0 * math.pi * pos / period))
    if shape == "burst":
        return 0.0 if pos < period * _BURST_DUTY else 2.0 * think_time_s
    raise ValueError(
        f"shape must be one of {TRAFFIC_SHAPES}, got {shape!r}"
    )


@dataclass
class LoadReport:
    """Aggregate of one load-generation session."""

    mode: str
    n_workers: int
    total: int = 0
    errors: int = 0
    duration_s: float = 0.0
    latencies_s: list = field(default_factory=list)
    #: populated in ``search`` mode: recall-relevant tallies
    records_found: int = 0
    providers_contacted: int = 0
    providers_failed: int = 0
    #: optional post-run ``stats`` snapshot from the server under test
    server_stats: Optional[dict] = None
    #: populated when ``run_load`` is given a ``tier_of`` map: per-tier
    #: latency samples for the per-ε-tier SLO breakdown
    tier_latencies_s: dict = field(default_factory=dict)

    @property
    def qps(self) -> float:
        return self.total / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def error_rate(self) -> float:
        return self.errors / self.total if self.total else 0.0

    def latency_percentiles_ms(self) -> dict[str, float]:
        ordered = sorted(self.latencies_s)
        return {
            f"p{q:g}": percentile(ordered, q) * 1e3 for q in (50.0, 95.0, 99.0)
        }

    def tier_latency_percentiles_ms(self) -> dict[str, dict[str, float]]:
        """Percentiles keyed by owner tier (empty without a tier map)."""
        out: dict[str, dict[str, float]] = {}
        for tier in sorted(self.tier_latencies_s):
            ordered = sorted(self.tier_latencies_s[tier])
            out[tier] = {
                f"p{q:g}": percentile(ordered, q) * 1e3
                for q in (50.0, 95.0, 99.0)
            }
            out[tier]["requests"] = float(len(ordered))
        return out

    def format(self) -> str:
        pct = self.latency_percentiles_ms()
        lines = [
            f"mode           {self.mode}",
            f"workers        {self.n_workers}",
            f"requests       {self.total}",
            f"errors         {self.errors} ({self.error_rate:.2%})",
            f"duration       {self.duration_s:.3f} s",
            f"throughput     {self.qps:.1f} req/s",
            f"latency p50    {pct['p50']:.2f} ms",
            f"latency p95    {pct['p95']:.2f} ms",
            f"latency p99    {pct['p99']:.2f} ms",
        ]
        if self.mode == "search":
            lines += [
                f"records        {self.records_found}",
                f"contacted      {self.providers_contacted}",
                f"failed         {self.providers_failed}",
            ]
        for tier, tier_pct in self.tier_latency_percentiles_ms().items():
            lines.append(
                f"tier {tier:<10} n={int(tier_pct['requests'])} "
                f"p50 {tier_pct['p50']:.2f} ms  p95 {tier_pct['p95']:.2f} ms  "
                f"p99 {tier_pct['p99']:.2f} ms"
            )
        return "\n".join(lines)


async def run_load(
    client: LocatorClient,
    owner_ids: list[int],
    n_workers: int = 4,
    requests_per_worker: int = 50,
    mode: str = "query",
    think_time_s: float = 0.0,
    batch_size: int = 32,
    zipf_a: float = 0.0,
    seed: int = 0,
    shape: str = "uniform",
    shape_period: int = 32,
    tier_of: Optional[Mapping[int, str]] = None,
) -> LoadReport:
    """Drive ``n_workers`` closed-loop workers through ``owner_ids``.

    Worker ``w`` issues requests for owners ``owner_ids[(w + k*n_workers) %
    len(owner_ids)]`` -- a deterministic round-robin so runs are
    reproducible.  ``zipf_a > 0`` replaces the round-robin with Zipf-skewed
    draws over the same id list (rank ``i`` weighted ``1/(i+1)**zipf_a``,
    so the *front* of ``owner_ids`` is hot); each worker pre-draws its
    whole schedule from ``default_rng((seed, w))``, keeping skewed runs as
    reproducible as uniform ones.  ``mode`` is ``"query"`` (phase 1 only),
    ``"batch"`` (``query_batch`` of ``batch_size`` owners per round trip;
    ``total`` counts owners resolved, not round trips) or ``"search"``
    (full two-phase; requires the client to know provider addresses).

    ``shape`` modulates arrival rate via :func:`shape_pause_s`; shaped runs
    need ``think_time_s > 0`` (there is no pause to modulate otherwise) and
    each worker's phase offset is drawn from ``default_rng((seed, w, 1))``,
    so the whole shaped schedule is a pure function of ``seed``.  A
    ``tier_of`` owner->tier map buckets latencies per tier (batch-mode
    samples count once per distinct tier in the chunk).
    """
    if mode not in ("query", "batch", "search"):
        raise ValueError(f"mode must be 'query', 'batch' or 'search', got {mode!r}")
    if not owner_ids:
        raise ValueError("need at least one owner id")
    if n_workers < 1 or requests_per_worker < 1:
        raise ValueError("n_workers and requests_per_worker must be >= 1")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if zipf_a < 0:
        raise ValueError(f"zipf_a must be >= 0 (0 disables skew), got {zipf_a}")
    if shape not in TRAFFIC_SHAPES:
        raise ValueError(f"shape must be one of {TRAFFIC_SHAPES}, got {shape!r}")
    if shape != "uniform" and think_time_s <= 0:
        raise ValueError(f"shape {shape!r} needs think_time_s > 0 to modulate")
    if shape_period < 2:
        raise ValueError(f"shape_period must be >= 2, got {shape_period}")

    report = LoadReport(mode=mode, n_workers=n_workers)
    phases = [
        int(np.random.default_rng((seed, w, 1)).integers(0, shape_period))
        for w in range(n_workers)
    ]

    def note_tier(owners, latency_s: float) -> None:
        if tier_of is None:
            return
        tiers = {tier_of[o] for o in owners if o in tier_of}
        for tier in tiers:
            report.tier_latencies_s.setdefault(tier, []).append(latency_s)

    # Batch chunks are rotations of the owner cycle; slicing a tiled copy
    # replaces batch_size modulo operations per request with one C slice.
    n_owners = len(owner_ids)
    tiled = owner_ids * (batch_size // n_owners + 2) if mode == "batch" else []

    schedules: list = []
    if zipf_a > 0:
        weights = (1.0 / np.arange(1, n_owners + 1) ** zipf_a)
        probs = weights / weights.sum()
        per_worker = requests_per_worker * (batch_size if mode == "batch" else 1)
        schedules = [
            np.random.default_rng((seed, w)).choice(
                n_owners, size=per_worker, p=probs
            )
            for w in range(n_workers)
        ]

    async def worker(w: int) -> None:
        for k in range(requests_per_worker):
            started = time.monotonic()
            n_done = 1
            served: list = []
            try:
                if mode == "query":
                    if schedules:
                        owner = owner_ids[schedules[w][k]]
                    else:
                        owner = owner_ids[(w + k * n_workers) % n_owners]
                    served = [owner]
                    await client.query(owner)
                elif mode == "batch":
                    if schedules:
                        idx = schedules[w][k * batch_size : (k + 1) * batch_size]
                        chunk = [owner_ids[i] for i in idx]
                    else:
                        start = (w + k * n_workers) * batch_size % n_owners
                        chunk = tiled[start : start + batch_size]
                    n_done = len(chunk)
                    served = chunk
                    await client.query_batch(chunk)
                else:
                    if schedules:
                        owner = owner_ids[schedules[w][k]]
                    else:
                        owner = owner_ids[(w + k * n_workers) % len(owner_ids)]
                    served = [owner]
                    result = await client.search(owner)
                    report.records_found += len(result.records)
                    report.providers_contacted += result.contacted
                    report.providers_failed += len(result.failed_providers)
            except (TransportError, RemoteError):
                report.errors += 1
            latency_s = time.monotonic() - started
            report.latencies_s.append(latency_s)
            note_tier(served, latency_s)
            report.total += n_done
            pause = shape_pause_s(shape, k, think_time_s, shape_period, phases[w])
            if pause > 0:
                await asyncio.sleep(pause)

    started = time.monotonic()
    await asyncio.gather(*(worker(w) for w in range(n_workers)))
    report.duration_s = time.monotonic() - started
    return report


def run_load_sync(
    client_factory,
    owner_ids: list[int],
    n_workers: int = 4,
    requests_per_worker: int = 50,
    mode: str = "query",
    think_time_s: float = 0.0,
    batch_size: int = 32,
    report_stats_from: Optional[tuple] = None,
    zipf_a: float = 0.0,
    seed: int = 0,
    shape: str = "uniform",
    shape_period: int = 32,
    tier_of: Optional[Mapping[int, str]] = None,
) -> LoadReport:
    """Synchronous wrapper: build a client, run the load, tear down.

    ``client_factory`` is a zero-argument callable returning a
    :class:`LocatorClient` (construction must happen inside the event
    loop).  If ``report_stats_from`` is an address, the server's ``stats``
    snapshot is fetched after the run and attached as ``report.server_stats``.
    """

    async def _main() -> LoadReport:
        client = client_factory()
        try:
            report = await run_load(
                client,
                owner_ids,
                n_workers=n_workers,
                requests_per_worker=requests_per_worker,
                mode=mode,
                think_time_s=think_time_s,
                batch_size=batch_size,
                zipf_a=zipf_a,
                seed=seed,
                shape=shape,
                shape_period=shape_period,
                tier_of=tier_of,
            )
            if report_stats_from is not None:
                report.server_stats = await client.stats(report_stats_from)
            return report
        finally:
            await client.close()

    return asyncio.run(_main())


def _load_proc_main(payload: dict, barrier, queue) -> None:
    """One load-generator process: own event loop, own client, own sockets.

    Top-level so it pickles under ``spawn``/``forkserver`` contexts.  The
    barrier synchronizes the fleet of generators *after* interpreter/module
    start-up, so the parent's wall clock measures serving throughput, not
    process boot.
    """
    barrier.wait(timeout=60.0)

    async def _main() -> dict:
        client = LocatorClient(
            servers=[tuple(a) for a in payload["servers"]],
            providers={int(k): tuple(v) for k, v in payload["providers"].items()},
            name=payload["name"],
            retry=payload["retry"],
            cache_size=payload["cache_size"],
            rng_seed=payload["seed"],
            protocol=payload.get("protocol", "auto"),
        )
        try:
            report = await run_load(
                client,
                payload["owner_ids"],
                n_workers=payload["n_workers"],
                requests_per_worker=payload["requests_per_worker"],
                mode=payload["mode"],
                think_time_s=payload["think_time_s"],
                batch_size=payload.get("batch_size", 32),
                zipf_a=payload.get("zipf_a", 0.0),
                seed=payload.get("zipf_seed", 0),
                shape=payload.get("shape", "uniform"),
                shape_period=payload.get("shape_period", 32),
                tier_of=payload.get("tier_of"),
            )
        finally:
            await client.close()
        return {
            "total": report.total,
            "errors": report.errors,
            "latencies_s": report.latencies_s,
            "records_found": report.records_found,
            "providers_contacted": report.providers_contacted,
            "providers_failed": report.providers_failed,
            "tier_latencies_s": report.tier_latencies_s,
        }

    queue.put(asyncio.run(_main()))


def run_load_multiprocess(
    servers: list,
    owner_ids: list[int],
    n_procs: int = 2,
    n_workers: int = 4,
    requests_per_worker: int = 50,
    mode: str = "query",
    providers: Optional[dict] = None,
    retry: RetryPolicy = RetryPolicy(),
    cache_size: int = 0,
    think_time_s: float = 0.0,
    batch_size: int = 32,
    protocol: str = "auto",
    mp_start_method: Optional[str] = None,
    join_timeout_s: float = 300.0,
    zipf_a: float = 0.0,
    seed: int = 0,
    shape: str = "uniform",
    shape_period: int = 32,
    tier_of: Optional[Mapping[int, str]] = None,
) -> LoadReport:
    """Closed-loop load from ``n_procs`` OS processes (own loops, own GILs).

    A single load-generating event loop saturates one core and therefore
    *under-reports* a multi-process server fleet -- the client becomes the
    bottleneck.  This driver spawns ``n_procs`` generator processes (each
    running :func:`run_load` with ``n_workers`` closed-loop workers) and
    merges their reports; ``duration_s`` is the parent's wall clock over
    the whole fan-out, so ``qps`` is honest fleet throughput.  Process
    ``p`` draws owners ``owner_ids[p::n_procs]``, keeping runs
    deterministic and the shard mix balanced.
    """
    if n_procs < 1:
        raise ValueError("n_procs must be >= 1")
    if mp_start_method is None:
        available = multiprocessing.get_all_start_methods()
        mp_start_method = "forkserver" if "forkserver" in available else "spawn"
    ctx = multiprocessing.get_context(mp_start_method)
    if mp_start_method == "forkserver":
        # Pay the heavy imports once in the fork server, not per generator.
        ctx.set_forkserver_preload(["repro.serving.loadgen"])
    queue = ctx.Queue()
    barrier = ctx.Barrier(n_procs + 1)
    procs = []
    for p in range(n_procs):
        slice_ids = owner_ids[p::n_procs] or owner_ids
        payload = {
            "servers": [tuple(a) for a in servers],
            "providers": dict(providers or {}),
            "name": f"loadgen-{p}",
            "retry": retry,
            "cache_size": cache_size,
            "seed": p,
            "owner_ids": slice_ids,
            "n_workers": n_workers,
            "requests_per_worker": requests_per_worker,
            "mode": mode,
            "think_time_s": think_time_s,
            "batch_size": batch_size,
            "protocol": protocol,
            "zipf_a": zipf_a,
            # Distinct per-process seeds: worker streams are keyed
            # (seed, w), so shifting the seed by p de-correlates processes
            # while keeping the whole fan-out a pure function of ``seed``.
            "zipf_seed": seed + p,
            "shape": shape,
            "shape_period": shape_period,
            "tier_of": dict(tier_of) if tier_of else None,
        }
        proc = ctx.Process(
            target=_load_proc_main, args=(payload, barrier, queue), daemon=True
        )
        procs.append(proc)

    report = LoadReport(mode=mode, n_workers=n_procs * n_workers)
    for proc in procs:
        proc.start()
    results = []
    try:
        barrier.wait(timeout=60.0)  # every generator is up; start the clock
        started = time.monotonic()
        for _ in procs:
            results.append(queue.get(timeout=join_timeout_s))
        report.duration_s = time.monotonic() - started
    finally:
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
    for result in results:
        report.total += result["total"]
        report.errors += result["errors"]
        report.latencies_s.extend(result["latencies_s"])
        report.records_found += result["records_found"]
        report.providers_contacted += result["providers_contacted"]
        report.providers_failed += result["providers_failed"]
        for tier, samples in result.get("tier_latencies_s", {}).items():
            report.tier_latencies_s.setdefault(tier, []).extend(samples)
    return report
