"""Closed-loop load generator for the serving runtime.

``n_workers`` concurrent workers each issue their next request only after
the previous one completed (closed-loop), which is the standard way to
probe a service's throughput/latency envelope without open-loop overload
artifacts.  Per-request wall-clock latencies feed a percentile report
(p50/p95/p99), plus QPS and error rate -- the serving counterpart of the
simulator's :func:`repro.service.run_concurrent_searchers` prediction, which
``benchmarks/bench_serving_throughput.py`` compares against.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.serving.client import LocatorClient, TransportError
from repro.serving.metrics import percentile
from repro.serving.protocol import RemoteError

__all__ = ["LoadReport", "run_load", "run_load_sync"]


@dataclass
class LoadReport:
    """Aggregate of one load-generation session."""

    mode: str
    n_workers: int
    total: int = 0
    errors: int = 0
    duration_s: float = 0.0
    latencies_s: list = field(default_factory=list)
    #: populated in ``search`` mode: recall-relevant tallies
    records_found: int = 0
    providers_contacted: int = 0
    providers_failed: int = 0
    #: optional post-run ``stats`` snapshot from the server under test
    server_stats: Optional[dict] = None

    @property
    def qps(self) -> float:
        return self.total / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def error_rate(self) -> float:
        return self.errors / self.total if self.total else 0.0

    def latency_percentiles_ms(self) -> dict[str, float]:
        ordered = sorted(self.latencies_s)
        return {
            f"p{q:g}": percentile(ordered, q) * 1e3 for q in (50.0, 95.0, 99.0)
        }

    def format(self) -> str:
        pct = self.latency_percentiles_ms()
        lines = [
            f"mode           {self.mode}",
            f"workers        {self.n_workers}",
            f"requests       {self.total}",
            f"errors         {self.errors} ({self.error_rate:.2%})",
            f"duration       {self.duration_s:.3f} s",
            f"throughput     {self.qps:.1f} req/s",
            f"latency p50    {pct['p50']:.2f} ms",
            f"latency p95    {pct['p95']:.2f} ms",
            f"latency p99    {pct['p99']:.2f} ms",
        ]
        if self.mode == "search":
            lines += [
                f"records        {self.records_found}",
                f"contacted      {self.providers_contacted}",
                f"failed         {self.providers_failed}",
            ]
        return "\n".join(lines)


async def run_load(
    client: LocatorClient,
    owner_ids: list[int],
    n_workers: int = 4,
    requests_per_worker: int = 50,
    mode: str = "query",
    think_time_s: float = 0.0,
) -> LoadReport:
    """Drive ``n_workers`` closed-loop workers through ``owner_ids``.

    Worker ``w`` issues requests for owners ``owner_ids[(w + k*n_workers) %
    len(owner_ids)]`` -- a deterministic round-robin so runs are
    reproducible.  ``mode`` is ``"query"`` (phase 1 only) or ``"search"``
    (full two-phase; requires the client to know provider addresses).
    """
    if mode not in ("query", "search"):
        raise ValueError(f"mode must be 'query' or 'search', got {mode!r}")
    if not owner_ids:
        raise ValueError("need at least one owner id")
    if n_workers < 1 or requests_per_worker < 1:
        raise ValueError("n_workers and requests_per_worker must be >= 1")

    report = LoadReport(mode=mode, n_workers=n_workers)

    async def worker(w: int) -> None:
        for k in range(requests_per_worker):
            owner = owner_ids[(w + k * n_workers) % len(owner_ids)]
            started = time.monotonic()
            try:
                if mode == "query":
                    await client.query(owner)
                else:
                    result = await client.search(owner)
                    report.records_found += len(result.records)
                    report.providers_contacted += result.contacted
                    report.providers_failed += len(result.failed_providers)
            except (TransportError, RemoteError):
                report.errors += 1
            report.latencies_s.append(time.monotonic() - started)
            report.total += 1
            if think_time_s > 0:
                await asyncio.sleep(think_time_s)

    started = time.monotonic()
    await asyncio.gather(*(worker(w) for w in range(n_workers)))
    report.duration_s = time.monotonic() - started
    return report


def run_load_sync(
    client_factory,
    owner_ids: list[int],
    n_workers: int = 4,
    requests_per_worker: int = 50,
    mode: str = "query",
    think_time_s: float = 0.0,
    report_stats_from: Optional[tuple] = None,
) -> LoadReport:
    """Synchronous wrapper: build a client, run the load, tear down.

    ``client_factory`` is a zero-argument callable returning a
    :class:`LocatorClient` (construction must happen inside the event
    loop).  If ``report_stats_from`` is an address, the server's ``stats``
    snapshot is fetched after the run and attached as ``report.server_stats``.
    """

    async def _main() -> LoadReport:
        client = client_factory()
        try:
            report = await run_load(
                client,
                owner_ids,
                n_workers=n_workers,
                requests_per_worker=requests_per_worker,
                mode=mode,
                think_time_s=think_time_s,
            )
            if report_stats_from is not None:
                report.server_stats = await client.stats(report_stats_from)
            return report
        finally:
            await client.close()

    return asyncio.run(_main())
