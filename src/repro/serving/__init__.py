"""The serving runtime: the Fig. 1 system as a real asyncio network service.

Where :mod:`repro.service` deploys the locator service on the discrete-event
simulator (virtual time, predicted latency), this package hosts a
constructed :class:`~repro.core.index.PPIIndex` behind real TCP sockets:

* :class:`PPIServer` -- the untrusted locator server (``query`` /
  ``query-batch`` / ``stats``), owner-sharded via :class:`ShardSpec`;
* :class:`ProviderEndpoint` -- a provider's AuthSearch endpoint with the
  existing :class:`~repro.core.authsearch.AccessControl`;
* :class:`LocatorClient` -- the searcher: pooled connections, timeouts,
  capped-backoff retries, batching, LRU result cache;
* :func:`run_load` -- closed-loop load generation with percentile reports
  (:func:`run_load_multiprocess` fans it out over OS processes);
* :class:`FleetSupervisor` -- one server process per shard, health-checked
  and restarted with capped backoff, hot-swapped onto new index epochs by
  :meth:`~repro.serving.fleet.FleetSupervisor.rollout`
  (:mod:`repro.serving.fleet`);
* :func:`save_snapshot` / :func:`load_snapshot` -- the packed-bits binary
  index format workers boot from (:mod:`repro.serving.snapshot`);
* :mod:`repro.serving.protocol` -- the v1 length-prefixed JSON wire format;
* :mod:`repro.serving.protocol_v2` -- the v2 binary wire format (fixed
  crc-checked frames, packed payloads, per-frame protocol sniffing).

``python -m repro serve / provider / loadgen / snapshot / supervisor``
(or the ``eppi`` console script) exposes the same pieces operationally.
"""

from repro.serving.client import (
    ConnectionPool,
    LocatorClient,
    LRUCache,
    RetryPolicy,
    SearchReport,
    TransportError,
)
from repro.serving.eventloop import (
    install_uvloop,
    reuse_port_supported,
    uvloop_available,
)
from repro.serving.fleet import FleetSupervisor, WorkerSpec, sync_request
from repro.serving.loadgen import (
    LoadReport,
    run_load,
    run_load_multiprocess,
    run_load_sync,
)
from repro.serving.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.serving.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    FrameTooLarge,
    ProtocolError,
    RemoteError,
)
from repro.serving.protocol_v2 import (
    PROTOCOL_V2,
    DecodeError,
    Frame,
    FrameDecoder,
    PreparedFrameV2,
)
from repro.serving.provider import ProviderEndpoint
from repro.serving.snapshot import (
    SNAPSHOT_FORMAT_V1,
    SNAPSHOT_FORMAT_V2,
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    inspect_snapshot,
    load_postings,
    load_serving_index,
    load_serving_state,
    load_snapshot,
    save_snapshot,
    snapshot_epoch,
    snapshot_version,
)
from repro.serving.server import (
    IndexShardStore,
    PPIServer,
    ResponseSlab,
    ServingNode,
    ShardSpec,
    WrongShard,
    shard_of,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_V2",
    "PROTOCOL_VERSION",
    "ConnectionClosed",
    "ConnectionPool",
    "Counter",
    "DecodeError",
    "FleetSupervisor",
    "Frame",
    "FrameDecoder",
    "FrameTooLarge",
    "Gauge",
    "Histogram",
    "IndexShardStore",
    "LRUCache",
    "LoadReport",
    "LocatorClient",
    "MetricsRegistry",
    "PPIServer",
    "PreparedFrameV2",
    "ProtocolError",
    "ProviderEndpoint",
    "RemoteError",
    "ResponseSlab",
    "RetryPolicy",
    "SNAPSHOT_FORMAT_V1",
    "SNAPSHOT_FORMAT_V2",
    "SNAPSHOT_FORMAT_VERSION",
    "SearchReport",
    "ServingNode",
    "ShardSpec",
    "SnapshotError",
    "TransportError",
    "WorkerSpec",
    "WrongShard",
    "inspect_snapshot",
    "install_uvloop",
    "load_postings",
    "load_serving_index",
    "load_serving_state",
    "load_snapshot",
    "percentile",
    "reuse_port_supported",
    "run_load",
    "run_load_multiprocess",
    "run_load_sync",
    "save_snapshot",
    "shard_of",
    "snapshot_epoch",
    "snapshot_version",
    "sync_request",
    "uvloop_available",
]
