"""A provider's AuthSearch endpoint on the real network.

Phase 2 of the two-phase search (paper Sec. II-A): the searcher contacts a
candidate provider, authenticates, and -- if the provider's local
:class:`~repro.core.authsearch.AccessControl` authorizes it -- receives the
owner's records.  A *noise* provider answers ``ok`` with an empty record
list: the searcher pays the round trip and learns the published list
contained a false positive, exactly the privacy/overhead trade-off the
index was tuned for.

Request handling is stateless, so retried requests are idempotent
(at-least-once semantics from the client's side), matching
:class:`repro.service.nodes.ProviderServiceNode` on the simulator.
"""

from __future__ import annotations

from typing import Any

from repro.core.authsearch import AccessControl
from repro.core.model import Provider, Record
from repro.serving.protocol import VERB_SEARCH, ok_response
from repro.serving.server import ServingNode

__all__ = ["ProviderEndpoint", "record_to_wire", "record_from_wire"]


def record_to_wire(record: Record) -> dict[str, Any]:
    return {"owner_id": record.owner_id, "payload": record.payload}


def record_from_wire(obj: dict[str, Any]) -> Record:
    return Record(owner_id=int(obj["owner_id"]), payload=str(obj.get("payload", "")))


class ProviderEndpoint(ServingNode):
    """One provider's service endpoint: ACL check + local record search."""

    role = "provider"

    def __init__(
        self,
        provider: Provider,
        acl: AccessControl,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        protocols=(1, 2),
    ):
        super().__init__(
            host=host, port=port, max_inflight=max_inflight, protocols=protocols
        )
        self.provider = provider
        self.acl = acl

    async def handle(
        self, verb: str, message: dict[str, Any], request_id: Any, protocol: int = 1
    ) -> dict[str, Any]:
        if verb == VERB_SEARCH:
            searcher = message.get("searcher")
            owner_id = message.get("owner")
            if not isinstance(searcher, str) or not isinstance(owner_id, int):
                raise ValueError("search needs a 'searcher' name and an 'owner' id")
            self.metrics.counter("searches_served").inc()
            if not self.acl.authorize(searcher, owner_id):
                self.metrics.counter("denials").inc()
                return ok_response(request_id, status="denied", records=[])
            records = self.provider.records.get(owner_id, [])
            return ok_response(
                request_id,
                status="ok",
                records=[record_to_wire(r) for r in records],
            )
        return await super().handle(verb, message, request_id, protocol)

    def describe(self) -> dict[str, Any]:
        base = super().describe()
        base.update(
            provider_id=self.provider.provider_id,
            provider_name=self.provider.name,
            n_owners_held=len(self.provider.records),
        )
        return base
