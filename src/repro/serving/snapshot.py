"""Binary index snapshots: the fleet's boot format for a published index.

A worker process restarted by the supervisor must get back to serving as
fast as possible, so it loads the index from a compact binary *snapshot*
instead of re-running construction or parsing the O(n·m) JSON adjacency
lists of :meth:`~repro.core.index.PPIIndex.from_json`.  The snapshot is a
NumPy ``npz`` archive (members stored uncompressed, which is what makes
the mmap boot path below possible).

Archive layout (format version 1)::

    meta        uint64[4]  = [format_version, n_providers, n_owners,
                              crc32(packed bytes)]
    packed      uint8[ceil(n_providers * n_owners / 8)]
                           = packbits(M', C-order, big-endian within a byte)
    owner_names unicode[n_owners]   (key absent when the index is unnamed)

Format version 2 keeps ``packed`` (so a dense load and a popcount
``inspect`` stay possible) and adds the owner-major CSR postings of
:class:`~repro.core.postings.PostingsIndex` precomputed at write time::

    meta        uint64[5]  = [format_version, n_providers, n_owners,
                              crc32(packed bytes),
                              crc32(indptr bytes || indices bytes)]
    packed      as in v1
    indptr      int64[n_owners + 1]
    indices     int32[published positives]
    owner_names as in v1

Format version 3 is v2 plus one trailing meta field: the publication
**epoch**, a monotonically increasing counter stamped by the compactor
(:mod:`repro.updates.compactor`) every time base + delta segments are
merged into a fresh snapshot.  Servers expose the epoch in every query
response so clients (and the fleet supervisor's rolling reload) can detect
stale caches across a hot-swap; v1/v2 snapshots read back as epoch 0.

The point of v2 is the *boot path*: :func:`load_postings` memory-maps the
CSR arrays straight out of the archive (npz members are stored, not
deflated, so each is a contiguous ``.npy`` at a computable offset), which
makes worker boot O(1) in the index size -- pages fault in on demand and
are shared across every shard process on the host through the OS page
cache.  Only the small CSR checksum is verified on that path; the packed
bits stay untouched on disk.

The matrix is public by design (the PPI server is untrusted), so the
checksums guard against corruption, not tampering.  ``allow_pickle`` is
never enabled: a snapshot is pure arrays and loading one from an untrusted
operator cannot execute code.

Both formats are pinned by golden files under ``tests/serving/data/`` --
any byte-layout change must bump :data:`SNAPSHOT_FORMAT_VERSION` and keep
the old readers or fail loudly, never drift silently.
"""

from __future__ import annotations

import os
import zipfile
import zlib
from typing import Any, Union

import numpy as np

from repro.core.errors import ModelError
from repro.core.index import PPIIndex
from repro.core.postings import PostingsIndex

__all__ = [
    "SNAPSHOT_FORMAT_V1",
    "SNAPSHOT_FORMAT_V2",
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "inspect_snapshot",
    "load_postings",
    "load_serving_index",
    "load_serving_state",
    "load_snapshot",
    "save_snapshot",
    "snapshot_epoch",
    "snapshot_version",
]

SNAPSHOT_FORMAT_V1 = 1
SNAPSHOT_FORMAT_V2 = 2
SNAPSHOT_FORMAT_VERSION = 3

_META_FIELDS = {
    1: ("format_version", "n_providers", "n_owners", "checksum"),
    2: ("format_version", "n_providers", "n_owners", "checksum", "checksum_csr"),
    3: (
        "format_version",
        "n_providers",
        "n_owners",
        "checksum",
        "checksum_csr",
        "epoch",
    ),
}


class SnapshotError(ModelError):
    """The file is not a readable snapshot of a supported version."""


def _csr_checksum(indptr: np.ndarray, indices: np.ndarray) -> int:
    return zlib.crc32(indices.tobytes(), zlib.crc32(indptr.tobytes()))


def save_snapshot(
    index: Union[PPIIndex, PostingsIndex],
    path: str,
    format_version: int = SNAPSHOT_FORMAT_VERSION,
    epoch: int = 0,
) -> dict[str, Any]:
    """Write ``index`` to ``path`` in snapshot format; return its summary.

    Accepts either index representation; ``format_version=1`` writes the
    legacy packed-bits-only layout byte-identically to older builds, and
    ``format_version=2`` the epoch-less CSR layout.  ``epoch`` is stored
    only by v3 (writing an older format with a non-zero epoch is an
    error, not a silent drop).  The write goes through a same-directory
    temp file + :func:`os.replace` so a crashed writer can never leave a
    torn snapshot where a restarting worker will find it.
    """
    if format_version not in _META_FIELDS:
        raise SnapshotError(f"cannot write snapshot format version {format_version}")
    if epoch < 0:
        raise SnapshotError(f"epoch must be >= 0, got {epoch}")
    if epoch and format_version < 3:
        raise SnapshotError(
            f"format version {format_version} cannot carry epoch {epoch}"
        )
    if isinstance(index, PostingsIndex):
        postings, matrix = index, index.to_dense()
    else:
        postings, matrix = None, np.asarray(index.matrix, dtype=np.uint8)
    packed = np.packbits(matrix)
    meta_values = [
        format_version,
        matrix.shape[0],
        matrix.shape[1],
        zlib.crc32(packed.tobytes()),
    ]
    arrays: dict[str, np.ndarray] = {"packed": packed}
    if format_version >= 2:
        if postings is None:
            postings = PostingsIndex.from_dense(matrix)
        indptr = np.ascontiguousarray(postings.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(postings.indices, dtype=np.int32)
        meta_values.append(_csr_checksum(indptr, indices))
        arrays["indptr"] = indptr
        arrays["indices"] = indices
    if format_version >= 3:
        meta_values.append(epoch)
    arrays = {"meta": np.array(meta_values, dtype=np.uint64), **arrays}
    names = index.owner_names
    if names is not None:
        arrays["owner_names"] = np.array(names, dtype=np.str_)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as f:
            np.savez(f, **arrays)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
    return inspect_snapshot(path)


def _read_archive(path: str) -> tuple[dict[str, int], "np.lib.npyio.NpzFile"]:
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from exc
    if "meta" not in archive or "packed" not in archive:
        archive.close()
        raise SnapshotError(f"{path!r} is not an index snapshot (missing keys)")
    raw_meta = archive["meta"]
    if raw_meta.ndim != 1 or raw_meta.size < 1:
        archive.close()
        raise SnapshotError(f"{path!r} has a malformed meta block")
    version = int(raw_meta[0])
    fields = _META_FIELDS.get(version)
    if fields is None:
        archive.close()
        supported = "/".join(str(v) for v in sorted(_META_FIELDS))
        raise SnapshotError(
            f"snapshot format version {version} unsupported "
            f"(this reader speaks versions {supported})"
        )
    if raw_meta.shape != (len(fields),):
        archive.close()
        raise SnapshotError(f"{path!r} has a malformed meta block")
    meta = {k: int(v) for k, v in zip(fields, raw_meta)}
    if version >= 2 and ("indptr" not in archive or "indices" not in archive):
        archive.close()
        raise SnapshotError(f"{path!r} is missing its v2 postings arrays")
    return meta, archive


def snapshot_version(path: str) -> int:
    """Format version of the snapshot at ``path`` (reads only the meta)."""
    meta, archive = _read_archive(path)
    archive.close()
    return meta["format_version"]


def load_snapshot(path: str) -> PPIIndex:
    """Load a snapshot back into a dense, fully-verified :class:`PPIIndex`."""
    meta, archive = _read_archive(path)
    with archive:
        packed = archive["packed"]
        if zlib.crc32(packed.tobytes()) != meta["checksum"]:
            raise SnapshotError(f"snapshot {path!r} failed its checksum")
        n_cells = meta["n_providers"] * meta["n_owners"]
        if packed.size * 8 < n_cells:
            raise SnapshotError(f"snapshot {path!r} is truncated")
        matrix = (
            np.unpackbits(packed, count=n_cells)
            .reshape(meta["n_providers"], meta["n_owners"])
        )
        owner_names = None
        if "owner_names" in archive:
            owner_names = [str(name) for name in archive["owner_names"]]
    return PPIIndex(matrix, owner_names=owner_names)


def load_postings(path: str, mmap: bool = True) -> PostingsIndex:
    """Load a snapshot as a :class:`PostingsIndex` -- the serving boot path.

    For a v2 snapshot with ``mmap=True`` the CSR arrays are memory-mapped
    in place: boot cost is independent of index size, and shard processes
    on one host share the pages.  The CSR checksum is verified (touching
    only the postings pages); the packed-bits checksum is *not* -- use
    :func:`load_snapshot` or :func:`inspect_snapshot` for a full audit.

    A v1 snapshot has no stored postings, so it falls back to the dense
    load and an O(nnz) CSR build -- correct, but paying the old boot cost.
    """
    meta, archive = _read_archive(path)
    if meta["format_version"] == 1:
        archive.close()
        return PostingsIndex.from_index(load_snapshot(path))
    names = ("indptr", "indices") + (
        ("owner_names",) if "owner_names" in archive else ()
    )
    if mmap:
        archive.close()
        members = _mmap_npz_members(path, names)
    else:
        with archive:
            members = {name: archive[name] for name in names}
    indptr, indices = members["indptr"], members["indices"]
    if indptr.shape != (meta["n_owners"] + 1,) or indices.shape != (
        int(indptr[-1]) if indptr.size else 0,
    ):
        raise SnapshotError(f"snapshot {path!r} has malformed postings arrays")
    if _csr_checksum(indptr, indices) != meta["checksum_csr"]:
        raise SnapshotError(f"snapshot {path!r} failed its postings checksum")
    return PostingsIndex(
        indptr,
        indices,
        meta["n_providers"],
        owner_names=members.get("owner_names"),
        validate=False,
    )


def load_serving_index(path: str) -> Union[PPIIndex, PostingsIndex]:
    """What a fleet worker boots from: mmap'd postings when the snapshot
    carries them (v2+), the dense index otherwise (v1)."""
    if snapshot_version(path) >= 2:
        return load_postings(path, mmap=True)
    return load_snapshot(path)


def snapshot_epoch(path: str) -> int:
    """Publication epoch of the snapshot at ``path`` (0 for v1/v2)."""
    meta, archive = _read_archive(path)
    archive.close()
    return meta.get("epoch", 0)


def load_serving_state(path: str) -> tuple[Union[PPIIndex, PostingsIndex], int]:
    """Boot path with provenance: the served ``(index, epoch)`` pair.

    This is what a hot-swapping server loads on ``reload``.  The epoch must
    describe the same file the index was read from, but a compactor can
    :func:`os.replace` the snapshot between any two opens -- so read the
    epoch, load, and re-read: a changed epoch means the load raced a swap
    and must be retried against the new file.
    """
    for _ in range(8):
        meta, archive = _read_archive(path)
        archive.close()
        epoch = meta.get("epoch", 0)
        index = (
            load_postings(path, mmap=True)
            if meta["format_version"] >= 2
            else load_snapshot(path)
        )
        if snapshot_epoch(path) == epoch:
            return index, epoch
        if isinstance(index, PostingsIndex):
            index.release()
    raise SnapshotError(f"snapshot {path!r} kept changing underfoot during load")


# Bytes 26:28 / 28:30 of a zip local file header hold the name/extra-field
# lengths; the member's data starts right after both.  The *central*
# directory's extra field may differ, so the local header must be read.
_ZIP_LOCAL_HEADER = 30
_ZIP_LOCAL_MAGIC = b"PK\x03\x04"


def _mmap_npz_members(path: str, names: tuple) -> dict[str, np.ndarray]:
    """Memory-map named members of an *uncompressed* npz archive.

    ``np.load`` ignores ``mmap_mode`` for npz files, but ``np.savez``
    stores members without compression, so each is a plain ``.npy`` blob at
    a computable offset inside the zip: parse the npy header there, then
    :class:`np.memmap` the payload.  Falls back to a copying read for any
    member that is deflated (e.g. a ``savez_compressed`` archive).
    """
    members: dict[str, np.ndarray] = {}
    fallback: list[str] = []
    try:
        with zipfile.ZipFile(path) as zf, open(path, "rb") as f:
            infos = {info.filename: info for info in zf.infolist()}
            for name in names:
                info = infos.get(f"{name}.npy")
                if info is None:
                    raise SnapshotError(f"{path!r} has no member {name!r}")
                if info.compress_type != zipfile.ZIP_STORED:
                    fallback.append(name)
                    continue
                f.seek(info.header_offset)
                local = f.read(_ZIP_LOCAL_HEADER)
                if len(local) != _ZIP_LOCAL_HEADER or local[:4] != _ZIP_LOCAL_MAGIC:
                    raise SnapshotError(f"{path!r} has a torn zip member {name!r}")
                name_len = int.from_bytes(local[26:28], "little")
                extra_len = int.from_bytes(local[28:30], "little")
                f.seek(info.header_offset + _ZIP_LOCAL_HEADER + name_len + extra_len)
                version = np.lib.format.read_magic(f)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(f)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(f)
                else:
                    raise SnapshotError(
                        f"member {name!r} uses npy format {version}, cannot mmap"
                    )
                if int(np.prod(shape)) == 0:
                    members[name] = np.zeros(shape, dtype=dtype)
                    continue
                members[name] = np.memmap(
                    path,
                    dtype=dtype,
                    mode="r",
                    offset=f.tell(),
                    shape=shape,
                    order="F" if fortran else "C",
                )
    except (OSError, zipfile.BadZipFile) as exc:
        raise SnapshotError(f"cannot mmap snapshot {path!r}: {exc}") from exc
    if fallback:
        with np.load(path, allow_pickle=False) as archive:
            for name in fallback:
                members[name] = archive[name]
    return members


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def _popcount(packed: np.ndarray) -> int:
        return int(np.bitwise_count(packed).sum(dtype=np.int64))

else:  # pragma: no cover -- exercised only on numpy 1.x

    _POPCOUNT_TABLE = np.unpackbits(
        np.arange(256, dtype=np.uint8)[:, None], axis=1
    ).sum(axis=1, dtype=np.int64)

    def _popcount(packed: np.ndarray) -> int:
        # One 256-bin histogram instead of an 8x unpacked copy: O(1) extra
        # memory however large the matrix is.
        return int(np.bincount(packed, minlength=256) @ _POPCOUNT_TABLE)


def inspect_snapshot(path: str) -> dict[str, Any]:
    """Summarize a snapshot without materializing the unpacked matrix."""
    meta, archive = _read_archive(path)
    with archive:
        packed = archive["packed"]
        checksum_ok = zlib.crc32(packed.tobytes()) == meta["checksum"]
        if meta["format_version"] >= 2:
            checksum_ok = checksum_ok and _csr_checksum(
                archive["indptr"], archive["indices"]
            ) == meta["checksum_csr"]
        positives = _popcount(packed) if checksum_ok else 0
        has_names = "owner_names" in archive
    n_cells = meta["n_providers"] * meta["n_owners"]
    return {
        "format_version": meta["format_version"],
        "epoch": meta.get("epoch", 0),
        "n_providers": meta["n_providers"],
        "n_owners": meta["n_owners"],
        "published_positives": positives,
        "density": positives / n_cells if n_cells else 0.0,
        "has_owner_names": has_names,
        "checksum_ok": checksum_ok,
        "file_bytes": os.path.getsize(path),
    }
