"""Binary index snapshots: the fleet's boot format for a published index.

A worker process restarted by the supervisor must get back to serving as
fast as possible, so it loads the index from a compact binary *snapshot*
instead of re-running construction or parsing the O(n·m) JSON adjacency
lists of :meth:`~repro.core.index.PPIIndex.from_json`.  The snapshot is a
NumPy ``npz`` archive holding the published matrix ``M'`` bit-packed (one
bit per cell, C-order via :func:`numpy.packbits`) plus the owner-name
table -- a 200 providers x 1M owners index is ~25 MB on disk and loads in
one ``unpackbits`` call.

Archive layout (format version 1)::

    meta        uint64[4]  = [format_version, n_providers, n_owners,
                              crc32(packed bytes)]
    packed      uint8[ceil(n_providers * n_owners / 8)]
                           = packbits(M', C-order, big-endian within a byte)
    owner_names unicode[n_owners]   (key absent when the index is unnamed)

The matrix is public by design (the PPI server is untrusted), so the
checksum guards against corruption, not tampering.  ``allow_pickle`` is
never enabled: a snapshot is pure arrays and loading one from an untrusted
operator cannot execute code.

The format is pinned by a golden file under ``tests/serving/data/`` -- any
byte-layout change must bump :data:`SNAPSHOT_FORMAT_VERSION` and keep the
old reader or fail loudly, never drift silently.
"""

from __future__ import annotations

import os
import zlib
from typing import Any

import numpy as np

from repro.core.errors import ModelError
from repro.core.index import PPIIndex

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "inspect_snapshot",
    "load_snapshot",
    "save_snapshot",
]

SNAPSHOT_FORMAT_VERSION = 1

_META_FIELDS = ("format_version", "n_providers", "n_owners", "checksum")


class SnapshotError(ModelError):
    """The file is not a readable snapshot of a supported version."""


def save_snapshot(index: PPIIndex, path: str) -> dict[str, Any]:
    """Write ``index`` to ``path`` in snapshot format; return its summary.

    The write goes through a same-directory temp file + :func:`os.replace`
    so a crashed writer can never leave a torn snapshot where a restarting
    worker will find it.
    """
    matrix = np.asarray(index.matrix, dtype=np.uint8)
    packed = np.packbits(matrix)
    meta = np.array(
        [
            SNAPSHOT_FORMAT_VERSION,
            index.n_providers,
            index.n_owners,
            zlib.crc32(packed.tobytes()),
        ],
        dtype=np.uint64,
    )
    arrays: dict[str, np.ndarray] = {"meta": meta, "packed": packed}
    names = index.owner_names
    if names is not None:
        arrays["owner_names"] = np.array(names, dtype=np.str_)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as f:
            np.savez(f, **arrays)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
    return inspect_snapshot(path)


def _read_archive(path: str) -> tuple[dict[str, int], "np.lib.npyio.NpzFile"]:
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from exc
    if "meta" not in archive or "packed" not in archive:
        archive.close()
        raise SnapshotError(f"{path!r} is not an index snapshot (missing keys)")
    raw_meta = archive["meta"]
    if raw_meta.shape != (len(_META_FIELDS),):
        archive.close()
        raise SnapshotError(f"{path!r} has a malformed meta block")
    meta = {k: int(v) for k, v in zip(_META_FIELDS, raw_meta)}
    if meta["format_version"] != SNAPSHOT_FORMAT_VERSION:
        version = meta["format_version"]
        archive.close()
        raise SnapshotError(
            f"snapshot format version {version} unsupported "
            f"(this reader speaks version {SNAPSHOT_FORMAT_VERSION})"
        )
    return meta, archive


def load_snapshot(path: str) -> PPIIndex:
    """Load a snapshot back into a queryable :class:`PPIIndex`."""
    meta, archive = _read_archive(path)
    with archive:
        packed = archive["packed"]
        if zlib.crc32(packed.tobytes()) != meta["checksum"]:
            raise SnapshotError(f"snapshot {path!r} failed its checksum")
        n_cells = meta["n_providers"] * meta["n_owners"]
        if packed.size * 8 < n_cells:
            raise SnapshotError(f"snapshot {path!r} is truncated")
        matrix = (
            np.unpackbits(packed, count=n_cells)
            .reshape(meta["n_providers"], meta["n_owners"])
        )
        owner_names = None
        if "owner_names" in archive:
            owner_names = [str(name) for name in archive["owner_names"]]
    return PPIIndex(matrix, owner_names=owner_names)


def inspect_snapshot(path: str) -> dict[str, Any]:
    """Summarize a snapshot without materializing the unpacked matrix."""
    meta, archive = _read_archive(path)
    with archive:
        packed = archive["packed"]
        checksum_ok = zlib.crc32(packed.tobytes()) == meta["checksum"]
        positives = int(np.unpackbits(packed).sum()) if checksum_ok else 0
        has_names = "owner_names" in archive
    n_cells = meta["n_providers"] * meta["n_owners"]
    return {
        "format_version": meta["format_version"],
        "n_providers": meta["n_providers"],
        "n_owners": meta["n_owners"],
        "published_positives": positives,
        "density": positives / n_cells if n_cells else 0.0,
        "has_owner_names": has_names,
        "checksum_ok": checksum_ok,
        "file_bytes": os.path.getsize(path),
    }
