"""Serving-side metrics: counters, gauges and latency histograms.

The simulator has its own :class:`repro.net.metrics.NetworkMetrics` (virtual
time); this module is the real-runtime counterpart.  A
:class:`MetricsRegistry` is owned by each server/provider process and
exported over the wire by the ``stats`` verb, so operators (and the load
generator's consistency checks) can read live counters without scraping
logs.

Histograms keep a bounded uniform reservoir so percentile queries stay O(k)
in memory under unbounded traffic; sampling is deterministic (seeded) to
keep test runs reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
]


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of pre-sorted values."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    rank = max(0, min(len(sorted_values) - 1, round(q / 100.0 * (len(sorted_values) - 1))))
    return float(sorted_values[rank])


class Counter:
    """Monotonically increasing count (requests served, errors, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """Instantaneous level (in-flight requests, open connections, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Value distribution with exact count/sum and sampled percentiles.

    Up to ``max_samples`` observations are kept verbatim; past that the
    reservoir is a uniform sample (Vitter's algorithm R), so percentiles
    remain unbiased estimates at fixed memory.
    """

    __slots__ = ("count", "total", "_samples", "_max_samples", "_rng")

    def __init__(self, max_samples: int = 8192, seed: int = 0) -> None:
        if max_samples < 1:
            raise ValueError("need at least one sample slot")
        self.count = 0
        self.total = 0.0
        self._samples: list[float] = []
        self._max_samples = max_samples
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if len(self._samples) < self._max_samples:
            self._samples.append(float(value))
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._max_samples:
                self._samples[slot] = float(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantiles(self, qs: tuple[float, ...] = (50.0, 95.0, 99.0)) -> dict[str, float]:
        ordered = sorted(self._samples)
        return {f"p{q:g}": percentile(ordered, q) for q in qs}

    def snapshot(self) -> dict[str, float]:
        out: dict[str, float] = {"count": self.count, "sum": self.total, "mean": self.mean}
        out.update(self.quantiles())
        return out


class MetricsRegistry:
    """Named metrics, lazily created, exported as one JSON-able snapshot."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str, max_samples: int = 8192) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(max_samples=max_samples)
        return hist

    def snapshot(self) -> dict[str, Any]:
        """The ``stats`` verb payload: plain dicts of plain numbers."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.snapshot() for k, h in sorted(self._histograms.items())
            },
        }

    def get(self, kind: str, name: str) -> Optional[float]:
        """Convenience for tests: read a metric if it exists."""
        store = {
            "counter": self._counters,
            "gauge": self._gauges,
        }.get(kind)
        if store is None or name not in store:
            return None
        return float(store[name].value)
