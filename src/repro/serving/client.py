"""The searcher's client library for the serving runtime.

Drives the paper's two-phase search over real TCP:

1. ``QueryPPI``: ask the (sharded) PPI server fleet for the obscured
   provider list of an owner;
2. ``AuthSearch``: fan out to every candidate provider concurrently,
   authenticate, collect records.

Operational machinery the simulator never needed:

* **connection pooling** -- per-address pools of open connections, so a
  closed-loop worker reuses one socket instead of paying connect() per
  request;
* **timeouts + retries** -- every request has a deadline; transport
  failures are retried with capped exponential backoff and full jitter
  (:class:`RetryPolicy`), safe because the service side is idempotent;
* **batching** -- ``query_batch`` groups owners by shard and resolves each
  shard's batch in one round trip;
* **result caching** -- a bounded LRU over ``QueryPPI`` results.  The
  published index is static within a publication epoch (paper Sec. III-C:
  repeated queries return the identical list), which is what makes this
  cache sound; every server response carries its serving ``epoch``, and
  the first response from a newer epoch invalidates every older cached
  entry at once (entries are epoch-tagged, ``fleet_epoch`` is the high
  -water mark), so a rolling fleet reload can never pin a stale result;
* **shard re-routing** -- a ``wrong-shard`` answer (servers list out of
  shard order, or a re-sharded fleet) triggers a routing-table refresh
  from the fleet's own ``info`` verbs plus a retry at the shard the error
  named, so a misrouted client self-corrects instead of failing.

A provider that stays unreachable after retries is *recorded* in
``SearchReport.failed_providers`` rather than failing the search: partial
availability degrades coverage, not liveness.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.model import Record
from repro.serving.protocol import (
    VERB_INFO,
    VERB_PING,
    VERB_QUERY,
    VERB_QUERY_BATCH,
    VERB_SEARCH,
    VERB_STATS,
    ProtocolError,
    RemoteError,
    raise_for_response,
    request,
    write_frame,
)
from repro.serving.protocol_v2 import encode_request_v2, read_any_frame
from repro.serving.provider import record_from_wire
from repro.serving.server import shard_of

__all__ = [
    "Address",
    "ConnectionPool",
    "LocatorClient",
    "LRUCache",
    "RetryPolicy",
    "SearchReport",
    "TransportError",
]

Address = tuple  # (host, port)


class TransportError(Exception):
    """Request failed at the transport layer after exhausting retries."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with full jitter.

    Attempt ``k`` (0-based) sleeps ``uniform(0, min(max_delay, base_delay *
    2**k))`` before retrying -- the AWS "full jitter" scheme, which avoids
    synchronized retry storms across a worker fleet.
    """

    max_retries: int = 3
    timeout_s: float = 2.0
    base_delay_s: float = 0.02
    max_delay_s: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0 or self.timeout_s <= 0:
            raise ValueError("max_retries must be >= 0 and timeout_s > 0")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        cap = min(self.max_delay_s, self.base_delay_s * (2**attempt))
        return rng.uniform(0.0, cap)


class LRUCache:
    """Bounded least-recently-used map; ``capacity=0`` disables caching."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[Any, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Any) -> Optional[Any]:
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key: Any, value: Any) -> None:
        if self.capacity == 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)


class ConnectionPool:
    """Per-address pools of open ``(reader, writer)`` stream pairs."""

    def __init__(self, max_idle_per_host: int = 8):
        self.max_idle_per_host = max_idle_per_host
        self._idle: dict[Address, list] = {}

    async def acquire(self, addr: Address):
        idle = self._idle.get(addr)
        while idle:
            reader, writer = idle.pop()
            if not writer.is_closing():
                return reader, writer
            writer.close()
        host, port = addr
        return await asyncio.open_connection(host, port)

    def release(self, addr: Address, conn) -> None:
        reader, writer = conn
        idle = self._idle.setdefault(addr, [])
        if writer.is_closing() or len(idle) >= self.max_idle_per_host:
            writer.close()
            return
        idle.append(conn)

    def discard(self, conn) -> None:
        _, writer = conn
        writer.close()

    async def close(self) -> None:
        for idle in self._idle.values():
            for _, writer in idle:
                writer.close()
        self._idle.clear()


@dataclass
class SearchReport:
    """Outcome of one two-phase search over the real network.

    Mirrors :class:`repro.service.nodes.SearchOutcome` so simulator and
    serving results are comparable side by side.
    """

    owner_id: int
    records: list[Record] = field(default_factory=list)
    positive_providers: list[int] = field(default_factory=list)
    noise_providers: list[int] = field(default_factory=list)
    denied_providers: list[int] = field(default_factory=list)
    failed_providers: list[int] = field(default_factory=list)
    retries: int = 0
    latency_s: float = 0.0

    @property
    def contacted(self) -> int:
        return (
            len(self.positive_providers)
            + len(self.noise_providers)
            + len(self.denied_providers)
            + len(self.failed_providers)
        )

    @property
    def found(self) -> bool:
        return bool(self.records)


class LocatorClient:
    """A searcher: pooled, retrying, caching client of the serving fleet.

    ``servers`` lists one entry per shard, *in shard order* (owner ``j``
    is served by shard ``j % len(servers)``).  An entry is either one
    address or a *replica set* -- a list of addresses all hosting that
    shard (a geo-replicated read tier).  Within a set the client routes by
    rendezvous (highest-random-weight) hashing on the owner id: stable
    per-owner affinity, and a failed replica redistributes only its own
    owners.  Read-your-epoch consistency across replicas rides the same
    ``fleet_epoch`` high-water mark that guards the cache: a replica whose
    last-seen epoch lags the mark is skipped, and a response carrying an
    older epoch is *rejected* and retried on the next replica -- a client
    that has seen epoch ``E`` never reads pre-``E`` state, even while
    followers are still catching up.  ``providers`` maps provider id to
    that provider's endpoint address; it may cover only the providers this
    searcher can reach.

    ``protocol`` selects the wire protocol: ``"v2"`` (binary frames,
    strict), ``"v1"`` (length-prefixed JSON), or the default ``"auto"`` --
    speak v2, and the first time an address answers a v2 request with a v1
    frame (the signature of a legacy server rejecting the magic as an
    oversized length) pin that address to v1 and retransmit.  The probe
    costs one round trip once per v1-only address, never loses a request,
    and needs no out-of-band version exchange; ``protocol_downgrades``
    counts the pins.
    """

    def __init__(
        self,
        servers: list[Address],
        providers: Optional[dict[int, Address]] = None,
        name: str = "searcher",
        retry: RetryPolicy = RetryPolicy(),
        cache_size: int = 1024,
        max_idle_per_host: int = 8,
        rng_seed: int = 0,
        protocol: str = "auto",
    ):
        if not servers:
            raise ValueError("need at least one server address")
        if protocol not in ("auto", "v1", "v2"):
            raise ValueError(
                f"protocol must be 'auto', 'v1' or 'v2', got {protocol!r}"
            )
        #: one replica set per shard; a bare address is a singleton set
        self.replica_sets = [self._as_replica_set(e) for e in servers]
        self.servers = [rs[0] for rs in self.replica_sets]
        self.providers = {int(k): tuple(v) for k, v in (providers or {}).items()}
        self.name = name
        self.retry = retry
        self.cache = LRUCache(cache_size)
        self.pool = ConnectionPool(max_idle_per_host=max_idle_per_host)
        self.retries_total = 0
        self.wrong_shard_reroutes = 0
        self.routing_refreshes = 0
        #: highest publication epoch seen in any server response; cache
        #: entries tagged with an older epoch are treated as misses.
        self.fleet_epoch = 0
        self.epoch_invalidations = 0
        #: last epoch each address answered with (read-your-epoch routing)
        self.addr_epochs: dict[Address, int] = {}
        self.stale_replica_skips = 0
        self.protocol = protocol
        self.protocol_downgrades = 0
        #: addresses that answered a v2 frame with v1: legacy servers,
        #: spoken to in v1 from the first downgrade on.
        self._v1_only: set = set()
        self._rng = random.Random(rng_seed)
        self._request_ids = itertools.count(1)

    @staticmethod
    def _as_replica_set(entry) -> list[Address]:
        """Normalize one ``servers`` entry: address or list of addresses."""
        entry = list(entry)
        if not entry:
            raise ValueError("a replica set must hold at least one address")
        if isinstance(entry[0], (list, tuple)):
            return [tuple(a) for a in entry]
        return [tuple(entry)]

    # -- transport ------------------------------------------------------------

    async def _request_once(
        self, addr: Address, message: dict, force_v1: bool = False
    ) -> dict:
        use_v2 = (
            not force_v1 and self.protocol != "v1" and addr not in self._v1_only
        )
        conn = await self.pool.acquire(addr)
        reader, writer = conn
        try:
            if use_v2:
                writer.write(encode_request_v2(message))
                await writer.drain()
            else:
                await write_frame(writer, message)
            got_protocol, response = await read_any_frame(reader)
        except BaseException:
            # Includes CancelledError from wait_for timeout: the connection
            # has an orphaned in-flight request, never reuse it.
            self.pool.discard(conn)
            raise
        refused_v2 = got_protocol == 1 or (
            response.get("ok") is False
            and response.get("code") == "protocol-disabled"
        )
        if use_v2 and refused_v2:
            # The address speaks v1 only: either a legacy server that saw
            # the magic as an oversized v1 length and answered a v1 error,
            # or a v1-pinned modern server refusing v2 with a typed error.
            # Pin it and retransmit the same request as v1 -- inside this
            # attempt, so the downgrade never consumes retry budget.
            self.pool.discard(conn)
            if self.protocol == "v2":
                raise ProtocolError(
                    f"server at {addr[0]}:{addr[1]} does not speak protocol v2"
                )
            self._v1_only.add(addr)
            self.protocol_downgrades += 1
            return await self._request_once(addr, message)
        if response.get("ok") is False and response.get("id") in (None, 0):
            # A decode-stage error frame (bad crc, refused protocol, ...):
            # the server failed before it could parse a request id, so the
            # echo cannot match ours (ids start at 1).  Surface the typed
            # error instead of retrying an "id mismatch".  The server drops
            # the connection after such a frame; never pool it.
            self.pool.discard(conn)
            return response
        if response.get("id") != message["id"]:
            self.pool.discard(conn)
            raise ProtocolError(
                f"response id {response.get('id')!r} != request id {message['id']}"
            )
        self.pool.release(addr, conn)
        return response

    async def call(self, addr: Address, verb: str, **fields: Any) -> dict:
        """One verb against one endpoint, with timeout + backoff retries.

        Transport-level failures (refused/reset connections, timeouts,
        garbled frames) are retried; application-level errors
        (:class:`RemoteError`) are not -- the service answered.

        In ``auto`` mode, a transport failure on a v2 attempt switches the
        remaining attempts of this call to v1: a peer so old it predates
        protocol negotiation may drop the magic without answering, which is
        indistinguishable from a transport flake -- so the retry budget
        probes both framings.  The next call starts back at v2 (the pin to
        v1 happens only on an explicit v1 answer, in ``_request_once``).
        """
        last_exc: Optional[Exception] = None
        force_v1 = False
        for attempt in range(self.retry.max_retries + 1):
            if attempt:
                self.retries_total += 1
                await asyncio.sleep(self.retry.backoff_s(attempt - 1, self._rng))
            message = request(verb, next(self._request_ids), **fields)
            try:
                response = await asyncio.wait_for(
                    self._request_once(addr, message, force_v1=force_v1),
                    timeout=self.retry.timeout_s,
                )
                result = raise_for_response(response)
                epoch = result.get("epoch")
                if isinstance(epoch, int) and not isinstance(epoch, bool):
                    # Latest observation wins: this is what read-your-epoch
                    # replica selection consults, not a high-water mark.
                    self.addr_epochs[addr] = epoch
                return result
            except (OSError, asyncio.TimeoutError, ProtocolError) as exc:
                last_exc = exc
                if self.protocol == "auto" and addr not in self._v1_only:
                    force_v1 = True
        raise TransportError(
            f"{verb} to {addr[0]}:{addr[1]} failed after "
            f"{self.retry.max_retries + 1} attempts: {last_exc}"
        ) from last_exc

    # -- phase 1: QueryPPI ----------------------------------------------------

    def server_for(self, owner_id: int) -> Address:
        shard = shard_of(owner_id, len(self.replica_sets))
        return self._pick_replica(owner_id, self.replica_sets[shard])

    def _replica_order(self, owner_id: int, replicas: list[Address]) -> list[Address]:
        """Rendezvous order: every client ranks ``(replica, owner)`` pairs
        by the same keyless hash, so an owner maps to the same replica
        fleet-wide, and removing a replica moves only that replica's
        owners (the consistent-hashing property)."""
        if len(replicas) == 1:
            return list(replicas)
        return sorted(
            replicas,
            key=lambda a: zlib.crc32(f"{a[0]}:{a[1]}|{owner_id}".encode()),
            reverse=True,
        )

    def _caught_up(self, addr: Address) -> bool:
        """Never seen, or last answered at/past the client's high-water."""
        return self.addr_epochs.get(addr, self.fleet_epoch) >= self.fleet_epoch

    def _pick_replica(self, owner_id: int, replicas: list[Address]) -> Address:
        order = self._replica_order(owner_id, replicas)
        for addr in order:
            if self._caught_up(addr):
                return addr
        return order[0]

    async def _call_shard(
        self, shard: int, owner_key: int, verb: str, **fields: Any
    ) -> dict:
        """One query verb against a shard's replica set, read-your-epoch.

        Replicas are tried in rendezvous order, caught-up ones first.  A
        response carrying an epoch older than ``fleet_epoch`` is rejected
        (the replica is still catching up -- serving it would time-travel a
        client that already saw newer state) and the next replica is tried;
        a replica that is down fails over the same way.  ``RemoteError``
        propagates: the service answered, and ``wrong-shard`` recovery
        belongs to the caller.
        """
        order = self._replica_order(owner_key, self.replica_sets[shard])
        candidates = [a for a in order if self._caught_up(a)]
        candidates += [a for a in order if a not in candidates]
        last_exc: Optional[Exception] = None
        for addr in candidates:
            try:
                response = await self.call(addr, verb, **fields)
            except TransportError as exc:
                last_exc = exc
                continue
            epoch = response.get("epoch")
            if (
                len(order) > 1
                and isinstance(epoch, int)
                and not isinstance(epoch, bool)
                and epoch < self.fleet_epoch
            ):
                self.stale_replica_skips += 1
                continue
            return response
        if last_exc is not None:
            raise last_exc
        raise TransportError(
            f"no replica of shard {shard} has caught up to epoch "
            f"{self.fleet_epoch}"
        )

    @staticmethod
    def _wrong_shard_target(exc: RemoteError, n_servers: int) -> Optional[int]:
        """The shard id named by a ``wrong-shard`` error, if usable."""
        if exc.code != "wrong-shard":
            return None
        shard = exc.detail.get("shard")
        if isinstance(shard, bool) or not isinstance(shard, int):
            return None
        return shard if 0 <= shard < n_servers else None

    async def refresh_routing(self) -> bool:
        """Rebuild the shard->address table from the servers' own ``info``.

        A ``wrong-shard`` answer means our ``servers`` list is not in shard
        order (misconfiguration, or a fleet that re-assigned shards).  Each
        server knows which shard it hosts, so asking every one of them and
        reordering is a full recovery -- provided the fleet is complete and
        consistent; otherwise the table is left untouched and the caller
        falls back to the shard named in the error.
        """
        # Snapshot the table: a concurrent refresh may replace the sets
        # between the gather and the zip, and pairing fresh infos with a
        # reordered list would corrupt the table back.
        known = list(dict.fromkeys(a for rs in self.replica_sets for a in rs))
        infos = await asyncio.gather(
            *(self.info(addr) for addr in known), return_exceptions=True
        )
        by_shard: dict[int, list[Address]] = {}
        n_shards: Optional[int] = None
        for addr, info in zip(known, infos):
            if isinstance(info, BaseException) or not isinstance(info, dict):
                continue  # down mid-refresh: its shard's survivors carry on
            shard_id, n = info.get("shard_id"), info.get("n_shards")
            if not isinstance(shard_id, int) or not isinstance(n, int):
                continue
            n_shards = n if n_shards is None else n_shards
            if n == n_shards and addr not in by_shard.get(shard_id, []):
                by_shard.setdefault(shard_id, []).append(addr)
        if n_shards is None or set(by_shard) != set(range(n_shards)):
            return False  # a shard has no live server: keep the old table
        self.replica_sets = [by_shard[i] for i in range(n_shards)]
        self.servers = [rs[0] for rs in self.replica_sets]
        self.routing_refreshes += 1
        return True

    async def _query_routed(self, verb: str, owner_key: int, **fields: Any) -> dict:
        """One query verb with ``wrong-shard`` recovery.

        On a ``wrong-shard`` answer, refresh the routing table from the
        fleet and retry once against the shard the error named -- after a
        successful refresh that shard's replica set *is* authoritative, and
        without one the named index into the existing table is still the
        server's best hint.
        """
        home = shard_of(owner_key, len(self.replica_sets))
        try:
            return await self._call_shard(home, owner_key, verb, **fields)
        except RemoteError as exc:
            shard = self._wrong_shard_target(exc, len(self.replica_sets))
            if shard is None:
                raise
            self.wrong_shard_reroutes += 1
            await self.refresh_routing()
            shard = min(shard, len(self.replica_sets) - 1)
            return await self._call_shard(shard, owner_key, verb, **fields)

    def _note_epoch(self, response: dict) -> int:
        """Track the fleet's publication epoch; bumping it invalidates
        every cache entry tagged with an older epoch (lazily, on get)."""
        epoch = response.get("epoch", 0)
        if not isinstance(epoch, int) or isinstance(epoch, bool):
            epoch = 0
        if epoch > self.fleet_epoch:
            self.fleet_epoch = epoch
            self.epoch_invalidations += 1
        return epoch

    def _cache_get(self, owner_id: int) -> Optional[list]:
        """A hit must be at least as new as the newest epoch ever seen."""
        entry = self.cache.get(owner_id)
        if entry is None:
            return None
        epoch, providers = entry
        if epoch < self.fleet_epoch:
            return None  # pre-swap entry: refetch from the fleet
        return providers

    async def query(self, owner_id: int) -> list[int]:
        """``QueryPPI(t)``: the obscured provider list, through the cache."""
        cached = self._cache_get(owner_id)
        if cached is not None:
            return list(cached)
        response = await self._query_routed(VERB_QUERY, owner_id, owner=owner_id)
        epoch = self._note_epoch(response)
        providers = [int(p) for p in response["providers"]]
        self.cache.put(owner_id, (epoch, providers))
        return list(providers)

    async def query_batch(self, owner_ids: list[int]) -> dict[int, list[int]]:
        """Many ``QueryPPI`` calls, one round trip per shard.

        The hot loop trusts the codecs: both the v1 JSON parser and the v2
        binary decoder already yield ``list[int]`` provider lists, so no
        per-element re-conversion happens here -- at wire-saturating batch
        rates that pass would dominate the client's CPU.  Only the owner
        keys are converted (the wire carries them as strings, the v1
        response-shape contract).
        """
        results: dict[int, list[int]] = {}
        by_shard: dict[int, list[int]] = {}
        caching = self.cache.capacity > 0
        n_shards = len(self.servers)
        if n_shards == 1:
            # Single-shard fleet: no routing to compute, one chunk.
            if caching:
                misses = []
                for oid in owner_ids:
                    cached = self._cache_get(oid)
                    if cached is not None:
                        results[oid] = list(cached)
                    else:
                        misses.append(oid)
            else:
                misses = list(owner_ids)
            if misses:
                by_shard[0] = misses
        else:
            for oid in owner_ids:
                cached = self._cache_get(oid) if caching else None
                if cached is not None:
                    results[oid] = list(cached)
                else:
                    by_shard.setdefault(shard_of(oid, n_shards), []).append(oid)

        async def _one(owners: list[int]) -> tuple[int, dict]:
            # Routing key: every owner in the chunk lives on the same shard.
            response = await self._query_routed(
                VERB_QUERY_BATCH, owners[0], owners=owners
            )
            return self._note_epoch(response), response["results"]

        shard_results = await asyncio.gather(
            *(_one(owners) for owners in by_shard.values())
        )
        for epoch, chunk in shard_results:
            for oid, providers in chunk.items():
                oid = int(oid)
                if caching:
                    # The cache owns its own copy; the caller gets the
                    # decoded list itself (the response dict is dropped).
                    self.cache.put(oid, (epoch, list(providers)))
                results[oid] = providers
        return results

    # -- phase 2: AuthSearch --------------------------------------------------

    async def _auth_search_one(
        self, report: SearchReport, pid: int
    ) -> None:
        addr = self.providers.get(pid)
        if addr is None:
            report.failed_providers.append(pid)
            return
        before = self.retries_total
        try:
            response = await self.call(
                addr, VERB_SEARCH, searcher=self.name, owner=report.owner_id
            )
        except (TransportError, RemoteError):
            report.retries += self.retries_total - before
            report.failed_providers.append(pid)
            return
        report.retries += self.retries_total - before
        if response["status"] == "denied":
            report.denied_providers.append(pid)
        elif response["records"]:
            report.positive_providers.append(pid)
            report.records.extend(record_from_wire(r) for r in response["records"])
        else:
            report.noise_providers.append(pid)

    async def search(self, owner_id: int) -> SearchReport:
        """The full two-phase search: QueryPPI then parallel AuthSearch."""
        started = time.monotonic()
        report = SearchReport(owner_id=owner_id)
        before = self.retries_total
        try:
            candidates = await self.query(owner_id)
        except (TransportError, RemoteError):
            report.retries = self.retries_total - before
            report.latency_s = time.monotonic() - started
            return report
        report.retries = self.retries_total - before
        await asyncio.gather(
            *(self._auth_search_one(report, pid) for pid in candidates)
        )
        report.positive_providers.sort()
        report.noise_providers.sort()
        report.denied_providers.sort()
        report.failed_providers.sort()
        report.latency_s = time.monotonic() - started
        return report

    # -- operational verbs ----------------------------------------------------

    async def ping(self, addr: Address) -> bool:
        try:
            await self.call(addr, VERB_PING)
            return True
        except TransportError:
            return False

    async def stats(self, addr: Address) -> dict:
        return (await self.call(addr, VERB_STATS))["stats"]

    async def info(self, addr: Address) -> dict:
        response = await self.call(addr, VERB_INFO)
        return {k: v for k, v in response.items() if k not in ("id", "ok")}

    async def close(self) -> None:
        await self.pool.close()
