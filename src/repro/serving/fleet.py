"""Process-per-shard serving fleet with a supervising parent.

``bench_serving_throughput.py`` showed the single-process runtime flatlines
at one closed-loop worker: client, server and providers share one
GIL-bound event loop, so the loop -- not the protocol -- is the throughput
ceiling.  The paper's index is owner-sharded (``QueryPPI`` is a static
per-owner lookup, Sec. II-A), which makes shards embarrassingly parallel:
this module runs one :class:`~repro.serving.server.PPIServer` per shard in
its **own OS process**, each with its own event loop, so throughput scales
with cores.

The :class:`FleetSupervisor` is the operational parent:

* **boot** -- every worker loads the index from a binary snapshot
  (:mod:`repro.serving.snapshot`), not from JSON; a format-v2 snapshot is
  memory-mapped (CSR postings), so a restart is O(1) in index size and
  all shard processes on the host share the index pages read-only;
* **stable addresses** -- the supervisor assigns each shard its port once;
  a restarted worker rebinds the same address, so clients only ever see a
  transient connection failure (retried) and never a topology change;
* **health checks** -- each round, every worker answers the existing
  ``stats`` verb over a short-timeout socket; a dead process or
  ``unhealthy_after`` consecutive failed checks (a wedged loop) triggers a
  restart;
* **supervised restarts** -- capped exponential backoff per worker
  (``backoff_base_s * 2**k``, capped at ``backoff_max_s``); after
  ``max_restarts`` consecutive failed lives the worker is marked
  ``failed`` and left down (its shard answers connection-refused, the rest
  of the fleet keeps serving);
* **fleet metrics** -- :meth:`fleet_stats` merges every worker's ``stats``
  snapshot with the supervisor's own counters (restarts, health checks)
  and surfaces each shard's serving ``epoch``;
* **read replicas & promotion** -- ``read_replicas`` extra workers per
  shard on their own ports (the read tier ``repro.replication`` feeds);
  :meth:`promote` -- run automatically when a primary is given up on --
  swaps a live replica into the primary slot so ``addresses`` keeps
  pointing at a serving process.

Worker processes are started via a ``forkserver``/``spawn``
:mod:`multiprocessing` context (never plain ``fork``): restarts happen on
the monitor thread, and forking a multi-threaded parent is a deadlock
lottery.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import multiprocessing
import signal
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.serving.eventloop import install_uvloop, reuse_port_supported
from repro.serving.metrics import MetricsRegistry
from repro.serving.protocol import (
    VERB_INFO,
    VERB_PING,
    VERB_RELOAD,
    VERB_STATS,
    raise_for_response,
)
from repro.serving.protocol_v2 import encode_request_v2, read_frame_sync
from repro.serving.server import PPIServer, ShardSpec
from repro.serving.snapshot import load_serving_state, snapshot_epoch

__all__ = [
    "FleetSupervisor",
    "WorkerSpec",
    "sync_request",
]

_FRAME_HEADER = struct.Struct(">I")


# -- synchronous protocol client (the supervisor has no event loop) -----------


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        buf += chunk
    return buf


def sync_request(
    addr: tuple,
    verb: str,
    timeout_s: float = 1.0,
    protocol: str = "v1",
    **fields: Any,
) -> dict[str, Any]:
    """One framed request/response over a fresh blocking socket.

    The supervisor's health checks (and CLI smoke probes) run outside any
    event loop; a connect-per-probe keeps the check independent of the
    worker's connection state -- a worker wedged with poisoned connections
    but a live listener still fails the probe via its read timeout.

    ``protocol`` picks the request encoding (``"v1"`` JSON framing or
    ``"v2"`` binary); the response is protocol-sniffed either way, so the
    probe reads whatever the server answers in.
    """
    message = {"id": 0, "verb": verb, **fields}
    if protocol == "v2":
        wire = encode_request_v2(message)
    else:
        body = json.dumps(message, separators=(",", ":")).encode("utf-8")
        wire = _FRAME_HEADER.pack(len(body)) + body
    with socket.create_connection(tuple(addr), timeout=timeout_s) as sock:
        sock.settimeout(timeout_s)
        sock.sendall(wire)
        _, response = read_frame_sync(lambda n: _recv_exact(sock, n))
    return raise_for_response(response)


# -- the worker process -------------------------------------------------------


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to host its shard (picklable).

    With ``reuse_port`` several processes carrying the *same* shard bind
    the same ``(host, port)`` via ``SO_REUSEPORT`` and the kernel spreads
    accepted connections across them -- the per-core accept pattern
    (``replica`` tells them apart supervisor-side).  ``uvloop`` asks the
    worker to install the uvloop event-loop policy, falling back silently
    to the stdlib loop when the package is absent.

    ``role`` separates the accept pattern from the read tier: ``primary``
    workers are the shard's canonical serving slot (one address per shard,
    shared by the accept group), ``replica`` workers carry the same shard
    on their *own* port and exist to absorb reads and to be promoted when
    the primary is given up on.
    """

    shard_id: int
    n_shards: int
    snapshot_path: str
    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 64
    protocols: tuple = (1, 2)
    replica: int = 0
    reuse_port: bool = False
    uvloop: bool = False
    role: str = "primary"


def _worker_main(spec: WorkerSpec) -> None:
    """Entry point of one shard process: load snapshot, serve until SIGTERM."""
    if spec.uvloop:
        install_uvloop()  # graceful: stdlib loop when uvloop is absent
    index, epoch = load_serving_state(spec.snapshot_path)
    server = PPIServer(
        index,
        shard=ShardSpec(spec.shard_id, spec.n_shards),
        host=spec.host,
        port=spec.port,
        max_inflight=spec.max_inflight,
        snapshot_path=spec.snapshot_path,
        epoch=epoch,
        protocols=spec.protocols,
        reuse_port=spec.reuse_port,
    )

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        await server.start()
        await stop.wait()
        await server.stop()

    asyncio.run(_serve())


def _free_port(host: str) -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


class _WorkerHandle:
    """Supervisor-side state machine for one shard process.

    States: ``starting`` (spawned, not yet answering), ``healthy``,
    ``unhealthy`` (missed checks, below the restart threshold),
    ``waiting-restart`` (dead, backoff timer running), ``failed``
    (gave up), ``stopped``.
    """

    def __init__(self, spec: WorkerSpec):
        self.spec = spec
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.state = "stopped"
        self.restarts = 0  # lifetime restarts (observability)
        self.backoff_level = 0  # consecutive lives that never got healthy
        self.health_failures = 0  # consecutive failed checks this life
        self.ready_deadline = 0.0
        self.next_start_at = 0.0

    @property
    def address(self) -> tuple:
        return (self.spec.host, self.spec.port)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None


class FleetSupervisor:
    """Run and babysit one :class:`PPIServer` process per shard."""

    def __init__(
        self,
        snapshot_path: str,
        n_shards: int,
        host: str = "127.0.0.1",
        ports: Optional[list] = None,
        max_inflight: int = 64,
        health_interval_s: float = 0.25,
        health_timeout_s: float = 1.0,
        unhealthy_after: int = 3,
        max_restarts: int = 8,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        start_timeout_s: float = 30.0,
        mp_start_method: Optional[str] = None,
        protocols=(1, 2),
        accept_procs: int = 1,
        uvloop: bool = False,
        read_replicas: int = 0,
        replica_ports: Optional[list] = None,
    ):
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        if ports is not None and len(ports) != n_shards:
            raise ValueError(f"{n_shards} shards but {len(ports)} ports")
        if read_replicas < 0:
            raise ValueError(f"read_replicas must be >= 0, got {read_replicas}")
        if replica_ports is not None and len(replica_ports) != n_shards * read_replicas:
            raise ValueError(
                f"{n_shards * read_replicas} read replicas but "
                f"{len(replica_ports)} replica ports"
            )
        if unhealthy_after < 1 or max_restarts < 0:
            raise ValueError("unhealthy_after must be >= 1, max_restarts >= 0")
        if accept_procs < 1:
            raise ValueError(f"accept_procs must be >= 1, got {accept_procs}")
        if accept_procs > 1 and not reuse_port_supported():
            raise ValueError(
                "accept_procs > 1 needs SO_REUSEPORT, which this platform "
                "does not support"
            )
        self.snapshot_path = snapshot_path
        self.n_shards = n_shards
        self.accept_procs = accept_procs
        self.read_replicas = read_replicas
        self.uvloop = uvloop
        self.host = host
        self.protocols = tuple(sorted(set(protocols)))
        # Supervisor-to-worker requests must speak a protocol the workers
        # accept; prefer v1 (maximally debuggable) when both are on.
        self._sync_protocol = "v1" if 1 in self.protocols else "v2"
        self.health_interval_s = health_interval_s
        self.health_timeout_s = health_timeout_s
        self.unhealthy_after = unhealthy_after
        self.max_restarts = max_restarts
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.start_timeout_s = start_timeout_s
        self.metrics = MetricsRegistry()
        if mp_start_method is None:
            available = multiprocessing.get_all_start_methods()
            mp_start_method = "forkserver" if "forkserver" in available else "spawn"
        self._ctx = multiprocessing.get_context(mp_start_method)
        if mp_start_method == "forkserver":
            # Restart latency is a recovery-time budget: preload the heavy
            # imports once so a respawned worker is a cheap fork + bind.
            self._ctx.set_forkserver_preload(["repro.serving.fleet"])
        # One handle per (shard, replica).  With accept_procs > 1, a
        # shard's replicas share its port via SO_REUSEPORT -- the kernel
        # load-balances accepted connections across their listeners.
        shard_ports = [
            ports[i] if ports else _free_port(host) for i in range(n_shards)
        ]
        self._workers = [
            _WorkerHandle(
                WorkerSpec(
                    shard_id=i,
                    n_shards=n_shards,
                    snapshot_path=snapshot_path,
                    host=host,
                    port=shard_ports[i],
                    max_inflight=max_inflight,
                    protocols=self.protocols,
                    replica=r,
                    reuse_port=accept_procs > 1,
                    uvloop=uvloop,
                )
            )
            for i in range(n_shards)
            for r in range(accept_procs)
        ]
        # Read replicas carry the same shard on their *own* port -- they
        # are the geo-read tier, not the accept group, so no SO_REUSEPORT.
        self._workers += [
            _WorkerHandle(
                WorkerSpec(
                    shard_id=i,
                    n_shards=n_shards,
                    snapshot_path=snapshot_path,
                    host=host,
                    port=(
                        replica_ports[i * read_replicas + r]
                        if replica_ports
                        else _free_port(host)
                    ),
                    max_inflight=max_inflight,
                    protocols=self.protocols,
                    replica=accept_procs + r,
                    reuse_port=False,
                    uvloop=uvloop,
                    role="replica",
                )
            )
            for i in range(n_shards)
            for r in range(read_replicas)
        ]
        self._monitor_thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._lock = threading.Lock()  # check_once vs. stop/start

    # -- topology -------------------------------------------------------------

    @property
    def addresses(self) -> list:
        """One ``(host, port)`` per shard, in shard order -- the *current
        primary's* address, directly usable as ``LocatorClient(servers=...)``.
        Accept-group siblings of a shard share its address, so the list
        stays one entry per shard regardless of ``accept_procs``; after a
        promotion the entry points at the promoted read replica."""
        return [self._primary(shard).address for shard in range(self.n_shards)]

    @property
    def replica_sets(self) -> list:
        """Per shard: the primary address followed by every read-replica
        address, in shard order -- the ``LocatorClient(servers=...)`` shape
        for replica-aware routing (the client rendezvous-hashes within each
        set and fails over on connection errors)."""
        out = []
        for shard in range(self.n_shards):
            addrs = [self._primary(shard).address]
            addrs += [
                w.address
                for w in self._workers
                if w.spec.shard_id == shard and w.spec.role == "replica"
            ]
            out.append(addrs)
        return out

    def _primary(self, shard: int) -> _WorkerHandle:
        for worker in self._workers:
            if worker.spec.shard_id == shard and worker.spec.role == "primary":
                return worker
        raise ValueError(f"no such shard: {shard}")

    def worker_states(self) -> dict[int, dict[str, Any]]:
        """Per-process states, keyed by flat worker index.  With the
        default ``accept_procs=1`` the index *is* the shard id; replicated
        fleets tell processes apart via the ``shard``/``replica``/``role``
        fields."""
        return {
            k: {
                "state": w.state,
                "pid": w.pid,
                "restarts": w.restarts,
                "address": list(w.address),
                "shard": w.spec.shard_id,
                "replica": w.spec.replica,
                "role": w.spec.role,
            }
            for k, w in enumerate(self._workers)
        }

    # -- lifecycle ------------------------------------------------------------

    def start(self, monitor: bool = True) -> "FleetSupervisor":
        """Spawn every worker, wait until all answer ``ping``, then (by
        default) start the background monitor thread."""
        now = time.monotonic()
        with self._lock:
            for worker in self._workers:
                self._spawn(worker, now)
        deadline = time.monotonic() + self.start_timeout_s
        pending = list(self._workers)
        while pending:
            still_pending = []
            for worker in pending:
                if self._probe(worker):
                    worker.state = "healthy"
                else:
                    still_pending.append(worker)
            pending = still_pending
            if not pending:
                break
            if time.monotonic() > deadline:
                self.stop()
                shards = [w.spec.shard_id for w in pending]
                raise TimeoutError(
                    f"shards {shards} not serving after {self.start_timeout_s}s"
                )
            time.sleep(0.02)
        if monitor:
            self.start_monitor()
        return self

    def stop(self, grace_s: float = 3.0) -> None:
        """Stop the monitor, SIGTERM every worker, escalate to SIGKILL."""
        self.stop_monitor()
        with self._lock:
            for worker in self._workers:
                if worker.process is not None and worker.process.is_alive():
                    worker.process.terminate()
            deadline = time.monotonic() + grace_s
            for worker in self._workers:
                if worker.process is None:
                    continue
                worker.process.join(max(0.0, deadline - time.monotonic()))
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(1.0)
                worker.process = None
                worker.state = "stopped"

    def __enter__(self) -> "FleetSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- monitoring -----------------------------------------------------------

    def start_monitor(self) -> None:
        if self._monitor_thread is not None:
            return
        self._stop_event.clear()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="fleet-monitor", daemon=True
        )
        self._monitor_thread.start()

    def stop_monitor(self) -> None:
        if self._monitor_thread is None:
            return
        self._stop_event.set()
        self._monitor_thread.join(timeout=10.0)
        self._monitor_thread = None

    def _monitor_loop(self) -> None:
        while not self._stop_event.wait(self.health_interval_s):
            self.check_once()

    def check_once(self, now: Optional[float] = None) -> list:
        """One supervision round over every worker; returns the events
        (``(kind, shard_id)`` tuples) it acted on.  Thread-safe; called by
        the monitor thread or directly (deterministic tests, CLI)."""
        now = time.monotonic() if now is None else now
        events: list = []
        with self._lock:
            for worker in self._workers:
                events.extend(self._check_worker(worker, now))
        return events

    def _check_worker(self, worker: _WorkerHandle, now: float) -> list:
        if worker.state in ("failed", "stopped"):
            return []
        if worker.state == "waiting-restart":
            if now < worker.next_start_at:
                return []
            self._spawn(worker, now)
            worker.restarts += 1
            self.metrics.counter("restarts_total").inc()
            return [("restarted", worker.spec.shard_id)]
        if not worker.alive:
            self.metrics.counter("worker_deaths_total").inc()
            self._kill(worker)  # reap the corpse
            return [("died", worker.spec.shard_id), *self._schedule_restart(worker, now)]
        # Process is alive: probe the serving path.
        self.metrics.counter("health_checks_total").inc()
        if self._probe(worker):
            recovered = worker.state != "healthy"
            worker.state = "healthy"
            worker.health_failures = 0
            worker.backoff_level = 0
            return [("healthy", worker.spec.shard_id)] if recovered else []
        self.metrics.counter("health_failures_total").inc()
        if worker.state == "starting":
            if now <= worker.ready_deadline:
                return []  # still booting, give it time
            self._kill(worker)
            return [
                ("start-timeout", worker.spec.shard_id),
                *self._schedule_restart(worker, now),
            ]
        worker.health_failures += 1
        if worker.health_failures < self.unhealthy_after:
            worker.state = "unhealthy"
            return [("unhealthy", worker.spec.shard_id)]
        # Wedged: listener up (or half-dead) but not answering.
        self._kill(worker)
        return [("wedged", worker.spec.shard_id), *self._schedule_restart(worker, now)]

    def _probe(self, worker: _WorkerHandle) -> bool:
        try:
            sync_request(
                worker.address,
                VERB_PING,
                timeout_s=self.health_timeout_s,
                protocol=self._sync_protocol,
            )
            return True
        except Exception:  # noqa: BLE001 -- any probe failure means unhealthy
            return False

    def _spawn(self, worker: _WorkerHandle, now: float) -> None:
        worker.process = self._ctx.Process(
            target=_worker_main, args=(worker.spec,), daemon=True
        )
        worker.process.start()
        worker.state = "starting"
        worker.health_failures = 0
        worker.ready_deadline = now + self.start_timeout_s

    def _kill(self, worker: _WorkerHandle) -> None:
        if worker.process is not None and worker.process.is_alive():
            worker.process.kill()
            worker.process.join(1.0)
        worker.process = None

    def _schedule_restart(self, worker: _WorkerHandle, now: float) -> list:
        worker.backoff_level += 1
        if worker.backoff_level > self.max_restarts:
            worker.state = "failed"
            self.metrics.counter("workers_given_up").inc()
            events = [("gave-up", worker.spec.shard_id)]
            # A failed *primary* takes its shard's canonical address down
            # with it; if a read replica is standing by, promote it so
            # ``addresses`` keeps pointing at a live server.
            if worker.spec.role == "primary" and self.accept_procs == 1:
                try:
                    events.append(self._promote_locked(worker.spec.shard_id))
                except (ValueError, RuntimeError):
                    pass  # no promotable replica: the shard stays down
            return events
        delay = min(
            self.backoff_max_s, self.backoff_base_s * 2 ** (worker.backoff_level - 1)
        )
        worker.next_start_at = now + delay
        worker.state = "waiting-restart"
        return []

    # -- failover promotion ---------------------------------------------------

    def promote(self, shard_id: int, replica: Optional[int] = None) -> tuple:
        """Swap a read replica into shard ``shard_id``'s primary slot.

        The promoted worker keeps its own port; ``addresses`` /
        ``replica_sets`` re-point at it, and the demoted ex-primary (alive
        or not) becomes a read replica.  ``replica`` pins the choice;
        otherwise the lowest-numbered healthy replica wins (falling back to
        any live one).  Runs automatically when a primary is given up on.
        Returns the ``("promoted", (shard, replica))`` event.
        """
        with self._lock:
            return self._promote_locked(shard_id, replica)

    def _promote_locked(self, shard_id: int, replica: Optional[int] = None) -> tuple:
        if self.accept_procs != 1:
            raise ValueError(
                "promotion needs accept_procs=1: an accept group shares one "
                "port, so there is no single primary slot to swap"
            )
        primary = self._primary(shard_id)
        candidates = [
            w
            for w in self._workers
            if w.spec.shard_id == shard_id and w.spec.role == "replica"
        ]
        if replica is not None:
            candidates = [w for w in candidates if w.spec.replica == replica]
        healthy = [w for w in candidates if w.state == "healthy"]
        pool = healthy or [w for w in candidates if w.alive]
        if not pool:
            raise RuntimeError(f"shard {shard_id} has no live replica to promote")
        chosen = min(pool, key=lambda w: w.spec.replica)
        primary.spec = dataclasses.replace(primary.spec, role="replica")
        chosen.spec = dataclasses.replace(chosen.spec, role="primary")
        self.metrics.counter("promotions_total").inc()
        return ("promoted", (shard_id, chosen.spec.replica))

    # -- rolling reload -------------------------------------------------------

    def rollout(
        self,
        snapshot_path: str,
        settle_timeout_s: float = 30.0,
        reload_timeout_s: float = 30.0,
    ) -> list:
        """Rolling per-shard hot-swap of the fleet onto ``snapshot_path``.

        Shard order, one at a time: first the worker's spec is repointed at
        the new snapshot (so a worker that *dies* mid-rollout is restarted
        by the supervisor already on the new epoch), then the ``reload``
        verb is sent, then the shard must settle -- answer ``info`` with
        the snapshot's epoch -- before the next shard is touched.  A worker
        reloads without dropping its listener, so clients see no connection
        errors, and at most one shard is mid-swap at any moment.  A shard
        that fails to settle aborts the rollout (remaining shards keep the
        old epoch; mixed-epoch fleets are safe because clients invalidate
        per-response, not per-fleet).  Returns the per-shard event list.
        """
        target_epoch = snapshot_epoch(snapshot_path)
        monitor_running = self._monitor_thread is not None
        events: list = []
        for shard in range(self.n_shards):
            replicas = [w for w in self._workers if w.spec.shard_id == shard]
            with self._lock:
                for worker in replicas:
                    worker.spec = dataclasses.replace(
                        worker.spec, snapshot_path=snapshot_path
                    )
            live = [w for w in replicas if w.state != "failed"]
            if not live:
                events.append(("rollout-skipped-failed", shard))
                continue
            # Read replicas listen on their own ports, so the shard may
            # span several distinct addresses even with accept_procs=1.
            live_addrs = list(dict.fromkeys(w.address for w in live))
            if self.accept_procs == 1:
                # One listener per address: in-place hot swaps over the
                # reload verb, primary first, then each read replica.
                for addr in live_addrs:
                    try:
                        sync_request(
                            addr,
                            VERB_RELOAD,
                            timeout_s=reload_timeout_s,
                            protocol=self._sync_protocol,
                            snapshot=snapshot_path,
                        )
                    except Exception:  # noqa: BLE001 -- settle loop decides
                        events.append(("reload-request-failed", shard))
            else:
                # Replicated shard: a reload sent to the shared port lands
                # on whichever replica the kernel picks, so targeted hot
                # swaps are impossible.  Replace replicas one at a time
                # instead -- a fresh process boots *on the new snapshot* by
                # construction, and the siblings keep the port served while
                # it does.
                for worker in live:
                    with self._lock:
                        self._kill(worker)
                        self._spawn(worker, time.monotonic())
                    events.append(
                        ("replica-replaced", (shard, worker.spec.replica))
                    )
            deadline = time.monotonic() + settle_timeout_s
            settled = False
            while time.monotonic() < deadline:
                if not monitor_running:
                    # No monitor thread: drive supervision here, so a shard
                    # killed mid-rollout is restarted (on the new snapshot).
                    self.check_once()
                try:
                    if all(
                        sync_request(
                            addr,
                            VERB_INFO,
                            timeout_s=self.health_timeout_s,
                            protocol=self._sync_protocol,
                        ).get("epoch")
                        == target_epoch
                        for addr in live_addrs
                    ) and all(w.alive for w in live):
                        settled = True
                        break
                except Exception:  # noqa: BLE001 -- worker mid-restart: keep waiting
                    pass
                time.sleep(0.02)
            if not settled:
                events.append(("rollout-stuck", shard))
                self.metrics.counter("rollouts_aborted_total").inc()
                return events
            events.append(("rolled", shard))
            self.metrics.counter("shard_reloads_total").inc()
        self.snapshot_path = snapshot_path
        self.metrics.counter("rollouts_total").inc()
        return events

    # -- metrics --------------------------------------------------------------

    def fleet_stats(self) -> dict[str, Any]:
        """Fleet-wide view: supervisor counters, per-worker state + live
        ``stats`` snapshot + accepted wire protocols, and counters summed
        across reachable workers.

        One ``stats`` probe per *listening address*: the primary slot of
        each shard (an accept group's port is kernel-balanced, so a probe
        answers from whichever sibling the kernel picks -- probing per
        process would double-count some and miss others) plus every read
        replica, which listens on its own port.  With ``accept_procs > 1``
        the per-shard snapshot is therefore one sibling's sample, and the
        aggregate is a lower bound rather than an exact tally.

        Each probed worker's serving ``epoch`` (the ``epoch`` gauge every
        server maintains) is lifted into the per-worker dict, and the
        primaries' epochs are collected into a top-level ``epochs`` map
        keyed by shard -- the fleet-wide view a rollout or a replication
        catch-up is trying to converge.
        """
        workers: dict[int, dict[str, Any]] = self.worker_states()
        aggregate: dict[str, float] = {}
        epochs: dict[int, Optional[int]] = {i: None for i in range(self.n_shards)}
        probed = {
            k
            for k, w in enumerate(self._workers)
            if w.spec.role == "replica"
            or w is self._primary(w.spec.shard_id)
        }
        for k, worker in enumerate(self._workers):
            workers[k]["protocols"] = list(worker.spec.protocols)
            workers[k]["epoch"] = None
            if k not in probed:
                workers[k]["stats"] = None
                continue
            try:
                snapshot = sync_request(
                    worker.address,
                    VERB_STATS,
                    timeout_s=self.health_timeout_s,
                    protocol=self._sync_protocol,
                )["stats"]
            except Exception:  # noqa: BLE001 -- stats are best-effort
                workers[k]["stats"] = None
                continue
            workers[k]["stats"] = snapshot
            epoch = snapshot.get("gauges", {}).get("epoch")
            if epoch is not None:
                workers[k]["epoch"] = int(epoch)
                if worker.spec.role == "primary":
                    epochs[worker.spec.shard_id] = int(epoch)
            for name, value in snapshot.get("counters", {}).items():
                aggregate[name] = aggregate.get(name, 0) + value
        return {
            "n_shards": self.n_shards,
            "accept_procs": self.accept_procs,
            "read_replicas": self.read_replicas,
            "protocols": list(self.protocols),
            "supervisor": self.metrics.snapshot(),
            "workers": workers,
            "aggregate_counters": aggregate,
            "epochs": epochs,
        }
