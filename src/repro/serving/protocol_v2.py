"""Wire protocol v2: fixed binary frames with packed little-endian payloads.

v1 (``protocol.py``) frames every message as a 4-byte big-endian length
prefix plus UTF-8 JSON.  That keeps the socket path honest but makes JSON
serialization the per-request cost floor.  v2 replaces the hot path with a
fixed 24-byte header and packed binary payloads for the hot verbs, while
keeping JSON available (per frame, via a flag) for everything the binary
codecs do not cover -- so the two protocols are semantically identical and
differ only in bytes on the wire.

Frame layout (all fixed-width fields little-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------------
         0     4  magic ``b"ePPI"``
         4     1  version (``2``)
         5     1  verb id (``0`` = extended: verb name rides in the
                  JSON payload)
         6     2  flags (bit 0 RESPONSE, bit 1 ERROR, bit 2 JSON payload)
         8     8  request id (u64, echoed verbatim in the response)
        16     4  payload length (u32, <= ``MAX_FRAME_BYTES``)
        20     4  payload crc32
        24     -  payload bytes

Verb ids
--------

======  =============  ==========================================
id      verb           payload codec (request / response)
======  =============  ==========================================
``0``   *extended*     JSON (carries ``verb`` for requests)
``1``   ping           empty / empty
``2``   stats          empty-JSON / JSON
``3``   info           empty-JSON / JSON
``4``   query          ``<Q`` owner / ``<QQI`` owner,epoch,n + n x u32
``5``   query-batch    ``<I`` n + n x u64 / ``<QI`` epoch,n + segments
``6``   reload         JSON / JSON
``7``   search         JSON / JSON
======  =============  ==========================================

A binary codec that cannot express a message (non-integer owner, huge
provider id, extra fields) falls back to the JSON payload flag instead of
failing, so v2 carries *every* message v1 can -- the binary forms are an
optimization, not a restriction.  Error responses are always JSON.

Negotiation
-----------

The first four bytes of every frame identify its protocol: a v2 frame
starts with the magic, while a v1 frame starts with a big-endian length
that any legitimate peer keeps at or below ``MAX_FRAME_BYTES`` (16 MiB).
The magic read as a big-endian length is ~1.7 GB, far above the cap, so no
valid v1 frame can be mistaken for v2 and vice versa.  Consequences:

* a server can sniff *per frame* and answer in whichever protocol the
  request arrived in (``FrameDecoder``), so mixed-version client fleets
  work against one listener;
* a legacy v1-only server that receives a v2 frame sees an oversized
  length announcement and answers with a readable v1 ``bad-request`` error
  before disconnecting -- which is exactly the signal an ``auto`` client
  needs to pin that address to v1 and retransmit (see
  ``LocatorClient(protocol="auto")``).
"""

from __future__ import annotations

import asyncio
import json
import struct
import zlib
from typing import Any, Callable, Optional

from repro.serving.protocol import (
    MAX_FRAME_BYTES,
    VERB_INFO,
    VERB_PING,
    VERB_QUERY,
    VERB_QUERY_BATCH,
    VERB_RELOAD,
    VERB_SEARCH,
    VERB_STATS,
    ConnectionClosed,
    FrameTooLarge,
    ProtocolError,
)

__all__ = [
    "FLAG_ERROR",
    "FLAG_JSON",
    "FLAG_RESPONSE",
    "HEADER",
    "MAGIC",
    "PROTOCOL_V2",
    "VERB_ID_EXT",
    "VERB_IDS",
    "VERB_NAMES",
    "DecodeError",
    "Frame",
    "FrameDecoder",
    "batch_response_parts",
    "PreparedFrameV2",
    "RawReply",
    "encode_frame_v2",
    "encode_frame_v2_parts",
    "encode_reply_v2",
    "encode_request_v2",
    "pack_batch_segment",
    "prepared_response_v2",
    "read_any_frame",
    "read_frame_sync",
]

PROTOCOL_V2 = 2

MAGIC = b"ePPI"

#: 24-byte fixed header: magic, version, verb id, flags, request id,
#: payload length, payload crc32.
HEADER = struct.Struct("<4sBBHQII")

FLAG_RESPONSE = 0x1
FLAG_ERROR = 0x2
FLAG_JSON = 0x4

#: verb id 0 is the extension escape: the verb name travels in the JSON
#: payload, so v2 can carry verbs minted after this header was frozen.
VERB_ID_EXT = 0

VERB_IDS = {
    VERB_PING: 1,
    VERB_STATS: 2,
    VERB_INFO: 3,
    VERB_QUERY: 4,
    VERB_QUERY_BATCH: 5,
    VERB_RELOAD: 6,
    VERB_SEARCH: 7,
}
VERB_NAMES = {vid: verb for verb, vid in VERB_IDS.items()}

_V1_HEADER = struct.Struct(">I")

_QUERY_REQ = struct.Struct("<Q")
_QUERY_RESP_HEAD = struct.Struct("<QQI")  # owner, epoch, n_providers
_BATCH_REQ_HEAD = struct.Struct("<I")  # n_owners, then n x u64
_BATCH_RESP_HEAD = struct.Struct("<QI")  # epoch, n_segments
_SEGMENT_HEAD = struct.Struct("<QI")  # owner, n_providers, then n x u32

_U64_MAX = 2**64 - 1


class DecodeError(ProtocolError):
    """A frame that parsed far enough to be answered with a typed error.

    ``protocol`` names the protocol the malformed frame spoke (so the
    server can reply in kind) and ``code`` is the machine-readable error
    code the reply will carry (``bad-request`` for every v1 failure --
    the legacy contract -- and ``bad-version`` / ``frame-too-large`` /
    ``bad-crc`` / ``bad-payload`` / ``protocol-disabled`` for v2).
    """

    def __init__(self, message: str, protocol: int = 1, code: str = "bad-request"):
        super().__init__(message)
        self.protocol = protocol
        self.code = code


class Frame:
    """One decoded frame: the protocol it arrived in plus its message dict."""

    __slots__ = ("protocol", "message")

    def __init__(self, protocol: int, message: dict):
        self.protocol = protocol
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Frame(v{self.protocol}, {self.message!r})"


class RawReply:
    """A reply already rendered to wire bytes; the server writes the parts
    verbatim (scatter-gather) instead of encoding a dict."""

    __slots__ = ("parts",)

    def __init__(self, parts: list):
        self.parts = parts


class _Unpackable(Exception):
    """A message the binary codec cannot express; fall back to JSON."""


def _json_bytes(fields: dict) -> bytes:
    # Canonical rendering (sorted keys, no whitespace) so golden files and
    # slab caches are byte-stable across dict construction orders.
    return json.dumps(fields, sort_keys=True, separators=(",", ":")).encode("utf-8")


# -- binary payload codecs ---------------------------------------------------


def _require_u64(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _Unpackable(f"not a u64: {value!r}")
    if not 0 <= value <= _U64_MAX:
        raise _Unpackable(f"out of u64 range: {value!r}")
    return value


def _pack_query_request(fields: dict) -> bytes:
    if set(fields) != {"owner"}:
        raise _Unpackable("query request carries exactly one field: owner")
    return _QUERY_REQ.pack(_require_u64(fields["owner"]))


def _unpack_query_request(payload: bytes) -> dict:
    if len(payload) != _QUERY_REQ.size:
        raise ValueError(f"query payload must be {_QUERY_REQ.size} bytes")
    (owner,) = _QUERY_REQ.unpack(payload)
    return {"owner": owner}


def _pack_query_response(fields: dict) -> bytes:
    if set(fields) != {"owner", "providers", "epoch"}:
        raise _Unpackable("query response fields are owner/providers/epoch")
    providers = fields["providers"]
    if not isinstance(providers, list):
        raise _Unpackable("providers must be a list")
    head = _QUERY_RESP_HEAD.pack(
        _require_u64(fields["owner"]), _require_u64(fields["epoch"]), len(providers)
    )
    for p in providers:
        if isinstance(p, bool) or not isinstance(p, int):
            raise _Unpackable(f"provider id not an int: {p!r}")
    return head + struct.pack(f"<{len(providers)}I", *providers)


def _unpack_query_response(payload: bytes) -> dict:
    owner, epoch, n = _QUERY_RESP_HEAD.unpack_from(payload)
    if len(payload) != _QUERY_RESP_HEAD.size + 4 * n:
        raise ValueError("query response payload length mismatch")
    providers = list(struct.unpack_from(f"<{n}I", payload, _QUERY_RESP_HEAD.size))
    return {"owner": owner, "providers": providers, "epoch": epoch}


def _pack_batch_request(fields: dict) -> bytes:
    if set(fields) != {"owners"}:
        raise _Unpackable("query-batch request carries exactly one field: owners")
    owners = fields["owners"]
    if not isinstance(owners, list):
        raise _Unpackable("owners must be a list")
    if any(isinstance(o, bool) for o in owners):
        raise _Unpackable("owners must be integers")  # True would pack as 1
    try:
        # struct does the u64 range/type validation in C; anything it
        # rejects (negative, huge, non-int) rides the JSON fallback.
        packed = struct.pack(f"<{len(owners)}Q", *owners)
    except struct.error as exc:
        raise _Unpackable(f"owner outside u64: {exc}") from exc
    return _BATCH_REQ_HEAD.pack(len(owners)) + packed


def _unpack_batch_request(payload: bytes) -> dict:
    (n,) = _BATCH_REQ_HEAD.unpack_from(payload)
    if len(payload) != _BATCH_REQ_HEAD.size + 8 * n:
        raise ValueError("query-batch request payload length mismatch")
    owners = list(struct.unpack_from(f"<{n}Q", payload, _BATCH_REQ_HEAD.size))
    return {"owners": owners}


def pack_batch_segment(owner_id: int, providers: list) -> bytes:
    """One owner's slice of a binary ``query-batch`` response payload."""
    return _SEGMENT_HEAD.pack(owner_id, len(providers)) + struct.pack(
        f"<{len(providers)}I", *providers
    )


def _pack_batch_response(fields: dict) -> bytes:
    if set(fields) != {"results", "epoch"}:
        raise _Unpackable("query-batch response fields are results/epoch")
    results = fields["results"]
    if not isinstance(results, dict):
        raise _Unpackable("results must be a dict")
    parts = [_BATCH_RESP_HEAD.pack(_require_u64(fields["epoch"]), len(results))]
    for oid, providers in results.items():
        if isinstance(oid, str):
            if not oid.isdigit():
                raise _Unpackable(f"owner key not an integer: {oid!r}")
            oid = int(oid)
        if not isinstance(providers, list):
            raise _Unpackable("provider lists must be lists")
        for p in providers:
            if isinstance(p, bool) or not isinstance(p, int):
                raise _Unpackable(f"provider id not an int: {p!r}")
        parts.append(pack_batch_segment(_require_u64(oid), providers))
    return b"".join(parts)


def _unpack_batch_response(payload: bytes) -> dict:
    epoch, n = _BATCH_RESP_HEAD.unpack_from(payload)
    offset = _BATCH_RESP_HEAD.size
    results: dict[str, list] = {}
    for _ in range(n):
        owner, count = _SEGMENT_HEAD.unpack_from(payload, offset)
        offset += _SEGMENT_HEAD.size
        providers = list(struct.unpack_from(f"<{count}I", payload, offset))
        offset += 4 * count
        # str keys: byte-for-byte the same shape v1's JSON responses use,
        # so client code upstream of the codec is protocol-blind.
        results[str(owner)] = providers
    if offset != len(payload):
        raise ValueError("query-batch response payload length mismatch")
    return {"results": results, "epoch": epoch}


def _pack_empty(fields: dict) -> bytes:
    if fields:
        raise _Unpackable("no binary form for non-empty fields")
    return b""


def _unpack_empty(payload: bytes) -> dict:
    if payload:
        raise ValueError("expected an empty payload")
    return {}


_REQUEST_ENCODERS: dict[str, Callable[[dict], bytes]] = {
    VERB_PING: _pack_empty,
    VERB_QUERY: _pack_query_request,
    VERB_QUERY_BATCH: _pack_batch_request,
}
_REQUEST_DECODERS: dict[str, Callable[[bytes], dict]] = {
    VERB_PING: _unpack_empty,
    VERB_QUERY: _unpack_query_request,
    VERB_QUERY_BATCH: _unpack_batch_request,
}
_RESPONSE_ENCODERS: dict[str, Callable[[dict], bytes]] = {
    VERB_PING: _pack_empty,
    VERB_QUERY: _pack_query_response,
    VERB_QUERY_BATCH: _pack_batch_response,
}
_RESPONSE_DECODERS: dict[str, Callable[[bytes], dict]] = {
    VERB_PING: _unpack_empty,
    VERB_QUERY: _unpack_query_response,
    VERB_QUERY_BATCH: _unpack_batch_response,
}


# -- frame encoding ----------------------------------------------------------


def encode_frame_v2_parts(
    verb: Optional[str],
    request_id: int,
    fields: Optional[dict] = None,
    *,
    response: bool = False,
    error: bool = False,
) -> list:
    """Encode one v2 frame as ``[header, payload]`` parts (scatter-gather).

    Known verbs with a binary codec pack tight little-endian payloads;
    anything else -- unknown verbs, error responses, messages the binary
    form cannot express -- rides as a JSON payload behind ``FLAG_JSON``.
    """
    fields = {} if fields is None else fields
    if isinstance(request_id, bool) or not isinstance(request_id, int):
        raise ProtocolError(f"v2 request ids are u64 integers, got {request_id!r}")
    if not 0 <= request_id <= _U64_MAX:
        raise ProtocolError(f"v2 request id out of u64 range: {request_id!r}")
    flags = FLAG_RESPONSE if response else 0
    verb_id = VERB_IDS.get(verb) if verb is not None else None
    if error:
        if not response:
            raise ProtocolError("error frames are responses")
        flags |= FLAG_ERROR | FLAG_JSON
        verb_id = VERB_ID_EXT if verb_id is None else verb_id
        payload = _json_bytes(fields) if fields else b""
    elif verb_id is None:
        # Extension escape: requests carry the verb name in the payload;
        # responses are matched to requests by id alone, so the name only
        # travels on the request leg.
        verb_id = VERB_ID_EXT
        flags |= FLAG_JSON
        if response:
            payload = _json_bytes(fields) if fields else b""
        else:
            payload = _json_bytes({"verb": verb, **fields})
    else:
        codec = (_RESPONSE_ENCODERS if response else _REQUEST_ENCODERS).get(verb)
        payload = None
        if codec is not None:
            try:
                payload = codec(fields)
            except (_Unpackable, struct.error, OverflowError):
                payload = None
        if payload is None:
            flags |= FLAG_JSON
            payload = _json_bytes(fields) if fields else b""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    header = HEADER.pack(
        MAGIC, PROTOCOL_V2, verb_id, flags, request_id, len(payload),
        zlib.crc32(payload),
    )
    return [header, payload]


def encode_frame_v2(
    verb: Optional[str],
    request_id: int,
    fields: Optional[dict] = None,
    *,
    response: bool = False,
    error: bool = False,
) -> bytes:
    return b"".join(
        encode_frame_v2_parts(verb, request_id, fields, response=response, error=error)
    )


def encode_request_v2(message: dict) -> bytes:
    """Encode a v1-shaped request dict (``id`` + ``verb`` + fields) as v2."""
    fields = dict(message)
    request_id = fields.pop("id")
    verb = fields.pop("verb")
    return encode_frame_v2(verb, request_id, fields)


def encode_reply_v2(verb: Optional[str], response: dict) -> list:
    """Encode a v1-shaped response dict (``id`` + ``ok`` + fields) as v2
    frame parts."""
    request_id = response.get("id")
    if isinstance(request_id, bool) or not isinstance(request_id, int):
        request_id = 0  # v1 convention: id null when the request had none
    ok = bool(response.get("ok"))
    fields = {k: v for k, v in response.items() if k not in ("id", "ok")}
    return encode_frame_v2_parts(
        verb, request_id, fields, response=True, error=not ok
    )


class PreparedFrameV2:
    """A v2 response whose payload (and its crc) is fully pre-rendered.

    The per-request work is packing one 24-byte header around the shared
    payload bytes -- the v2 analogue of v1's
    :class:`repro.serving.protocol.PreparedResponse` id-splicing, minus the
    JSON.
    """

    __slots__ = ("verb_id", "flags", "payload", "crc")

    def __init__(self, verb_id: int, payload: bytes, flags: int = FLAG_RESPONSE):
        self.verb_id = verb_id
        self.flags = flags
        self.payload = payload
        self.crc = zlib.crc32(payload)

    def encode(self, request_id: int) -> list:
        header = HEADER.pack(
            MAGIC, PROTOCOL_V2, self.verb_id, self.flags, request_id,
            len(self.payload), self.crc,
        )
        return [header, self.payload]


def batch_response_parts(request_id: int, epoch: int, segments: list) -> list:
    """Assemble a binary ``query-batch`` response from pre-packed per-owner
    segments (see :func:`pack_batch_segment`) without concatenating them:
    the parts list goes to ``writer.writelines`` as-is (scatter-gather),
    and the crc32 is folded incrementally across the segments."""
    head = _BATCH_RESP_HEAD.pack(epoch, len(segments))
    length = len(head) + sum(len(s) for s in segments)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    crc = zlib.crc32(head)
    for segment in segments:
        crc = zlib.crc32(segment, crc)
    header = HEADER.pack(
        MAGIC, PROTOCOL_V2, VERB_IDS[VERB_QUERY_BATCH], FLAG_RESPONSE,
        request_id, length, crc,
    )
    return [header, head, *segments]


def prepared_response_v2(verb: str, fields: dict) -> PreparedFrameV2:
    """Pre-render an ``ok`` response for a known verb (binary when the
    codec can express it, canonical JSON otherwise)."""
    verb_id = VERB_IDS[verb]
    codec = _RESPONSE_ENCODERS.get(verb)
    payload = None
    flags = FLAG_RESPONSE
    if codec is not None:
        try:
            payload = codec(fields)
        except (_Unpackable, struct.error, OverflowError):
            payload = None
    if payload is None:
        flags |= FLAG_JSON
        payload = _json_bytes(fields) if fields else b""
    return PreparedFrameV2(verb_id, payload, flags)


# -- frame decoding ----------------------------------------------------------


def _decode_v2_payload(
    verb_id: int, flags: int, request_id: int, payload: bytes
) -> dict:
    """Rehydrate a v2 payload into the v1-shaped message dict."""
    response = bool(flags & FLAG_RESPONSE)
    error = bool(flags & FLAG_ERROR)
    verb = VERB_NAMES.get(verb_id)
    if flags & FLAG_JSON or error:
        if payload:
            try:
                fields = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise DecodeError(
                    f"undecodable JSON payload: {exc}", PROTOCOL_V2, "bad-payload"
                ) from exc
            if not isinstance(fields, dict):
                raise DecodeError(
                    "JSON payload must be an object", PROTOCOL_V2, "bad-payload"
                )
        else:
            fields = {}
        if verb_id == VERB_ID_EXT and not response:
            verb = fields.pop("verb", None)
            if not isinstance(verb, str):
                raise DecodeError(
                    "extended request without a verb", PROTOCOL_V2, "bad-payload"
                )
    else:
        codec = (_RESPONSE_DECODERS if response else _REQUEST_DECODERS).get(verb)
        if codec is None:
            if payload:
                raise DecodeError(
                    f"no binary payload codec for verb id {verb_id}",
                    PROTOCOL_V2,
                    "bad-payload",
                )
            fields = {}
        else:
            try:
                fields = codec(payload)
            except (struct.error, ValueError) as exc:
                raise DecodeError(
                    f"malformed {verb} payload: {exc}", PROTOCOL_V2, "bad-payload"
                ) from exc
    if response:
        return {"id": request_id, "ok": not error, **fields}
    if verb is None:
        # Unknown binary verb id: surface it so the server answers
        # unknown-verb instead of dropping the connection.
        verb = f"verb-{verb_id}"
    return {"id": request_id, "verb": verb, **fields}


class FrameDecoder:
    """Incremental frame decoder: feed arbitrary byte chunks, get frames.

    Per-frame protocol sniffing (see the module docstring) lets one
    decoder serve v1 and v2 clients -- even interleaved on one connection.
    ``feed`` **never raises**: complete frames decoded before a malformed
    one are always returned, and the first malformed frame poisons the
    decoder -- ``error`` is set to a typed :class:`DecodeError` and every
    later ``feed`` returns nothing.  Framing is byte-positional; after one
    undecodable frame the stream offset is untrustworthy, so the only safe
    recovery is answering the error and closing (which the server does).
    """

    def __init__(
        self,
        protocols=(1, 2),
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self.protocols = frozenset(protocols)
        if not self.protocols or not self.protocols <= {1, 2}:
            raise ValueError(f"protocols must be a subset of {{1, 2}}, got {protocols!r}")
        self.max_frame_bytes = max_frame_bytes
        self.error: Optional[DecodeError] = None
        self.frames_decoded = {1: 0, 2: 0}
        self._buf = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes received but not yet decoded (mid-frame remainder)."""
        return len(self._buf)

    def feed(self, data: bytes) -> list:
        """Consume a chunk; return every frame it completes, in order."""
        if self.error is not None:
            return []
        self._buf.extend(data)
        frames = []
        while True:
            try:
                frame = self._next_frame()
            except DecodeError as exc:
                self.error = exc
                break
            if frame is None:
                break
            frames.append(frame)
        return frames

    def _next_frame(self) -> Optional[Frame]:
        if len(self._buf) < 4:
            return None
        if bytes(self._buf[:4]) == MAGIC:
            return self._next_v2()
        return self._next_v1()

    def _next_v1(self) -> Optional[Frame]:
        if 1 not in self.protocols:
            raise DecodeError(
                "this endpoint accepts protocol v2 frames only", 1, "protocol-disabled"
            )
        (length,) = _V1_HEADER.unpack_from(self._buf)
        if length > self.max_frame_bytes:
            raise DecodeError(
                f"peer announced a {length}-byte frame", 1, "bad-request"
            )
        if len(self._buf) < 4 + length:
            return None
        body = bytes(self._buf[4 : 4 + length])
        del self._buf[: 4 + length]
        try:
            obj = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise DecodeError(f"undecodable frame: {exc}", 1, "bad-request") from exc
        if not isinstance(obj, dict):
            raise DecodeError("frame body must be a JSON object", 1, "bad-request")
        self.frames_decoded[1] += 1
        return Frame(1, obj)

    def _next_v2(self) -> Optional[Frame]:
        if 2 not in self.protocols:
            raise DecodeError(
                "this endpoint accepts protocol v1 frames only", 2, "protocol-disabled"
            )
        if len(self._buf) < HEADER.size:
            return None
        _, version, verb_id, flags, request_id, length, crc = HEADER.unpack_from(
            self._buf
        )
        if version != PROTOCOL_V2:
            raise DecodeError(
                f"unsupported protocol version {version}", 2, "bad-version"
            )
        if length > self.max_frame_bytes:
            raise DecodeError(
                f"peer announced a {length}-byte payload", 2, "frame-too-large"
            )
        if len(self._buf) < HEADER.size + length:
            return None
        payload = bytes(self._buf[HEADER.size : HEADER.size + length])
        del self._buf[: HEADER.size + length]
        if zlib.crc32(payload) != crc:
            raise DecodeError("payload crc32 mismatch", 2, "bad-crc")
        message = _decode_v2_payload(verb_id, flags, request_id, payload)
        self.frames_decoded[2] += 1
        return Frame(2, message)


# -- stream readers (client side) --------------------------------------------


async def read_any_frame(reader: asyncio.StreamReader) -> "tuple[int, dict]":
    """Read one frame of either protocol; return ``(protocol, message)``.

    The client-side mirror of the server's sniffing decoder: v1 and v2
    responses may interleave on one connection (e.g. across an ``auto``
    client's downgrade probe).
    """
    try:
        first = await reader.readexactly(4)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed("peer closed the connection") from exc
    try:
        if first == MAGIC:
            rest = await reader.readexactly(HEADER.size - 4)
            _, version, verb_id, flags, request_id, length, crc = HEADER.unpack(
                first + rest
            )
            if version != PROTOCOL_V2:
                raise ProtocolError(f"unsupported protocol version {version}")
            if length > MAX_FRAME_BYTES:
                raise FrameTooLarge(f"peer announced a {length}-byte payload")
            payload = await reader.readexactly(length)
            if zlib.crc32(payload) != crc:
                raise DecodeError("payload crc32 mismatch", PROTOCOL_V2, "bad-crc")
            return PROTOCOL_V2, _decode_v2_payload(
                verb_id, flags, request_id, payload
            )
        (length,) = _V1_HEADER.unpack(first)
        if length > MAX_FRAME_BYTES:
            raise FrameTooLarge(f"peer announced a {length}-byte frame")
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ConnectionClosed("connection closed mid-frame") from exc
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame body must be a JSON object")
    return 1, obj


def read_frame_sync(recv: Callable[[int], bytes]) -> "tuple[int, dict]":
    """Blocking-socket mirror of :func:`read_any_frame`.

    ``recv(n)`` must return exactly ``n`` bytes or raise.  Used by the
    supervisor's synchronous health probes (:mod:`repro.serving.fleet`).
    """
    first = recv(4)
    if first == MAGIC:
        rest = recv(HEADER.size - 4)
        _, version, verb_id, flags, request_id, length, crc = HEADER.unpack(
            first + rest
        )
        if version != PROTOCOL_V2:
            raise ProtocolError(f"unsupported protocol version {version}")
        if length > MAX_FRAME_BYTES:
            raise FrameTooLarge(f"peer announced a {length}-byte payload")
        payload = recv(length)
        if zlib.crc32(payload) != crc:
            raise DecodeError("payload crc32 mismatch", PROTOCOL_V2, "bad-crc")
        return PROTOCOL_V2, _decode_v2_payload(verb_id, flags, request_id, payload)
    (length,) = _V1_HEADER.unpack(first)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"peer announced a {length}-byte frame")
    body = recv(length)
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame body must be a JSON object")
    return 1, obj
