"""Optional event-loop acceleration: uvloop, behind an import gate.

uvloop (a libuv-backed drop-in ``asyncio`` policy) roughly halves the
per-request scheduling overhead of the serving hot path, but it is an
optional native dependency that many deployment images (including this
repo's CI) do not carry.  Every entry point therefore asks for it through
:func:`install_uvloop`, which degrades to the stdlib loop instead of
failing -- ``eppi serve --uvloop`` on a box without uvloop still serves,
it just says so.
"""

from __future__ import annotations

import asyncio
import socket

__all__ = ["install_uvloop", "reuse_port_supported", "uvloop_available"]


def uvloop_available() -> bool:
    """True when the optional uvloop package is importable."""
    try:
        import uvloop  # noqa: F401
    except ImportError:
        return False
    return True


def install_uvloop(strict: bool = False) -> bool:
    """Make uvloop the process-wide event-loop policy, if importable.

    Returns True when uvloop is now the policy, False when the stdlib
    loop remains (uvloop missing and ``strict`` unset).  Idempotent --
    installing an already-installed policy is a no-op.  With ``strict``
    the ImportError propagates, for operators who would rather fail a
    deploy than silently serve slow.
    """
    try:
        import uvloop
    except ImportError:
        if strict:
            raise
        return False
    if not isinstance(
        asyncio.get_event_loop_policy(), uvloop.EventLoopPolicy
    ):
        asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


def reuse_port_supported() -> bool:
    """True when this platform can share one listening port across
    processes (``SO_REUSEPORT`` -- Linux and the BSDs, not Windows)."""
    return hasattr(socket, "SO_REUSEPORT")
