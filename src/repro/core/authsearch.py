"""AuthSearch: phase 2 of the two-phase search (paper Sec. II-A).

After ``QueryPPI`` returns the obscured provider list, the searcher contacts
each provider, authenticates against the provider's local access-control
subsystem, and -- only if authorized -- searches the local repository.

The paper assumes each provider "has already set up its local access control
subsystem"; we implement a simple capability-token ACL (see DESIGN.md
substitution table) so the full flow is runnable end to end.  Noise providers
are exactly the contacts that return no records: the searcher pays the cost
but learns the obscured list contained false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import AccessDenied, ModelError
from repro.core.model import InformationNetwork, Record

__all__ = ["Searcher", "AuthSearchResult", "AccessControl", "auth_search"]


@dataclass
class AccessControl:
    """Per-provider ACL: which searchers may query which owners' records.

    ``grants`` maps searcher name to the set of owner ids it may read; a
    searcher present in ``trusted`` may read everything (e.g. an emergency
    room break-glass role in the HIE scenario).
    """

    grants: dict[str, set[int]] = field(default_factory=dict)
    trusted: set[str] = field(default_factory=set)

    def authorize(self, searcher: str, owner_id: int) -> bool:
        if searcher in self.trusted:
            return True
        return owner_id in self.grants.get(searcher, set())

    def grant(self, searcher: str, owner_id: int) -> None:
        self.grants.setdefault(searcher, set()).add(owner_id)


@dataclass(frozen=True)
class Searcher:
    """An authenticated search principal (e.g. an ER physician)."""

    name: str


@dataclass
class AuthSearchResult:
    """Outcome of contacting every provider in a QueryPPI result list."""

    owner_id: int
    records: list[Record]
    positive_providers: list[int]  # providers that returned records
    noise_providers: list[int]  # contacted but had nothing (false positives)
    denied_providers: list[int]  # authorization failed
    contacted: int  # total providers contacted (the search cost)

    @property
    def found(self) -> bool:
        return bool(self.records)


def auth_search(
    network: InformationNetwork,
    acls: dict[int, AccessControl],
    searcher: Searcher,
    provider_ids: list[int],
    owner_id: int,
    strict: bool = False,
) -> AuthSearchResult:
    """``AuthSearch(s, {p_i}, t_j)`` over the candidate list.

    With ``strict=True`` an authorization failure raises
    :class:`AccessDenied`; the default records the denial and continues,
    which is how a real federated search degrades.
    """
    if not 0 <= owner_id < network.n_owners:
        raise ModelError(f"unknown owner id {owner_id}")
    records: list[Record] = []
    positive: list[int] = []
    noise: list[int] = []
    denied: list[int] = []
    for pid in provider_ids:
        if not 0 <= pid < network.n_providers:
            raise ModelError(f"unknown provider id {pid}")
        acl = acls.get(pid, AccessControl())
        if not acl.authorize(searcher.name, owner_id):
            if strict:
                raise AccessDenied(
                    f"searcher {searcher.name!r} denied at provider {pid} "
                    f"for owner {owner_id}"
                )
            denied.append(pid)
            continue
        found = network.providers[pid].records.get(owner_id, [])
        if found:
            records.extend(found)
            positive.append(pid)
        else:
            noise.append(pid)
    return AuthSearchResult(
        owner_id=owner_id,
        records=records,
        positive_providers=positive,
        noise_providers=noise,
        denied_providers=denied,
        contacted=len(provider_ids),
    )
