"""Data model: owners, providers, membership matrix, information network.

Mirrors the system model of paper Sec. II-A:

* ``n`` data owners ``t_j``, each with a personal privacy degree ``ǫ_j``
  chosen at :meth:`InformationNetwork.delegate` time;
* ``m`` autonomous providers ``p_i``, each summarizing its local repository
  by a membership vector ``M_i(·)``;
* the membership matrix ``M(i, j) = 1`` iff owner ``t_j`` has records at
  provider ``p_i`` -- this matrix is the *private* input of construction.

The matrix is stored both sparsely (per-provider owner sets, for protocol
code that works provider-locally) and as a dense numpy view on demand (for
the vectorized experiment paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.core.errors import ModelError

__all__ = ["Owner", "Provider", "MembershipMatrix", "InformationNetwork", "Record"]


@dataclass(frozen=True)
class Owner:
    """A data owner (a *patient* in the HIE instantiation).

    ``epsilon`` is the personalized privacy degree ǫ_j ∈ [0, 1]: 0 means "no
    privacy concern" (index may reveal the true provider list), 1 means "best
    preservation" (searches degrade to broadcast).
    """

    owner_id: int
    name: str
    epsilon: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon <= 1.0:
            raise ModelError(
                f"privacy degree must be in [0, 1], got {self.epsilon} "
                f"for owner {self.name!r}"
            )


@dataclass(frozen=True)
class Record:
    """A personal record delegated to a provider (content is opaque here;
    content privacy is out of the paper's scope, Sec. II-B)."""

    owner_id: int
    payload: str = ""


@dataclass
class Provider:
    """An autonomous provider (a *hospital*): holds delegated records and the
    local membership vector over owners."""

    provider_id: int
    name: str
    records: dict[int, list[Record]] = field(default_factory=dict)

    def store(self, record: Record) -> None:
        self.records.setdefault(record.owner_id, []).append(record)

    def has_owner(self, owner_id: int) -> bool:
        return owner_id in self.records

    def membership_vector(self, n_owners: int) -> np.ndarray:
        """Local vector ``M_i(·)`` as a dense 0/1 array over owner ids."""
        vec = np.zeros(n_owners, dtype=np.uint8)
        for oid in self.records:
            if 0 <= oid < n_owners:
                vec[oid] = 1
        return vec

    @property
    def owner_ids(self) -> set[int]:
        return set(self.records)


class MembershipMatrix:
    """The private matrix ``M(i, j)``, sparse-by-provider.

    Row index ``i`` ranges over providers, column index ``j`` over owners
    (matching the paper's ``m x n`` orientation).
    """

    def __init__(self, n_providers: int, n_owners: int):
        if n_providers < 1 or n_owners < 0:
            raise ModelError(
                f"invalid matrix shape ({n_providers} providers, {n_owners} owners)"
            )
        self.n_providers = n_providers
        self.n_owners = n_owners
        self._by_provider: list[set[int]] = [set() for _ in range(n_providers)]
        self._by_owner: list[set[int]] = [set() for _ in range(n_owners)]

    def set(self, provider_id: int, owner_id: int) -> None:
        self._check(provider_id, owner_id)
        self._by_provider[provider_id].add(owner_id)
        self._by_owner[owner_id].add(provider_id)

    def get(self, provider_id: int, owner_id: int) -> bool:
        self._check(provider_id, owner_id)
        return owner_id in self._by_provider[provider_id]

    def providers_of(self, owner_id: int) -> frozenset[int]:
        """True-positive provider set of one owner (the protected secret)."""
        if not 0 <= owner_id < self.n_owners:
            raise ModelError(f"unknown owner id {owner_id}")
        return frozenset(self._by_owner[owner_id])

    def owners_of(self, provider_id: int) -> frozenset[int]:
        if not 0 <= provider_id < self.n_providers:
            raise ModelError(f"unknown provider id {provider_id}")
        return frozenset(self._by_provider[provider_id])

    def frequency(self, owner_id: int) -> int:
        """Number of providers holding this owner's records."""
        return len(self.providers_of(owner_id))

    def sigma(self, owner_id: int) -> float:
        """Fractional identity frequency σ_j = frequency / m."""
        return self.frequency(owner_id) / self.n_providers

    def frequencies(self) -> np.ndarray:
        """All owner frequencies ``f_j`` as one int64 vector."""
        return np.fromiter(
            (len(s) for s in self._by_owner), dtype=np.int64, count=self.n_owners
        )

    def sigmas(self) -> np.ndarray:
        """All fractional frequencies ``σ_j = f_j / m`` in one vectorized
        read -- the construction hot path (Eq. 3-7) consumes this instead
        of ``n`` per-owner :meth:`sigma` calls."""
        return self.frequencies() / self.n_providers

    def to_dense(self) -> np.ndarray:
        """Dense ``m x n`` uint8 copy (providers are rows)."""
        dense = np.zeros((self.n_providers, self.n_owners), dtype=np.uint8)
        for pid, owners in enumerate(self._by_provider):
            for oid in owners:
                dense[pid, oid] = 1
        return dense

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "MembershipMatrix":
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ModelError("dense matrix must be 2-D (providers x owners)")
        matrix = cls(dense.shape[0], dense.shape[1])
        rows, cols = np.nonzero(dense)
        for pid, oid in zip(rows.tolist(), cols.tolist()):
            matrix.set(pid, oid)
        return matrix

    def iter_cells(self) -> Iterator[tuple[int, int]]:
        """All (provider, owner) pairs with ``M(i, j) = 1``."""
        for pid, owners in enumerate(self._by_provider):
            for oid in owners:
                yield pid, oid

    @property
    def total_memberships(self) -> int:
        return sum(len(s) for s in self._by_provider)

    def _check(self, provider_id: int, owner_id: int) -> None:
        if not 0 <= provider_id < self.n_providers:
            raise ModelError(f"unknown provider id {provider_id}")
        if not 0 <= owner_id < self.n_owners:
            raise ModelError(f"unknown owner id {owner_id}")


class InformationNetwork:
    """The multi-domain network: providers + owners + delegations.

    This is the object on which the four operations of the paper's system
    model act: ``delegate`` here, ``ConstructPPI`` in
    :mod:`repro.core.construction` / :mod:`repro.protocol`, ``QueryPPI`` on
    the built :class:`~repro.core.index.PPIIndex`, and ``AuthSearch`` in
    :mod:`repro.core.authsearch`.
    """

    def __init__(self, n_providers: int, provider_names: Optional[Iterable[str]] = None):
        if n_providers < 1:
            raise ModelError(f"need at least one provider, got {n_providers}")
        names = list(provider_names) if provider_names is not None else [
            f"provider-{i}" for i in range(n_providers)
        ]
        if len(names) != n_providers:
            raise ModelError(
                f"{n_providers} providers but {len(names)} names supplied"
            )
        self.providers = [Provider(provider_id=i, name=nm) for i, nm in enumerate(names)]
        self.owners: list[Owner] = []
        self._owner_ids_by_name: dict[str, int] = {}

    # -- owner management -------------------------------------------------------

    def register_owner(self, name: str, epsilon: float) -> Owner:
        """Create an owner with privacy degree ``epsilon`` (paper's Delegate
        carries the degree; registration fixes it up front)."""
        if name in self._owner_ids_by_name:
            raise ModelError(f"owner name {name!r} already registered")
        owner = Owner(owner_id=len(self.owners), name=name, epsilon=epsilon)
        self.owners.append(owner)
        self._owner_ids_by_name[name] = owner.owner_id
        return owner

    def owner_by_name(self, name: str) -> Owner:
        if name not in self._owner_ids_by_name:
            raise ModelError(f"unknown owner {name!r}")
        return self.owners[self._owner_ids_by_name[name]]

    def set_epsilon(self, owner_id: int, epsilon: float) -> Owner:
        """Change an owner's privacy degree (owners may revise their
        preference over time; the index must be updated to honor it --
        see :class:`repro.core.incremental.IncrementalIndexManager`)."""
        if not 0 <= owner_id < len(self.owners):
            raise ModelError(f"unknown owner id {owner_id}")
        old = self.owners[owner_id]
        updated = Owner(owner_id=old.owner_id, name=old.name, epsilon=epsilon)
        self.owners[owner_id] = updated
        return updated

    # -- the Delegate operation ---------------------------------------------------

    def delegate(self, owner: Owner, provider_id: int, payload: str = "") -> None:
        """``Delegate(<t_j, ǫ_j>, p_i)``: store a record of ``owner`` at the
        provider, establishing the private membership ``M(i, j) = 1``."""
        if not 0 <= provider_id < self.n_providers:
            raise ModelError(f"unknown provider id {provider_id}")
        if owner.owner_id >= len(self.owners) or self.owners[owner.owner_id] is not owner:
            raise ModelError(f"owner {owner.name!r} is not registered in this network")
        self.providers[provider_id].store(Record(owner_id=owner.owner_id, payload=payload))

    # -- views -------------------------------------------------------------------

    @property
    def n_providers(self) -> int:
        return len(self.providers)

    @property
    def n_owners(self) -> int:
        return len(self.owners)

    def epsilons(self) -> np.ndarray:
        return np.array([o.epsilon for o in self.owners], dtype=float)

    def membership_matrix(self) -> MembershipMatrix:
        """Materialize the global private matrix (exists only conceptually in
        a real deployment; protocol code only ever reads per-provider rows)."""
        matrix = MembershipMatrix(self.n_providers, self.n_owners)
        for provider in self.providers:
            for oid in provider.owner_ids:
                matrix.set(provider.provider_id, oid)
        return matrix
