"""β-calculation policies (paper Sec. III-B-1).

Randomized publication flips each negative bit to a false positive with
probability β_j; these policies pick β_j so the realized false-positive rate
``fp_j = X / (X + σ_j m)`` meets the owner's privacy degree ``ǫ_j`` with the
policy's success guarantee:

* :class:`BasicPolicy` (Eq. 3)
  ``β_b = [(σ⁻¹ − 1)(ǫ⁻¹ − 1)]⁻¹`` -- meets the requirement *in expectation*,
  i.e. with ≈ 50 % success ratio.
* :class:`IncrementedExpectationPolicy` (Eq. 4)
  ``β_d = β_b + Δ`` -- a configurable bump whose mapping to an actual success
  ratio is workload-dependent (the paper's criticism of it).
* :class:`ChernoffPolicy` (Eq. 5 / Thm. 3.1)
  ``β_c ≥ β_b + G + sqrt(G² + 2 β_b G)`` with
  ``G = ln(1/(1−γ)) / ((1−σ) m)`` -- statistically guarantees
  ``Pr(fp_j ≥ ǫ_j) ≥ γ`` for any configured γ > 0.5.

All policies clamp to [0, 1]; β = 1 means the identity is published by every
provider (it is effectively *common*, triggering the mixing defence of
:mod:`repro.core.mixing`).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.errors import PolicyError

__all__ = [
    "BetaPolicy",
    "BasicPolicy",
    "IncrementedExpectationPolicy",
    "ChernoffPolicy",
    "basic_beta",
    "chernoff_beta",
    "sigma_threshold",
    "frequency_threshold",
]


def basic_beta(sigma: float, epsilon: float) -> float:
    """Expectation-based β (Eq. 3), clamped to [0, 1].

    Edge cases: σ = 0 (owner absent -- nothing to protect, β = 0);
    σ = 1 or ǫ = 1 force β = 1 (only full broadcast satisfies the degree).
    """
    if not 0.0 <= sigma <= 1.0:
        raise PolicyError(f"sigma must be in [0, 1], got {sigma}")
    if not 0.0 <= epsilon <= 1.0:
        raise PolicyError(f"epsilon must be in [0, 1], got {epsilon}")
    if sigma == 0.0 or epsilon == 0.0:
        return 0.0
    if sigma == 1.0 or epsilon == 1.0:
        return 1.0
    beta = 1.0 / ((1.0 / sigma - 1.0) * (1.0 / epsilon - 1.0))
    return min(1.0, beta)


def chernoff_beta(sigma: float, epsilon: float, gamma: float, m: int) -> float:
    """Chernoff-bound β (Eq. 5), clamped to [0, 1]."""
    if not 0.5 < gamma < 1.0:
        raise PolicyError(f"gamma must be in (0.5, 1), got {gamma}")
    if m < 1:
        raise PolicyError(f"provider count must be >= 1, got {m}")
    beta_b = basic_beta(sigma, epsilon)
    if beta_b == 0.0:
        return 0.0
    if beta_b >= 1.0 or sigma >= 1.0:
        return 1.0
    g = math.log(1.0 / (1.0 - gamma)) / ((1.0 - sigma) * m)
    beta_c = beta_b + g + math.sqrt(g * g + 2.0 * beta_b * g)
    return min(1.0, beta_c)


class BetaPolicy(ABC):
    """Strategy interface: map (σ_j, ǫ_j, m) to a publishing probability."""

    #: short machine name used by benchmarks / reports
    name: str = "abstract"

    @abstractmethod
    def beta(self, sigma: float, epsilon: float, m: int) -> float:
        """β for one identity."""

    def beta_vector(
        self, sigmas: np.ndarray, epsilons: np.ndarray, m: int
    ) -> np.ndarray:
        """Vectorized β over identity arrays (default: per-element loop)."""
        sigmas = np.asarray(sigmas, dtype=float)
        epsilons = np.asarray(epsilons, dtype=float)
        if sigmas.shape != epsilons.shape:
            raise PolicyError("sigma/epsilon arrays must have matching shapes")
        return np.array(
            [self.beta(s, e, m) for s, e in zip(sigmas.ravel(), epsilons.ravel())]
        ).reshape(sigmas.shape)


@dataclass
class BasicPolicy(BetaPolicy):
    """Expectation-based policy β_b (Eq. 3): ~50 % success ratio."""

    name: str = "basic"

    def beta(self, sigma: float, epsilon: float, m: int) -> float:
        return basic_beta(sigma, epsilon)

    def beta_vector(self, sigmas, epsilons, m: int) -> np.ndarray:
        sigmas = np.asarray(sigmas, dtype=float)
        epsilons = np.asarray(epsilons, dtype=float)
        if sigmas.shape != epsilons.shape:
            raise PolicyError("sigma/epsilon arrays must have matching shapes")
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            beta = 1.0 / ((1.0 / sigmas - 1.0) * (1.0 / epsilons - 1.0))
        beta = np.where((sigmas == 0.0) | (epsilons == 0.0), 0.0, beta)
        beta = np.where((sigmas == 1.0) | (epsilons == 1.0), 1.0, beta)
        return np.clip(beta, 0.0, 1.0)


@dataclass
class IncrementedExpectationPolicy(BetaPolicy):
    """β_d = β_b + Δ (Eq. 4); Δ has no principled link to a success ratio."""

    delta: float = 0.02
    name: str = "inc-exp"

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise PolicyError(f"delta must be >= 0, got {self.delta}")

    def beta(self, sigma: float, epsilon: float, m: int) -> float:
        base = basic_beta(sigma, epsilon)
        if base == 0.0:
            return 0.0
        return min(1.0, base + self.delta)

    def beta_vector(self, sigmas, epsilons, m: int) -> np.ndarray:
        base = BasicPolicy().beta_vector(sigmas, epsilons, m)
        return np.where(base > 0.0, np.clip(base + self.delta, 0.0, 1.0), 0.0)


@dataclass
class ChernoffPolicy(BetaPolicy):
    """β_c (Eq. 5): guarantees ``Pr(fp ≥ ǫ) ≥ gamma`` (Thm. 3.1)."""

    gamma: float = 0.9
    name: str = "chernoff"

    def __post_init__(self) -> None:
        if not 0.5 < self.gamma < 1.0:
            raise PolicyError(f"gamma must be in (0.5, 1), got {self.gamma}")

    def beta(self, sigma: float, epsilon: float, m: int) -> float:
        return chernoff_beta(sigma, epsilon, self.gamma, m)

    def beta_vector(self, sigmas, epsilons, m: int) -> np.ndarray:
        beta_b = BasicPolicy().beta_vector(sigmas, epsilons, m)
        sigmas = np.asarray(sigmas, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            g = math.log(1.0 / (1.0 - self.gamma)) / ((1.0 - sigmas) * m)
            beta_c = beta_b + g + np.sqrt(g * g + 2.0 * beta_b * g)
        beta_c = np.where(beta_b == 0.0, 0.0, beta_c)
        beta_c = np.where((beta_b >= 1.0) | (sigmas >= 1.0), 1.0, beta_c)
        return np.clip(beta_c, 0.0, 1.0)


def sigma_threshold(policy: "BetaPolicy", epsilon: float, m: int) -> float:
    """Smallest σ at which ``policy.beta(σ, ǫ, m) >= 1`` (the common-identity
    frequency threshold σ' of Alg. 1, line 2).

    For the basic policy this has the closed form σ' = 1 − ǫ; the general
    case is solved by bisection, which is valid because every policy's β is
    non-decreasing in σ.  Returns 1.0 if even σ = 1 keeps β below 1 (never
    common, e.g. ǫ = 0).
    """
    if not 0.0 <= epsilon <= 1.0:
        raise PolicyError(f"epsilon must be in [0, 1], got {epsilon}")
    if policy.beta(1.0, epsilon, m) < 1.0:
        return 1.0
    lo, hi = 0.0, 1.0
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if policy.beta(mid, epsilon, m) >= 1.0:
            hi = mid
        else:
            lo = mid
    return hi


def frequency_threshold(policy: "BetaPolicy", epsilon: float, m: int) -> int:
    """Integer frequency threshold ``t = ceil(σ' · m)`` used by CountBelow."""
    sigma = sigma_threshold(policy, epsilon, m)
    t = math.ceil(sigma * m - 1e-9)
    return max(1, min(t, m + 1))
