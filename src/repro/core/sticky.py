"""Sticky-noise publication: repeated-publication resistance.

The paper's static-index argument (Sec. III-C) holds only until the index
is reconstructed; with fresh flip coins each time, the multi-version
intersection attack (:mod:`repro.attacks.intersection`) strips the noise at
rate β^k.  Sticky noise fixes this without a trusted party:

* each provider holds a long-lived local secret ``provider_key``;
* the flip coin for (provider, owner) is derived from a PRF
  ``H(provider_key, owner, beta_bucket)`` instead of fresh randomness, so
  re-publishing with the same β reproduces the *same* false positives;
* β changes only re-randomize the *marginal* cells: coins are monotone in
  β (a cell published at β₁ stays published for every β₂ ≥ β₁), implemented
  by comparing one PRF draw against β -- so raising an owner's privacy
  degree only ever adds noise, never removes it.

The intersection of any number of republications then equals the *first*
publication, and the attacker's confidence stays at its single-version
bound.  This is an extension beyond the paper (its future-work direction of
handling index refresh), documented in DESIGN.md.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.errors import ConstructionError
from repro.core.model import MembershipMatrix

__all__ = ["StickyPublisher", "sticky_publish_matrix"]


class StickyPublisher:
    """Derandomized per-provider publication with PRF-derived coins."""

    def __init__(self, provider_id: int, provider_key: bytes):
        if not provider_key:
            raise ConstructionError("provider key must be non-empty")
        self.provider_id = provider_id
        self._key = provider_key

    def coin(self, owner_id: int) -> float:
        """Deterministic uniform draw in [0, 1) for (provider, owner).

        HMAC-style PRF: SHA-256 over key || provider || owner, mapped to a
        53-bit mantissa.  The draw is *fixed for the lifetime of the key*,
        which is exactly the sticky property.
        """
        digest = hashlib.sha256(
            self._key
            + self.provider_id.to_bytes(8, "big")
            + owner_id.to_bytes(8, "big")
        ).digest()
        mantissa = int.from_bytes(digest[:8], "big") >> 11
        return mantissa / (1 << 53)

    def publish_row(self, private_row: np.ndarray, betas: np.ndarray) -> np.ndarray:
        """Sticky analogue of Eq. 2: flip 0-cells where ``coin < beta``.

        Monotone in β: the published set for β' ≥ β is a superset of the
        published set for β.
        """
        private_row = np.asarray(private_row, dtype=np.uint8)
        betas = np.asarray(betas, dtype=float)
        if private_row.shape != betas.shape:
            raise ConstructionError("row/betas shapes must match")
        if np.any((betas < 0.0) | (betas > 1.0)):
            raise ConstructionError("beta values must lie in [0, 1]")
        coins = np.array([self.coin(j) for j in range(len(betas))])
        flips = (coins < betas).astype(np.uint8)
        return np.where(private_row == 1, 1, flips)


def sticky_publish_matrix(
    matrix: MembershipMatrix,
    betas: np.ndarray,
    provider_keys: list[bytes],
) -> np.ndarray:
    """Full sticky publication: one :class:`StickyPublisher` per provider."""
    betas = np.asarray(betas, dtype=float)
    if betas.shape != (matrix.n_owners,):
        raise ConstructionError(
            f"need one beta per owner ({matrix.n_owners}), got {betas.shape}"
        )
    if len(provider_keys) != matrix.n_providers:
        raise ConstructionError("need one key per provider")
    dense = matrix.to_dense()
    published = np.empty_like(dense)
    for pid in range(matrix.n_providers):
        publisher = StickyPublisher(pid, provider_keys[pid])
        published[pid] = publisher.publish_row(dense[pid], betas)
    return published
