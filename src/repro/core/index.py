"""The published PPI index and the QueryPPI operation (paper Sec. II-A).

Once constructed, the index is a static mapping from owner identity to an
*obscured* provider list.  Query evaluation is a plain lookup -- all the
privacy machinery happened at construction time, which is also why the index
is "fully resistant to repeated attacks against the same identity over time"
(Sec. III-C): repeated queries return the identical list.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError

__all__ = ["PPIIndex", "IndexStats"]


@dataclass(frozen=True)
class IndexStats:
    """Size/cost statistics of a published index."""

    n_providers: int
    n_owners: int
    published_positives: int
    avg_result_size: float  # mean providers returned per owner (search cost)
    broadcast_owners: int  # owners whose query hits every provider


class PPIIndex:
    """An immutable published index ``M'`` hosted by the third-party server."""

    def __init__(self, published: np.ndarray, owner_names: list[str] | None = None):
        published = np.asarray(published, dtype=np.uint8)
        if published.ndim != 2:
            raise ModelError("published matrix must be 2-D (providers x owners)")
        if not np.all((published == 0) | (published == 1)):
            raise ModelError("published matrix must be Boolean")
        self._published = published
        self._published.setflags(write=False)
        if owner_names is not None and len(owner_names) != published.shape[1]:
            raise ModelError(
                f"{published.shape[1]} owners but {len(owner_names)} names"
            )
        self._owner_names = owner_names
        self._name_to_id = (
            {name: j for j, name in enumerate(owner_names)} if owner_names else {}
        )

    # -- QueryPPI -----------------------------------------------------------

    def query(self, owner_id: int) -> list[int]:
        """``QueryPPI(t_j) -> {p_i}``: providers that *may* hold the records."""
        self._check_owner(owner_id)
        return np.nonzero(self._published[:, owner_id])[0].tolist()

    def query_by_name(self, name: str) -> list[int]:
        if name not in self._name_to_id:
            raise ModelError(f"unknown owner name {name!r}")
        return self.query(self._name_to_id[name])

    def query_many(self, owner_ids) -> list[list[int]]:
        """Vectorized ``QueryPPI`` over many owners at once.

        One column-gather plus one ``nonzero`` over the sub-matrix replaces
        the per-owner Python loop, which is what keeps ``query-batch``
        frames cheap on the serving hot path.
        """
        ids = np.asarray(owner_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ModelError("owner_ids must be a flat sequence of ids")
        if ids.size == 0:
            return []
        out_of_range = (ids < 0) | (ids >= self.n_owners)
        if out_of_range.any():
            raise ModelError(f"unknown owner id {int(ids[out_of_range][0])}")
        # nonzero on the owners-major view emits (owner position, provider)
        # pairs sorted by owner then provider -- one split per owner.
        owner_pos, providers = np.nonzero(self._published[:, ids].T)
        splits = np.searchsorted(owner_pos, np.arange(1, ids.size))
        return [chunk.tolist() for chunk in np.split(providers, splits)]

    def result_size(self, owner_id: int) -> int:
        """Search cost of one query: number of providers to contact."""
        self._check_owner(owner_id)
        return int(self._published[:, owner_id].sum())

    # -- public views (this is exactly what an attacker sees) ----------------------

    @property
    def matrix(self) -> np.ndarray:
        """The public matrix ``M'`` -- readable by anyone, including attackers."""
        return self._published

    @property
    def n_providers(self) -> int:
        return self._published.shape[0]

    @property
    def n_owners(self) -> int:
        return self._published.shape[1]

    @property
    def owner_names(self) -> list[str] | None:
        return list(self._owner_names) if self._owner_names is not None else None

    def published_frequency(self, owner_id: int) -> float:
        """Apparent frequency of an identity in the public index (the signal
        the common-identity attacker ranks identities by)."""
        self._check_owner(owner_id)
        return float(self._published[:, owner_id].mean())

    def stats(self) -> IndexStats:
        per_owner = self._published.sum(axis=0)
        return IndexStats(
            n_providers=self.n_providers,
            n_owners=self.n_owners,
            published_positives=int(per_owner.sum()),
            avg_result_size=float(per_owner.mean()) if self.n_owners else 0.0,
            broadcast_owners=int(np.sum(per_owner == self.n_providers)),
        )

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        """Compact JSON wire format (what the PPI server would persist)."""
        owner_pos, providers = np.nonzero(self._published.T)
        splits = np.searchsorted(owner_pos, np.arange(1, self.n_owners))
        positives = (
            [chunk.tolist() for chunk in np.split(providers, splits)]
            if self.n_owners
            else []
        )
        payload = {
            "n_providers": self.n_providers,
            "n_owners": self.n_owners,
            "owner_names": self._owner_names,
            "positives": positives,
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "PPIIndex":
        payload = json.loads(text)
        n_providers, n_owners = payload["n_providers"], payload["n_owners"]
        positives = payload["positives"]
        lengths = np.fromiter(
            (len(ps) for ps in positives), dtype=np.int64, count=len(positives)
        )
        rows = np.fromiter(
            (p for ps in positives for p in ps), dtype=np.int64, count=int(lengths.sum())
        )
        if rows.size and (rows.min() < 0 or rows.max() >= n_providers):
            raise ModelError("positive provider id out of range")
        published = np.zeros((n_providers, n_owners), dtype=np.uint8)
        published[rows, np.repeat(np.arange(len(positives)), lengths)] = 1
        return cls(published, owner_names=payload.get("owner_names"))

    def _check_owner(self, owner_id: int) -> None:
        if not 0 <= owner_id < self.n_owners:
            raise ModelError(f"unknown owner id {owner_id}")
