"""Incremental index maintenance: a living locator service.

The paper constructs the index once over a static network; a real record
locator service sees a stream of new delegations and new owners.  Naively
re-running ConstructPPI has two problems:

* cost -- reconstruction touches every identity, though only one changed;
* privacy -- every reconstruction draws fresh noise, feeding the
  multi-version intersection attack (:mod:`repro.attacks.intersection`).

:class:`IncrementalIndexManager` fixes both:

* only the *changed identity's column* is recomputed (its frequency, its β,
  its published column);
* publication uses sticky coins (:mod:`repro.core.sticky`), so an unchanged
  (identity, β) pair republishes the identical column, and a β increase
  only ever *adds* noise.  The intersection of all versions an attacker
  ever saw therefore never drops below the single-version noise level for
  unchanged identities.

A true delegation does add one certain positive (the new true provider) --
that is inherent: the owner genuinely is there now, and the paper's ǫ
guarantee applies to the updated ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConstructionError, ModelError
from repro.core.index import PPIIndex
from repro.core.mixing import DEFAULT_COMMON_SIGMA, compute_lambda
from repro.core.model import InformationNetwork, Owner
from repro.core.policies import BetaPolicy, ChernoffPolicy
from repro.core.sticky import StickyPublisher

__all__ = ["IncrementalIndexManager", "UpdateResult"]


@dataclass
class UpdateResult:
    """What one update changed."""

    owner_id: int
    old_beta: float
    new_beta: float
    republished_cells: int  # newly-published cells in the column

    @property
    def column_changed(self) -> bool:
        return self.republished_cells > 0


class IncrementalIndexManager:
    """Maintains a published index under delegation/owner updates.

    The manager plays the role of the (trusted-for-availability-only)
    coordinator driving per-identity reconstruction; the noise coins remain
    per-provider secrets, modeled by per-provider sticky keys.
    """

    def __init__(
        self,
        network: InformationNetwork,
        provider_keys: list[bytes],
        policy: BetaPolicy | None = None,
        rng: np.random.Generator | None = None,
        common_sigma_threshold: float = DEFAULT_COMMON_SIGMA,
    ):
        if len(provider_keys) != network.n_providers:
            raise ConstructionError("need one sticky key per provider")
        self.network = network
        self.policy = policy if policy is not None else ChernoffPolicy(gamma=0.9)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._common_sigma = common_sigma_threshold
        self._publishers = [
            StickyPublisher(pid, key) for pid, key in enumerate(provider_keys)
        ]
        self.betas = np.zeros(network.n_owners, dtype=float)
        self._decoy_coins = self._rng.random(network.n_owners)
        self._published = np.zeros(
            (network.n_providers, network.n_owners), dtype=np.uint8
        )
        for j in range(network.n_owners):
            self._recompute_column(j)

    # -- public API --------------------------------------------------------

    def index(self) -> PPIIndex:
        """The current published index (fresh immutable snapshot)."""
        return PPIIndex(
            self._published.copy(),
            owner_names=[o.name for o in self.network.owners],
        )

    def add_owner(self, name: str, epsilon: float) -> Owner:
        """Register a new owner; extends β/columns by one identity."""
        owner = self.network.register_owner(name, epsilon)
        self.betas = np.append(self.betas, 0.0)
        self._decoy_coins = np.append(self._decoy_coins, self._rng.random())
        self._published = np.hstack(
            [
                self._published,
                np.zeros((self.network.n_providers, 1), dtype=np.uint8),
            ]
        )
        self._recompute_column(owner.owner_id)
        return owner

    def delegate(self, owner: Owner, provider_id: int, payload: str = "") -> UpdateResult:
        """Record a new delegation and republish only the affected column."""
        self.network.delegate(owner, provider_id, payload=payload)
        return self._recompute_column(owner.owner_id)

    def update_epsilon(self, owner_id: int, epsilon: float) -> UpdateResult:
        """An owner revises their privacy degree.

        Raising ǫ raises β and adds noise to the column.  *Lowering* ǫ
        cannot retract published cells (the sticky/monotone guarantee that
        defeats intersection attacks), so the republished column keeps all
        previously published noise; only future recomputations use the new
        degree.  The returned β reflects the new policy value.
        """
        self.network.set_epsilon(owner_id, epsilon)
        return self._recompute_column(owner_id)

    def rotate_epoch(self, new_provider_keys: list[bytes]) -> int:
        """Start a fresh noise epoch: new sticky keys, full republication.

        Needed for *retraction*: sticky monotonicity means cells are never
        unpublished within an epoch, so honoring a record deletion (e.g. a
        right-to-be-forgotten request) requires rotating every provider's
        key and republishing from scratch.  The privacy price is that an
        attacker holding snapshots from *both* epochs can intersect them
        (fresh noise across epochs is independent) -- rotate rarely, and
        only when ground truth actually shrank.  Returns the number of
        cells whose published value changed.
        """
        if len(new_provider_keys) != self.network.n_providers:
            raise ConstructionError("need one key per provider")
        self._publishers = [
            StickyPublisher(pid, key)
            for pid, key in enumerate(new_provider_keys)
        ]
        before = self._published.copy()
        self._published = np.zeros_like(self._published)
        self.betas = np.zeros_like(self.betas)
        for j in range(self.network.n_owners):
            self._recompute_column(j)
        return int((self._published != before).sum())

    def forget_delegation(self, owner: Owner, provider_id: int) -> None:
        """Remove a delegation from the ground truth (records deleted at the
        provider).  The published index keeps the now-stale positive until
        the next :meth:`rotate_epoch` -- within an epoch it is
        indistinguishable from noise, which is itself a privacy feature.
        """
        provider = self.network.providers[provider_id]
        if owner.owner_id in provider.records:
            del provider.records[owner.owner_id]

    def verify_recall(self) -> bool:
        """Sanity: every true membership is published (invariant check)."""
        dense = self.network.membership_matrix().to_dense()
        return bool(np.all(self._published[dense == 1] == 1))

    # -- internals ------------------------------------------------------------

    def _recompute_column(self, owner_id: int) -> UpdateResult:
        if not 0 <= owner_id < self.network.n_owners:
            raise ModelError(f"unknown owner id {owner_id}")
        m = self.network.n_providers
        matrix = self.network.membership_matrix()
        owner = self.network.owners[owner_id]
        sigma = matrix.sigma(owner_id)
        old_beta = float(self.betas[owner_id])
        beta = self.policy.beta(sigma, owner.epsilon, m)

        # Mixing, incrementally: recompute lambda from the current beta
        # vector (cheap public arithmetic) and apply this owner's sticky
        # decoy coin.  The coin is drawn once per owner, so lambda drift
        # only ever flips an owner from non-decoy to decoy (monotone).
        trial = self.betas.copy()
        trial[owner_id] = beta
        lam, _ = self._lambda_for(trial, matrix)
        if beta < 1.0 and self._decoy_coins[owner_id] < lam:
            beta = 1.0
        self.betas[owner_id] = beta

        # Republish the column with sticky coins: deterministic given
        # (provider key, owner, beta), so unchanged inputs change nothing.
        column = np.empty(m, dtype=np.uint8)
        for pid in range(m):
            is_member = matrix.get(pid, owner_id)
            if is_member:
                column[pid] = 1
            else:
                column[pid] = 1 if self._publishers[pid].coin(owner_id) < beta else 0
        before = self._published[:, owner_id].copy()
        self._published[:, owner_id] = np.maximum(before, column)
        republished = int((self._published[:, owner_id] != before).sum())
        return UpdateResult(
            owner_id=owner_id,
            old_beta=old_beta,
            new_beta=float(self.betas[owner_id]),
            republished_cells=republished,
        )

    def _lambda_for(self, betas: np.ndarray, matrix) -> tuple[float, float]:
        sigmas = np.array(
            [matrix.sigma(j) for j in range(self.network.n_owners)], dtype=float
        )
        epsilons = self.network.epsilons()
        broadcast = betas >= 1.0
        common = broadcast & (sigmas >= self._common_sigma)
        natural = broadcast & ~common
        xi = float(epsilons[common].max()) if common.any() else 0.0
        lam = compute_lambda(
            int(common.sum()), len(betas), xi, n_natural_decoys=int(natural.sum())
        )
        return lam, xi
