"""Compressed-sparse postings over the published index (the read-path engine).

``QueryPPI`` is the one operation the third-party server answers for every
searcher (paper Sec. II-A), and the published matrix ``M'`` is *static* once
constructed (Sec. III-C).  That makes the classic IR trade the right one:
precompute the per-owner provider list -- the *postings list* -- once, and
answer every query with an O(result-size) slice instead of an O(m) column
scan over the dense matrix.

:class:`PostingsIndex` stores the owner-major CSR form of ``M'``:

* ``indptr``  -- ``int64[n_owners + 1]``, monotone; owner ``j``'s postings
  occupy ``indices[indptr[j]:indptr[j + 1]]``;
* ``indices`` -- ``int32[nnz]``, provider ids, strictly increasing within
  each owner's slice (matching the sorted order ``np.nonzero`` emits).

Every query surface of :class:`~repro.core.index.PPIIndex` is reproduced
with identical results and identical error behavior (property-tested in
``tests/property/test_property_postings.py``); the dense matrix is never
touched after construction.  The arrays are plain contiguous buffers, so a
snapshot can store them verbatim and a serving worker can boot from an
``mmap`` of the file without copying (see :mod:`repro.serving.snapshot`,
format version 2).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ModelError
from repro.core.index import IndexStats, PPIIndex

__all__ = ["PostingsIndex"]


class PostingsIndex:
    """Owner-major CSR postings of a published index ``M'``.

    The constructor takes ownership of the arrays (they are marked
    read-only); use the ``from_*`` classmethods in normal code.
    ``validate=False`` skips the O(nnz) structural checks -- reserved for
    trusted sources such as a checksummed snapshot, where re-validation
    would force every page of an otherwise lazily-mapped file.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        n_providers: int,
        owner_names=None,
        *,
        validate: bool = True,
    ):
        # asanyarray: a memmap stays a memmap (zero-copy snapshot boot).
        indptr = np.asanyarray(indptr, dtype=np.int64)
        indices = np.asanyarray(indices, dtype=np.int32)
        if n_providers < 0:
            raise ModelError(f"invalid provider count {n_providers}")
        if indptr.ndim != 1 or indptr.size < 1:
            raise ModelError("indptr must be a 1-D array of n_owners + 1 offsets")
        if indices.ndim != 1:
            raise ModelError("indices must be a flat provider-id array")
        if validate:
            if indptr[0] != 0 or indptr[-1] != indices.size:
                raise ModelError("indptr must start at 0 and end at len(indices)")
            if np.any(np.diff(indptr) < 0):
                raise ModelError("indptr must be monotonically non-decreasing")
            if indices.size:
                if indices.min() < 0 or indices.max() >= n_providers:
                    raise ModelError("postings provider id out of range")
                # Strictly increasing inside each owner slice: the only
                # non-increasing steps in the concatenation may occur at
                # slice boundaries.
                steps = np.nonzero(np.diff(indices) <= 0)[0] + 1
                if not np.isin(steps, indptr).all():
                    raise ModelError(
                        "postings must be sorted and duplicate-free per owner"
                    )
        self._indptr = indptr
        self._indices = indices
        self._n_providers = int(n_providers)
        if owner_names is not None and len(owner_names) != indptr.size - 1:
            raise ModelError(
                f"{indptr.size - 1} owners but {len(owner_names)} names"
            )
        self._owner_names = owner_names
        self._name_to_id: dict | None = None  # built lazily; may be large
        for arr in (self._indptr, self._indices):
            if isinstance(arr, np.ndarray) and arr.flags.writeable:
                arr.setflags(write=False)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dense(cls, published: np.ndarray, owner_names=None) -> "PostingsIndex":
        """Build from a dense ``providers x owners`` 0/1 matrix."""
        published = np.asarray(published)
        if published.ndim != 2:
            raise ModelError("published matrix must be 2-D (providers x owners)")
        if not np.all((published == 0) | (published == 1)):
            raise ModelError("published matrix must be Boolean")
        owners, providers = np.nonzero(published.T)
        indptr = np.zeros(published.shape[1] + 1, dtype=np.int64)
        np.cumsum(np.bincount(owners, minlength=published.shape[1]), out=indptr[1:])
        return cls(
            indptr,
            providers.astype(np.int32),
            published.shape[0],
            owner_names=owner_names,
        )

    @classmethod
    def from_index(cls, index: PPIIndex) -> "PostingsIndex":
        """Build from a :class:`PPIIndex` (the matrix is already validated)."""
        return cls.from_dense(index.matrix, owner_names=index.owner_names)

    @classmethod
    def from_provider_rows(
        cls, rows, n_owners: int, owner_names=None
    ) -> "PostingsIndex":
        """Build directly from per-provider published rows, never holding the
        dense matrix: this is how a real server would ingest the publication
        phase, where each provider uploads only its own ``M'(i, .)`` row."""
        counts = np.zeros(n_owners, dtype=np.int64)
        per_provider: list[np.ndarray] = []
        for row in rows:
            row = np.asarray(row)
            if row.shape != (n_owners,):
                raise ModelError(
                    f"provider row has shape {row.shape}, expected ({n_owners},)"
                )
            positives = np.nonzero(row)[0]
            counts[positives] += 1
            per_provider.append(positives)
        indptr = np.zeros(n_owners + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int32)
        cursor = indptr[:-1].copy()
        # Providers arrive in id order, so appending preserves sortedness.
        for pid, positives in enumerate(per_provider):
            indices[cursor[positives]] = pid
            cursor[positives] += 1
        return cls(indptr, indices, len(per_provider), owner_names=owner_names)

    # -- QueryPPI -------------------------------------------------------------

    def query(self, owner_id: int) -> list[int]:
        """``QueryPPI(t_j) -> {p_i}``: an O(result-size) postings slice."""
        self._check_owner(owner_id)
        return self._indices[
            self._indptr[owner_id] : self._indptr[owner_id + 1]
        ].tolist()

    def query_by_name(self, name: str) -> list[int]:
        if self._name_to_id is None:
            self._name_to_id = (
                {str(n): j for j, n in enumerate(self._owner_names)}
                if self._owner_names is not None
                else {}
            )
        if name not in self._name_to_id:
            raise ModelError(f"unknown owner name {name!r}")
        return self.query(self._name_to_id[name])

    def query_many(self, owner_ids) -> list[list[int]]:
        """Vectorized ``QueryPPI``: one concatenated gather over the postings
        touched by the batch -- O(total result size), independent of ``m``."""
        ids = np.asarray(owner_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ModelError("owner_ids must be a flat sequence of ids")
        if ids.size == 0:
            return []
        out_of_range = (ids < 0) | (ids >= self.n_owners)
        if out_of_range.any():
            raise ModelError(f"unknown owner id {int(ids[out_of_range][0])}")
        counts, flat = self._gather(ids)
        # One bulk tolist + pointer-copy slices beats per-owner ndarray
        # materialization by a wide margin at serving batch sizes.
        flat_list = flat.tolist()
        bounds = np.zeros(ids.size + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        bounds_list = bounds.tolist()
        return [
            flat_list[bounds_list[k] : bounds_list[k + 1]] for k in range(ids.size)
        ]

    def query_many_arrays(self, owner_ids) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy-ish batch form: ``(counts, flat_providers)`` where owner
        ``k``'s postings are ``flat[counts[:k].sum():][:counts[k]]``.  This is
        the fastest surface for numeric consumers (benchmarks, recall
        computation) that never need Python lists."""
        ids = np.asarray(owner_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ModelError("owner_ids must be a flat sequence of ids")
        if ids.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int32)
        out_of_range = (ids < 0) | (ids >= self.n_owners)
        if out_of_range.any():
            raise ModelError(f"unknown owner id {int(ids[out_of_range][0])}")
        return self._gather(ids)

    def _gather(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        starts = self._indptr[ids]
        counts = self._indptr[ids + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return counts, np.zeros(0, dtype=np.int32)
        # Standard CSR multi-row gather: build [s0..e0, s1..e1, ...] with one
        # cumsum -- each element is +1 from its predecessor except at row
        # boundaries, which jump to the next start.
        present = counts > 0
        starts, ends = starts[present], (starts + counts)[present]
        step = np.ones(total, dtype=np.int64)
        step[0] = starts[0]
        boundaries = np.cumsum(ends - starts)[:-1]
        step[boundaries] = starts[1:] - ends[:-1] + 1
        return counts, self._indices[np.cumsum(step)]

    def result_size(self, owner_id: int) -> int:
        """Search cost of one query: number of providers to contact."""
        self._check_owner(owner_id)
        return int(self._indptr[owner_id + 1] - self._indptr[owner_id])

    def result_sizes(self) -> np.ndarray:
        """Per-owner result sizes in one vectorized read (``diff(indptr)``)."""
        return np.diff(self._indptr)

    def published_frequency(self, owner_id: int) -> float:
        """Apparent frequency of an identity in the public index."""
        return self.result_size(owner_id) / self._n_providers

    def stats(self) -> IndexStats:
        per_owner = self.result_sizes()
        return IndexStats(
            n_providers=self.n_providers,
            n_owners=self.n_owners,
            published_positives=int(self._indptr[-1]),
            avg_result_size=float(per_owner.mean()) if self.n_owners else 0.0,
            broadcast_owners=int(np.sum(per_owner == self.n_providers)),
        )

    # -- views ----------------------------------------------------------------

    @property
    def indptr(self) -> np.ndarray:
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        return self._indices

    @property
    def nnz(self) -> int:
        """Total published positives (length of ``indices``)."""
        return int(self._indptr[-1])

    @property
    def n_providers(self) -> int:
        return self._n_providers

    @property
    def n_owners(self) -> int:
        return self._indptr.size - 1

    @property
    def owner_names(self) -> list[str] | None:
        if self._owner_names is None:
            return None
        return [str(name) for name in self._owner_names]

    @property
    def nbytes(self) -> int:
        """Resident bytes of the postings arrays (names excluded)."""
        return int(self._indptr.nbytes + self._indices.nbytes)

    # -- conversions ----------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Materialize the dense ``providers x owners`` matrix ``M'``."""
        dense = np.zeros((self._n_providers, self.n_owners), dtype=np.uint8)
        owners = np.repeat(np.arange(self.n_owners), self.result_sizes())
        dense[self._indices, owners] = 1
        return dense

    def to_index(self) -> PPIIndex:
        """Materialize the equivalent dense :class:`PPIIndex`."""
        return PPIIndex(self.to_dense(), owner_names=self.owner_names)

    def release(self) -> None:
        """Drop the backing buffers, closing any mmap (and its fd) now.

        A hot-swapping server replaces its index on every ``reload``; if the
        old arrays were memory-mapped from a snapshot, waiting for the GC to
        collect them leaks one fd + mapping per swap until a collection
        happens to run.  After ``release`` the index answers every query as
        empty (0 owners) rather than keeping the file pinned.  Closing is
        best-effort: a still-alive external view of the array keeps the
        mapping open (``BufferError``) and wins.
        """
        mms = []
        for arr in (self._indptr, self._indices, self._owner_names):
            mm = getattr(arr, "_mmap", None)
            if mm is not None:
                mms.append(mm)
        arr = None  # the loop variable is the last live array ref; drop it
        self._indptr = np.zeros(1, dtype=np.int64)
        self._indices = np.zeros(0, dtype=np.int32)
        self._owner_names = None
        self._name_to_id = None
        for mm in mms:
            try:
                mm.close()
            except BufferError:  # an outside view still holds the pages
                pass

    def _check_owner(self, owner_id: int) -> None:
        if not 0 <= owner_id < self.n_owners:
            raise ModelError(f"unknown owner id {owner_id}")
