"""Identity mixing against the common-identity attack (paper Sec. III-B-2).

An identity whose policy β reaches 1 is published by every provider, so its
row in ``M'`` shows ~100 % frequency.  Two distinct populations end up
there:

* **truly common identities** -- high *actual* frequency (σ at/above
  ``common_sigma_threshold``).  For them the false-positive guarantee is
  unattainable (``fp ≤ 1 − σ < ǫ``), so their protection must come from
  *identity anonymity*: an attacker must not be able to tell which of the
  100 %-frequency rows are truly common;
* **natural decoys** -- low-frequency identities whose owners requested an
  ǫ so high that only broadcast satisfies it.  They already hide the truly
  common rows for free.

The defence (Eq. 6) tops up the decoy population: each remaining identity's
β is exaggerated to 1 with probability λ, chosen (Eq. 7) so the decoy
fraction ξ among the mixed set is at least the largest privacy degree of any
truly common identity:

    decoys / (commons + decoys) ≥ ξ
    ⇒ needed decoys ≥ ξ/(1 − ξ) · C;  natural decoys count toward the need.

The attacker's confidence in picking a *true* common identity out of the
mixed set is then ≤ 1 − ξ, restoring the per-identity ǫ-PRIVATE degree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.errors import ConstructionError

__all__ = [
    "MixingResult",
    "compute_lambda",
    "mix_betas",
    "DEFAULT_COMMON_SIGMA",
]

# An identity present at more than this fraction of providers is treated as
# frequency-common (the population the common-identity attack targets).
DEFAULT_COMMON_SIGMA = 0.5


@dataclass
class MixingResult:
    """Outcome of the identity-mixing step."""

    betas: np.ndarray  # final β vector after exaggeration (Eq. 6)
    lambda_: float  # mixing probability applied to remaining identities
    xi: float  # target decoy fraction (max ǫ over truly common)
    common_ids: np.ndarray  # truly (frequency-)common identities
    natural_decoy_ids: np.ndarray  # β* >= 1 but low-frequency identities
    decoy_ids: np.ndarray  # identities exaggerated by the λ coin

    @property
    def mixed_ids(self) -> np.ndarray:
        """All identities published with β = 1 (commons + both decoy kinds)."""
        return np.sort(
            np.concatenate([self.common_ids, self.natural_decoy_ids, self.decoy_ids])
        )

    @property
    def achieved_decoy_fraction(self) -> float:
        """Realized fraction of decoys among the mixed set."""
        decoys = len(self.natural_decoy_ids) + len(self.decoy_ids)
        total = len(self.common_ids) + decoys
        if total == 0:
            return 1.0
        return decoys / total


def compute_lambda(
    n_common: int, n_total: int, xi: float, n_natural_decoys: int = 0
) -> float:
    """Mixing probability λ from Eq. 7, net of natural decoys.

    ``n_common`` is the count of truly common identities C, ``xi`` the
    required decoy fraction, ``n_natural_decoys`` the β* ≥ 1 low-frequency
    identities that already serve as decoys.  λ applies to the remaining
    ``n_total − C − n_natural_decoys`` identities.  Clamped to [0, 1]; a
    demand that cannot be met (ξ = 1, or nearly everything common) yields
    λ = 1 -- best effort, flagged via ``achieved_decoy_fraction``.
    """
    if not 0.0 <= xi <= 1.0:
        raise ConstructionError(f"xi must be in [0, 1], got {xi}")
    if n_common < 0 or n_natural_decoys < 0:
        raise ConstructionError("counts must be non-negative")
    if n_common + n_natural_decoys > n_total:
        raise ConstructionError(
            f"invalid counts: {n_common} common + {n_natural_decoys} natural "
            f"of {n_total} total"
        )
    if n_common == 0 or xi == 0.0:
        return 0.0
    if xi == 1.0:
        return 1.0
    needed = (xi / (1.0 - xi)) * n_common - n_natural_decoys
    if needed <= 0.0:
        return 0.0
    remaining = n_total - n_common - n_natural_decoys
    if remaining == 0:
        return 1.0
    return min(1.0, needed / remaining)


def mix_betas(
    betas: np.ndarray,
    epsilons: np.ndarray,
    rng: np.random.Generator,
    sigmas: Optional[np.ndarray] = None,
    common_sigma_threshold: float = DEFAULT_COMMON_SIGMA,
    enabled: bool = True,
) -> MixingResult:
    """Apply Eq. 6 to a policy-computed β vector.

    With ``sigmas`` supplied, β ≥ 1 identities are split into truly common
    (σ ≥ ``common_sigma_threshold``) and natural decoys; without it every
    β ≥ 1 identity is treated as common (conservative).  ``enabled=False``
    runs the bookkeeping without coin-flip exaggeration -- used by the
    mixing ablation to quantify exactly what the defence buys.
    """
    betas = np.asarray(betas, dtype=float).copy()
    epsilons = np.asarray(epsilons, dtype=float)
    if betas.shape != epsilons.shape:
        raise ConstructionError("betas/epsilons shapes must match")
    if betas.ndim != 1:
        raise ConstructionError("expected 1-D beta vector")

    broadcast_mask = betas >= 1.0
    if sigmas is not None:
        sigmas = np.asarray(sigmas, dtype=float)
        if sigmas.shape != betas.shape:
            raise ConstructionError("sigmas shape must match betas")
        common_mask = broadcast_mask & (sigmas >= common_sigma_threshold)
    else:
        common_mask = broadcast_mask
    natural_mask = broadcast_mask & ~common_mask

    common_ids = np.nonzero(common_mask)[0]
    natural_ids = np.nonzero(natural_mask)[0]
    xi = float(epsilons[common_mask].max()) if common_ids.size else 0.0
    lam = compute_lambda(
        len(common_ids), len(betas), xi, n_natural_decoys=len(natural_ids)
    )

    if enabled and lam > 0.0:
        draws = rng.random(betas.shape)
        decoy_mask = (~broadcast_mask) & (draws < lam)
    else:
        decoy_mask = np.zeros(betas.shape, dtype=bool)
    decoy_ids = np.nonzero(decoy_mask)[0]
    betas[decoy_mask] = 1.0
    betas[broadcast_mask] = 1.0
    return MixingResult(
        betas=betas,
        lambda_=lam,
        xi=xi,
        common_ids=common_ids,
        natural_decoy_ids=natural_ids,
        decoy_ids=decoy_ids,
    )
