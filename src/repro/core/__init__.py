"""Core ǫ-PPI library: data model, β policies, mixing, publication, metrics.

This package is the paper's primary contribution; the secure distributed
realization lives in :mod:`repro.mpc` and :mod:`repro.protocol`.
"""

from repro.core.authsearch import (
    AccessControl,
    AuthSearchResult,
    Searcher,
    auth_search,
)
from repro.core.construction import (
    ConstructionResult,
    compute_betas,
    construct_epsilon_ppi,
)
from repro.core.errors import (
    AccessDenied,
    ConstructionError,
    ModelError,
    PolicyError,
    ReproError,
)
from repro.core.incremental import IncrementalIndexManager, UpdateResult
from repro.core.index import IndexStats, PPIIndex
from repro.core.mixing import MixingResult, compute_lambda, mix_betas
from repro.core.postings import PostingsIndex
from repro.core.model import (
    InformationNetwork,
    MembershipMatrix,
    Owner,
    Provider,
    Record,
)
from repro.core.policies import (
    BasicPolicy,
    BetaPolicy,
    ChernoffPolicy,
    IncrementedExpectationPolicy,
    basic_beta,
    chernoff_beta,
)
from repro.core.privacy import (
    PrivacyDegree,
    PrivacyReport,
    attacker_confidences,
    classify_degree,
    evaluate_index,
    published_false_positive_rates,
    success_ratio,
)
from repro.core.sticky import StickyPublisher, sticky_publish_matrix
from repro.core.publication import (
    false_positive_rates,
    publish_matrix,
    publish_provider_row,
    sample_false_positive_counts,
)

__all__ = [
    "AccessControl",
    "AccessDenied",
    "AuthSearchResult",
    "BasicPolicy",
    "BetaPolicy",
    "ChernoffPolicy",
    "ConstructionError",
    "ConstructionResult",
    "IncrementalIndexManager",
    "IncrementedExpectationPolicy",
    "IndexStats",
    "InformationNetwork",
    "MembershipMatrix",
    "MixingResult",
    "ModelError",
    "Owner",
    "PPIIndex",
    "PolicyError",
    "PostingsIndex",
    "PrivacyDegree",
    "PrivacyReport",
    "Provider",
    "Record",
    "ReproError",
    "Searcher",
    "StickyPublisher",
    "UpdateResult",
    "attacker_confidences",
    "auth_search",
    "basic_beta",
    "chernoff_beta",
    "classify_degree",
    "compute_betas",
    "compute_lambda",
    "construct_epsilon_ppi",
    "evaluate_index",
    "false_positive_rates",
    "mix_betas",
    "publish_matrix",
    "publish_provider_row",
    "published_false_positive_rates",
    "sample_false_positive_counts",
    "sticky_publish_matrix",
    "success_ratio",
]
