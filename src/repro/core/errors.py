"""Exception hierarchy for the repro library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "PolicyError",
    "ConstructionError",
    "AccessDenied",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ModelError(ReproError):
    """Invalid use of the data model (unknown owner/provider, bad degree...)."""


class PolicyError(ReproError):
    """Invalid β-policy parameters (e.g. γ <= 0.5 for the Chernoff policy)."""


class ConstructionError(ReproError):
    """Index construction failed or was invoked on an inconsistent network."""


class AccessDenied(ReproError):
    """AuthSearch rejected the searcher at a provider's access-control check."""
